"""The parallel execution layer: vectorized kernels and sharded pools.

Two acceptance criteria of the layer, each asserted against its in-test
twin on the identical workload:

* the numpy-vectorized ``evaluate_all`` must beat the pure-python oracle
  by at least 2x on a ~100k-edge whole-graph workload (PR CI; results must
  be byte-identical -- the speedup is worthless otherwise);
* sharded process-pool execution at 4 workers must beat single-shard
  execution by at least 1.5x on a 1M-edge snapshot (nightly only: the 1M
  build takes minutes, and the assertion needs >= 4 real cores).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets.synthetic import scale_free_graph
from repro.engine import executor
from repro.engine.engine import QueryEngine
from repro.engine.index import GraphIndex
from repro.engine.plan import compile_plan
from repro.regex import compile_query

numpy = pytest.importorskip("numpy")

#: ~100k edges: 33k nodes x 3 edges each (scale_free_graph's density).
VECTOR_NODES = 33_000
#: The nightly sharded smoke: ~1M edges.
SHARDED_NODES = 333_000
#: Star-heavy whole-graph queries -- wide BFS layers, where vectorized
#: frontier expansion (and shard fan-out) actually has work to amortize.
EXPRESSION_SHAPES = [
    "{0}.({1}+{2})*",
    "({0}+{1})*.{3}",
    "{2}*.{4}",
    "({0}+{1}+{2})*",
    "{5}.({0}+{3})*.{1}",
]


def _workload(node_count: int, seed: int):
    graph = scale_free_graph(node_count, alphabet_size=8, zipf_exponent=1.0, seed=seed)
    labels = sorted(graph.labels())
    plans = [
        compile_plan(compile_query(shape.format(*labels), tuple(labels)))
        for shape in EXPRESSION_SHAPES
    ]
    return graph, plans


def test_numpy_kernel_beats_python(benchmark):
    graph, plans = _workload(VECTOR_NODES, seed=13)
    index = GraphIndex.build(graph)

    # Warm both paths once (first-touch page faults, numpy import).
    python_results = [executor.evaluate_all(index, plan) for plan in plans]
    numpy_results = [executor.numpy_evaluate_all(index, plan) for plan in plans]
    assert numpy_results == python_results  # byte-identical or the race is void

    started = time.perf_counter()
    python_results = [executor.evaluate_all(index, plan) for plan in plans]
    python_seconds = time.perf_counter() - started

    numpy_results = benchmark.pedantic(
        lambda: [executor.numpy_evaluate_all(index, plan) for plan in plans],
        rounds=3,
        iterations=1,
    )
    numpy_seconds = benchmark.stats.stats.min
    assert numpy_results == python_results

    speedup = python_seconds / numpy_seconds if numpy_seconds else float("inf")
    benchmark.extra_info["python_seconds"] = python_seconds
    benchmark.extra_info["numpy_seconds"] = numpy_seconds
    # The machine-independent metric benchmarks/compare.py gates on.
    benchmark.extra_info["speedup"] = speedup

    print()
    print(
        f"workload: {len(plans)} whole-graph queries on "
        f"{graph.node_count()} nodes / {graph.edge_count()} edges"
    )
    print(f"python kernel: {python_seconds:8.3f}s")
    print(f"numpy kernel:  {numpy_seconds:8.3f}s  ({speedup:.1f}x)")

    # The tentpole acceptance criterion: vectorization must win by >= 2x.
    assert speedup >= 2.0


@pytest.mark.slow
def test_sharded_pool_beats_single_worker(benchmark, tmp_path):
    from repro.engine.parallel import ParallelExecutor
    from repro.storage.snapshot import open_snapshot, write_snapshot

    if (os.cpu_count() or 1) < 4:
        pytest.skip("sharded speedup needs >= 4 real cores")

    graph, plans = _workload(SHARDED_NODES, seed=17)
    path = tmp_path / "sharded-smoke.rgz"
    write_snapshot(GraphIndex.build(graph), path)
    index = open_snapshot(path)

    started = time.perf_counter()
    single_results = [executor.numpy_evaluate_all(index, plan) for plan in plans]
    single_seconds = time.perf_counter() - started

    pool = ParallelExecutor(workers=4, backend="numpy", min_shard_edges=0)
    try:
        # Warm the pool (worker spawn + snapshot mmap) outside the timed runs.
        warm = pool.evaluate_all(index, plans[0])
        assert warm == single_results[0]

        sharded_results = benchmark.pedantic(
            lambda: [pool.evaluate_all(index, plan) for plan in plans],
            rounds=3,
            iterations=1,
        )
        sharded_seconds = benchmark.stats.stats.min
    finally:
        pool.shutdown()

    assert sharded_results == single_results

    speedup = single_seconds / sharded_seconds if sharded_seconds else float("inf")
    benchmark.extra_info["single_seconds"] = single_seconds
    benchmark.extra_info["sharded_seconds"] = sharded_seconds
    benchmark.extra_info["speedup"] = speedup

    print()
    print(
        f"workload: {len(plans)} whole-graph queries on "
        f"{graph.node_count()} nodes / {graph.edge_count()} edges, 4 workers"
    )
    print(f"single shard:  {single_seconds:8.3f}s")
    print(f"4-way sharded: {sharded_seconds:8.3f}s  ({speedup:.1f}x)")

    # The nightly acceptance criterion: 4 workers must win by >= 1.5x.
    assert speedup >= 1.5


def test_engine_dispatch_overhead_is_negligible(benchmark):
    """`backend="numpy"` through the engine facade must keep the kernel win.

    Guards the dispatch layer itself: if `_run_evaluate_all` ever grew a
    per-call cost comparable to a kernel run (accidental re-resolution,
    counter contention), this would catch it.
    """
    graph, plans = _workload(VECTOR_NODES, seed=13)
    engine = QueryEngine(backend="numpy", result_cache_size=1)
    index = engine.index_for(graph)

    direct = [executor.numpy_evaluate_all(index, plan) for plan in plans]

    def through_engine():
        return [engine._run_evaluate_all(index, plan)[0] for plan in plans]

    results = benchmark.pedantic(through_engine, rounds=3, iterations=1)
    assert results == direct

    started = time.perf_counter()
    [executor.numpy_evaluate_all(index, plan) for plan in plans]
    kernel_seconds = time.perf_counter() - started
    dispatch_seconds = benchmark.stats.stats.min
    benchmark.extra_info["kernel_seconds"] = kernel_seconds
    benchmark.extra_info["dispatch_seconds"] = dispatch_seconds
    # Dispatch may not cost more than 50% over the bare kernels.
    assert dispatch_seconds <= kernel_seconds * 1.5
