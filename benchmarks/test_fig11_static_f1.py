"""Experiment E2 -- Figure 11: static scenario, F1 score vs. fraction of labeled nodes.

For each workload (a subset of the biological queries plus syn1-syn3 on the
smallest synthetic graph), random node labels are drawn at several labeled
fractions, the learner runs on each sample, and the F1 score of the learned
query against the goal is reported.  The paper's qualitative findings to
reproduce: F1 grows with the number of labels, more selective goals need
more labels, and several percent of the graph must be labeled before F1
approaches 1 (which is what motivates the interactive scenario).
"""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import render_figure11
from repro.evaluation.static import run_static_experiment


def _sweep(workloads, fractions):
    return [
        run_static_experiment(
            workload,
            labeled_fractions=fractions,
            seed=0,
            k_start=2,
            k_max=3,
        )
        for workload in workloads
    ]


@pytest.mark.parametrize("family", ["biological", "synthetic"])
def test_fig11_static_f1(benchmark, family, bench_scale, bio_workload_subset, syn_workloads_smallest):
    workloads = bio_workload_subset if family == "biological" else syn_workloads_smallest
    fractions = bench_scale.static_fractions

    results = benchmark.pedantic(
        _sweep, args=(workloads, fractions), rounds=1, iterations=1
    )

    print()
    print(render_figure11(results))

    for result in results:
        f1_values = [f1 for _, f1 in result.f1_series()]
        # Shape check: more labels never hurt much -- the final (largest
        # fraction) F1 is at least as good as the first one minus noise.
        assert f1_values[-1] >= f1_values[0] - 0.15
        # And the learner always produces a meaningful classifier by the end.
        assert f1_values[-1] > 0.3
