"""Ablation A3 -- interactive strategies: kR vs kS vs naive random.

Section 4.2 introduces the informativeness-aware strategies and Section 5.3
observes that kR and kS behave similarly (kS slightly better on the most
selective queries).  This benchmark runs the three strategies on the same
workloads and compares the labeling effort needed to reach the F1 target.
"""

from __future__ import annotations

from repro.evaluation.interactive import run_interactive_experiment

STRATEGIES = ("kR", "kS", "random")
TARGET_F1 = 0.95


def _compare(workloads, budget):
    rows = {}
    for workload in workloads:
        rows[workload.name] = [
            run_interactive_experiment(
                workload,
                strategy=strategy,
                seed=9,
                k_start=2,
                k_max=3,
                max_interactions=budget,
                target_f1=TARGET_F1,
            )
            for strategy in STRATEGIES
        ]
    return rows


def test_ablation_strategies(benchmark, bench_scale, bio_workload_subset):
    # The most and the least selective of the benchmarked biological queries.
    by_name = {w.name: w for w in bio_workload_subset}
    workloads = [by_name[name] for name in (bio_workload_subset[0].name, bio_workload_subset[-1].name)]
    budget = bench_scale.interactive_budget

    rows = benchmark.pedantic(_compare, args=(workloads, budget), rounds=1, iterations=1)

    print()
    print(f"strategy comparison (halt at F1 >= {TARGET_F1}):")
    for workload_name, results in rows.items():
        for row in results:
            print(
                f"  {workload_name} / {row.strategy:7s}: {row.interactions:4d} labels "
                f"({100 * row.labeled_fraction:.2f}%)  final F1 {row.final_f1:.3f}  "
                f"halted by {row.halted_by}"
            )

    for results in rows.values():
        # Sanity of every row; the informed-vs-naive comparison is only
        # meaningful when both reached the halt target within the budget
        # (ultra-selective goals are a needle-in-a-haystack for any
        # label-only strategy at reduced scale -- see EXPERIMENTS.md).
        for row in results:
            assert 0.0 <= row.final_f1 <= 1.0
            assert row.mean_seconds_between_interactions < 60.0
        informed = [r for r in results if r.strategy in ("kR", "kS") and r.reached_goal]
        naive = [r for r in results if r.strategy == "random" and r.reached_goal]
        if informed and naive:
            best_informed = min(row.interactions for row in informed)
            slack = max(10, naive[0].interactions // 2)
            assert best_informed <= naive[0].interactions + slack
