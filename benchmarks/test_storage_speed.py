"""Storage layer vs. rebuild-from-text: the subsystem's acceptance criteria.

Two scenarios on the paper's 10k-node synthetic workload:

* **cold start** -- a process that needs a queryable graph.  The status quo
  re-parses the edge-list file and rebuilds the CSR index from scratch;
  the storage path ``mmap``-opens a binary snapshot (the CSR arrays are
  views into the file) and only re-interns the node-name table.  The
  snapshot open must be at least 3x faster, with byte-identical query
  results.

* **small mutation** -- a live graph takes a handful of writes.  The status
  quo throws the index away and rebuilds; the storage-layer contract lets
  the engine merge the mutation delta into the existing arrays
  (:meth:`GraphIndex.refresh`).  Refresh must be at least 2x faster than
  the rebuild, with byte-identical arrays.

A third, ``slow``-marked scenario scales the whole pipeline to a million
edges for the nightly workflow.

Set ``REPRO_BENCH_CACHE`` to a directory to reuse the generated fixture
files across runs (CI caches it between jobs).
"""

from __future__ import annotations

import os
import random
import time
from pathlib import Path

import pytest

from repro.datasets.synthetic import scale_free_graph
from repro.engine import GraphIndex, QueryEngine
from repro.evaluation.workloads import synthetic_queries
from repro.graphdb.io import graph_to_edge_list, load_graph
from repro.storage import GraphView, ingest_edge_list, open_snapshot

#: The paper's smallest synthetic size (Section 5.1): 10k nodes, 3x edges.
NODE_COUNT = 10_000
SEED = 29
#: Bump to invalidate cached fixture files when the formats change.
FIXTURE_TAG = "v1"


def _fixture_dir(tmp_path: Path) -> Path:
    override = os.environ.get("REPRO_BENCH_CACHE")
    if override:
        directory = Path(override)
        directory.mkdir(parents=True, exist_ok=True)
        return directory
    return tmp_path


def _materialize_fixtures(directory: Path) -> tuple[Path, Path]:
    """The 10k workload as an edge-list file and a snapshot (cached)."""
    tsv = directory / f"storage-bench-{FIXTURE_TAG}-{NODE_COUNT}.tsv"
    rgz = directory / f"storage-bench-{FIXTURE_TAG}-{NODE_COUNT}.rgz"
    if not (tsv.exists() and rgz.exists()):
        graph = scale_free_graph(NODE_COUNT, alphabet_size=20, zipf_exponent=1.0, seed=SEED)
        tsv.write_text(graph_to_edge_list(graph), encoding="utf-8")
        # Snapshot the *file's* graph (one bulk ingest), so its interning
        # order matches what re-parsing the file produces.
        ingest_edge_list(tsv).save(rgz, meta={"fixture": FIXTURE_TAG})
    return tsv, rgz


def test_snapshot_open_beats_rebuild_from_edge_list(benchmark, tmp_path):
    tsv, rgz = _materialize_fixtures(_fixture_dir(tmp_path))

    # The status quo cold start: parse the text file into a GraphDB and
    # build the CSR index edge by edge.
    started = time.perf_counter()
    rebuilt_graph = load_graph(tsv)
    rebuilt_index = GraphIndex.build(rebuilt_graph)
    rebuild_seconds = time.perf_counter() - started

    def open_mapped():
        view = GraphView(open_snapshot(rgz))
        return view

    view = benchmark.pedantic(open_mapped, rounds=3, iterations=1)
    open_seconds = benchmark.stats.stats.mean
    speedup = rebuild_seconds / open_seconds if open_seconds else float("inf")

    # Identical tables...
    mapped = view.prebuilt_index
    assert mapped.nodes_by_id == rebuilt_index.nodes_by_id
    assert mapped.labels_by_id == rebuilt_index.labels_by_id
    assert mapped.edge_count == rebuilt_index.edge_count
    # ...and byte-identical query results through the engine.
    engine = QueryEngine()
    queries = list(synthetic_queries(rebuilt_graph, alphabet_size=20).values())
    for query in queries:
        assert engine.evaluate(view, query) == engine.evaluate(rebuilt_graph, query)
    assert engine.stats.index_builds == 1  # only the in-memory graph's

    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["open_seconds"] = open_seconds
    # The machine-independent metric benchmarks/compare.py gates on.
    benchmark.extra_info["speedup"] = speedup

    print()
    print(
        f"cold start on {rebuilt_graph.node_count()} nodes / "
        f"{rebuilt_graph.edge_count()} edges ({rgz.stat().st_size / 1e6:.1f} MB snapshot)"
    )
    print(f"re-parse + rebuild:   {rebuild_seconds:8.3f}s")
    print(f"mmap snapshot open:   {open_seconds:8.3f}s  ({speedup:.1f}x)")

    # The acceptance criterion: snapshot open is at least 3x faster.
    assert speedup >= 3.0


def test_incremental_refresh_beats_full_rebuild(benchmark):
    graph = scale_free_graph(NODE_COUNT, alphabet_size=20, zipf_exponent=1.0, seed=SEED)
    index = GraphIndex.build(graph)

    # A small write burst: 48 new edges over existing labels and nodes.
    rng = random.Random(7)
    nodes = graph.node_order
    labels = sorted(graph.labels())
    added = 0
    while added < 48:
        origin = nodes[rng.randrange(len(nodes))]
        end = nodes[rng.randrange(len(nodes))]
        label = labels[rng.randrange(len(labels))]
        if not graph.has_edge(origin, label, end):
            graph.add_edge(origin, label, end)
            added += 1

    started = time.perf_counter()
    rebuilt = GraphIndex.build(graph)
    rebuild_seconds = time.perf_counter() - started

    refreshed = benchmark.pedantic(
        lambda: index.refresh(graph, max_ratio=1.0), rounds=5, iterations=1
    )
    refresh_seconds = benchmark.stats.stats.mean
    speedup = rebuild_seconds / refresh_seconds if refresh_seconds else float("inf")

    assert refreshed is not None
    assert refreshed.nodes_by_id == rebuilt.nodes_by_id
    assert refreshed.labels_by_id == rebuilt.labels_by_id
    for lid in range(rebuilt.num_labels):
        assert refreshed.fwd_offsets[lid].tobytes() == rebuilt.fwd_offsets[lid].tobytes()
        assert refreshed.fwd_targets[lid].tobytes() == rebuilt.fwd_targets[lid].tobytes()
        assert refreshed.bwd_offsets[lid].tobytes() == rebuilt.bwd_offsets[lid].tobytes()
        assert refreshed.bwd_targets[lid].tobytes() == rebuilt.bwd_targets[lid].tobytes()

    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["refresh_seconds"] = refresh_seconds
    benchmark.extra_info["speedup"] = speedup

    print()
    print(f"48-edge delta on {graph.node_count()} nodes / {graph.edge_count()} edges")
    print(f"full index rebuild:    {rebuild_seconds:8.4f}s")
    print(f"incremental refresh:   {refresh_seconds:8.4f}s  ({speedup:.1f}x)")

    # The acceptance criterion: refresh is at least 2x faster (typically
    # far more; the merge touches only the labels the delta hit).
    assert speedup >= 2.0


@pytest.mark.slow
def test_million_edge_ingest_snapshot_query(tmp_path):
    """The nightly smoke: 1M edges through ingest -> snapshot -> mmap -> query."""
    directory = _fixture_dir(tmp_path)
    source = directory / f"storage-bench-{FIXTURE_TAG}-1m.tsv"
    edge_count = 1_000_000
    node_count = 250_000
    if not source.exists():
        rng = random.Random(41)
        with source.open("w", encoding="utf-8") as handle:
            handle.write("# 1M-edge nightly fixture\n")
            for _ in range(edge_count):
                handle.write(
                    f"n{rng.randrange(node_count)}\tl{rng.randrange(20):02d}"
                    f"\tn{rng.randrange(node_count)}\n"
                )

    started = time.perf_counter()
    ingestion = ingest_edge_list(source)
    ingest_seconds = time.perf_counter() - started
    assert ingestion.report.lines_read == edge_count + 1

    snap = directory / f"storage-bench-{FIXTURE_TAG}-1m.rgz"
    ingestion.save(snap)

    started = time.perf_counter()
    view = GraphView(open_snapshot(snap))
    open_seconds = time.perf_counter() - started
    speedup = ingest_seconds / open_seconds if open_seconds else float("inf")

    assert view.edge_count() == ingestion.index.edge_count
    assert view.node_count() == ingestion.index.num_nodes

    # Query parity between the freshly ingested index and the mapped one.
    from repro.queries import PathQuery

    engine = QueryEngine()
    fresh_view = ingestion.view()
    for expr in ("l00.l01", "(l00+l02)*.l19"):
        query = PathQuery.parse(expr, view.alphabet)
        assert engine.evaluate(view, query) == engine.evaluate(fresh_view, query)

    print()
    print(f"1M-edge pipeline: ingest {ingest_seconds:.1f}s, snapshot open {open_seconds:.2f}s")
    print(f"open vs re-ingest speedup: {speedup:.1f}x")
    # Opening the snapshot must beat re-ingesting the text by at least 3x.
    assert speedup >= 3.0
