"""Planner vs. fixed pipeline: rewriting and adaptive dispatch must pay.

Two workloads, each answered by a ``planner="auto"`` engine and a
``planner="off"`` twin on the same graphs:

* **Monadic dead-branch queries** declared over an alphabet wider than the
  graph's labels.  The unrewritten automaton drags whole unreachable union
  arms into every backward product walk; the planner prunes them after
  alphabet restriction, so the planned engine must scan no more edges than
  the fixed one (and is measurably faster).
* **Sparse selective binary queries** (a rare label guards the initial
  state).  The fixed PR8 dispatch order forces the chunked numpy kernel
  whenever the backend resolves to numpy, paying dense visited masks the
  selectivity never fills; the cost model keeps the python kernel on this
  shape.  This is the acceptance gate of the planner PR: >= 1.3x with
  byte-identical answers.

Both engines run ``result_cache_size=1`` and alternate multiple queries, so
every timed evaluation re-runs its kernel (plan caches and CSR indexes stay
warm -- the planner's own latency is inside the timed path).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.engine import QueryEngine
from repro.graphdb import GraphDB
from repro.queries import PathQuery

#: Graph labels l0..l7; x0..x3 exist only in the declared query alphabet,
#: so every union arm entered through one is prunable.
GRAPH_LABELS = [f"l{i}" for i in range(8)]
WIDE_ALPHABET = GRAPH_LABELS + [f"x{i}" for i in range(4)]

MONADIC_EXPRESSIONS = [
    "(l1+l2)*.l3 + x0.(l4+l5)*.l6",
    "l0.(l1+l4)* + x1.(l2+l3)*.l5",
    "(l6+l7)*.l0 + x2.l1*.(l2+l7)",
]

#: l0 is rare (a handful of edges), so almost every source of an all-pairs
#: evaluation dies in its first layer.
BINARY_EXPRESSIONS = [
    "l0.l1*",
    "l0.(l2+l3).l4*",
]

ROUNDS = 3


def selective_graph(nodes: int, *, rare_edges: int = 8, seed: int = 17) -> GraphDB:
    """A sparse random graph where l0 is rare and l1..l7 are everywhere."""
    rng = random.Random(seed)
    graph = GraphDB(GRAPH_LABELS)
    for i in range(nodes):
        for _ in range(3):
            graph.add_edge(
                i, f"l{rng.randrange(1, 8)}", rng.randrange(nodes)
            )
    for _ in range(rare_edges):
        graph.add_edge(rng.randrange(nodes), "l0", rng.randrange(nodes))
    return graph


def _queries(expressions):
    return [PathQuery.parse(expression, WIDE_ALPHABET) for expression in expressions]


def _run_monadic(engine, graph, queries):
    return [engine.evaluate(graph, query) for query in queries for _ in range(ROUNDS)]


def _run_binary(engine, graph, queries):
    return [engine.binary_evaluate(graph, query) for query in queries for _ in range(ROUNDS)]


def test_planner_prunes_dead_branches(benchmark):
    graph = selective_graph(2500)
    queries = _queries(MONADIC_EXPRESSIONS)
    # Both sides on the python kernel: the only difference is the automaton
    # the planner compiled, so the work counters are directly comparable.
    planned = QueryEngine(planner="auto", backend="python", result_cache_size=1)
    fixed = QueryEngine(planner="off", backend="python", result_cache_size=1)

    # Warm indexes and plan caches on both sides.
    expected = _run_monadic(fixed, graph, queries)
    assert _run_monadic(planned, graph, queries) == expected

    fixed_before = fixed.stats_snapshot()
    started = time.perf_counter()
    for _ in range(ROUNDS):
        _run_monadic(fixed, graph, queries)
    fixed_seconds = (time.perf_counter() - started) / ROUNDS

    planned_before = planned.stats_snapshot()
    results = benchmark.pedantic(
        _run_monadic, args=(planned, graph, queries), rounds=ROUNDS, iterations=1
    )
    planned_seconds = benchmark.stats.stats.min
    assert results == expected

    # The planner may only ever remove kernel work, never add it.  Both
    # deltas span exactly ROUNDS workload executions.
    fixed_edges = fixed.stats_snapshot()["edges_scanned"] - fixed_before["edges_scanned"]
    planned_edges = (
        planned.stats_snapshot()["edges_scanned"] - planned_before["edges_scanned"]
    )
    assert planned_edges <= fixed_edges

    speedup = fixed_seconds / planned_seconds if planned_seconds else float("inf")
    benchmark.extra_info["fixed_seconds"] = fixed_seconds
    benchmark.extra_info["speedup"] = speedup
    print()
    print(
        f"monadic dead-branch workload: {len(queries)} queries x {ROUNDS} rounds on "
        f"{graph.node_count()} nodes / {graph.edge_count()} edges"
    )
    print(f"planner off: {fixed_seconds:8.4f}s/round")
    print(f"planner on:  {planned_seconds:8.4f}s/round  ({speedup:.2f}x)")
    # Pruned automata must not lose; the committed baseline records the
    # actual win and benchmarks/compare.py gates the ratio.
    assert speedup > 0.9


def test_planner_beats_forced_numpy_on_selective_binary(benchmark):
    pytest.importorskip("numpy")
    # Larger than the monadic workload: the numpy kernel's dense visited
    # masks grow with n*k, which is exactly the asymmetry being measured.
    graph = selective_graph(5000)
    queries = _queries(BINARY_EXPRESSIONS)
    # backend="auto" on both: the fixed engine reproduces the historical
    # numpy-first dispatch, the planned one chooses per query from the cost
    # model.  This is the regression the adaptive dispatch exists to fix.
    planned = QueryEngine(planner="auto", backend="auto", result_cache_size=1)
    fixed = QueryEngine(planner="off", backend="auto", result_cache_size=1)
    assert fixed.backend == "numpy"

    expected = _run_binary(fixed, graph, queries)
    assert _run_binary(planned, graph, queries) == expected

    started = time.perf_counter()
    _run_binary(fixed, graph, queries)
    fixed_seconds = time.perf_counter() - started

    results = benchmark.pedantic(
        _run_binary, args=(planned, graph, queries), rounds=ROUNDS, iterations=1
    )
    planned_seconds = benchmark.stats.stats.min
    assert results == expected

    speedup = fixed_seconds / planned_seconds if planned_seconds else float("inf")
    benchmark.extra_info["fixed_seconds"] = fixed_seconds
    benchmark.extra_info["speedup"] = speedup
    print()
    print(
        f"selective binary workload: {len(queries)} queries x {ROUNDS} rounds on "
        f"{graph.node_count()} nodes / {graph.edge_count()} edges"
    )
    print(f"planner off (forced numpy dispatch): {fixed_seconds:8.4f}s")
    print(f"planner on (cost-chosen kernel):     {planned_seconds * ROUNDS:8.4f}s  ({speedup:.2f}x)")
    # The PR's acceptance criterion: byte-identical answers, >= 1.3x.
    assert speedup >= 1.3
