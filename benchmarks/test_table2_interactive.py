"""Experiment E4 -- Table 2: the interactive scenario.

For each workload and each strategy (kR and kS), run the interactive loop
from an empty sample until the learned query matches the goal (or the
interaction budget runs out), and report the fraction of nodes that had to
be labeled together with the time between interactions.  The paper's
qualitative findings to reproduce: the interactive scenario needs far fewer
labels than the static one to reach the same quality, the two strategies
behave similarly, and the time between interactions stays in the seconds
range.

Our implementation reaches F1 = 1 with few labels on the selective queries;
for the broadest queries it approaches but does not always reach exact
equality within the budget -- EXPERIMENTS.md discusses this deviation.  The
halt threshold used here is F1 >= 0.95 (one of the paper's "user satisfied
by an intermediate query" conditions) so that every row reports a
comparable labeling effort.
"""

from __future__ import annotations

from repro.evaluation.interactive import run_interactive_experiment
from repro.evaluation.reporting import render_table2
from repro.evaluation.static import run_static_experiment

PAPER_INTERACTIVE_PERCENT = {
    # workload: (static labels needed %, kR %, kS %) from Table 2
    "bio1": (7.0, 0.06, 0.06),
    "bio2": (7.0, 1.78, 3.13),
    "bio3": (66.0, 1.24, 1.49),
    "bio4": (12.0, 1.32, 0.22),
    "bio5": (87.0, 7.7, 7.39),
    "bio6": (12.0, 1.18, 0.35),
}

TARGET_F1 = 0.95


def _run_rows(workloads, budget):
    rows = []
    for workload in workloads:
        for strategy in ("kR", "kS"):
            rows.append(
                run_interactive_experiment(
                    workload,
                    strategy=strategy,
                    seed=3,
                    k_start=2,
                    k_max=3,
                    max_interactions=budget,
                    target_f1=TARGET_F1,
                )
            )
    return rows


def test_table2_interactive(benchmark, bench_scale, bio_workload_subset, syn_workloads_smallest):
    workloads = list(bio_workload_subset) + list(syn_workloads_smallest)
    budget = bench_scale.interactive_budget

    rows = benchmark.pedantic(_run_rows, args=(workloads, budget), rounds=1, iterations=1)

    # The "without interactions" column: labels the static scenario needs to
    # reach the same F1 target, measured on the same workloads.
    static_needed = {}
    for workload in workloads:
        static = run_static_experiment(
            workload,
            labeled_fractions=bench_scale.static_fractions,
            seed=3,
            k_max=3,
        )
        static_needed[workload.name] = static.labels_needed_for_f1(TARGET_F1)

    print()
    print(render_table2(rows, static_needed))
    print()
    print("paper Table 2 (strongest halt condition, F1 = 1), for reference:")
    for name, (static_pct, kr_pct, ks_pct) in PAPER_INTERACTIVE_PERCENT.items():
        print(f"  {name}: static {static_pct}%  kR {kr_pct}%  kS {ks_pct}%")

    # Shape checks.
    for row in rows:
        assert row.mean_seconds_between_interactions < 60.0
    # The headline claim: wherever the static scenario needed a measurable
    # fraction of labels, the interactive scenario needed no more.
    for row in rows:
        static_fraction = static_needed.get(row.workload_name)
        if static_fraction is not None and row.reached_goal:
            assert row.labeled_fraction <= static_fraction + 1e-9
