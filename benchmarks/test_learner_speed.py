"""Kernel learner vs. the pre-refactor baseline: end-to-end learning speed.

The scenario the int-coded automata kernel exists for: Algorithm 1 run
end-to-end on the paper's smallest synthetic size (10k nodes, 3x edges,
20 labels), over the syn1-syn3 goal queries.  The pre-refactor path --
per-positive ``covered_by`` walks over dict adjacency, a ``DFA``-object
PTA, the copying red-blue merge loop and Moore canonicalization -- is
reproduced here from the ``reference_*`` implementations those modules
kept; the kernel path is plain :func:`learn_path_query` (CSR-backed SCP
coverage cache, ``TableDFA`` PTA, in-place ``MergeFold`` with undo,
Hopcroft canonicalization).

Two assertions pin the refactor's acceptance criteria: the learned queries
must be byte-identical (canonical-DFA equality) between the two paths, and
the kernel path must be at least 2x faster end-to-end.
"""

from __future__ import annotations

import random
import time

from repro.automata.minimize import reference_canonical_dfa
from repro.automata.pta import prefix_tree_acceptor
from repro.datasets.synthetic import scale_free_graph
from repro.engine import QueryEngine
from repro.evaluation.static import draw_sample
from repro.evaluation.workloads import synthetic_queries
from repro.learning.generalize import reference_generalize_pta
from repro.learning.learner import learn_path_query, learn_with_dynamic_k
from repro.learning.scp import smallest_consistent_path
from repro.queries.path_query import PathQuery

#: The paper's smallest synthetic size (Section 5.1): 10k nodes, 3x edges.
NODE_COUNT = 10_000
#: Fraction of nodes labeled per drawn sample (the static sweep's midrange).
LABELED_FRACTION = 0.03
#: Seed of the sample draw (fixed: both paths must see identical samples).
SAMPLE_SEED = 13


def _workload():
    graph = scale_free_graph(NODE_COUNT, alphabet_size=20, zipf_exponent=1.0, seed=29)
    queries = synthetic_queries(graph, alphabet_size=20)
    rng = random.Random(SAMPLE_SEED)
    sampler = QueryEngine()
    samples = {
        name: draw_sample(
            graph, query, labeled_fraction=LABELED_FRACTION, rng=rng, engine=sampler
        )
        for name, query in sorted(queries.items())
    }
    return graph, samples


def _legacy_learn(graph, sample, *, k, engine):
    """Algorithm 1 exactly as the pre-refactor main ran it.

    Object-level SCP selection (multi-source ``covered_by`` from scratch
    per candidate path), DFA-object PTA, copying red-blue generalization,
    Moore minimization -- wired to the same engine-backed merge guard the
    kernel path uses, so the measured difference is the automata kernel,
    not the graph index.
    """
    scps = {}
    for node in sample.positives:
        path = smallest_consistent_path(graph, node, sample.negatives, k=k)
        if path is not None:
            scps[node] = path
    if not scps:
        return None
    pta = prefix_tree_acceptor(graph.alphabet, scps.values())
    negatives = sample.negatives

    def violates(candidate):
        if not negatives:
            return False
        return engine.any_selects(graph, candidate, negatives, ephemeral=True)

    generalized = reference_generalize_pta(pta, violates, alphabet=graph.alphabet)
    canonical = reference_canonical_dfa(generalized)
    all(engine.selects(graph, canonical, node) for node in sample.positives)
    return PathQuery(canonical)


def _run_kernel(engine, graph, samples):
    return {
        name: learn_path_query(graph, sample, k=2, engine=engine)
        for name, sample in samples.items()
    }


def test_kernel_learner_beats_prerefactor(benchmark):
    graph, samples = _workload()

    # Separate engines with pre-built CSR indexes: both paths start warm and
    # neither inherits the other's plan/result caches.
    legacy_engine = QueryEngine()
    legacy_engine.index_for(graph)
    kernel_engine = QueryEngine()
    kernel_engine.index_for(graph)

    started = time.perf_counter()
    legacy_queries = {
        name: _legacy_learn(graph, sample, k=2, engine=legacy_engine)
        for name, sample in samples.items()
    }
    legacy_seconds = time.perf_counter() - started

    results = benchmark.pedantic(
        _run_kernel, args=(kernel_engine, graph, samples), rounds=1, iterations=1
    )
    kernel_seconds = benchmark.stats.stats.max

    # Byte-identical learned queries: PathQuery equality is canonical-DFA
    # structural equality, which is exactly the acceptance criterion.
    for name in samples:
        assert results[name].best_effort_query == legacy_queries[name], name

    speedup = legacy_seconds / kernel_seconds if kernel_seconds else float("inf")
    snapshot = kernel_engine.stats_snapshot()
    benchmark.extra_info["node_count"] = graph.node_count()
    benchmark.extra_info["edge_count"] = graph.edge_count()
    benchmark.extra_info["legacy_seconds"] = legacy_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["states_expanded"] = snapshot["states_expanded"]
    benchmark.extra_info["sample_sizes"] = {
        name: [len(sample.positives), len(sample.negatives)]
        for name, sample in samples.items()
    }

    print()
    print(
        f"workload: {len(samples)} samples ({LABELED_FRACTION:.0%} labeled) on "
        f"{graph.node_count()} nodes / {graph.edge_count()} edges"
    )
    print(f"pre-refactor learner:  {legacy_seconds:8.3f}s")
    print(f"kernel learner:        {kernel_seconds:8.3f}s  ({speedup:.1f}x)")

    # The acceptance criterion: the kernel-backed learner is at least 2x
    # faster end-to-end.  Local runs measure ~3-5x; the margin below 3x is
    # the noise allowance for shared CI runners.
    assert kernel_seconds * 2.0 <= legacy_seconds


def test_dynamic_k_workload_timing(benchmark):
    """The Section 5.1 dynamic-k procedure, timed end-to-end on the kernel.

    No legacy twin here (the fixed-k test carries the comparison); this
    records the dynamic-k envelope in the JSON artifact and pins that every
    workload sample still learns a non-null query.
    """
    graph, samples = _workload()
    engine = QueryEngine()
    engine.index_for(graph)

    def run():
        return {
            name: learn_with_dynamic_k(graph, sample, k_start=2, k_max=4, engine=engine)
            for name, sample in samples.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, result in results.items():
        assert result.ok, f"dynamic-k abstained on {name}"
    total_learning = sum(result.elapsed for result in results.values())
    benchmark.extra_info["learning_seconds"] = total_learning
    benchmark.extra_info["ks"] = {name: result.k for name, result in results.items()}
    print()
    print(f"dynamic-k workload: {total_learning:.3f}s learning time across {len(results)} samples")
