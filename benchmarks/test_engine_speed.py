"""Engine vs. reference: repeated query workload on a 10k-node synthetic graph.

The scenario the engine subsystem exists for: one (static) graph serving a
workload in which the same queries come back repeatedly.  The reference
product construction re-derives everything from hash-set adjacency on every
call; the engine builds the CSR index once, compiles each distinct query
once, and serves repeats from the versioned result cache.  The assertion is
the acceptance criterion of the subsystem: the cached/batched engine path
must beat the uncached path on the same workload (it is typically an order
of magnitude faster).
"""

from __future__ import annotations

import time

from repro.datasets.synthetic import scale_free_graph
from repro.engine import QueryEngine
from repro.evaluation.workloads import synthetic_queries
from repro.graphdb.product import reference_evaluate

#: The paper's smallest synthetic size (Section 5.1): 10k nodes, 3x edges.
NODE_COUNT = 10_000
#: How many times each query recurs in the simulated workload.
ROUNDS = 3


def _workload():
    graph = scale_free_graph(NODE_COUNT, alphabet_size=20, zipf_exponent=1.0, seed=29)
    queries = list(synthetic_queries(graph, alphabet_size=20).values())
    return graph, queries


def _run_engine(engine, graph, queries):
    results = []
    for _ in range(ROUNDS):
        results.append(engine.evaluate_many(graph, queries))
    return results


def test_engine_beats_uncached_product(benchmark):
    graph, queries = _workload()

    started = time.perf_counter()
    reference_results = [
        [reference_evaluate(graph, query.dfa) for query in queries] for _ in range(ROUNDS)
    ]
    reference_seconds = time.perf_counter() - started

    engine = QueryEngine()
    # Round 1 is cold (index build + plan compilation + kernels), round 2 is
    # served from the result cache.
    engine_results = benchmark.pedantic(
        _run_engine, args=(engine, graph, queries), rounds=2, iterations=1
    )
    cold_seconds = benchmark.stats.stats.max
    warm_seconds = benchmark.stats.stats.min

    assert engine_results == reference_results

    snapshot = engine.stats_snapshot()
    cold_speedup = reference_seconds / cold_seconds if cold_seconds else float("inf")
    warm_speedup = reference_seconds / warm_seconds if warm_seconds else float("inf")
    benchmark.extra_info["reference_seconds"] = reference_seconds
    benchmark.extra_info["cold_speedup"] = cold_speedup
    benchmark.extra_info["warm_speedup"] = warm_speedup
    # The machine-independent metric benchmarks/compare.py gates on.
    benchmark.extra_info["speedup"] = cold_speedup
    benchmark.extra_info["result_cache_hits"] = snapshot["result_cache_hits"]

    print()
    print(
        f"workload: {len(queries)} queries x {ROUNDS} rounds on "
        f"{graph.node_count()} nodes / {graph.edge_count()} edges"
    )
    print(f"uncached product path:  {reference_seconds:8.3f}s")
    print(f"engine, cold (index+compile+evaluate): {cold_seconds:8.3f}s  ({cold_speedup:.1f}x)")
    print(f"engine, warm (result cache):           {warm_seconds:8.6f}s  ({warm_speedup:.0f}x)")
    print(
        f"engine stats: {snapshot['index_builds']} index build(s), "
        f"{snapshot['plan_compilations']} plan compilation(s), "
        f"{snapshot['result_cache_hits']} result-cache hit(s)"
    )

    # One index build and one plan per distinct query; every repeat round is
    # answered from the result cache.
    assert snapshot["index_builds"] == 1
    assert snapshot["plan_compilations"] == len(queries)
    assert snapshot["result_cache_hits"] >= (ROUNDS - 1) * len(queries)
    # The acceptance criterion: cached/batched beats uncached.  The warm
    # round must beat the reference outright; the cold round normally does
    # too (~3x), but it gets a generous noise allowance so a GC pause or CPU
    # spike on a shared CI runner cannot fail the suite.
    assert warm_seconds < reference_seconds
    assert cold_seconds < reference_seconds * 2.0
