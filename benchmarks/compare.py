#!/usr/bin/env python3
"""Benchmark-regression gate: diff a fresh pytest-benchmark JSON against a baseline.

Usage (what CI's benchmark-smoke job runs)::

    python benchmarks/compare.py --baseline benchmarks/baselines/learner-benchmark.json \
        --fresh learner-benchmark.json [--tolerance 0.25]

Comparison policy, per benchmark (matched by ``name``):

* When both sides carry an ``extra_info.speedup`` (our speed benchmarks
  record the measured ratio over their in-test legacy twin), the *relative*
  metric is compared: the fresh speedup may not fall more than
  ``tolerance`` below the baseline's.  Speedups are machine-independent, so
  this is the hard gate for shared CI runners.
* Otherwise the absolute ``stats.mean`` is compared: the fresh mean may not
  exceed the baseline's by more than ``tolerance``.  Absolute wall-clock is
  machine-dependent (a CI runner merely slower than the machine that wrote
  the baseline would trip it), so out-of-tolerance means are *advisory* --
  printed as warnings, failing the gate only under ``--strict-means``.

A benchmark present in the baseline but missing from the fresh run fails
the gate (a silently skipped benchmark is a regression of the harness);
fresh-only benchmarks are reported but pass (they get a baseline when it is
next regenerated with ``--write-baseline``).

``--summary FILE`` additionally merges this invocation's comparisons into a
consolidated trajectory artifact (read-modify-write JSON): one entry per
``(suite, name)`` with the compared metric, both values, the verdict, and
the fresh report's timestamp.  CI calls the gate once per benchmark suite
with the same ``--summary`` file and uploads the merged result, so one
artifact shows every suite's speedup ratios for the run.

Exit code 0 when every comparison is within tolerance, 1 otherwise.  The
default tolerance is 0.25 (fail on >25% slowdowns) and can also be set via
the ``REPRO_BENCH_TOLERANCE`` environment variable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class Comparison:
    """The verdict for one benchmark name.

    ``advisory`` marks a machine-dependent comparison (absolute mean): its
    failure is a warning by default and fails the gate only in strict mode.
    """

    name: str
    metric: str  # "speedup", "mean", "missing" or "new"
    baseline: float | None
    fresh: float | None
    ok: bool
    advisory: bool = False

    def render(self) -> str:
        status = "ok  " if self.ok else ("warn" if self.advisory else "FAIL")
        if self.metric == "missing":
            return f"{status} {self.name}: present in baseline but missing from fresh run"
        if self.metric == "new":
            return f"{status} {self.name}: new benchmark (no baseline yet)"
        direction = "x" if self.metric == "speedup" else "s"
        return (
            f"{status} {self.name}: {self.metric} baseline={self.baseline:.4f}{direction} "
            f"fresh={self.fresh:.4f}{direction}"
        )


def _by_name(report: dict) -> dict[str, dict]:
    benchmarks = report.get("benchmarks", [])
    return {bench["name"]: bench for bench in benchmarks}


def _speedup(bench: dict) -> float | None:
    value = bench.get("extra_info", {}).get("speedup")
    return float(value) if isinstance(value, (int, float)) else None


def compare_reports(
    baseline: dict, fresh: dict, *, tolerance: float = DEFAULT_TOLERANCE
) -> list[Comparison]:
    """Compare two pytest-benchmark reports; one :class:`Comparison` per name."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    baseline_by_name = _by_name(baseline)
    fresh_by_name = _by_name(fresh)
    comparisons: list[Comparison] = []
    for name, base in sorted(baseline_by_name.items()):
        current = fresh_by_name.get(name)
        if current is None:
            comparisons.append(
                Comparison(name=name, metric="missing", baseline=None, fresh=None, ok=False)
            )
            continue
        base_speedup, fresh_speedup = _speedup(base), _speedup(current)
        if base_speedup is not None and fresh_speedup is not None:
            floor = base_speedup * (1.0 - tolerance)
            comparisons.append(
                Comparison(
                    name=name,
                    metric="speedup",
                    baseline=base_speedup,
                    fresh=fresh_speedup,
                    ok=fresh_speedup >= floor,
                )
            )
            continue
        base_mean = float(base["stats"]["mean"])
        fresh_mean = float(current["stats"]["mean"])
        ceiling = base_mean * (1.0 + tolerance)
        comparisons.append(
            Comparison(
                name=name,
                metric="mean",
                baseline=base_mean,
                fresh=fresh_mean,
                ok=fresh_mean <= ceiling,
                advisory=True,
            )
        )
    for name in sorted(set(fresh_by_name) - set(baseline_by_name)):
        comparisons.append(
            Comparison(name=name, metric="new", baseline=None, fresh=None, ok=True)
        )
    return comparisons


def merge_summary(
    path: Path, suite: str, comparisons: list[Comparison], *, generated: str | None
) -> dict:
    """Merge one suite's comparisons into the consolidated summary file.

    Entries are keyed by ``(suite, name)``: re-running a suite replaces its
    rows and leaves every other suite's untouched, so CI can call the gate
    once per suite against one shared ``--summary`` file.
    """
    summary: dict = {"entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
                summary = loaded
        except json.JSONDecodeError:
            pass  # a corrupt artifact is rebuilt, not fatal
    kept = [
        entry
        for entry in summary["entries"]
        if not (isinstance(entry, dict) and entry.get("suite") == suite)
    ]
    for comparison in comparisons:
        kept.append(
            {
                "suite": suite,
                "name": comparison.name,
                "metric": comparison.metric,
                "baseline": comparison.baseline,
                "fresh": comparison.fresh,
                "ok": comparison.ok,
                "advisory": comparison.advisory,
                "datetime": generated,
            }
        )
    kept.sort(key=lambda entry: (entry.get("suite", ""), entry.get("name", "")))
    summary["entries"] = kept
    summary["generated"] = generated
    path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, metavar="FILE", help="committed baseline JSON"
    )
    parser.add_argument(
        "--fresh", required=True, metavar="FILE", help="freshly produced benchmark JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed relative slowdown (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--strict-means",
        action="store_true",
        help="fail on out-of-tolerance absolute means too (machine-dependent)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="copy the fresh report over the baseline instead of comparing",
    )
    parser.add_argument(
        "--summary",
        metavar="FILE",
        default=None,
        help="merge this suite's comparisons into a consolidated trajectory "
        "JSON (keyed by suite+name; safe to share across gate calls)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    if args.write_baseline:
        # Committed baselines carry only what the gate reads: benchmark
        # names, stats and extra_info -- not the producing machine's
        # hardware inventory or commit metadata.
        pruned = {
            "datetime": fresh.get("datetime"),
            "version": fresh.get("version"),
            "benchmarks": [
                {
                    "name": bench["name"],
                    "fullname": bench.get("fullname"),
                    "stats": bench["stats"],
                    "extra_info": bench.get("extra_info", {}),
                }
                for bench in fresh.get("benchmarks", [])
            ],
        }
        Path(args.baseline).parent.mkdir(parents=True, exist_ok=True)
        Path(args.baseline).write_text(json.dumps(pruned, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = json.loads(Path(args.baseline).read_text())
    comparisons = compare_reports(baseline, fresh, tolerance=args.tolerance)
    if args.summary is not None:
        suite = Path(args.baseline).stem
        merge_summary(
            Path(args.summary), suite, comparisons, generated=fresh.get("datetime")
        )
        print(f"summary merged: {args.summary} (suite {suite})")
    print(f"benchmark regression gate (tolerance {args.tolerance:.0%}):")
    for comparison in comparisons:
        print("  " + comparison.render())
    failed = [
        comparison
        for comparison in comparisons
        if not comparison.ok and (args.strict_means or not comparison.advisory)
    ]
    warned = [
        comparison
        for comparison in comparisons
        if not comparison.ok and comparison.advisory and not args.strict_means
    ]
    if warned:
        print(
            f"{len(warned)} machine-dependent mean(s) beyond tolerance (advisory; "
            "gate with --strict-means)."
        )
    if failed:
        print(f"{len(failed)} regression(s) beyond tolerance.")
        return 1
    print("gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
