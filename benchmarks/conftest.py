"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``small`` (default) -- reduced graph sizes so the whole harness finishes in
  a few minutes on a laptop;
* ``paper`` -- the paper's sizes (AliBaba-like 3k nodes / 8k edges, synthetic
  graphs of 10k/20k/30k nodes).  Expect a long run.

The printed output of each benchmark is the reproduced table/figure series;
EXPERIMENTS.md records the comparison against the published numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.evaluation.workloads import Workload, biological_workloads, synthetic_workloads


@dataclass(frozen=True)
class BenchScale:
    """Graph sizes and experiment budgets for one benchmark scale."""

    name: str
    alibaba_nodes: int
    alibaba_edges: int
    synthetic_nodes: tuple[int, ...]
    static_fractions: tuple[float, ...]
    interactive_budget: int
    bio_subset: tuple[str, ...]


SCALES = {
    "small": BenchScale(
        name="small",
        alibaba_nodes=800,
        alibaba_edges=2200,
        synthetic_nodes=(1500,),
        static_fractions=(0.01, 0.03, 0.07, 0.15),
        interactive_budget=120,
        bio_subset=("bio1", "bio3", "bio6"),
    ),
    "paper": BenchScale(
        name="paper",
        alibaba_nodes=3000,
        alibaba_edges=8000,
        synthetic_nodes=(10000, 20000, 30000),
        static_fractions=(0.01, 0.03, 0.07, 0.15, 0.25),
        interactive_budget=400,
        bio_subset=("bio1", "bio2", "bio3", "bio4", "bio5", "bio6"),
    ),
}


def current_scale() -> BenchScale:
    """The benchmark scale selected via REPRO_BENCH_SCALE."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {name!r}")
    return SCALES[name]


@pytest.fixture(scope="session")
def bench_scale() -> BenchScale:
    """The active benchmark scale."""
    return current_scale()


@pytest.fixture(scope="session")
def bio_workloads(bench_scale) -> list[Workload]:
    """The biological workload (Table 1 queries on the AliBaba-like graph)."""
    return biological_workloads(
        node_count=bench_scale.alibaba_nodes,
        edge_count=bench_scale.alibaba_edges,
        seed=7,
    )


@pytest.fixture(scope="session")
def bio_workload_subset(bench_scale, bio_workloads) -> list[Workload]:
    """The subset of biological workloads exercised by the sweep benchmarks."""
    wanted = set(bench_scale.bio_subset)
    return [workload for workload in bio_workloads if workload.name in wanted]


@pytest.fixture(scope="session")
def syn_workloads(bench_scale) -> list[Workload]:
    """The synthetic workload (syn1-syn3 on scale-free Zipfian graphs)."""
    return synthetic_workloads(node_counts=bench_scale.synthetic_nodes, seed=11)


@pytest.fixture(scope="session")
def syn_workloads_smallest(syn_workloads, bench_scale) -> list[Workload]:
    """Only the smallest synthetic graph's workloads (for the costlier sweeps)."""
    smallest = min(bench_scale.synthetic_nodes)
    return [w for w in syn_workloads if w.name.endswith(f"@{smallest}")]
