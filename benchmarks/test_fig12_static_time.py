"""Experiment E3 -- Figure 12: static scenario, learning time vs. fraction of labeled nodes.

Same sweep as Figure 11 but reporting the learning time.  The paper's
qualitative findings: learning time stays in the seconds range, and grows
with the number of labeled nodes -- most visibly for the less selective
queries (bio4-bio6, syn2-syn3), which entail more positive nodes in the SCP
selection step.
"""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import render_figure12
from repro.evaluation.static import run_static_experiment


def _sweep(workloads, fractions):
    return [
        run_static_experiment(
            workload,
            labeled_fractions=fractions,
            seed=1,
            k_start=2,
            k_max=3,
        )
        for workload in workloads
    ]


@pytest.mark.parametrize("family", ["biological", "synthetic"])
def test_fig12_static_time(benchmark, family, bench_scale, bio_workload_subset, syn_workloads_smallest):
    workloads = bio_workload_subset if family == "biological" else syn_workloads_smallest
    fractions = bench_scale.static_fractions

    results = benchmark.pedantic(
        _sweep, args=(workloads, fractions), rounds=1, iterations=1
    )

    print()
    print(render_figure12(results))

    for result in results:
        times = [seconds for _, seconds in result.time_series()]
        assert all(seconds >= 0.0 for seconds in times)
        # Learning stays within the "order of seconds" regime of the paper
        # (generously bounded here to keep the assertion robust across hosts).
        assert max(times) < 120.0
