"""Service throughput: concurrent multi-tenant clients vs. one sequential client.

The serving layer exists so many clients can share one set of hot
snapshots, and its micro-batcher amortizes the coalescing window across a
burst: a lone sequential client pays ``batch_window`` per path query, while
concurrent clients share each window (their queries travel through one
``evaluate_many`` call).  This benchmark runs the same warm query workload
both ways against one in-process daemon and records
``extra_info["speedup"] = sequential/concurrent`` seconds per round -- the
machine-independent ratio ``benchmarks/compare.py`` gates.  A drop means
either the batcher stopped coalescing or per-request dispatch got heavier,
which are exactly the serving regressions this file exists to catch.
"""

from __future__ import annotations

import threading
from time import perf_counter

from repro.api.config import ServiceConfig
from repro.service import QueryService, ServiceClient
from repro.storage.catalog import DatasetCatalog

CLIENTS = 8
TENANTS = 2
QUERIES_PER_CLIENT = 12
#: A warm mix: repeated expressions keep the plan and result caches hot, so
#: the measured cost is protocol + dispatch + batching, not evaluation.
EXPRESSIONS = ("tram", "bus", "(tram+bus)*.cinema", "tram.tram")
ROUNDS = 5


def _sequential_round(host: str, port: int, total: int) -> None:
    with ServiceClient(host, port, tenant="sequential") as client:
        for i in range(total):
            client.query(EXPRESSIONS[i % len(EXPRESSIONS)])


def _concurrent_round(host: str, port: int) -> None:
    errors: list[Exception] = []

    def worker(tenant: str) -> None:
        try:
            with ServiceClient(host, port, tenant=tenant) as client:
                for i in range(QUERIES_PER_CLIENT):
                    client.query(EXPRESSIONS[i % len(EXPRESSIONS)])
        except Exception as error:  # noqa: BLE001 - asserted below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(f"tenant-{i % TENANTS}",))
        for i in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]


def test_service_concurrent_throughput(benchmark, tmp_path):
    catalog_root = tmp_path / "catalog"
    DatasetCatalog(catalog_root).ensure("geo")
    config = ServiceConfig(
        catalog_root=str(catalog_root),
        snapshots=("geo",),
        default_snapshot="geo",
        batch_window=0.002,
    )
    total = CLIENTS * QUERIES_PER_CLIENT
    with QueryService(config) as service:
        host, port = service.address

        # Cold round warms the engine (index + plans + result cache) and the
        # interpreter (thread stacks, JSON codecs) for both measurement modes.
        _sequential_round(host, port, total)
        _concurrent_round(host, port)

        started = perf_counter()
        for _ in range(ROUNDS):
            _sequential_round(host, port, total)
        sequential_per_round = (perf_counter() - started) / ROUNDS

        benchmark.pedantic(
            _concurrent_round, args=(host, port), rounds=ROUNDS, iterations=1
        )
        concurrent_per_round = benchmark.stats.stats.median

        speedup = sequential_per_round / concurrent_per_round if concurrent_per_round else 1.0
        benchmark.extra_info["sequential_seconds_per_round"] = sequential_per_round
        benchmark.extra_info["concurrent_seconds_per_round"] = concurrent_per_round
        # The gated metric: how much faster the same workload finishes when
        # clients arrive concurrently and share the batching window.
        benchmark.extra_info["speedup"] = speedup

        # Batching really happened: evaluate_many served multi-query batches.
        batches = service.registry.counter("service_batches_total").value
        batched = service.registry.counter("service_batched_queries_total").value
        assert batched >= total and batches >= 1
        assert batched / batches > 1.0, "concurrent bursts never coalesced"
        stats = service.server_stats()
        assert stats["errors"] == 0
        assert service.registry.counter("service_shed_total").value == 0

        print()
        print(
            f"workload: {total} warm queries per round x {ROUNDS} rounds "
            f"({CLIENTS} clients / {TENANTS} tenants concurrent vs. 1 sequential)"
        )
        print(f"sequential: {sequential_per_round * 1e3:8.1f} ms/round")
        print(
            f"concurrent: {concurrent_per_round * 1e3:8.1f} ms/round  ({speedup:.2f}x)"
        )
        print(f"batches: {batches} for {batched} batched queries")

    # Sanity floor, deliberately loose for shared CI runners: concurrency
    # plus batching must never make the same workload slower overall.
    assert speedup >= 1.0
