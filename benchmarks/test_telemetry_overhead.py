"""Telemetry overhead: the disabled fast path vs. full tracing + profiling.

The observability contract is that telemetry costs nothing unless asked for:
with the default (disabled) ``Telemetry`` the engine takes the exact pre-PR
code path, and even with a JSONL trace sink plus per-query profiling the
steady-state warm workload should slow down only modestly.  This benchmark
measures both modes on the same warm workload, asserts result identity, and
records ``extra_info["speedup"] = enabled/disabled`` seconds per round --
the machine-independent overhead factor ``benchmarks/compare.py`` gates
against the committed baseline (a drop means the disabled path picked up
per-call cost, which is exactly the regression this file exists to catch).
"""

from __future__ import annotations

from time import perf_counter

from repro.datasets.synthetic import scale_free_graph
from repro.engine import QueryEngine
from repro.evaluation.workloads import synthetic_queries
from repro.telemetry import Telemetry, TraceContext

NODE_COUNT = 2_000
ALPHABET_SIZE = 12
#: Warm rounds measured per mode (round 0 is cold and excluded).  The warm
#: workload runs in microseconds, so both modes average over many rounds and
#: the disabled side gates on its median to shed GC/scheduler outliers.
ROUNDS = 30
ITERATIONS = 5


def _workload():
    graph = scale_free_graph(NODE_COUNT, alphabet_size=ALPHABET_SIZE, seed=17)
    queries = list(synthetic_queries(graph, alphabet_size=ALPHABET_SIZE).values())
    return graph, queries


def _run(engine, graph, queries):
    return [engine.evaluate(graph, query) for query in queries]


def test_disabled_telemetry_overhead(benchmark, tmp_path):
    graph, queries = _workload()

    disabled = QueryEngine()
    enabled = QueryEngine(
        telemetry=Telemetry(trace_path=tmp_path / "bench-trace.jsonl", profile=True)
    )

    # Cold round warms both engines (index + plans + result cache) and pins
    # the observability contract: both modes compute identical answers.
    assert _run(disabled, graph, queries) == _run(enabled, graph, queries)

    total = ROUNDS * ITERATIONS
    started = perf_counter()
    for _ in range(total):
        _run(enabled, graph, queries)
    enabled_per_round = (perf_counter() - started) / total

    benchmark.pedantic(
        _run, args=(disabled, graph, queries), rounds=ROUNDS, iterations=ITERATIONS
    )
    disabled_per_round = benchmark.stats.stats.median

    overhead = enabled_per_round / disabled_per_round if disabled_per_round else 1.0
    benchmark.extra_info["enabled_seconds_per_round"] = enabled_per_round
    benchmark.extra_info["disabled_seconds_per_round"] = disabled_per_round
    # The gated metric: how much slower full tracing+profiling is than the
    # disabled fast path.  A *drop* vs. the baseline means the disabled path
    # gained overhead -- the regression this benchmark is the gate for.
    benchmark.extra_info["speedup"] = overhead

    # The traced engine really did trace: spans in the ring, records on disk.
    enabled.telemetry.flush()
    trace_lines = (tmp_path / "bench-trace.jsonl").read_text().splitlines()
    assert len(trace_lines) >= (total + 1) * len(queries)
    assert enabled.telemetry.events()

    print()
    print(
        f"workload: {len(queries)} queries x {ROUNDS} warm rounds on "
        f"{graph.node_count()} nodes / {graph.edge_count()} edges"
    )
    print(f"telemetry disabled: {disabled_per_round * 1e6:9.1f} us/round")
    print(f"telemetry enabled:  {enabled_per_round * 1e6:9.1f} us/round  ({overhead:.2f}x)")

    # Sanity floor, deliberately loose for shared CI runners: the disabled
    # path must never be meaningfully slower than full tracing+profiling.
    assert disabled_per_round <= enabled_per_round * 1.25


def test_trace_propagation_overhead(benchmark, tmp_path):
    """Distributed-context stamping vs. the disabled fast path.

    Same warm workload, but the traced engine runs under an attached
    :class:`TraceContext` -- the serving daemon's steady state, where every
    span record additionally carries trace/span/parent/tenant fields.
    ``extra_info["speedup"] = context/disabled`` is the gated ratio: a drop
    below the baseline means the *disabled* path picked up propagation
    cost, which must stay impossible (no context -> no extra fields -> no
    extra work).
    """
    graph, queries = _workload()

    disabled = QueryEngine()
    telemetry = Telemetry(trace_path=tmp_path / "bench-ctx-trace.jsonl")
    traced = QueryEngine(telemetry=telemetry)
    ctx = TraceContext.mint(tenant="bench")

    with telemetry.context(ctx):
        assert _run(disabled, graph, queries) == _run(traced, graph, queries)

        total = ROUNDS * ITERATIONS
        started = perf_counter()
        for _ in range(total):
            _run(traced, graph, queries)
        context_per_round = (perf_counter() - started) / total

    benchmark.pedantic(
        _run, args=(disabled, graph, queries), rounds=ROUNDS, iterations=ITERATIONS
    )
    disabled_per_round = benchmark.stats.stats.median

    overhead = context_per_round / disabled_per_round if disabled_per_round else 1.0
    benchmark.extra_info["context_seconds_per_round"] = context_per_round
    benchmark.extra_info["disabled_seconds_per_round"] = disabled_per_round
    benchmark.extra_info["speedup"] = overhead

    # The context really propagated: every record is stamped with the trace
    # id and the tenant, none with a default.
    telemetry.flush()
    records = telemetry.events()
    assert records
    assert all(r["trace"] == ctx.trace_id for r in records)
    assert all(r["tenant"] == "bench" for r in records)

    print()
    print(f"telemetry disabled:     {disabled_per_round * 1e6:9.1f} us/round")
    print(
        f"tracing + propagation:  {context_per_round * 1e6:9.1f} us/round  "
        f"({overhead:.2f}x)"
    )
    assert disabled_per_round <= context_per_round * 1.25
