"""Kernel-backed interactive session vs. the legacy per-node loop.

The scenario the incremental :class:`~repro.interactive.SessionState` exists
for: a full interactive learning session on the paper's smallest synthetic
size (10k nodes, 3x edges, 20 labels) under the ``kS`` strategy, whose
per-round work -- informativeness verdicts and uncovered-path counts over a
512-candidate pool -- dominated the legacy loop.  The legacy path is the
same session driven with ``incremental=False``: per-candidate
``enumerate_paths`` plus a from-scratch multi-source ``covered_by`` walk per
(candidate, path) pair, and a full re-learn every round.

Two assertions pin the acceptance criteria: the node-labeling transcripts of
the two sessions must be *identical* (same nodes proposed in the same order,
same labels, same learned expressions), and the kernel-backed session must
be at least 2x faster end-to-end.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets.synthetic import scale_free_graph
from repro.engine import QueryEngine
from repro.evaluation.interactive import run_interactive_grid
from repro.evaluation.workloads import synthetic_queries, synthetic_workloads
from repro.interactive import InteractiveSession, QueryOracle, make_strategy

#: The paper's smallest synthetic size (Section 5.1): 10k nodes, 3x edges.
NODE_COUNT = 10_000
#: Interaction budget: deep enough that the negative set grows into the
#: regime where per-candidate coverage walks dominate the legacy loop.
BUDGET = 200
#: Candidate pool per round (the strategies' default).
POOL_SIZE = 512
#: Strategy/sampling seed (fixed: both paths must see identical draws).
SEED = 3


def _workload():
    graph = scale_free_graph(NODE_COUNT, alphabet_size=20, zipf_exponent=1.0, seed=29)
    queries = synthetic_queries(graph, alphabet_size=20)
    _name, goal = sorted(queries.items())[0]
    return graph, goal


def _run_session(graph, goal, *, incremental):
    engine = QueryEngine()
    engine.index_for(graph)  # both paths start with a warm CSR index
    session = InteractiveSession(
        graph,
        QueryOracle(goal, engine=engine),
        make_strategy("kS", seed=SEED, pool_size=POOL_SIZE),
        k_start=2,
        k_max=4,
        max_interactions=BUDGET,
        engine=engine,
        incremental=incremental,
    )
    result = session.run()
    transcript = [
        (interaction.node, interaction.label, interaction.k, interaction.learned_expression)
        for interaction in result.interactions
    ]
    return transcript, result, session


def test_incremental_session_beats_legacy_loop(benchmark):
    graph, goal = _workload()

    started = time.perf_counter()
    legacy_transcript, legacy_result, _ = _run_session(graph, goal, incremental=False)
    legacy_seconds = time.perf_counter() - started

    def run_incremental():
        return _run_session(graph, goal, incremental=True)

    transcript, result, session = benchmark.pedantic(run_incremental, rounds=1, iterations=1)
    incremental_seconds = benchmark.stats.stats.max

    # Acceptance criterion 1: identical node-labeling transcripts -- the
    # batched kernel path is an optimization, not a behavior change.
    assert transcript == legacy_transcript
    assert result.halted_by == legacy_result.halted_by

    speedup = legacy_seconds / incremental_seconds if incremental_seconds else float("inf")
    benchmark.extra_info["node_count"] = graph.node_count()
    benchmark.extra_info["edge_count"] = graph.edge_count()
    benchmark.extra_info["interactions"] = len(transcript)
    benchmark.extra_info["legacy_seconds"] = legacy_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["state_counters"] = dict(session.state.counters)

    print()
    print(
        f"workload: {len(transcript)} interactions (kS, pool {POOL_SIZE}) on "
        f"{graph.node_count()} nodes / {graph.edge_count()} edges"
    )
    print(f"legacy per-node loop:   {legacy_seconds:8.3f}s")
    print(f"kernel-backed session:  {incremental_seconds:8.3f}s  ({speedup:.1f}x)")
    print(f"state counters: {session.state.counters}")

    # Acceptance criterion 2: the kernel-backed session is at least 2x
    # faster end-to-end.  Local runs measure ~3x; the margin is the noise
    # allowance for shared CI runners.
    assert incremental_seconds * 2.0 <= legacy_seconds


@pytest.mark.slow
def test_large_simulation_grid_smoke(benchmark):
    """Nightly smoke: a strategy x seed grid of full sessions on 10k nodes.

    Runs the parallel simulation driver end-to-end at the paper's smallest
    synthetic scale and checks the sessions behave (budgets respected,
    results well-formed).  Excluded from PR CI via the ``slow`` marker.
    """
    workloads = synthetic_workloads(node_counts=(NODE_COUNT,), seed=11)

    def run_grid():
        return run_interactive_grid(
            workloads,
            strategies=("kR", "kS"),
            seeds=(0,),
            max_interactions=60,
            pool_size=POOL_SIZE,
            k_start=2,
            k_max=4,
        )

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    assert len(results) == 2 * len(workloads)
    for row in results:
        assert row.interactions <= 60
        assert 0.0 <= row.final_f1 <= 1.0
        assert row.halted_by in ("goal", "max_interactions", "no_informative_node")
    benchmark.extra_info["rows"] = [
        {
            "workload": row.workload_name,
            "strategy": row.strategy,
            "interactions": row.interactions,
            "final_f1": row.final_f1,
            "halted_by": row.halted_by,
        }
        for row in results
    ]
    print()
    for row in results:
        print(
            f"{row.workload_name:>12} {row.strategy:<3} interactions={row.interactions:4d} "
            f"f1={row.final_f1:.3f} halted_by={row.halted_by}"
        )
