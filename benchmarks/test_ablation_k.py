"""Ablation A2 -- the path-length bound k.

Section 3.3 proves learnability with k = 2n + 1 but Section 5.1 observes
that k between 2 and 4 suffices in practice.  This benchmark sweeps k on a
fixed sample of the synthetic workload and on the paper's worked example,
reporting the F1 score and the learning time per k.
"""

from __future__ import annotations

import random
import time

from repro.datasets import example_graph_g0
from repro.evaluation.metrics import f1_score
from repro.evaluation.static import draw_sample
from repro.learning import Sample, learn_path_query
from repro.queries import PathQuery

K_VALUES = (1, 2, 3, 4)


def _k_sweep(workload, fractions_seed=13):
    rng = random.Random(fractions_seed)
    sample = draw_sample(workload.graph, workload.query, labeled_fraction=0.05, rng=rng)
    measurements = []
    for k in K_VALUES:
        started = time.perf_counter()
        result = learn_path_query(workload.graph, sample, k=k)
        elapsed = time.perf_counter() - started
        score = f1_score(result.best_effort_query, workload.query, workload.graph)
        measurements.append((k, score, elapsed, result.is_null))
    return measurements


def test_ablation_k_on_synthetic_workload(benchmark, syn_workloads_smallest):
    workload = syn_workloads_smallest[1]  # syn2: medium selectivity
    measurements = benchmark.pedantic(_k_sweep, args=(workload,), rounds=1, iterations=1)

    print()
    print(f"k ablation on {workload.name} (5% of nodes labeled):")
    for k, score, elapsed, is_null in measurements:
        print(f"  k={k}: F1 {score:.3f}  time {elapsed:.2f}s  abstained={is_null}")

    by_k = {k: score for k, score, _, _ in measurements}
    # Section 5.1's observation: small k already captures the workload; going
    # beyond k=2 does not dramatically change the score.
    assert by_k[2] >= by_k[1] - 0.05
    assert abs(by_k[4] - by_k[2]) < 0.35


def test_ablation_k_on_worked_example(benchmark):
    # On G0, k=2 is too small to find v1's SCP (abc) and the learner abstains;
    # k=3 (and anything larger) recovers the goal -- the dynamics that
    # motivate the dynamic-k procedure.
    graph = example_graph_g0()
    sample = Sample({"v1", "v3"}, {"v2", "v7"})
    goal = PathQuery.parse("(a.b)*.c", graph.alphabet)

    def sweep():
        return {k: learn_path_query(graph, sample, k=k) for k in K_VALUES}

    results = benchmark(sweep)

    print()
    for k, result in results.items():
        expression = None if result.is_null else result.query.expression
        print(f"  k={k}: abstained={result.is_null}  learned={expression}")

    assert results[2].is_null
    assert not results[3].is_null
    assert results[3].query.equivalent_to(goal)
    assert not results[4].is_null
