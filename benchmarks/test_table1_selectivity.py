"""Experiment E1 -- Table 1: the biological queries and their selectivities.

The paper reports six real-life queries on the AliBaba graph with
selectivities from 0.03% to 22%.  This benchmark evaluates the reproduced
queries on the AliBaba-like graph, prints the reproduced table next to the
paper's numbers, and times full query evaluation (the paper's substrate for
selectivity measurement).
"""

from __future__ import annotations

from repro.evaluation.reporting import render_table1
from repro.queries import selectivity_report

PAPER_SELECTIVITY_PERCENT = {
    "bio1": 0.03,
    "bio2": 0.2,
    "bio3": 3.0,
    "bio4": 11.0,
    "bio5": 12.0,
    "bio6": 22.0,
}


def test_table1_selectivities(benchmark, bio_workloads):
    graph = bio_workloads[0].graph
    queries = {workload.name: workload.query for workload in bio_workloads}

    def evaluate_all():
        return selectivity_report(queries, graph)

    report = benchmark(evaluate_all)

    print()
    print(render_table1(report))
    print()
    print("paper vs reproduced selectivity (percent of graph nodes):")
    for name in sorted(queries):
        reproduced = float(report[name]["selectivity_percent"])
        print(f"  {name}: paper {PAPER_SELECTIVITY_PERCENT[name]:6.2f}%   "
              f"reproduced {reproduced:6.2f}%")

    # Shape checks: selectivities span three orders of magnitude and keep the
    # paper's ordering between the most and least selective queries.
    assert float(report["bio1"]["selectivity"]) < float(report["bio3"]["selectivity"])
    assert float(report["bio3"]["selectivity"]) < float(report["bio6"]["selectivity"])
    assert float(report["bio1"]["selectivity_percent"]) < 1.0
    assert float(report["bio6"]["selectivity_percent"]) > 10.0
