"""Ablation A1 -- the generalization step (Section 5.2's "about 1% of F1").

Runs the static scenario twice on the same samples: once with the full
learner (SCP selection + state-merging generalization) and once with the
disjunction-of-SCPs baseline, and compares the F1 scores.  The paper notes
the aggregate effect is small on its workloads, but the generalization step
is what makes starred queries (e.g. the running example) learnable at all --
both facts are checked here.
"""

from __future__ import annotations

from repro.datasets import example_graph_g0
from repro.evaluation.static import run_static_experiment
from repro.learning import Sample, learn_path_query, learn_scp_disjunction
from repro.queries import PathQuery


def _paired_sweep(workloads, fractions):
    pairs = []
    for workload in workloads:
        with_generalization = run_static_experiment(
            workload, labeled_fractions=fractions, seed=5, k_max=3
        )
        without_generalization = run_static_experiment(
            workload,
            labeled_fractions=fractions,
            seed=5,
            k_max=3,
            use_generalization=False,
        )
        pairs.append((workload, with_generalization, without_generalization))
    return pairs


def test_ablation_generalization(benchmark, bench_scale, bio_workload_subset):
    fractions = bench_scale.static_fractions[:2]
    pairs = benchmark.pedantic(
        _paired_sweep, args=(bio_workload_subset, fractions), rounds=1, iterations=1
    )

    print()
    print("Ablation: full learner vs disjunction-of-SCPs baseline (F1)")
    for workload, full, baseline in pairs:
        for full_point, baseline_point in zip(full.points, baseline.points):
            delta = full_point.f1 - baseline_point.f1
            print(
                f"  {workload.name} @ {100 * full_point.labeled_fraction:.1f}% labels: "
                f"full {full_point.f1:.3f}  baseline {baseline_point.f1:.3f}  "
                f"delta {delta:+.3f}"
            )

    # Aggregate effect is modest (the paper reports ~1%); allow generous slack
    # but require the baseline not to be catastrophically different.
    for _, full, baseline in pairs:
        for full_point, baseline_point in zip(full.points, baseline.points):
            assert abs(full_point.f1 - baseline_point.f1) < 0.6


def test_generalization_is_required_for_starred_queries(benchmark):
    # On the worked example, only the full learner recovers (a.b)*.c.
    graph = example_graph_g0()
    sample = Sample({"v1", "v3"}, {"v2", "v7"})
    goal = PathQuery.parse("(a.b)*.c", graph.alphabet)

    full = benchmark(lambda: learn_path_query(graph, sample, k=3))
    baseline = learn_scp_disjunction(graph, sample, k=3)

    print()
    print("worked example: full learner  ->", full.query.expression)
    print("worked example: SCP baseline  ->", baseline.query.expression)
    assert full.query.equivalent_to(goal)
    assert not baseline.query.equivalent_to(goal)
