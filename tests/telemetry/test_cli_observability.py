"""The observability CLI: ``repro stats``, ``repro trace``, ``--trace/--profile``."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main


def run_cli(capsys, *argv: str) -> tuple[int, dict]:
    code = main(list(argv))
    envelope = json.loads(capsys.readouterr().out)
    return code, envelope


class TestStatsCommand:
    def test_stats_envelope_reports_cache_economics(self, capsys):
        code, envelope = run_cli(
            capsys, "stats", "--figure", "geo", "--expr", "tram*", "--repeat", "5"
        )
        assert code == 0
        assert envelope["ok"] is True
        assert envelope["command"] == "stats"
        report = envelope["result"]
        assert report["type"] == "StatsReport"
        stats = report["stats"]
        assert stats["evaluations"] == 1  # 4 warm repeats hit the result cache
        assert stats["result_cache_hits"] == 4
        assert stats["result_cache_hit_rate"] == pytest.approx(0.8)
        assert stats["graph_nodes"] == 10
        metrics = report["metrics"]
        assert metrics["engine_evaluations_total"] == 1
        assert metrics["engine_result_cache_hits"] == 4
        # The workspace envelope carries engine_stats like every other command.
        assert envelope["engine_stats"]["evaluations"] == 1

    def test_stats_prometheus_exposition(self, capsys):
        code, envelope = run_cli(
            capsys, "stats", "--figure", "geo", "--expr", "tram", "--prometheus"
        )
        assert code == 0
        text = envelope["result"]["prometheus"]
        assert "# TYPE engine_evaluations_total counter" in text
        assert "engine_evaluations_total 1" in text

    def test_stats_rejects_bad_repeat(self, capsys):
        code, envelope = run_cli(
            capsys, "stats", "--figure", "geo", "--expr", "tram", "--repeat", "0"
        )
        assert code == 1
        assert envelope["error"]["type"] == "ConfigError"


class TestTraceCommand:
    def write_trace(self, capsys, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        code, envelope = run_cli(
            capsys,
            "query",
            "--figure",
            "geo",
            "--expr",
            "(tram+bus)*.cinema",
            "--trace",
            str(trace_file),
            "--profile",
        )
        assert code == 0
        return trace_file, envelope

    def test_query_trace_profile_flags(self, capsys, tmp_path):
        trace_file, envelope = self.write_trace(capsys, tmp_path)
        assert trace_file.exists()
        profile = envelope["result"]["profile"]
        assert profile["cache"] == "miss"
        assert profile["depth_sizes"]

    def test_trace_summary_envelope(self, capsys, tmp_path):
        trace_file, _ = self.write_trace(capsys, tmp_path)
        code, envelope = run_cli(capsys, "trace", "--file", str(trace_file))
        assert code == 0
        assert envelope["command"] == "trace"
        report = envelope["result"]
        assert report["type"] == "TraceReport"
        summary = report["summary"]
        assert summary["events"] >= 2
        assert "workspace.query" in summary["spans"]
        assert "engine.evaluate" in summary["spans"]
        assert summary["cache"]["miss"] == 1

    def test_trace_tail_envelope(self, capsys, tmp_path):
        trace_file, _ = self.write_trace(capsys, tmp_path)
        code, envelope = run_cli(
            capsys, "trace", "--file", str(trace_file), "--tail", "1"
        )
        assert code == 0
        records = envelope["result"]["records"]
        assert len(records) == 1
        assert records[0]["name"] == "workspace.query"

    def test_trace_missing_file_fails_cleanly(self, capsys, tmp_path):
        code, envelope = run_cli(
            capsys, "trace", "--file", str(tmp_path / "nope.jsonl")
        )
        assert code == 1
        assert envelope["ok"] is False

    def test_trace_id_reconstructs_a_tree_across_files(self, capsys, tmp_path):
        # Two trace files of one trace, as a client/server pair would
        # produce: 'trace --id' joins them into one tree.
        first = tmp_path / "client.jsonl"
        second = tmp_path / "server.jsonl"
        first.write_text(
            json.dumps(
                {"name": "client.request", "span_id": 1, "parent_id": 0,
                 "depth": 0, "start": 0.0, "seconds": 1.0, "attrs": {},
                 "trace": "t-42", "span": "c1:1", "tenant": "acme"}
            )
            + "\n"
        )
        second.write_text(
            json.dumps(
                {"name": "server.request", "span_id": 1, "parent_id": 0,
                 "depth": 0, "start": 0.5, "seconds": 0.4, "attrs": {},
                 "trace": "t-42", "span": "s1:1", "parent": "c1:1"}
            )
            + "\n"
        )
        code, envelope = run_cli(
            capsys,
            "trace",
            "--file",
            str(first),
            "--file",
            str(second),
            "--id",
            "t-42",
        )
        assert code == 0
        tree = envelope["result"]["tree"]
        assert tree["trace_id"] == "t-42"
        assert tree["spans"] == 2
        assert tree["tenants"] == ["acme"]
        (root,) = tree["roots"]
        assert root["name"] == "client.request"
        assert [child["name"] for child in root["children"]] == ["server.request"]

    def test_trace_summary_merges_multiple_files(self, capsys, tmp_path):
        first_file, _ = self.write_trace(capsys, tmp_path)
        second_file = tmp_path / "second.jsonl"
        second_file.write_text(first_file.read_text())
        code, envelope = run_cli(
            capsys, "trace", "--file", str(first_file), "--file", str(second_file)
        )
        assert code == 0
        report = envelope["result"]
        assert report["files"] == [str(first_file), str(second_file)]
        single = run_cli(capsys, "trace", "--file", str(first_file))[1]
        assert (
            report["summary"]["events"]
            == 2 * single["result"]["summary"]["events"]
        )

    def test_trace_tail_rejects_multiple_files(self, capsys, tmp_path):
        trace_file, _ = self.write_trace(capsys, tmp_path)
        code, envelope = run_cli(
            capsys,
            "trace",
            "--file",
            str(trace_file),
            "--file",
            str(trace_file),
            "--tail",
            "1",
        )
        assert code == 1
        assert envelope["error"]["type"] == "ConfigError"

    def test_stats_summarizes_a_trace_file(self, capsys, tmp_path):
        trace_file, _ = self.write_trace(capsys, tmp_path)
        code, envelope = run_cli(
            capsys,
            "stats",
            "--figure",
            "geo",
            "--trace-file",
            str(trace_file),
        )
        assert code == 0
        trace_section = envelope["result"]["trace"]
        assert trace_section["cache"]["miss"] == 1
        assert trace_section["plan_cache"]["miss"] == 1


class TestSlowCommand:
    def write_slow_log(self, tmp_path):
        slow_file = tmp_path / "slow.jsonl"
        entries = [
            {"ts": 1.0, "tenant": "acme", "snapshot": "geo", "expr": "a.b",
             "semantics": "path", "elapsed": 1.5, "threshold": 1.0,
             "trace": "t-1"},
            {"ts": 2.0, "tenant": "rival", "snapshot": "geo", "expr": "a.b",
             "semantics": "path", "elapsed": 2.5, "threshold": 1.0,
             "trace": "t-2"},
            {"ts": 3.0, "tenant": "acme", "snapshot": "g0", "expr": "c*",
             "semantics": "path", "elapsed": 1.1, "threshold": 1.0,
             "trace": None},
        ]
        slow_file.write_text(
            "".join(json.dumps(entry) + "\n" for entry in entries)
        )
        return slow_file

    def test_slow_summary_envelope(self, capsys, tmp_path):
        slow_file = self.write_slow_log(tmp_path)
        code, envelope = run_cli(capsys, "slow", "--file", str(slow_file))
        assert code == 0
        assert envelope["command"] == "slow"
        report = envelope["result"]
        assert report["type"] == "SlowQueryReport"
        summary = report["summary"]
        assert summary["entries"] == 3
        assert summary["max_elapsed"] == pytest.approx(2.5)
        assert summary["slowest"]["tenant"] == "rival"
        assert summary["slowest"]["trace"] == "t-2"
        assert summary["tenants"] == {"acme": 2, "rival": 1}
        assert summary["top_expressions"][0] == {"expr": "a.b", "count": 2}

    def test_slow_tail_envelope(self, capsys, tmp_path):
        slow_file = self.write_slow_log(tmp_path)
        code, envelope = run_cli(
            capsys, "slow", "--file", str(slow_file), "--tail", "2"
        )
        assert code == 0
        entries = envelope["result"]["entries"]
        assert [entry["expr"] for entry in entries] == ["a.b", "c*"]

    def test_slow_missing_file_fails_cleanly(self, capsys, tmp_path):
        code, envelope = run_cli(capsys, "slow", "--file", str(tmp_path / "no.jsonl"))
        assert code == 1
        assert envelope["ok"] is False

    def test_stats_tenants_requires_remote(self, capsys):
        code, envelope = run_cli(capsys, "stats", "--figure", "geo", "--tenants")
        assert code == 1
        assert envelope["error"]["type"] == "ConfigError"


@pytest.mark.slow
class TestLargeInteractiveTrace:
    """Acceptance: a 10k-node interactive run emits a JSONL trace that
    ``repro trace`` summarizes and ``repro stats`` reports economics from."""

    def test_end_to_end(self, capsys, tmp_path):
        from repro.datasets.synthetic import scale_free_graph
        from repro.graphdb.io import save_graph

        graph = scale_free_graph(10_000, alphabet_size=6, seed=11)
        assert graph.node_count() == 10_000
        graph_file = tmp_path / "big.tsv"
        save_graph(graph, graph_file)
        labels = sorted(graph.labels())
        goal = f"{labels[0]}.{labels[1]}*"
        trace_file = tmp_path / "interactive.jsonl"

        code, envelope = run_cli(
            capsys,
            "interactive",
            "--graph",
            str(graph_file),
            "--goal",
            goal,
            "--max-interactions",
            "8",
            "--trace",
            str(trace_file),
        )
        assert code == 0
        assert trace_file.exists()

        code, envelope = run_cli(capsys, "trace", "--file", str(trace_file))
        assert code == 0
        summary = envelope["result"]["summary"]
        assert "interactive.session" in summary["spans"]
        assert "interactive.round" in summary["spans"]
        assert summary["spans"]["interactive.round"]["count"] >= 1

        code, envelope = run_cli(
            capsys,
            "stats",
            "--graph",
            str(graph_file),
            "--trace-file",
            str(trace_file),
        )
        assert code == 0
        trace_section = envelope["result"]["trace"]
        assert trace_section["cache"]["hit"] + trace_section["cache"]["miss"] >= 1
        assert 0.0 <= trace_section["cache"]["hit_rate"] <= 1.0
