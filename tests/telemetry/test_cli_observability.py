"""The observability CLI: ``repro stats``, ``repro trace``, ``--trace/--profile``."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main


def run_cli(capsys, *argv: str) -> tuple[int, dict]:
    code = main(list(argv))
    envelope = json.loads(capsys.readouterr().out)
    return code, envelope


class TestStatsCommand:
    def test_stats_envelope_reports_cache_economics(self, capsys):
        code, envelope = run_cli(
            capsys, "stats", "--figure", "geo", "--expr", "tram*", "--repeat", "5"
        )
        assert code == 0
        assert envelope["ok"] is True
        assert envelope["command"] == "stats"
        report = envelope["result"]
        assert report["type"] == "StatsReport"
        stats = report["stats"]
        assert stats["evaluations"] == 1  # 4 warm repeats hit the result cache
        assert stats["result_cache_hits"] == 4
        assert stats["result_cache_hit_rate"] == pytest.approx(0.8)
        assert stats["graph_nodes"] == 10
        metrics = report["metrics"]
        assert metrics["engine_evaluations_total"] == 1
        assert metrics["engine_result_cache_hits"] == 4
        # The workspace envelope carries engine_stats like every other command.
        assert envelope["engine_stats"]["evaluations"] == 1

    def test_stats_prometheus_exposition(self, capsys):
        code, envelope = run_cli(
            capsys, "stats", "--figure", "geo", "--expr", "tram", "--prometheus"
        )
        assert code == 0
        text = envelope["result"]["prometheus"]
        assert "# TYPE engine_evaluations_total counter" in text
        assert "engine_evaluations_total 1" in text

    def test_stats_rejects_bad_repeat(self, capsys):
        code, envelope = run_cli(
            capsys, "stats", "--figure", "geo", "--expr", "tram", "--repeat", "0"
        )
        assert code == 1
        assert envelope["error"]["type"] == "ConfigError"


class TestTraceCommand:
    def write_trace(self, capsys, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        code, envelope = run_cli(
            capsys,
            "query",
            "--figure",
            "geo",
            "--expr",
            "(tram+bus)*.cinema",
            "--trace",
            str(trace_file),
            "--profile",
        )
        assert code == 0
        return trace_file, envelope

    def test_query_trace_profile_flags(self, capsys, tmp_path):
        trace_file, envelope = self.write_trace(capsys, tmp_path)
        assert trace_file.exists()
        profile = envelope["result"]["profile"]
        assert profile["cache"] == "miss"
        assert profile["depth_sizes"]

    def test_trace_summary_envelope(self, capsys, tmp_path):
        trace_file, _ = self.write_trace(capsys, tmp_path)
        code, envelope = run_cli(capsys, "trace", "--file", str(trace_file))
        assert code == 0
        assert envelope["command"] == "trace"
        report = envelope["result"]
        assert report["type"] == "TraceReport"
        summary = report["summary"]
        assert summary["events"] >= 2
        assert "workspace.query" in summary["spans"]
        assert "engine.evaluate" in summary["spans"]
        assert summary["cache"]["miss"] == 1

    def test_trace_tail_envelope(self, capsys, tmp_path):
        trace_file, _ = self.write_trace(capsys, tmp_path)
        code, envelope = run_cli(
            capsys, "trace", "--file", str(trace_file), "--tail", "1"
        )
        assert code == 0
        records = envelope["result"]["records"]
        assert len(records) == 1
        assert records[0]["name"] == "workspace.query"

    def test_trace_missing_file_fails_cleanly(self, capsys, tmp_path):
        code, envelope = run_cli(
            capsys, "trace", "--file", str(tmp_path / "nope.jsonl")
        )
        assert code == 1
        assert envelope["ok"] is False

    def test_stats_summarizes_a_trace_file(self, capsys, tmp_path):
        trace_file, _ = self.write_trace(capsys, tmp_path)
        code, envelope = run_cli(
            capsys,
            "stats",
            "--figure",
            "geo",
            "--trace-file",
            str(trace_file),
        )
        assert code == 0
        trace_section = envelope["result"]["trace"]
        assert trace_section["cache"]["miss"] == 1
        assert trace_section["plan_cache"]["miss"] == 1


@pytest.mark.slow
class TestLargeInteractiveTrace:
    """Acceptance: a 10k-node interactive run emits a JSONL trace that
    ``repro trace`` summarizes and ``repro stats`` reports economics from."""

    def test_end_to_end(self, capsys, tmp_path):
        from repro.datasets.synthetic import scale_free_graph
        from repro.graphdb.io import save_graph

        graph = scale_free_graph(10_000, alphabet_size=6, seed=11)
        assert graph.node_count() == 10_000
        graph_file = tmp_path / "big.tsv"
        save_graph(graph, graph_file)
        labels = sorted(graph.labels())
        goal = f"{labels[0]}.{labels[1]}*"
        trace_file = tmp_path / "interactive.jsonl"

        code, envelope = run_cli(
            capsys,
            "interactive",
            "--graph",
            str(graph_file),
            "--goal",
            goal,
            "--max-interactions",
            "8",
            "--trace",
            str(trace_file),
        )
        assert code == 0
        assert trace_file.exists()

        code, envelope = run_cli(capsys, "trace", "--file", str(trace_file))
        assert code == 0
        summary = envelope["result"]["summary"]
        assert "interactive.session" in summary["spans"]
        assert "interactive.round" in summary["spans"]
        assert summary["spans"]["interactive.round"]["count"] >= 1

        code, envelope = run_cli(
            capsys,
            "stats",
            "--graph",
            str(graph_file),
            "--trace-file",
            str(trace_file),
        )
        assert code == 0
        trace_section = envelope["result"]["trace"]
        assert trace_section["cache"]["hit"] + trace_section["cache"]["miss"] >= 1
        assert 0.0 <= trace_section["cache"]["hit_rate"] <= 1.0
