"""Static scan: the hot layers must never read the wall clock.

Span durations, profiles and ``Result.elapsed`` all promise monotonic
``time.perf_counter`` timing; a stray ``time.time()`` in the engine or
automata layers would silently mix in a clock that NTP or DST can move
backwards.  CI enforces the same rule with a grep step; this test keeps the
guarantee inside the tier-1 suite.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent
BANNED_LAYERS = ("engine", "automata")
WALL_CLOCK = re.compile(r"\btime\.time\(")


def test_engine_and_automata_layers_use_no_wall_clock():
    offenders = []
    for layer in BANNED_LAYERS:
        for source in sorted((SRC_ROOT / layer).rglob("*.py")):
            for lineno, line in enumerate(source.read_text().splitlines(), start=1):
                if WALL_CLOCK.search(line):
                    offenders.append(f"{source}:{lineno}: {line.strip()}")
    assert not offenders, (
        "wall-clock timing in a hot layer (use time.perf_counter):\n"
        + "\n".join(offenders)
    )


def test_telemetry_layer_uses_no_wall_clock():
    telemetry_root = SRC_ROOT / "telemetry"
    offenders = [
        str(source)
        for source in sorted(telemetry_root.rglob("*.py"))
        if WALL_CLOCK.search(source.read_text())
    ]
    assert not offenders
