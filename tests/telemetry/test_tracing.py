"""Structured tracing: span nesting/ordering, the JSONL sink, rotation."""

from __future__ import annotations

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import NOOP_SPAN, Telemetry
from repro.telemetry.export import read_trace, summarize_trace, tail_trace
from repro.telemetry.tracing import TraceSink, Tracer


class TestSpanNesting:
    def test_nested_spans_record_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner"):
                    pass
        records = list(tracer.events)
        assert [r["name"] for r in records] == ["inner", "middle", "outer"]
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent_id"] == 0
        assert by_name["outer"]["depth"] == 0
        assert by_name["middle"]["parent_id"] == outer.span_id
        assert by_name["middle"]["depth"] == 1
        assert by_name["inner"]["parent_id"] == middle.span_id
        assert by_name["inner"]["depth"] == 2

    def test_span_ids_are_unique_and_increasing(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [r["span_id"] for r in tracer.events]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_children_finish_before_parents_and_nest_in_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = list(tracer.events)
        assert inner["start"] >= outer["start"]
        assert inner["start"] + inner["seconds"] <= outer["start"] + outer["seconds"]
        assert outer["seconds"] >= inner["seconds"] >= 0

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r["name"]: r for r in tracer.events}
        assert by_name["a"]["parent_id"] == parent.span_id
        assert by_name["b"]["parent_id"] == parent.span_id

    def test_attributes_and_exception_stamp(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("work", phase="load") as span:
                span.set(items=3)
                raise ValueError("boom")
        (record,) = list(tracer.events)
        assert record["attrs"] == {"phase": "load", "items": 3, "error": "ValueError"}

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(buffer=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert [r["name"] for r in tracer.events] == ["s6", "s7", "s8", "s9"]


class TestTelemetryFacade:
    def test_disabled_returns_the_shared_noop_span(self):
        telemetry = Telemetry()
        assert telemetry.active is False
        assert telemetry.span("anything", a=1) is NOOP_SPAN
        with telemetry.span("anything") as span:
            span.set(b=2)  # must be a harmless no-op
        assert telemetry.events() == []

    def test_profile_only_mode_is_active_but_does_not_trace(self):
        telemetry = Telemetry(profile=True)
        assert telemetry.active is True
        assert telemetry.span("x") is NOOP_SPAN

    def test_enabled_without_sink_buffers_events(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("only.in.memory"):
            pass
        assert [r["name"] for r in telemetry.events()] == ["only.in.memory"]


class TestJsonlRoundTrip:
    def test_spans_round_trip_through_the_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        with telemetry.span("outer", kind="test"):
            with telemetry.span("inner"):
                pass
        telemetry.close()
        records = list(read_trace(path))
        assert records == telemetry.events()
        # And the raw file is one JSON object per line.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_tail_returns_the_last_n(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        for i in range(6):
            with telemetry.span(f"s{i}"):
                pass
        telemetry.close()
        assert [r["name"] for r in tail_trace(path, 2)] == ["s4", "s5"]

    def test_blank_lines_skipped_and_garbage_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok"}\n\n')
        assert [r["name"] for r in read_trace(path)] == ["ok"]
        path.write_text('{"name": "ok"}\nnot json\n')
        with pytest.raises(TelemetryError, match="trace.jsonl:2"):
            list(read_trace(path))

    def test_summarize_aggregates_spans_and_cache_outcomes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        with telemetry.span("engine.evaluate", cache="miss", plan_cache="miss"):
            pass
        with telemetry.span("engine.evaluate", cache="hit", plan_cache="hit"):
            pass
        with telemetry.span("engine.evaluate", cache="hit", plan_cache="hit"):
            pass
        telemetry.close()
        summary = summarize_trace(read_trace(path))
        assert summary["events"] == 3
        assert summary["spans"]["engine.evaluate"]["count"] == 3
        assert summary["cache"] == {
            "hit": 2,
            "miss": 1,
            "ephemeral": 0,
            "hit_rate": pytest.approx(2 / 3),
        }
        assert summary["plan_cache"]["hit"] == 2


class TestRotation:
    def test_sink_rotates_and_keeps_bounded_history(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(path, max_bytes=2048, keep=2)
        record = {"name": "x", "attrs": {"pad": "y" * 64}}
        for _ in range(200):
            sink.write(record)
        sink.close()
        assert path.exists()
        assert (tmp_path / "trace.jsonl.1").exists()
        assert (tmp_path / "trace.jsonl.2").exists()
        assert not (tmp_path / "trace.jsonl.3").exists()
        # Every surviving file stays within one record of the threshold.
        for file in (path, tmp_path / "trace.jsonl.1", tmp_path / "trace.jsonl.2"):
            assert file.stat().st_size <= 2048 + 256
            for line in file.read_text().splitlines():
                assert json.loads(line)["name"] == "x"

    def test_sink_parameter_validation(self, tmp_path):
        with pytest.raises(TelemetryError, match="positive"):
            TraceSink(tmp_path / "t.jsonl", max_bytes=0)
        with pytest.raises(TelemetryError, match="at least one"):
            TraceSink(tmp_path / "t.jsonl", keep=0)

    def test_close_is_idempotent_and_later_spans_still_buffer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        with telemetry.span("before"):
            pass
        telemetry.close()
        telemetry.close()
        with telemetry.span("after"):
            pass
        assert [r["name"] for r in telemetry.events()] == ["before", "after"]
        assert [r["name"] for r in read_trace(path)] == ["before"]
