"""Structured tracing: span nesting/ordering, the JSONL sink, rotation,
thread isolation, and distributed trace contexts."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import NOOP_SPAN, Telemetry, build_trace_tree, summarize_slow
from repro.telemetry.export import read_trace, summarize_trace, tail_trace
from repro.telemetry.tracing import TraceContext, TraceSink, Tracer


class TestSpanNesting:
    def test_nested_spans_record_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner"):
                    pass
        records = list(tracer.events)
        assert [r["name"] for r in records] == ["inner", "middle", "outer"]
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent_id"] == 0
        assert by_name["outer"]["depth"] == 0
        assert by_name["middle"]["parent_id"] == outer.span_id
        assert by_name["middle"]["depth"] == 1
        assert by_name["inner"]["parent_id"] == middle.span_id
        assert by_name["inner"]["depth"] == 2

    def test_span_ids_are_unique_and_increasing(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [r["span_id"] for r in tracer.events]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_children_finish_before_parents_and_nest_in_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = list(tracer.events)
        assert inner["start"] >= outer["start"]
        assert inner["start"] + inner["seconds"] <= outer["start"] + outer["seconds"]
        assert outer["seconds"] >= inner["seconds"] >= 0

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r["name"]: r for r in tracer.events}
        assert by_name["a"]["parent_id"] == parent.span_id
        assert by_name["b"]["parent_id"] == parent.span_id

    def test_attributes_and_exception_stamp(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("work", phase="load") as span:
                span.set(items=3)
                raise ValueError("boom")
        (record,) = list(tracer.events)
        assert record["attrs"] == {"phase": "load", "items": 3, "error": "ValueError"}

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(buffer=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert [r["name"] for r in tracer.events] == ["s6", "s7", "s8", "s9"]


class TestThreadIsolation:
    def test_concurrent_threads_get_disjoint_parentage(self):
        """Two threads sharing one tracer must never parent onto each other.

        Regression for the shared-stack bug: with one global ``_stack``, a
        span opened on thread B while thread A's span was open recorded
        A's span as its parent.  The stack is thread-local now, so every
        thread's spans form an independent root-plus-child chain.
        """
        tracer = Tracer()
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def work(label: str) -> None:
            try:
                with tracer.span(f"outer.{label}"):
                    barrier.wait(timeout=5)  # both outer spans are open now
                    with tracer.span(f"inner.{label}"):
                        pass
                    barrier.wait(timeout=5)  # hold outer open past B's inner
            except BaseException as error:  # pragma: no cover - debugging aid
                errors.append(error)

        threads = [threading.Thread(target=work, args=(label,)) for label in "ab"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        by_name = {r["name"]: r for r in tracer.events}
        assert len(by_name) == 4
        for label in "ab":
            outer, inner = by_name[f"outer.{label}"], by_name[f"inner.{label}"]
            assert outer["parent_id"] == 0 and outer["depth"] == 0
            assert inner["parent_id"] == outer["span_id"] and inner["depth"] == 1

    def test_span_ids_stay_unique_across_threads(self):
        tracer = Tracer()

        def work() -> None:
            for _ in range(50):
                with tracer.span("s"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        ids = [r["span_id"] for r in tracer.events]
        assert len(ids) == 200
        assert len(set(ids)) == 200


class TestTraceContext:
    def test_mint_and_child_and_wire_round_trip(self):
        ctx = TraceContext.mint(tenant="acme")
        assert len(ctx.trace_id) == 32
        assert ctx.parent_span is None
        child = ctx.child("abcd1234:7")
        assert child.trace_id == ctx.trace_id
        assert child.parent_span == "abcd1234:7"
        assert child.tenant == "acme"
        assert TraceContext.from_dict(child.to_dict()) == child

    def test_to_dict_omits_absent_fields(self):
        assert TraceContext("t1").to_dict() == {"trace_id": "t1"}

    def test_from_dict_rejects_malformed_payloads(self):
        with pytest.raises(TelemetryError, match="must be an object"):
            TraceContext.from_dict(["t1"])
        with pytest.raises(TelemetryError, match="trace_id"):
            TraceContext.from_dict({"trace_id": ""})
        with pytest.raises(TelemetryError, match="parent_span"):
            TraceContext.from_dict({"trace_id": "t1", "parent_span": 7})
        with pytest.raises(TelemetryError, match="tenant"):
            TraceContext.from_dict({"trace_id": "t1", "tenant": 42})

    def test_plain_spans_carry_no_distributed_fields(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        (record,) = list(tracer.events)
        assert set(record) == {
            "name", "span_id", "parent_id", "depth", "start", "seconds", "attrs",
        }

    def test_attached_context_stamps_records(self):
        tracer = Tracer()
        ctx = TraceContext("t1", parent_span="remote:3", tenant="acme")
        with tracer.context(ctx):
            with tracer.span("outer") as outer:
                with tracer.span("inner"):
                    pass
        inner, outer_record = list(tracer.events)
        assert outer_record["trace"] == inner["trace"] == "t1"
        assert outer_record["tenant"] == inner["tenant"] == "acme"
        assert outer_record["span"] == f"{tracer.origin}:{outer.span_id}"
        # The root span parents onto the remote caller; the nested span
        # parents onto its local parent's ref.
        assert outer_record["parent"] == "remote:3"
        assert inner["parent"] == outer_record["span"]

    def test_context_detaches_and_restores(self):
        tracer = Tracer()
        outer_ctx = TraceContext("t-outer")
        with tracer.context(outer_ctx):
            with tracer.context(None):
                with tracer.span("untraced"):
                    pass
            assert tracer.current_context() is outer_ctx
        assert tracer.current_context() is None
        (record,) = list(tracer.events)
        assert "trace" not in record

    def test_current_ref_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current_ref() is None
        with tracer.span("open") as span:
            assert tracer.current_ref() == tracer.span_ref(span)
        assert tracer.current_ref() is None

    def test_ingest_adopts_foreign_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(TraceSink(path))
        foreign = {"name": "shard.evaluate_all", "trace": "t1", "span": "w1:1"}
        tracer.ingest(foreign)
        tracer.flush()
        assert list(tracer.events) == [foreign]
        assert [r["name"] for r in read_trace(path)] == ["shard.evaluate_all"]


class TestBuildTraceTree:
    def _record(self, name, span, parent=None, trace="t1", start=0.0, **extra):
        record = {
            "name": name, "span_id": 1, "parent_id": 0, "depth": 0,
            "start": start, "seconds": 0.001, "attrs": {},
            "trace": trace, "span": span,
        }
        if parent is not None:
            record["parent"] = parent
        record.update(extra)
        return record

    def test_links_cross_process_spans_into_one_tree(self):
        records = [
            # Arrival order is close-order (innermost first), spread over
            # three origins as client/server/worker files would interleave.
            self._record("shard.work", "w1:1", parent="s1:2", start=0.0),
            self._record("engine.evaluate", "s1:2", parent="s1:1", start=0.3),
            self._record("server.request", "s1:1", parent="c1:1", start=0.2),
            self._record("client.request", "c1:1", start=0.1, tenant="acme"),
            self._record("other", "x1:1", trace="t2"),
        ]
        tree = build_trace_tree(records, "t1")
        assert tree["trace_id"] == "t1"
        assert tree["spans"] == 4
        assert tree["tenants"] == ["acme"]
        (root,) = tree["roots"]
        chain = []
        node = root
        while True:
            chain.append(node["name"])
            if not node["children"]:
                break
            (node,) = node["children"]
        assert chain == [
            "client.request", "server.request", "engine.evaluate", "shard.work",
        ]

    def test_orphans_become_roots(self):
        records = [self._record("lonely", "s1:5", parent="gone:1")]
        tree = build_trace_tree(records, "t1")
        assert [n["name"] for n in tree["roots"]] == ["lonely"]

    def test_empty_trace_id_rejected(self):
        with pytest.raises(TelemetryError, match="non-empty"):
            build_trace_tree([], "")


class TestSummarizeSlow:
    def test_aggregates_entries(self):
        records = [
            {"expr": "a.b", "tenant": "t1", "snapshot": "g", "elapsed": 0.5},
            {"expr": "a.b", "tenant": "t2", "snapshot": "g", "elapsed": 1.5,
             "trace": "abc"},
            {"expr": "c*", "tenant": "t1", "snapshot": "h", "elapsed": 1.0},
        ]
        summary = summarize_slow(records)
        assert summary["entries"] == 3
        assert summary["mean_elapsed"] == pytest.approx(1.0)
        assert summary["max_elapsed"] == pytest.approx(1.5)
        assert summary["slowest"]["expr"] == "a.b"
        assert summary["slowest"]["trace"] == "abc"
        assert summary["tenants"] == {"t1": 2, "t2": 1}
        assert summary["snapshots"] == {"g": 2, "h": 1}
        assert summary["top_expressions"][0] == {"expr": "a.b", "count": 2}

    def test_empty_log(self):
        summary = summarize_slow([])
        assert summary["entries"] == 0
        assert summary["slowest"] is None


class TestTelemetryFacade:
    def test_disabled_returns_the_shared_noop_span(self):
        telemetry = Telemetry()
        assert telemetry.active is False
        assert telemetry.span("anything", a=1) is NOOP_SPAN
        with telemetry.span("anything") as span:
            span.set(b=2)  # must be a harmless no-op
        assert telemetry.events() == []

    def test_profile_only_mode_is_active_but_does_not_trace(self):
        telemetry = Telemetry(profile=True)
        assert telemetry.active is True
        assert telemetry.span("x") is NOOP_SPAN

    def test_enabled_without_sink_buffers_events(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("only.in.memory"):
            pass
        assert [r["name"] for r in telemetry.events()] == ["only.in.memory"]

    def test_context_is_noop_when_disabled_or_none(self):
        telemetry = Telemetry()
        with telemetry.context(TraceContext("t1")) as ctx:
            assert ctx.trace_id == "t1"  # value passes through untouched
        enabled = Telemetry(enabled=True)
        with enabled.context(None):
            with enabled.span("s"):
                pass
        assert "trace" not in enabled.events()[0]

    def test_ensure_context_mints_once(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.ensure_context(tenant="acme") as ctx:
            assert ctx.tenant == "acme"
            with telemetry.ensure_context() as inner:
                # Already attached: the existing context is reused, not replaced.
                assert inner is ctx or inner == ctx
            with telemetry.span("work"):
                pass
        record = telemetry.events()[0]
        assert record["trace"] == ctx.trace_id
        assert record["tenant"] == "acme"
        assert telemetry.current_context() is None

    def test_borrowed_sink_is_shared_and_survives_close(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        owner = Telemetry(trace_path=path)
        borrower = Telemetry(sink=owner.sink)
        with borrower.span("from.borrower"):
            pass
        borrower.close()  # detaches; must not close the owner's file
        with owner.span("from.owner"):
            pass
        owner.close()
        assert [r["name"] for r in read_trace(path)] == [
            "from.borrower",
            "from.owner",
        ]

    def test_sink_and_trace_path_are_mutually_exclusive(self, tmp_path):
        owner = Telemetry(trace_path=tmp_path / "a.jsonl")
        with pytest.raises(ValueError, match="not both"):
            Telemetry(sink=owner.sink, trace_path=tmp_path / "b.jsonl")
        owner.close()


class TestJsonlRoundTrip:
    def test_spans_round_trip_through_the_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        with telemetry.span("outer", kind="test"):
            with telemetry.span("inner"):
                pass
        telemetry.close()
        records = list(read_trace(path))
        assert records == telemetry.events()
        # And the raw file is one JSON object per line.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_tail_returns_the_last_n(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        for i in range(6):
            with telemetry.span(f"s{i}"):
                pass
        telemetry.close()
        assert [r["name"] for r in tail_trace(path, 2)] == ["s4", "s5"]

    def test_blank_lines_skipped_and_garbage_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok"}\n\n')
        assert [r["name"] for r in read_trace(path)] == ["ok"]
        path.write_text('{"name": "ok"}\nnot json\n')
        with pytest.raises(TelemetryError, match="trace.jsonl:2"):
            list(read_trace(path))

    def test_summarize_aggregates_spans_and_cache_outcomes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        with telemetry.span("engine.evaluate", cache="miss", plan_cache="miss"):
            pass
        with telemetry.span("engine.evaluate", cache="hit", plan_cache="hit"):
            pass
        with telemetry.span("engine.evaluate", cache="hit", plan_cache="hit"):
            pass
        telemetry.close()
        summary = summarize_trace(read_trace(path))
        assert summary["events"] == 3
        assert summary["spans"]["engine.evaluate"]["count"] == 3
        assert summary["cache"] == {
            "hit": 2,
            "miss": 1,
            "ephemeral": 0,
            "hit_rate": pytest.approx(2 / 3),
        }
        assert summary["plan_cache"]["hit"] == 2


class TestRotation:
    def test_sink_rotates_and_keeps_bounded_history(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(path, max_bytes=2048, keep=2)
        record = {"name": "x", "attrs": {"pad": "y" * 64}}
        for _ in range(200):
            sink.write(record)
        sink.close()
        assert path.exists()
        assert (tmp_path / "trace.jsonl.1").exists()
        assert (tmp_path / "trace.jsonl.2").exists()
        assert not (tmp_path / "trace.jsonl.3").exists()
        # Every surviving file stays within one record of the threshold.
        for file in (path, tmp_path / "trace.jsonl.1", tmp_path / "trace.jsonl.2"):
            assert file.stat().st_size <= 2048 + 256
            for line in file.read_text().splitlines():
                assert json.loads(line)["name"] == "x"

    def test_sink_parameter_validation(self, tmp_path):
        with pytest.raises(TelemetryError, match="positive"):
            TraceSink(tmp_path / "t.jsonl", max_bytes=0)
        with pytest.raises(TelemetryError, match="at least one"):
            TraceSink(tmp_path / "t.jsonl", keep=0)

    def test_close_is_idempotent_and_later_spans_still_buffer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(trace_path=path)
        with telemetry.span("before"):
            pass
        telemetry.close()
        telemetry.close()
        with telemetry.span("after"):
            pass
        assert [r["name"] for r in telemetry.events()] == ["before", "after"]
        assert [r["name"] for r in read_trace(path)] == ["before"]
