"""The unified metrics registry: instruments, bucket edges, exports."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("hits_total")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative_increments(self):
        with pytest.raises(TelemetryError, match="cannot decrease"):
            Counter("hits_total").inc(-1)

    def test_rejects_bad_names(self):
        with pytest.raises(TelemetryError, match="invalid metric name"):
            Counter("has space")
        with pytest.raises(TelemetryError, match="invalid metric name"):
            Counter("dots.forbidden")
        with pytest.raises(TelemetryError, match="digit"):
            Counter("1starts_with_digit")
        with pytest.raises(TelemetryError, match="invalid metric name"):
            Counter("")


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(12)
        assert gauge.value == 3


class TestHistogramBucketEdges:
    def test_observation_on_the_boundary_lands_in_that_bucket(self):
        # Prometheus `le` semantics: a bucket is an inclusive upper bound.
        hist = Histogram("t", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.counts == [1, 1, 1, 0]

    def test_observation_above_the_last_bound_lands_in_inf(self):
        hist = Histogram("t", buckets=(1.0, 2.0))
        hist.observe(2.0000001)
        hist.observe(100.0)
        assert hist.counts == [0, 0, 2]

    def test_observation_below_the_first_bound(self):
        hist = Histogram("t", buckets=(1.0, 2.0))
        hist.observe(0.0)
        hist.observe(0.999)
        assert hist.counts == [2, 0, 0]

    def test_cumulative_counts_are_monotone_and_end_at_count(self):
        hist = Histogram("t", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        cumulative = hist.cumulative_counts()
        assert cumulative == [1, 2, 3, 5]
        assert cumulative[-1] == hist.count == 5
        assert hist.sum == pytest.approx(5.5555)

    def test_default_buckets_are_strictly_increasing(self):
        assert all(
            a < b for a, b in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
        )

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(TelemetryError, match="strictly increasing"):
            Histogram("t", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(TelemetryError, match="strictly increasing"):
            Histogram("t", buckets=())


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", help="requests")
        second = registry.counter("requests_total")
        assert first is second
        first.inc()
        assert registry.snapshot()["requests_total"] == 1

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("thing")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.histogram("thing")

    def test_callback_is_sampled_at_export_and_replaceable(self):
        registry = MetricsRegistry()
        registry.callback("live_value", lambda: 7)
        assert registry.snapshot()["live_value"] == 7
        registry.callback("live_value", lambda: 9)  # replace, no error
        assert registry.snapshot()["live_value"] == 9
        assert "live_value" in registry

    def test_callback_cannot_shadow_an_instrument(self):
        registry = MetricsRegistry()
        registry.counter("taken")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.callback("taken", lambda: 0)
        # ... and the reverse direction.
        registry = MetricsRegistry()
        registry.callback("taken", lambda: 0)
        with pytest.raises(TelemetryError, match="callback"):
            registry.counter("taken")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(3.0)
        snap = registry.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 2
        assert snap["h"]["sum"] == pytest.approx(3.5)
        assert snap["h"]["buckets"] == [[1.0, 1], [2.0, 1], [float("inf"), 2]]

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", help="requests served").inc(5)
        registry.gauge("queue_depth").set(2)
        hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        registry.callback("cache_rate", lambda: 0.5, help="live rate")
        text = registry.render_prometheus()
        assert "# HELP requests_total requests served" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 5" in text
        assert "# TYPE queue_depth gauge" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 5.55" in text
        assert "latency_seconds_count 3" in text
        assert "# HELP cache_rate live rate" in text
        assert "cache_rate 0.5" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestLabeledSeries:
    def test_labels_become_distinct_series_under_one_family(self):
        registry = MetricsRegistry()
        registry.counter("dispatch_total", help="dispatches", labels={"backend": "python"}).inc(2)
        registry.counter("dispatch_total", help="dispatches", labels={"backend": "numpy"}).inc(5)
        text = registry.render_prometheus()
        assert text.count("# HELP dispatch_total") == 1
        assert text.count("# TYPE dispatch_total counter") == 1
        assert 'dispatch_total{backend="numpy"} 5' in text
        assert 'dispatch_total{backend="python"} 2' in text
        # series of one family render adjacent and sorted
        numpy_at = text.index('backend="numpy"')
        python_at = text.index('backend="python"')
        assert numpy_at < python_at

    def test_same_labels_get_or_create_same_series(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", labels={"kind": "a"})
        second = registry.counter("hits_total", labels={"kind": "a"})
        assert first is second
        assert registry.counter("hits_total", labels={"kind": "b"}) is not first

    def test_label_keys_sort_deterministically(self):
        registry = MetricsRegistry()
        one = registry.counter("multi_total", labels={"b": "2", "a": "1"})
        two = registry.counter("multi_total", labels={"a": "1", "b": "2"})
        assert one is two
        assert one.name == 'multi_total{a="1",b="2"}'

    def test_invalid_label_names_and_values_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="invalid metric name"):
            registry.counter("x_total", labels={"bad-key": "v"})
        with pytest.raises(TelemetryError, match="label value"):
            registry.counter("x_total", labels={"key": 'quo"te'})
        with pytest.raises(TelemetryError, match="label value"):
            registry.counter("x_total", labels={"key": "line\nbreak"})
