"""Telemetry wired through the engine, workspace, learner and storage layers."""

from __future__ import annotations

import pytest

from repro.api import TelemetryConfig, Workspace
from repro.datasets import geo_graph
from repro.engine.engine import QueryEngine
from repro.errors import ConfigError
from repro.learning import Sample
from repro.queries import PathQuery
from repro.telemetry import Telemetry


def span_names(telemetry: Telemetry) -> list[str]:
    return [record["name"] for record in telemetry.events()]


class TestEngineSpans:
    def test_evaluate_emits_spans_with_cache_attribution(self):
        telemetry = Telemetry(enabled=True)
        engine = QueryEngine(telemetry=telemetry)
        graph = geo_graph()
        query = PathQuery.parse("bus.cinema", graph.alphabet)
        engine.evaluate(graph, query)
        engine.evaluate(graph, query)
        evaluates = [
            r for r in telemetry.events() if r["name"] == "engine.evaluate"
        ]
        assert len(evaluates) == 2
        cold, warm = evaluates
        assert cold["attrs"]["cache"] == "miss"
        assert cold["attrs"]["plan_cache"] == "miss"
        assert warm["attrs"]["cache"] == "hit"
        assert cold["attrs"]["index_version"] == graph.version
        assert "plan" in cold["attrs"]
        # The cold run also built the CSR index, under its own span.
        assert "engine.index_build" in span_names(telemetry)

    def test_evaluate_seconds_histogram_is_observed(self):
        telemetry = Telemetry(enabled=True)
        engine = QueryEngine(telemetry=telemetry)
        graph = geo_graph()
        engine.evaluate(graph, PathQuery.parse("tram", graph.alphabet))
        snap = telemetry.registry.snapshot()
        assert snap["engine_evaluate_seconds"]["count"] == 1

    def test_stats_counters_are_registry_backed(self):
        telemetry = Telemetry()
        engine = QueryEngine(telemetry=telemetry)
        graph = geo_graph()
        engine.evaluate(graph, PathQuery.parse("tram", graph.alphabet))
        snap = telemetry.registry.snapshot()
        assert snap["engine_evaluations_total"] == engine.stats.evaluations == 1
        assert snap["engine_index_builds_total"] == 1
        assert snap["engine_plan_cache_misses"] == 1


class TestDisabledModeIdentity:
    """With telemetry off the engine must behave byte-identically -- and the
    *observed* path must still compute the same answers."""

    EXPRESSIONS = ("tram*", "bus.cinema", "(tram+bus)*.cinema", "restaurant")

    def evaluate_all(self, engine: QueryEngine) -> list[frozenset]:
        graph = geo_graph()
        out = []
        for expr in self.EXPRESSIONS:
            query = PathQuery.parse(expr, graph.alphabet)
            out.append(engine.evaluate(graph, query))
            out.append(engine.evaluate(graph, query))  # warm, cache hit
        return out

    def test_observed_path_matches_fast_path(self):
        plain = self.evaluate_all(QueryEngine())
        traced = self.evaluate_all(
            QueryEngine(telemetry=Telemetry(enabled=True, profile=True))
        )
        assert plain == traced

    def test_disabled_engine_emits_nothing(self):
        engine = QueryEngine()
        self.evaluate_all(engine)
        assert engine.telemetry.active is False
        assert engine.telemetry.events() == []
        assert engine.take_profile() is None

    def test_stats_snapshot_matches_between_modes(self):
        plain = QueryEngine()
        traced = QueryEngine(telemetry=Telemetry(enabled=True, profile=True))
        self.evaluate_all(plain)
        self.evaluate_all(traced)
        assert plain.stats_snapshot() == traced.stats_snapshot()


class TestProfiles:
    def test_profile_splits_and_depths(self):
        engine = QueryEngine(telemetry=Telemetry(profile=True))
        graph = geo_graph()
        engine.evaluate(graph, PathQuery.parse("bus.cinema", graph.alphabet))
        profile = engine.take_profile()
        assert profile is not None
        assert profile["operation"] == "evaluate"
        assert profile["cache"] == "miss"
        assert profile["plan_cache"] == "miss"
        for key in ("compile_seconds", "index_seconds", "walk_seconds", "total_seconds"):
            assert profile[key] >= 0.0
        assert profile["total_seconds"] >= profile["walk_seconds"]
        assert profile["states_expanded"] > 0
        assert profile["edges_scanned"] > 0
        assert profile["depth_sizes"]
        assert all(n > 0 for n in profile["depth_sizes"])
        # take_profile pops: a second take returns nothing.
        assert engine.take_profile() is None

    def test_warm_profile_attributes_the_result_cache_hit(self):
        engine = QueryEngine(telemetry=Telemetry(profile=True))
        graph = geo_graph()
        query = PathQuery.parse("bus.cinema", graph.alphabet)
        engine.evaluate(graph, query)
        engine.take_profile()
        engine.evaluate(graph, query)
        profile = engine.take_profile()
        assert profile["cache"] == "hit"
        assert profile["walk_seconds"] == 0.0

    def test_workspace_query_attaches_profile(self):
        ws = Workspace(geo_graph(), telemetry_config=TelemetryConfig(profile=True))
        result = ws.query("bus.cinema")
        assert result.profile is not None
        assert result.profile["selected"] == result.count
        payload = result.to_dict()
        assert payload["profile"] == result.profile
        # Without profiling the key stays out of the payload entirely.
        plain = Workspace(geo_graph()).query("bus.cinema")
        assert plain.profile is None
        assert "profile" not in plain.to_dict()


class TestWorkspaceWiring:
    def test_conflicting_telemetry_arguments_rejected(self):
        with pytest.raises(ConfigError, match="not both"):
            Workspace(
                geo_graph(),
                telemetry=Telemetry(),
                telemetry_config=TelemetryConfig(),
            )
        with pytest.raises(ConfigError, match="already carries"):
            Workspace(geo_graph(), engine=QueryEngine(), telemetry=Telemetry())

    def test_workspace_spans_cover_query_and_learn(self):
        telemetry = Telemetry(enabled=True)
        ws = Workspace(geo_graph(), telemetry=telemetry)
        ws.query("tram*")
        ws.learn(Sample(positives={"N2", "N6"}, negatives={"N5"}))
        names = span_names(telemetry)
        assert "workspace.query" in names
        assert "learner.learn" in names
        assert "learner.generalize" in names
        learn = next(r for r in telemetry.events() if r["name"] == "learner.learn")
        assert learn["attrs"]["outcome"] in ("learned", "null")
        assert learn["attrs"]["pta_states"] >= 1

    def test_interactive_session_emits_round_spans(self):
        telemetry = Telemetry(enabled=True, profile=True)
        ws = Workspace(geo_graph(), telemetry=telemetry)
        result = ws.learn_interactive("(tram+bus)*.cinema")
        names = span_names(telemetry)
        assert "interactive.session" in names
        assert "interactive.round" in names
        session = next(
            r for r in telemetry.events() if r["name"] == "interactive.session"
        )
        assert session["attrs"]["interactions"] == result.interaction_count
        assert session["attrs"]["halted_by"] == result.halted_by
        # Profiling mode attaches a per-round breakdown to each interaction.
        assert result.interactions
        for interaction in result.interactions:
            assert interaction.profile is not None
            assert interaction.profile["oracle_seconds"] >= 0.0
            assert interaction.profile["learn_seconds"] >= 0.0

    def test_metrics_text_renders_engine_counters(self):
        ws = Workspace(geo_graph())
        ws.query("tram")
        text = ws.metrics_text()
        assert "engine_evaluations_total 1" in text
        assert "engine_result_cache_misses 1" in text


class TestStorageSpans:
    def test_snapshot_round_trip_is_traced(self, tmp_path):
        telemetry = Telemetry(enabled=True)
        ws = Workspace(geo_graph(), telemetry=telemetry)
        path = tmp_path / "geo.rgz"
        ws.save_snapshot(path)
        names = span_names(telemetry)
        assert "storage.write_snapshot" in names
        write = next(
            r for r in telemetry.events() if r["name"] == "storage.write_snapshot"
        )
        assert write["attrs"]["nodes"] == 10
        assert write["attrs"]["bytes"] > 0
        snap = telemetry.registry.snapshot()
        assert snap["storage_snapshot_writes_total"] == 1
        assert snap["storage_snapshot_bytes_written_total"] > 0

        reopened = Workspace.open_snapshot(
            path, telemetry_config=TelemetryConfig(enabled=True)
        )
        names = span_names(reopened.telemetry)
        assert "storage.open_snapshot" in names
        assert reopened.telemetry.registry.snapshot()["storage_snapshot_opens_total"] == 1
        # The adopted prebuilt index is counted as an adoption, not a build.
        reopened.query("tram")
        stats = reopened.stats()
        assert stats["index_builds"] == 0
        assert stats["index_adoptions"] == 1

    def test_ingest_is_traced(self, tmp_path):
        from repro.storage.ingest import ingest_edge_list

        source = tmp_path / "edges.tsv"
        source.write_text("a\tl\tb\nb\tl\tc\n")
        telemetry = Telemetry(enabled=True)
        ingest_edge_list(source, telemetry=telemetry)
        record = next(
            r for r in telemetry.events() if r["name"] == "storage.ingest"
        )
        assert record["attrs"]["format"] == "edge-list"
        assert record["attrs"]["edges"] == 2
        snap = telemetry.registry.snapshot()
        assert snap["storage_ingest_runs_total"] == 1
        assert snap["storage_ingest_edges_total"] == 2
