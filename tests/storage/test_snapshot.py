"""Snapshot format round-trips, corruption detection and mapped-index behavior."""

from __future__ import annotations

import json
import struct

import pytest

from repro.datasets import geo_graph, scale_free_graph
from repro.engine import GraphIndex, QueryEngine
from repro.errors import GraphError, StorageError
from repro.queries import PathQuery
from repro.storage import (
    GraphView,
    MappedGraphIndex,
    open_snapshot,
    snapshot_info,
    write_snapshot,
)
from repro.storage import format as fmt


@pytest.fixture
def geo():
    return geo_graph()


@pytest.fixture
def geo_snapshot(geo, tmp_path):
    path = tmp_path / "geo.rgz"
    write_snapshot(GraphIndex.build(geo), path, meta={"name": "geo"})
    return path


class TestRoundTrip:
    def test_tables_survive(self, geo, geo_snapshot):
        built = GraphIndex.build(geo)
        mapped = open_snapshot(geo_snapshot, verify=True)
        assert mapped.nodes_by_id == built.nodes_by_id
        assert mapped.labels_by_id == built.labels_by_id
        assert mapped.node_ids == built.node_ids
        assert mapped.edge_count == built.edge_count

    def test_csr_bytes_survive(self, geo, geo_snapshot):
        built = GraphIndex.build(geo)
        mapped = open_snapshot(geo_snapshot)
        for lid in range(built.num_labels):
            assert bytes(mapped.fwd_offsets[lid]) == fmt.i64_bytes(built.fwd_offsets[lid])
            assert bytes(mapped.fwd_targets[lid]) == fmt.i64_bytes(built.fwd_targets[lid])
            assert bytes(mapped.bwd_offsets[lid]) == fmt.i64_bytes(built.bwd_offsets[lid])
            assert bytes(mapped.bwd_targets[lid]) == fmt.i64_bytes(built.bwd_targets[lid])

    @pytest.mark.parametrize("use_mmap", [True, False])
    def test_query_parity(self, geo, geo_snapshot, use_mmap):
        engine = QueryEngine()
        view = GraphView(open_snapshot(geo_snapshot, use_mmap=use_mmap))
        query = PathQuery.parse("(tram+bus)*.cinema", geo.alphabet)
        assert engine.evaluate(view, query) == engine.evaluate(geo, query)
        for node in geo.node_order:
            assert engine.selects(view, query, node) == engine.selects(geo, query, node)

    def test_prebuilt_index_adopted_without_rebuild(self, geo, geo_snapshot):
        engine = QueryEngine()
        view = GraphView(open_snapshot(geo_snapshot))
        query = PathQuery.parse("(tram+bus)*.cinema", geo.alphabet)
        engine.evaluate(view, query)
        assert engine.stats.index_builds == 0
        assert engine.index_for(view) is view.prebuilt_index

    def test_unicode_and_awkward_names(self, tmp_path):
        from repro.graphdb import GraphDB

        graph = GraphDB()
        graph.add_edge("Ünïcøde ☃", "läbel\t", "x\nnewline")
        graph.add_edge("", "l", "Ünïcøde ☃")
        graph.add_node("isolated \U0001f600")
        path = tmp_path / "odd.rgz"
        write_snapshot(GraphIndex.build(graph), path)
        view = GraphView(open_snapshot(path, verify=True))
        assert view.nodes == graph.nodes
        assert view.edges == graph.edges

    def test_isolated_nodes_survive(self, tmp_path):
        from repro.graphdb import GraphDB

        graph = GraphDB()
        graph.add_edge("a", "l", "b")
        graph.add_node("lonely")
        path = tmp_path / "iso.rgz"
        write_snapshot(GraphIndex.build(graph), path)
        view = GraphView(open_snapshot(path))
        assert "lonely" in view
        assert view.nodes == {"a", "b", "lonely"}

    def test_meta_and_info(self, geo_snapshot):
        info = snapshot_info(geo_snapshot)
        assert info["nodes"] == 10
        assert info["labels"] == 4
        assert info["edges"] == 13
        assert info["meta"]["name"] == "geo"
        assert set(fmt.SECTION_NAMES) == set(info["sections"])
        mapped = open_snapshot(geo_snapshot)
        assert mapped.meta["name"] == "geo"

    def test_non_string_nodes_rejected(self, tmp_path):
        from repro.graphdb import GraphDB

        graph = GraphDB()
        graph.add_edge(1, "l", 2)
        with pytest.raises(StorageError, match="string node identifiers"):
            write_snapshot(GraphIndex.build(graph), tmp_path / "bad.rgz")

    def test_large_synthetic_parity(self, tmp_path):
        graph = scale_free_graph(400, alphabet_size=8, seed=5)
        path = tmp_path / "syn.rgz"
        write_snapshot(GraphIndex.build(graph), path)
        view = GraphView(open_snapshot(path, verify=True))
        engine = QueryEngine()
        label = sorted(graph.labels())[0]
        query = PathQuery.parse(f"{label}.{label}*", graph.alphabet)
        assert engine.evaluate(view, query) == engine.evaluate(graph, query)


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="does not exist"):
            open_snapshot(tmp_path / "nope.rgz")

    def test_bad_magic(self, geo_snapshot):
        data = bytearray(geo_snapshot.read_bytes())
        data[:4] = b"BOGU"
        geo_snapshot.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="bad magic"):
            open_snapshot(geo_snapshot)

    def test_unsupported_version(self, geo_snapshot):
        data = bytearray(geo_snapshot.read_bytes())
        struct.pack_into("<I", data, 8, 99)
        geo_snapshot.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="version"):
            open_snapshot(geo_snapshot)

    def test_header_checksum_detects_flips(self, geo_snapshot):
        data = bytearray(geo_snapshot.read_bytes())
        data[20] ^= 0xFF  # inside the header's count fields
        geo_snapshot.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            open_snapshot(geo_snapshot)

    def test_payload_checksum_on_verify(self, geo_snapshot):
        data = bytearray(geo_snapshot.read_bytes())
        data[-3] ^= 0x01  # flip a bit inside the meta JSON tail
        geo_snapshot.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="payload checksum"):
            open_snapshot(geo_snapshot, verify=True)

    def test_truncated_file(self, geo_snapshot):
        data = geo_snapshot.read_bytes()
        geo_snapshot.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError, match="truncated|checksum"):
            open_snapshot(geo_snapshot)

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.rgz"
        empty.write_bytes(b"")
        with pytest.raises(StorageError):
            open_snapshot(empty)

    def test_garbage_meta(self, geo_snapshot):
        info = snapshot_info(geo_snapshot)
        offset = info["sections"]["meta"]["offset"]
        data = bytearray(geo_snapshot.read_bytes())
        data[offset] = 0xFF
        geo_snapshot.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="meta"):
            snapshot_info(geo_snapshot)


class TestMappedIndex:
    def test_repr_and_close(self, geo_snapshot):
        mapped = open_snapshot(geo_snapshot)
        assert isinstance(mapped, MappedGraphIndex)
        assert "open" in repr(mapped)
        mapped.close()
        assert "closed" in repr(mapped)
        mapped.close()  # idempotent

    def test_refresh_of_thawed_view_is_heap_backed(self, geo, geo_snapshot):
        mapped = open_snapshot(geo_snapshot)
        thawed = GraphView(mapped).thaw()
        index = GraphIndex.build(thawed)
        thawed.add_edge("N1", "bus", "N9")
        refreshed = index.refresh(thawed, max_ratio=1.0)
        fresh = GraphIndex.build(thawed)
        assert refreshed is not None
        assert type(refreshed) is GraphIndex
        for lid in range(fresh.num_labels):
            assert refreshed.fwd_targets[lid].tobytes() == fresh.fwd_targets[lid].tobytes()

    def test_view_freezes_mutation(self, geo_snapshot):
        view = GraphView(open_snapshot(geo_snapshot))
        with pytest.raises(GraphError, match="frozen"):
            view.add_edge("a", "l", "b")
        with pytest.raises(GraphError, match="frozen"):
            view.add_node("new")

    def test_view_read_api_matches_graphdb(self, geo, geo_snapshot):
        view = GraphView(open_snapshot(geo_snapshot))
        assert view.node_order == geo.node_order
        assert view.label_order == geo.label_order
        assert view.nodes == geo.nodes
        assert view.edges == geo.edges
        assert view.node_count() == geo.node_count()
        assert view.edge_count() == geo.edge_count()
        assert len(view) == len(geo)
        assert sorted(view.alphabet) == sorted(geo.alphabet)
        assert view.label_histogram() == geo.label_histogram()
        assert view.degree_statistics() == geo.degree_statistics()
        for node in geo.node_order:
            assert view.successors(node) == geo.successors(node)
            assert view.predecessors(node) == geo.predecessors(node)
            assert view.out_degree(node) == geo.out_degree(node)
            assert view.in_degree(node) == geo.in_degree(node)
            assert view.outgoing_labels(node) == geo.outgoing_labels(node)
            assert set(view.out_edges(node)) == set(geo.out_edges(node))
            assert set(view.in_edges(node)) == set(geo.in_edges(node))
            for label in geo.labels():
                assert view.successors(node, label) == geo.successors(node, label)
        for origin, label, end in geo.edges:
            assert view.has_edge(origin, label, end)
        assert not view.has_edge("N1", "made-up", "N2")

    def test_view_whole_graph_helpers(self, geo, geo_snapshot):
        view = GraphView(open_snapshot(geo_snapshot))
        node = geo.node_order[0]
        assert view.reachable_from(node) == geo.reachable_from(node)
        assert view.neighborhood(node, 1).nodes == geo.neighborhood(node, 1).nodes
        assert view.has_cycle_reachable_from(node) == geo.has_cycle_reachable_from(node)

    def test_thaw_is_mutable_and_equal(self, geo, geo_snapshot):
        view = GraphView(open_snapshot(geo_snapshot))
        thawed = view.thaw()
        assert thawed.nodes == geo.nodes
        assert thawed.edges == geo.edges
        assert thawed.node_order == geo.node_order
        thawed.add_edge("N1", "bus", "brand-new")
        assert thawed.edge_count() == geo.edge_count() + 1
        # The view is untouched.
        assert view.edge_count() == geo.edge_count()


def test_written_file_is_deterministic(tmp_path, geo):
    index = GraphIndex.build(geo)
    a, b = tmp_path / "a.rgz", tmp_path / "b.rgz"
    write_snapshot(index, a, meta={"name": "geo"})
    write_snapshot(index, b, meta={"name": "geo"})
    assert a.read_bytes() == b.read_bytes()


def test_meta_is_json_roundtrippable(geo_snapshot):
    info = snapshot_info(geo_snapshot)
    assert json.loads(json.dumps(info)) == info
