"""DatasetCatalog: registration, persistence, built-in materialization."""

from __future__ import annotations

import json

import pytest

from repro.datasets import geo_graph
from repro.engine import GraphIndex, QueryEngine
from repro.errors import StorageError
from repro.queries import PathQuery
from repro.storage import BUILTIN_DATASETS, DatasetCatalog, GraphView, write_snapshot


@pytest.fixture
def catalog(tmp_path):
    return DatasetCatalog(tmp_path / "snapshots")


class TestSaveAndOpen:
    def test_save_graph_and_open_view(self, catalog):
        geo = geo_graph()
        path = catalog.save("geo", geo, meta={"origin": "figure 1"})
        assert path.exists()
        view = catalog.open_view("geo")
        assert view.edges == geo.edges
        assert catalog.info("geo")["meta"]["origin"] == "figure 1"

    def test_save_accepts_index_and_view(self, catalog):
        geo = geo_graph()
        index = GraphIndex.build(geo)
        catalog.save("from-index", index)
        catalog.save("from-view", GraphView(index))
        assert catalog.names() == ["from-index", "from-view"]
        assert catalog.open_view("from-view").edges == geo.edges

    def test_save_rejects_other_types(self, catalog):
        with pytest.raises(StorageError, match="cannot snapshot"):
            catalog.save("nope", {"not": "a graph"})

    def test_open_unknown_name(self, catalog):
        with pytest.raises(StorageError, match="no catalog snapshot named"):
            catalog.open("missing")

    def test_invalid_names_rejected(self, catalog):
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(StorageError, match="invalid catalog snapshot name"):
                catalog.save(bad, geo_graph())


class TestManifest:
    def test_entries_persist_across_instances(self, catalog):
        catalog.save("geo", geo_graph())
        reopened = DatasetCatalog(catalog.root)
        assert "geo" in reopened
        assert reopened.entries()["geo"]["edges"] == 13

    def test_register_external_file(self, catalog, tmp_path):
        snap = tmp_path / "ext.rgz"
        write_snapshot(GraphIndex.build(geo_graph()), snap)
        catalog.register("external", snap)
        assert catalog.open_view("external").edge_count() == 13

    def test_register_move_pulls_file_in(self, catalog, tmp_path):
        snap = tmp_path / "ext.rgz"
        write_snapshot(GraphIndex.build(geo_graph()), snap)
        destination = catalog.register("moved", snap, move=True)
        assert not snap.exists()
        assert destination.parent == catalog.root
        assert catalog.open_view("moved").edge_count() == 13

    def test_remove(self, catalog):
        catalog.save("geo", geo_graph())
        path = catalog.path_for("geo")
        catalog.remove("geo")
        assert "geo" not in catalog
        assert path.exists()  # manifest drop keeps the file by default
        catalog.save("geo", geo_graph())
        catalog.remove("geo", delete_file=True)
        assert not path.exists()
        with pytest.raises(StorageError):
            catalog.remove("geo")

    def test_corrupt_manifest_surfaces_as_storage_error(self, catalog):
        catalog.root.mkdir(parents=True, exist_ok=True)
        (catalog.root / "catalog.json").write_text("{broken", encoding="utf-8")
        with pytest.raises(StorageError, match="manifest"):
            catalog.entries()
        (catalog.root / "catalog.json").write_text(json.dumps({"wrong": 1}))
        with pytest.raises(StorageError, match="malformed"):
            catalog.entries()


class TestEnsure:
    def test_builtin_materialized_once(self, catalog):
        path = catalog.ensure("geo")
        assert path.exists()
        first_bytes = path.read_bytes()
        assert catalog.ensure("geo") == path
        assert path.read_bytes() == first_bytes

    def test_builtin_registry_names(self):
        assert {"geo", "g0", "synthetic-1k", "synthetic-10k"} <= set(BUILTIN_DATASETS)

    def test_custom_builder(self, catalog):
        catalog.ensure("custom", builder=geo_graph)
        engine = QueryEngine()
        view = catalog.open_view("custom")
        query = PathQuery.parse("(tram+bus)*.cinema", view.alphabet)
        assert engine.evaluate(view, query) == engine.evaluate(geo_graph(), query)

    def test_unknown_without_builder(self, catalog):
        with pytest.raises(StorageError, match="no builder"):
            catalog.ensure("not-a-dataset")


class TestManifestAtomicity:
    """Crash and concurrency behavior of the manifest read-modify-write."""

    def test_crash_before_rename_preserves_old_manifest(self, catalog, monkeypatch):
        catalog.save("geo", geo_graph())
        before = catalog.entries()
        assert "geo" in before

        # Simulate a crash after the temp file is written but before the
        # atomic rename lands: the manifest must still be the old, valid one.
        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr("repro.storage.catalog.os.replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            catalog.save("g0", BUILTIN_DATASETS["g0"]())
        monkeypatch.undo()

        fresh = DatasetCatalog(catalog.root)
        assert fresh.entries() == before  # old manifest intact and readable
        assert "g0" not in fresh.entries()
        # The interrupted writer's temp file was cleaned up.
        leftovers = [p for p in catalog.root.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []
        # And the catalog is not wedged: the write succeeds once the crash clears.
        catalog.save("g0", BUILTIN_DATASETS["g0"]())
        assert "g0" in DatasetCatalog(catalog.root).entries()

    def test_crash_during_temp_write_preserves_old_manifest(self, catalog, monkeypatch):
        catalog.save("geo", geo_graph())
        before = catalog.entries()

        real_fsync = __import__("os").fsync

        def exploding_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.storage.catalog.os.fsync", exploding_fsync)
        with pytest.raises(OSError, match="No space left"):
            catalog.save("g0", BUILTIN_DATASETS["g0"]())
        monkeypatch.setattr("repro.storage.catalog.os.fsync", real_fsync)

        assert DatasetCatalog(catalog.root).entries() == before

    def test_concurrent_registrations_lose_no_entries(self, catalog):
        import threading

        snapshot_path = catalog.save("geo", geo_graph())
        errors = []
        barrier = threading.Barrier(8)

        def register(i):
            barrier.wait()
            try:
                catalog.register(f"copy-{i}", snapshot_path)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=register, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        names = DatasetCatalog(catalog.root).names()
        assert names == sorted(["geo"] + [f"copy-{i}" for i in range(8)])

    def test_manifest_written_with_fsync_and_unique_temp(self, catalog):
        catalog.save("geo", geo_graph())
        # No temp droppings under the fixed legacy name or otherwise.
        assert not any(p.name.endswith(".tmp") for p in catalog.root.iterdir())
        manifest = json.loads((catalog.root / "catalog.json").read_text())
        assert manifest["version"] == 1
        assert "geo" in manifest["snapshots"]
