"""Streaming bulk-ingestion: format parity, error policies, progress, gzip."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.datasets import geo_graph, scale_free_graph
from repro.engine import GraphIndex, QueryEngine
from repro.errors import StorageError
from repro.graphdb.io import graph_from_edge_list, graph_to_edge_list
from repro.queries import PathQuery
from repro.storage import (
    ingest_csv,
    ingest_edge_list,
    ingest_file,
    ingest_jsonl,
)


@pytest.fixture
def geo():
    return geo_graph()


@pytest.fixture
def geo_tsv(geo, tmp_path):
    path = tmp_path / "geo.tsv"
    path.write_text(graph_to_edge_list(geo), encoding="utf-8")
    return path


class TestEdgeList:
    def test_parity_with_text_loader(self, geo, geo_tsv):
        ingestion = ingest_edge_list(geo_tsv)
        view = ingestion.view()
        assert view.nodes == geo.nodes
        assert view.edges == geo.edges
        assert ingestion.report.edges_added == geo.edge_count()
        assert ingestion.report.malformed_lines == 0

    def test_csr_byte_identical_to_graphdb_build(self, geo_tsv):
        # The streaming builder interns names in file order -- exactly the
        # order graph_from_edge_list inserts them -- so the CSR arrays must
        # be byte-identical to a built index of the parsed graph.
        ingestion = ingest_edge_list(geo_tsv)
        built = GraphIndex.build(graph_from_edge_list(geo_tsv.read_text()))
        assert ingestion.index.nodes_by_id == built.nodes_by_id
        assert ingestion.index.labels_by_id == built.labels_by_id
        for lid in range(built.num_labels):
            assert ingestion.index.fwd_offsets[lid].tobytes() == built.fwd_offsets[lid].tobytes()
            assert ingestion.index.fwd_targets[lid].tobytes() == built.fwd_targets[lid].tobytes()
            assert ingestion.index.bwd_offsets[lid].tobytes() == built.bwd_offsets[lid].tobytes()
            assert ingestion.index.bwd_targets[lid].tobytes() == built.bwd_targets[lid].tobytes()

    def test_gzip_transparent(self, geo, geo_tsv, tmp_path):
        gz = tmp_path / "geo.tsv.gz"
        gz.write_bytes(gzip.compress(geo_tsv.read_bytes()))
        assert ingest_edge_list(gz).view().edges == geo.edges

    def test_comments_directives_and_escapes(self):
        lines = [
            "# a comment",
            "",
            "a\tl\tb",
            "%node\tlonely",
            "with\\ttab\tl\tb",
        ]
        view = ingest_edge_list(lines).view()
        assert view.nodes == {"a", "b", "lonely", "with\ttab"}
        assert ("with\ttab", "l", "b") in view.edges

    def test_duplicate_edges_deduped(self):
        lines = ["a\tl\tb", "a\tl\tb", "a\tl\tc"]
        ingestion = ingest_edge_list(lines)
        assert ingestion.report.edges_added == 2
        assert ingestion.report.duplicate_edges == 1
        assert ingestion.index.edge_count == 2

    def test_dedupe_disabled_keeps_duplicates_out_of_sets(self):
        # dedupe=False is the trusted-input fast path: duplicates end up as
        # repeated CSR entries (the caller promised there are none).
        lines = ["a\tl\tb", "a\tl\tc"]
        ingestion = ingest_edge_list(lines, dedupe=False)
        assert ingestion.index.edge_count == 2

    def test_malformed_raises_with_line_number(self):
        with pytest.raises(StorageError, match="line 2"):
            ingest_edge_list(["a\tl\tb", "only\ttwo"])

    def test_malformed_skip_policy_counts(self):
        lines = ["a\tl\tb", "only\ttwo", "bad\\q\tl\tb", "c\tl\td"]
        ingestion = ingest_edge_list(lines, on_error="skip")
        assert ingestion.report.malformed_lines == 2
        assert len(ingestion.report.error_samples) == 2
        assert ingestion.report.edges_added == 2

    def test_max_errors_aborts(self):
        lines = ["bad"] * 10
        with pytest.raises(StorageError, match="more than 3"):
            ingest_edge_list(lines, on_error="skip", max_errors=3)

    def test_bad_policy_rejected(self):
        with pytest.raises(StorageError, match="on_error"):
            ingest_edge_list([], on_error="ignore")

    def test_progress_callback(self):
        lines = [f"n{i}\tl\tn{i + 1}" for i in range(25)]
        ticks = []
        ingest_edge_list(lines, progress=lambda l, e: ticks.append((l, e)), progress_every=10)
        assert ticks == [(10, 10), (20, 20), (25, 25)]

    def test_empty_source(self):
        ingestion = ingest_edge_list([])
        assert ingestion.index.num_nodes == 0
        assert ingestion.index.edge_count == 0


class TestJsonl:
    def test_arrays_and_objects(self):
        lines = [
            json.dumps(["a", "l", "b"]),
            json.dumps({"origin": "b", "label": "m", "end": "c"}),
            json.dumps({"node": "lonely"}),
            "",
        ]
        view = ingest_jsonl(lines).view()
        assert view.edges == {("a", "l", "b"), ("b", "m", "c")}
        assert "lonely" in view.nodes

    def test_numeric_ids_coerced_to_strings(self):
        view = ingest_jsonl([json.dumps([1, "l", 2])]).view()
        assert view.edges == {("1", "l", "2")}

    def test_malformed_json_respects_policy(self):
        lines = ["not json", json.dumps(["a", "l", "b"]), json.dumps({"wrong": 1})]
        with pytest.raises(StorageError, match="line 1"):
            ingest_jsonl(lines)
        ingestion = ingest_jsonl(lines, on_error="skip")
        assert ingestion.report.malformed_lines == 2
        assert ingestion.report.edges_added == 1


class TestCsv:
    def test_basic_rows(self):
        view = ingest_csv(["a,l,b", "b,m,c"]).view()
        assert view.edges == {("a", "l", "b"), ("b", "m", "c")}

    def test_header_auto_detected(self):
        view = ingest_csv(["origin,label,end", "a,l,b"]).view()
        assert view.edges == {("a", "l", "b")}

    def test_header_skip_always_drops_first_row(self):
        view = ingest_csv(["a,l,b", "c,l,d"], header="skip").view()
        assert view.edges == {("c", "l", "d")}

    def test_quoted_fields_and_custom_delimiter(self):
        view = ingest_csv(['"has,comma";l;b'], delimiter=";").view()
        assert view.edges == {("has,comma", "l", "b")}

    def test_malformed_column_count(self):
        with pytest.raises(StorageError, match="3 columns"):
            ingest_csv(["a,b"])


class TestIngestFile:
    def test_format_guessing(self, tmp_path, geo, geo_tsv):
        jsonl = tmp_path / "geo.jsonl"
        jsonl.write_text(
            "\n".join(json.dumps(list(edge)) for edge in sorted(geo.edges)) + "\n"
        )
        csv_path = tmp_path / "geo.csv"
        csv_path.write_text(
            "origin,label,end\n"
            + "\n".join(",".join(edge) for edge in sorted(geo.edges))
            + "\n"
        )
        assert ingest_file(geo_tsv).view().edges == geo.edges
        assert ingest_file(jsonl).view().edges == geo.edges
        assert ingest_file(csv_path).view().edges == geo.edges

    def test_unknown_format_rejected(self, geo_tsv):
        with pytest.raises(StorageError, match="unknown ingest format"):
            ingest_file(geo_tsv, format="parquet")

    def test_save_then_requery(self, tmp_path, geo, geo_tsv):
        ingestion = ingest_file(geo_tsv)
        snap = tmp_path / "geo.rgz"
        info = ingestion.save(snap)
        assert info["meta"]["ingest"]["edges_added"] == geo.edge_count()
        from repro.storage import open_snapshot, GraphView

        engine = QueryEngine()
        view = GraphView(open_snapshot(snap))
        query = PathQuery.parse("(tram+bus)*.cinema", geo.alphabet)
        assert engine.evaluate(view, query) == engine.evaluate(geo, query)


def test_synthetic_roundtrip_through_every_stage(tmp_path):
    """edge file -> ingest -> snapshot -> mmap view: queries match in-memory."""
    graph = scale_free_graph(300, alphabet_size=6, seed=13)
    source = tmp_path / "syn.tsv"
    source.write_text(graph_to_edge_list(graph), encoding="utf-8")
    snap = tmp_path / "syn.rgz"
    ingest_file(source).save(snap)
    from repro.storage import open_snapshot, GraphView

    view = GraphView(open_snapshot(snap, verify=True))
    engine = QueryEngine()
    labels = sorted(graph.labels())
    for expr in (f"{labels[0]}*", f"({labels[0]}+{labels[1]}).{labels[2]}"):
        query = PathQuery.parse(expr, graph.alphabet)
        assert engine.evaluate(view, query) == engine.evaluate(graph, query)
