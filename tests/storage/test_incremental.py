"""Incremental index maintenance: delta-log refresh parity and cache behavior.

The storage layer's contract is that CSR arrays are *canonical*: a
refreshed index must be byte-identical to a freshly built one, whatever
interleaving of node/edge insertions produced the delta.  These tests pin
that with randomized mutation sequences, and check the engine-level
behavior on top: refreshes instead of rebuilds, result-cache invalidation
across deltas, and the fallbacks (truncated log, oversized delta).
"""

from __future__ import annotations

import random

import pytest

from repro.engine import GraphIndex, QueryEngine
from repro.graphdb import GraphDB
from repro.graphdb.graph import DELTA_LOG_CAP
from repro.queries import PathQuery


def assert_byte_identical(left: GraphIndex, right: GraphIndex) -> None:
    assert left.nodes_by_id == right.nodes_by_id
    assert left.labels_by_id == right.labels_by_id
    assert left.node_ids == right.node_ids
    assert left.label_ids == right.label_ids
    assert left.edge_count == right.edge_count
    for lid in range(right.num_labels):
        assert left.fwd_offsets[lid].tobytes() == right.fwd_offsets[lid].tobytes()
        assert left.fwd_targets[lid].tobytes() == right.fwd_targets[lid].tobytes()
        assert left.bwd_offsets[lid].tobytes() == right.bwd_offsets[lid].tobytes()
        assert left.bwd_targets[lid].tobytes() == right.bwd_targets[lid].tobytes()


def random_graph(rng: random.Random, nodes: int = 60, edges: int = 150) -> GraphDB:
    graph = GraphDB()
    for _ in range(edges):
        graph.add_edge(
            f"n{rng.randrange(nodes)}",
            f"l{rng.randrange(5)}",
            f"n{rng.randrange(nodes)}",
        )
    return graph


class TestRefreshParity:
    def test_single_edge(self):
        graph = GraphDB()
        graph.add_edge("a", "l", "b")
        index = GraphIndex.build(graph)
        graph.add_edge("b", "l", "c")
        assert_byte_identical(index.refresh(graph, max_ratio=10.0), GraphIndex.build(graph))

    def test_new_label_appended(self):
        graph = GraphDB()
        graph.add_edge("a", "l", "b")
        index = GraphIndex.build(graph)
        graph.add_edge("a", "brand-new-label", "b")
        refreshed = index.refresh(graph, max_ratio=10.0)
        assert refreshed.labels_by_id == ("l", "brand-new-label")
        assert_byte_identical(refreshed, GraphIndex.build(graph))

    def test_isolated_nodes_appended(self):
        graph = GraphDB()
        graph.add_edge("a", "l", "b")
        index = GraphIndex.build(graph)
        graph.add_node("lonely")
        graph.add_node("also-lonely")
        refreshed = index.refresh(graph, max_ratio=10.0)
        assert refreshed.nodes_by_id == ("a", "b", "lonely", "also-lonely")
        assert_byte_identical(refreshed, GraphIndex.build(graph))

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_mutation_sequences(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng)
        index = GraphIndex.build(graph)
        # Several rounds of interleaved mutations, refreshing each round
        # from the previous round's index (refresh-of-refresh).
        for _ in range(4):
            for _ in range(rng.randrange(1, 12)):
                action = rng.random()
                if action < 0.2:
                    graph.add_node(f"x{rng.randrange(200)}")
                elif action < 0.3:
                    graph.add_edge(
                        f"n{rng.randrange(80)}",
                        f"fresh{rng.randrange(3)}",
                        f"x{rng.randrange(200)}",
                    )
                else:
                    graph.add_edge(
                        f"n{rng.randrange(80)}", f"l{rng.randrange(5)}", f"n{rng.randrange(80)}"
                    )
            refreshed = index.refresh(graph, max_ratio=10.0)
            assert refreshed is not None
            assert_byte_identical(refreshed, GraphIndex.build(graph))
            index = refreshed

    def test_duplicate_adds_do_not_appear_in_delta(self):
        graph = GraphDB()
        graph.add_edge("a", "l", "b")
        index = GraphIndex.build(graph)
        graph.add_edge("a", "l", "b")  # no-op
        graph.add_node("a")  # no-op
        assert index.refresh(graph) is index  # version unchanged -> same index
        graph.add_edge("a", "l", "c")
        assert_byte_identical(index.refresh(graph, max_ratio=10.0), GraphIndex.build(graph))


class TestRefreshFallbacks:
    def test_different_graph_refused(self):
        one, other = GraphDB(), GraphDB()
        one.add_edge("a", "l", "b")
        other.add_edge("a", "l", "b")
        assert GraphIndex.build(one).refresh(other) is None

    def test_oversized_delta_refused(self):
        graph = GraphDB()
        for i in range(50):
            graph.add_edge(f"n{i}", "l", f"n{i + 1}")
        index = GraphIndex.build(graph)
        for i in range(40):
            graph.add_edge(f"m{i}", "l", f"m{i + 1}")
        # 120 events > max(16, 0.25 * 50): the heuristic demands a rebuild.
        assert index.refresh(graph, max_ratio=0.25) is None
        assert index.refresh(graph, max_ratio=10.0) is not None

    def test_truncated_log_refused(self):
        graph = GraphDB()
        graph.add_edge("a", "l", "b")
        index = GraphIndex.build(graph)
        base_version = graph.version
        for i in range(DELTA_LOG_CAP + 10):
            graph.add_node(f"filler{i}")
        assert graph.delta_since(base_version) is None
        assert index.refresh(graph, max_ratio=1e9) is None

    def test_delta_since_future_version_refused(self):
        graph = GraphDB()
        graph.add_edge("a", "l", "b")
        assert graph.delta_since(graph.version + 1) is None


class TestEngineIntegration:
    def test_engine_refreshes_instead_of_rebuilding(self):
        engine = QueryEngine()
        graph = GraphDB(["l"])
        for i in range(30):
            graph.add_edge(f"n{i}", "l", f"n{i + 1}")
        query = PathQuery.parse("l.l", ["l"])
        engine.evaluate(graph, query)
        assert engine.stats.index_builds == 1
        graph.add_edge("n0", "l", "n5")
        engine.evaluate(graph, query)
        assert engine.stats.index_builds == 1
        assert engine.stats.index_refreshes == 1

    def test_engine_rebuilds_when_disabled(self):
        engine = QueryEngine(incremental_refresh=False)
        graph = GraphDB(["l"])
        graph.add_edge("a", "l", "b")
        query = PathQuery.parse("l", ["l"])
        engine.evaluate(graph, query)
        graph.add_edge("b", "l", "c")
        engine.evaluate(graph, query)
        assert engine.stats.index_builds == 2
        assert engine.stats.index_refreshes == 0

    def test_result_caches_invalidate_across_deltas(self):
        engine = QueryEngine()
        graph = GraphDB(["l"])
        graph.add_edge("a", "l", "b")
        query = PathQuery.parse("l.l", ["l"])
        assert engine.evaluate(graph, query) == frozenset()
        # Served from cache on repeat.
        assert engine.evaluate(graph, query) == frozenset()
        assert engine.result_cache.hits == 1
        graph.add_edge("b", "l", "c")
        # The refreshed index carries the new version: the stale cached
        # result must not be returned.
        assert engine.evaluate(graph, query) == {"a"}
        graph.add_edge("c", "l", "d")
        assert engine.evaluate(graph, query) == {"a", "b"}
        assert engine.stats.index_refreshes == 2

    def test_selects_and_any_selects_after_refresh(self):
        engine = QueryEngine()
        graph = GraphDB(["l", "m"])
        graph.add_edge("a", "l", "b")
        query = PathQuery.parse("l.m", ["l", "m"])
        assert not engine.selects(graph, query, "a")
        graph.add_edge("b", "m", "c")
        assert engine.selects(graph, query, "a")
        assert engine.any_selects(graph, query, ["a", "b"])
        assert engine.stats.index_refreshes >= 1

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_queries_interleaved_with_mutations(self, seed):
        rng = random.Random(1000 + seed)
        graph = random_graph(rng, nodes=40, edges=80)
        incremental = QueryEngine()
        rebuild_only = QueryEngine(incremental_refresh=False)
        expressions = ["l0.l1", "(l0+l2)*.l3", "l4*", "l1.l1"]
        for _ in range(20):
            if rng.random() < 0.6:
                graph.add_edge(
                    f"n{rng.randrange(50)}", f"l{rng.randrange(5)}", f"n{rng.randrange(50)}"
                )
            else:
                graph.add_node(f"x{rng.randrange(30)}")
            query = PathQuery.parse(rng.choice(expressions), graph.alphabet)
            assert incremental.evaluate(graph, query) == rebuild_only.evaluate(graph, query)
        assert incremental.stats.index_refreshes > 0
        assert incremental.stats.index_builds == 1


class TestDeltaLog:
    def test_events_in_application_order(self):
        graph = GraphDB()
        base = graph.version
        graph.add_edge("a", "l", "b")
        graph.add_node("c")
        events = graph.delta_since(base)
        assert events == [("node", "a"), ("node", "b"), ("edge", "a", "l", "b"), ("node", "c")]

    def test_log_survives_pickle_roundtrip(self):
        import pickle

        graph = GraphDB()
        graph.add_edge("a", "l", "b")
        index = GraphIndex.build(graph)
        clone = pickle.loads(pickle.dumps(graph))
        clone.add_edge("b", "l", "c")
        # The clone has a fresh uid, so the old index refuses to refresh it...
        assert index.refresh(clone) is None
        # ...but the clone's own index pipeline works end to end.
        clone_index = GraphIndex.build(clone)
        clone.add_edge("c", "l", "d")
        assert_byte_identical(clone_index.refresh(clone, max_ratio=10.0), GraphIndex.build(clone))
