"""Shared fixtures: the paper's worked-example graphs and small alphabets."""

from __future__ import annotations

import pytest

from repro.automata import Alphabet
from repro.datasets import (
    certain_node_graph,
    example_graph_g0,
    geo_graph,
    inconsistent_sample_graph,
    prefix_equivalent_graph,
)
from repro.datasets.figures import g0_characteristic_sample
from repro.learning import Sample
from repro.queries import PathQuery


@pytest.fixture
def abc_alphabet() -> Alphabet:
    """The {a, b, c} alphabet used by most of the paper's examples."""
    return Alphabet(["a", "b", "c"])


@pytest.fixture
def g0():
    """The graph G0 of Figure 3."""
    return example_graph_g0()


@pytest.fixture
def g0_sample() -> Sample:
    """The Section 3.2 sample on G0: S+ = {v1, v3}, S- = {v2, v7}."""
    positives, negatives = g0_characteristic_sample()
    return Sample(positives, negatives)


@pytest.fixture
def abstar_c(g0) -> PathQuery:
    """The running-example query (a.b)*.c over G0's alphabet."""
    return PathQuery.parse("(a.b)*.c", g0.alphabet)


@pytest.fixture
def geo():
    """The geographical graph of Figure 1."""
    return geo_graph()


@pytest.fixture
def geo_goal(geo) -> PathQuery:
    """The running-example query (tram+bus)*.cinema."""
    return PathQuery.parse("(tram+bus)*.cinema", geo.alphabet)


@pytest.fixture
def inconsistent_case():
    """The Figure 5 graph together with its (inconsistent) sample."""
    graph, positives, negatives = inconsistent_sample_graph()
    return graph, Sample(positives, negatives)


@pytest.fixture
def certain_case():
    """The Figure 10 graph: sample plus the node that is certain-positive."""
    graph, positives, negatives, certain = certain_node_graph()
    return graph, Sample(positives, negatives), certain


@pytest.fixture
def prefix_equivalent_case():
    """The Figure 8-style graph where the goal has no characteristic sample."""
    graph, positives, negatives = prefix_equivalent_graph()
    return graph, Sample(positives, negatives)
