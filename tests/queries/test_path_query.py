"""Unit tests for monadic path queries."""

import pytest

from repro.automata.nfa import NFA
from repro.errors import QueryError, RegexSyntaxError
from repro.queries import PathQuery


class TestConstruction:
    def test_parse_and_size(self, abc_alphabet):
        query = PathQuery.parse("(a.b)*.c", abc_alphabet)
        assert query.size == 3
        assert query.expression == "(a.b)*.c"

    def test_parse_with_symbols_outside_alphabet_raises(self, abc_alphabet):
        with pytest.raises(RegexSyntaxError):
            PathQuery.parse("a.z", abc_alphabet)

    def test_from_automaton(self, abc_alphabet):
        nfa = NFA.from_words(abc_alphabet, [("a", "b"), ("c",)])
        query = PathQuery.from_automaton(nfa)
        assert query.accepts_word(("a", "b"))
        assert query.accepts_word(("c",))
        assert not query.accepts_word(("a",))

    def test_from_words(self, abc_alphabet):
        query = PathQuery.from_words(abc_alphabet, [("a", "b", "c"), ("c",)])
        assert query.accepts_word(("c",))
        assert not query.accepts_word(("a", "b"))

    def test_from_words_requires_at_least_one(self, abc_alphabet):
        with pytest.raises(QueryError):
            PathQuery.from_words(abc_alphabet, [])

    def test_repr_mentions_expression(self, abc_alphabet):
        assert "(a.b)*.c" in repr(PathQuery.parse("(a.b)*.c", abc_alphabet))


class TestLanguageLevel:
    def test_equality_is_language_equivalence(self, abc_alphabet):
        assert PathQuery.parse("(a.b)*.c", abc_alphabet) == PathQuery.parse(
            "c+a.b.(a.b)*.c", abc_alphabet
        )
        assert PathQuery.parse("a", abc_alphabet) != PathQuery.parse("b", abc_alphabet)

    def test_monadic_equivalence_ignores_suffixes(self, abc_alphabet):
        # Section 2: a and a.b* are equivalent queries.
        assert PathQuery.parse("a", abc_alphabet) == PathQuery.parse("a.b*", abc_alphabet)

    def test_prefix_free_form(self, abc_alphabet):
        query = PathQuery.parse("a.b*", abc_alphabet)
        assert not query.is_prefix_free()
        reduced = query.prefix_free_form()
        assert reduced.is_prefix_free()
        assert reduced == PathQuery.parse("a", abc_alphabet)

    def test_shortest_word(self, abc_alphabet):
        assert PathQuery.parse("(a.b)*.c", abc_alphabet).shortest_word() == ("c",)

    def test_hash_consistent_with_parsing_twice(self, abc_alphabet):
        assert hash(PathQuery.parse("a.b", abc_alphabet)) == hash(
            PathQuery.parse("a.b", abc_alphabet)
        )


class TestEvaluation:
    def test_evaluate_and_selects(self, g0):
        query = PathQuery.parse("(a.b)*.c", g0.alphabet)
        assert query.evaluate(g0) == {"v1", "v3"}
        assert query.selects(g0, "v1")
        assert not query.selects(g0, "v2")

    def test_selectivity(self, g0):
        query = PathQuery.parse("(a.b)*.c", g0.alphabet)
        assert query.selectivity(g0) == pytest.approx(2 / 7)

    def test_selectivity_of_empty_graph_raises(self, abc_alphabet):
        from repro.graphdb import GraphDB

        with pytest.raises(QueryError):
            PathQuery.parse("a", abc_alphabet).selectivity(GraphDB(abc_alphabet))

    def test_equivalent_on_graph(self, prefix_equivalent_case):
        graph, _ = prefix_equivalent_case
        goal = PathQuery.parse("(a.b)*.c", graph.alphabet)
        simple = PathQuery.parse("a", graph.alphabet)
        assert goal.equivalent_on(simple, graph)
        assert goal != simple

    def test_is_consistent_with(self, g0):
        query = PathQuery.parse("(a.b)*.c", g0.alphabet)
        assert query.is_consistent_with(g0, {"v1", "v3"}, {"v2", "v7"})
        assert not query.is_consistent_with(g0, {"v2"}, set())
        assert not query.is_consistent_with(g0, {"v1"}, {"v3"})
