"""Unit tests for binary and n-ary path query semantics."""

import pytest

from repro.errors import QueryError
from repro.graphdb import GraphDB
from repro.queries import BinaryPathQuery, NaryPathQuery


@pytest.fixture
def chain_graph():
    graph = GraphDB(["a", "b", "c"])
    graph.add_edges(
        [
            ("n1", "a", "n2"),
            ("n2", "b", "n3"),
            ("n3", "c", "n4"),
            ("n1", "b", "n3"),
            ("n2", "b", "n2"),
        ]
    )
    return graph


class TestBinaryQueries:
    def test_evaluate(self, chain_graph):
        query = BinaryPathQuery.parse("a.b", chain_graph.alphabet)
        pairs = query.evaluate(chain_graph)
        assert ("n1", "n3") in pairs
        assert ("n1", "n2") in pairs  # via a then the b self-loop on n2
        assert ("n2", "n3") not in pairs

    def test_selects(self, chain_graph):
        query = BinaryPathQuery.parse("a.b*.c", chain_graph.alphabet)
        assert query.selects(chain_graph, "n1", "n4")
        assert not query.selects(chain_graph, "n2", "n4")

    def test_selectivity(self, chain_graph):
        query = BinaryPathQuery.parse("c", chain_graph.alphabet)
        assert query.selectivity(chain_graph) == pytest.approx(1 / 16)

    def test_equality_is_strict_language_equivalence(self, chain_graph):
        # Binary semantics observes the end node, so a and a.b* differ.
        assert BinaryPathQuery.parse("a") != BinaryPathQuery.parse("a.b*")
        assert BinaryPathQuery.parse("a+b") == BinaryPathQuery.parse("b+a")

    def test_consistency(self, chain_graph):
        query = BinaryPathQuery.parse("a.b", chain_graph.alphabet)
        assert query.is_consistent_with(chain_graph, {("n1", "n3")}, {("n2", "n4")})
        assert not query.is_consistent_with(chain_graph, {("n2", "n4")}, set())

    def test_expression_roundtrip(self):
        assert BinaryPathQuery.parse("a.b").expression == "a.b"


class TestNaryQueries:
    def test_arity_and_components(self):
        query = NaryPathQuery.parse(["a", "b.c"])
        assert query.arity == 3
        assert query.expressions == ("a", "b.c")
        assert query.size >= 1

    def test_empty_components_raise(self):
        with pytest.raises(QueryError):
            NaryPathQuery([])

    def test_selects_tuple(self, chain_graph):
        query = NaryPathQuery.parse(["a", "b", "c"], chain_graph.alphabet)
        assert query.selects(chain_graph, ("n1", "n2", "n3", "n4"))
        assert not query.selects(chain_graph, ("n1", "n3", "n3", "n4"))

    def test_selects_wrong_arity_raises(self, chain_graph):
        query = NaryPathQuery.parse(["a"], chain_graph.alphabet)
        with pytest.raises(QueryError):
            query.selects(chain_graph, ("n1",))

    def test_evaluate_joins_positions(self, chain_graph):
        query = NaryPathQuery.parse(["a", "b"], chain_graph.alphabet)
        tuples = query.evaluate(chain_graph)
        assert ("n1", "n2", "n3") in tuples
        assert ("n1", "n2", "n2") in tuples

    def test_evaluate_limit(self, chain_graph):
        query = NaryPathQuery.parse(["a+b", "b+c"], chain_graph.alphabet)
        limited = query.evaluate(chain_graph, limit=1)
        assert len(limited) == 1

    def test_is_consistent_with(self, chain_graph):
        query = NaryPathQuery.parse(["a", "b"], chain_graph.alphabet)
        assert query.is_consistent_with(
            chain_graph, {("n1", "n2", "n3")}, {("n3", "n4", "n1")}
        )

    def test_equality_and_hash(self):
        assert NaryPathQuery.parse(["a", "b"]) == NaryPathQuery.parse(["a", "b"])
        assert NaryPathQuery.parse(["a", "b"]) != NaryPathQuery.parse(["a", "c"])
