"""Unit tests for selectivity measurement (Table 1 support)."""

import pytest

from repro.errors import QueryError
from repro.graphdb import GraphDB
from repro.queries import PathQuery, selectivity, selectivity_report


class TestSelectivity:
    def test_selectivity_value(self, g0):
        query = PathQuery.parse("a", g0.alphabet)
        assert selectivity(query, g0) == pytest.approx(6 / 7)

    def test_report_contains_all_columns(self, g0):
        queries = {
            "q1": PathQuery.parse("(a.b)*.c", g0.alphabet),
            "q2": PathQuery.parse("a", g0.alphabet),
        }
        report = selectivity_report(queries, g0)
        assert set(report) == {"q1", "q2"}
        assert report["q1"]["selected_nodes"] == 2
        assert report["q1"]["selectivity"] == pytest.approx(2 / 7)
        assert report["q1"]["selectivity_percent"] == pytest.approx(100 * 2 / 7)
        assert report["q2"]["expression"] == "a"

    def test_report_accepts_sequence_of_pairs(self, g0):
        report = selectivity_report([("q", PathQuery.parse("c", g0.alphabet))], g0)
        assert report["q"]["selected_nodes"] == len(
            PathQuery.parse("c", g0.alphabet).evaluate(g0)
        )

    def test_empty_graph_raises(self):
        with pytest.raises(QueryError):
            selectivity_report({}, GraphDB(["a"]))
