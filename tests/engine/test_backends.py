"""Cross-backend parity: every kernel backend returns byte-identical results.

The pure-python kernels in :mod:`repro.engine.executor` are the oracle; the
numpy-vectorized kernels, the bidirectional pair search and the sharded
(seed-range-partitioned) execution must reproduce their answers exactly --
selected sets, per-depth layer sizes AND the kernel work counters -- on a
randomized population of seeded graphs that includes the documented edge
cases (empty language, empty-word acceptance, query labels the graph never
uses, graphs with isolated nodes).
"""

from __future__ import annotations

import random

import pytest

from repro.automata.kernel import TableDFA
from repro.engine import executor
from repro.engine.executor import KernelStats
from repro.engine.index import GraphIndex
from repro.engine.parallel import (
    binary_evaluate_sharded,
    evaluate_all_sharded,
    shard_bounds,
)
from repro.engine.plan import compile_plan
from repro.graphdb import GraphDB
from repro.regex import compile_query

numpy = pytest.importorskip("numpy")

LABELS = ["a", "b", "c"]

#: Expressions covering the kernel edge cases: plain walks, stars (empty-word
#: acceptance), an empty language on most graphs ("b.b.c.c"), eps-only, and
#: a label ("z") the graphs never carry.
EXPRESSIONS = [
    "a",
    "(a.b)*.c",
    "a*.(c+b.c)",
    "b.b.c.c",
    "eps",
    "a*",
    "(a+b)*.c",
    "c.b*",
    "z",
]


def random_graph(rng: random.Random) -> GraphDB:
    graph = GraphDB(LABELS)
    node_count = rng.randint(0, 18)
    if node_count and rng.random() < 0.2:
        graph.add_nodes([f"iso{i}" for i in range(rng.randint(1, 3))])
    for _ in range(rng.randint(0, 60)):
        if node_count == 0:
            break
        graph.add_edge(
            rng.randrange(node_count), rng.choice(LABELS), rng.randrange(node_count)
        )
    return graph


def seeded_graphs(count: int) -> list[GraphDB]:
    return [random_graph(random.Random(seed)) for seed in range(count)]


GRAPHS = seeded_graphs(50)
ALPHABET = LABELS + ["z"]


def plan_for(expression: str):
    return compile_plan(compile_query(expression, ALPHABET))


class TestNumpyEvaluateAll:
    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_matches_python_on_population(self, expression):
        plan = plan_for(expression)
        for graph in GRAPHS:
            index = GraphIndex.build(graph)
            py_stats, np_stats = KernelStats(), KernelStats()
            py_depths: list[int] = []
            np_depths: list[int] = []
            expected = executor.evaluate_all(
                index, plan, py_stats, depth_sizes=py_depths
            )
            got = executor.numpy_evaluate_all(
                index, plan, np_stats, depth_sizes=np_depths
            )
            assert got == expected
            assert np_depths == py_depths
            assert np_stats.mark() == py_stats.mark()


class TestNumpyBinaryEvaluate:
    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_matches_python_on_population(self, expression):
        plan = plan_for(expression)
        for graph in GRAPHS:
            index = GraphIndex.build(graph)
            py_stats, np_stats = KernelStats(), KernelStats()
            expected = executor.binary_evaluate(index, plan, py_stats)
            got = executor.numpy_binary_evaluate(index, plan, np_stats)
            assert got == expected
            assert np_stats.mark() == py_stats.mark()


class TestNumpyTableEvaluateAll:
    @pytest.mark.parametrize("expression", EXPRESSIONS)
    @pytest.mark.parametrize("max_depth", [None, 0, 2])
    def test_matches_python_on_population(self, expression, max_depth):
        table, _ = TableDFA.from_dfa(compile_query(expression, ALPHABET))
        for graph in GRAPHS[:25]:
            index = GraphIndex.build(graph)
            py_stats, np_stats = KernelStats(), KernelStats()
            py_depths: list[int] = []
            np_depths: list[int] = []
            expected = executor.table_evaluate_all(
                index, table, py_stats, max_depth=max_depth, depth_sizes=py_depths
            )
            got = executor.numpy_table_evaluate_all(
                index, table, np_stats, max_depth=max_depth, depth_sizes=np_depths
            )
            assert got == expected
            assert np_depths == py_depths
            assert np_stats.mark() == py_stats.mark()


class TestBidirectionalPairSearch:
    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_matches_forward_oracle(self, expression):
        plan = plan_for(expression)
        for seed, graph in enumerate(GRAPHS):
            index = GraphIndex.build(graph)
            if index.num_nodes == 0:
                continue
            rng = random.Random(1000 + seed)
            for _ in range(6):
                origin = rng.randrange(index.num_nodes)
                end = rng.randrange(index.num_nodes)
                expected = executor.pair_selects(index, plan, origin, end)
                got = executor.bidirectional_pair_selects(index, plan, origin, end)
                assert got == expected, (expression, seed, origin, end)

    def test_kernel_choice_is_deterministic(self):
        plan = plan_for("(a.b)*.c")
        index = GraphIndex.build(GRAPHS[3])
        kind = executor.choose_pair_kernel(index, plan)
        assert kind in ("forward", "bidirectional")
        assert executor.choose_pair_kernel(index, plan) == kind


class TestShardInvariance:
    """The union of shard results must not depend on the shard count."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("expression", ["(a.b)*.c", "a*", "b.b.c.c", "z", "c.b*"])
    def test_evaluate_all_shard_counts(self, backend, expression):
        plan = plan_for(expression)
        for graph in GRAPHS[:20]:
            index = GraphIndex.build(graph)
            single = evaluate_all_sharded(index, plan, 1, backend=backend)
            for shards in (2, 4, 8):
                assert (
                    evaluate_all_sharded(index, plan, shards, backend=backend)
                    == single
                )

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("expression", ["(a.b)*.c", "a*", "b.b.c.c", "z"])
    def test_binary_evaluate_shard_counts(self, backend, expression):
        plan = plan_for(expression)
        for graph in GRAPHS[:20]:
            index = GraphIndex.build(graph)
            single = binary_evaluate_sharded(index, plan, 1, backend=backend)
            for shards in (2, 4, 8):
                assert (
                    binary_evaluate_sharded(index, plan, shards, backend=backend)
                    == single
                )

    def test_sharded_matches_unsharded_python_oracle(self):
        plan = plan_for("(a+b)*.c")
        for graph in GRAPHS[:20]:
            index = GraphIndex.build(graph)
            expected = executor.evaluate_all(index, plan)
            assert evaluate_all_sharded(index, plan, 4) == expected
            assert binary_evaluate_sharded(index, plan, 4) == executor.binary_evaluate(
                index, plan
            )


class TestShardBounds:
    def test_partition_covers_range_disjointly(self):
        for n in (0, 1, 2, 7, 64, 1001):
            for shards in (1, 2, 3, 8, 100):
                bounds = shard_bounds(n, shards)
                covered = [i for lo, hi in bounds for i in range(lo, hi)]
                assert covered == list(range(n))
                assert all(lo < hi for lo, hi in bounds if n)

    def test_degenerate_inputs(self):
        assert shard_bounds(0, 4) == [(0, 0)]
        assert shard_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]
        assert shard_bounds(10, 0) == [(0, 10)]


class TestBackendResolution:
    def test_auto_prefers_numpy_when_available(self):
        assert executor.resolve_backend("auto") == "numpy"
        assert executor.resolve_backend("python") == "python"
        assert executor.resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            executor.resolve_backend("fortran")
