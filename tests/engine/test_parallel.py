"""The sharded process-pool execution layer (:mod:`repro.engine.parallel`).

Pool behaviour is exercised over real temporary snapshots: the workers
``open_snapshot`` the same file the parent mapped, so these tests cover the
whole zero-copy transport -- plan pickling, worker initialization, shard
fan-out, stats merging -- and the conservative fallbacks (heap graphs,
small graphs, broken pools must all quietly run in-process).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.engine import executor
from repro.engine.engine import QueryEngine
from repro.engine.executor import KernelStats
from repro.engine.index import GraphIndex
from repro.engine.parallel import ParallelExecutor
from repro.engine.plan import compile_plan
from repro.graphdb import GraphDB
from repro.regex import compile_query
from repro.storage.snapshot import open_snapshot, write_snapshot
from repro.storage.view import GraphView
from repro.telemetry.metrics import MetricsRegistry

LABELS = ["a", "b", "c"]
ALPHABET = LABELS + ["z"]


def build_graph(seed: int, nodes: int, edges: int) -> GraphDB:
    rng = random.Random(seed)
    graph = GraphDB(LABELS)
    for _ in range(edges):
        graph.add_edge(
            f"n{rng.randrange(nodes)}", rng.choice(LABELS), f"n{rng.randrange(nodes)}"
        )
    return graph


@pytest.fixture(scope="module")
def snapshot_view(tmp_path_factory):
    graph = build_graph(11, 400, 2500)
    path = tmp_path_factory.mktemp("parallel") / "graph.rgz"
    write_snapshot(GraphIndex.build(graph), path)
    return GraphView(open_snapshot(path)), graph


class TestPlanPickling:
    def test_round_trip_preserves_tables(self):
        plan = compile_plan(compile_query("(a.b)*.c", ALPHABET))
        _ = plan.rdelta  # force the lazy reverse tables before pickling
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.num_states == plan.num_states
        assert clone.delta == plan.delta
        assert clone.initials == plan.initials
        assert clone.finals == plan.finals
        assert clone.symbols == plan.symbols
        # the lazy reverse tables are dropped in transit and rebuilt on use
        assert clone._rdelta is None
        assert clone.rdelta == plan.rdelta

    def test_pickled_plan_evaluates_identically(self):
        graph = build_graph(3, 40, 200)
        index = GraphIndex.build(graph)
        plan = compile_plan(compile_query("a*.(c+b.c)", ALPHABET))
        clone = pickle.loads(pickle.dumps(plan))
        assert executor.evaluate_all(index, clone) == executor.evaluate_all(index, plan)


class TestEligibility:
    def test_heap_index_is_declined(self):
        pool = ParallelExecutor(workers=4, min_shard_edges=0)
        index = GraphIndex.build(build_graph(1, 30, 100))
        assert not pool.available_for(index)
        plan = compile_plan(compile_query("a", ALPHABET))
        assert pool.evaluate_all(index, plan) is None
        assert pool.binary_evaluate(index, plan) is None
        assert pool.evaluate_plans(index, [plan]) is None

    def test_small_snapshot_is_declined(self, snapshot_view):
        view, _ = snapshot_view
        pool = ParallelExecutor(workers=4, min_shard_edges=10**9)
        assert not pool.available_for(view.prebuilt_index)

    def test_single_worker_is_declined(self, snapshot_view):
        view, _ = snapshot_view
        pool = ParallelExecutor(workers=1, min_shard_edges=0)
        assert not pool.available_for(view.prebuilt_index)

    def test_broken_path_is_remembered(self, snapshot_view):
        view, _ = snapshot_view
        index = view.prebuilt_index
        registry = MetricsRegistry()
        pool = ParallelExecutor(workers=2, min_shard_edges=0, registry=registry)
        assert pool.available_for(index)
        pool._discard_pool(pool.snapshot_path(index))
        assert not pool.available_for(index)
        assert registry.counter("kernel_shard_fallbacks_total").value == 1


class TestPoolExecution:
    def test_evaluate_all_matches_oracle(self, snapshot_view):
        view, _ = snapshot_view
        index = view.prebuilt_index
        pool = ParallelExecutor(workers=2, min_shard_edges=0)
        try:
            for expression in ["(a.b)*.c", "a*", "b.b.c.c", "z", "(a+b)*.c"]:
                plan = compile_plan(compile_query(expression, ALPHABET))
                expected = executor.evaluate_all(index, plan)
                stats = KernelStats()
                got = pool.evaluate_all(index, plan, stats)
                assert got == expected, expression
        finally:
            pool.shutdown()

    def test_binary_evaluate_matches_oracle(self, snapshot_view):
        view, _ = snapshot_view
        index = view.prebuilt_index
        pool = ParallelExecutor(workers=2, min_shard_edges=0)
        try:
            plan = compile_plan(compile_query("a.b*", ALPHABET))
            assert pool.binary_evaluate(index, plan) == executor.binary_evaluate(
                index, plan
            )
        finally:
            pool.shutdown()

    def test_evaluate_plans_preserves_order(self, snapshot_view):
        view, _ = snapshot_view
        index = view.prebuilt_index
        pool = ParallelExecutor(workers=2, min_shard_edges=0)
        try:
            plans = [
                compile_plan(compile_query(e, ALPHABET))
                for e in ["a", "b.c", "c*", "(a.b)*.c", "z"]
            ]
            expected = [executor.evaluate_all(index, plan) for plan in plans]
            assert pool.evaluate_plans(index, plans) == expected
            assert pool.evaluate_plans(index, []) == []
        finally:
            pool.shutdown()

    def test_worker_stats_are_merged(self, snapshot_view):
        view, _ = snapshot_view
        index = view.prebuilt_index
        pool = ParallelExecutor(workers=2, min_shard_edges=0)
        try:
            plan = compile_plan(compile_query("(a+b)*.c", ALPHABET))
            stats = KernelStats()
            pool.evaluate_all(index, plan, stats)
            states, edges = stats.mark()
            assert states > 0 and edges > 0
        finally:
            pool.shutdown()

    def test_shards_counter_is_bumped(self, snapshot_view):
        view, _ = snapshot_view
        index = view.prebuilt_index
        registry = MetricsRegistry()
        pool = ParallelExecutor(workers=2, min_shard_edges=0, registry=registry)
        try:
            plan = compile_plan(compile_query("a.b", ALPHABET))
            pool.evaluate_all(index, plan)
            assert registry.counter("kernel_shards_total").value == 2
        finally:
            pool.shutdown()


class TestEngineIntegration:
    def test_sharded_engine_matches_python_engine(self, snapshot_view):
        view, _ = snapshot_view
        reference = QueryEngine(backend="python")
        sharded = QueryEngine(workers=2, min_shard_edges=0)
        try:
            for expression in ["(a.b)*.c", "a*", "b.b.c.c"]:
                query = compile_query(expression, ALPHABET)
                assert sharded.evaluate(view, query) == reference.evaluate(view, query)
                assert sharded.binary_evaluate(view, query) == reference.binary_evaluate(
                    view, query
                )
        finally:
            sharded.close()

    def test_evaluate_many_fans_out_and_dedupes(self, snapshot_view):
        view, _ = snapshot_view
        engine = QueryEngine(workers=2, min_shard_edges=0)
        reference = QueryEngine(backend="python")
        try:
            queries = [
                compile_query(e, ALPHABET)
                for e in ["a.b", "c*", "a.b", "(a+b)*.c", "c*"]
            ]
            got = engine.evaluate_many(view, queries)
            expected = [reference.evaluate(view, q) for q in queries]
            assert got == expected
            rendered = engine.telemetry.registry.render_prometheus()
            assert 'engine_backend_selected_total{backend="sharded"}' in rendered
        finally:
            engine.close()

    def test_heap_graph_engine_falls_back_in_process(self):
        graph = build_graph(5, 60, 300)
        engine = QueryEngine(workers=4, min_shard_edges=0)
        reference = QueryEngine(backend="python")
        try:
            query = compile_query("(a.b)*.c", ALPHABET)
            assert engine.evaluate(graph, query) == reference.evaluate(graph, query)
            rendered = engine.telemetry.registry.render_prometheus()
            assert 'backend="sharded"' not in rendered
        finally:
            engine.close()

    def test_workers_surface_in_workspace_stats(self, tmp_path):
        from repro.api import Workspace
        from repro.api.config import EngineConfig

        graph = build_graph(7, 50, 260)
        path = tmp_path / "ws.rgz"
        write_snapshot(GraphIndex.build(graph), path)
        workspace = Workspace.open_snapshot(
            str(path), engine_config=EngineConfig(backend="python", workers=3)
        )
        stats = workspace.stats()
        assert stats["backend"] == "python"
        assert stats["workers"] == 3
