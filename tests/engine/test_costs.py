"""The shared kernel cost model, exercised on degree-skewed graphs.

The absolute estimates are unitless; what these tests pin is (a) the free
statistics feeding them -- transition-weighted scan work, first-layer
fan-outs -- computed exactly, and (b) the *orderings* the engine consumes:
python wins small graphs, the vectorized kernel wins dense whole-graph
walks, the chunked numpy binary kernel is kept off sparse selective
workloads, and the pair-strategy rule reproduces the executor's historical
``forward*8 <= backward`` decision.
"""

from __future__ import annotations

from repro.engine.costs import (
    NUMPY_CALL_WEIGHT,
    SHARD_CALL_WEIGHT,
    CostEstimate,
    CostModel,
    cheapest,
)
from repro.engine.index import GraphIndex
from repro.engine.plan import compile_plan
from repro.graphdb import GraphDB
from repro.regex import compile_query

ALPHABET = ["r", "d", "z"]


def skewed_graph(rare: int = 2, dense: int = 200) -> GraphDB:
    """A graph where label "r" is rare and label "d" is everywhere."""
    graph = GraphDB(["r", "d"])
    for i in range(dense):
        graph.add_edge(f"s{i}", "d", "hub")
    for i in range(rare):
        graph.add_edge(f"t{i}", "r", f"u{i}")
    return graph


def chain_graph(length: int) -> GraphDB:
    graph = GraphDB(["r", "d"])
    for i in range(length):
        graph.add_edge(i, "d", i + 1)
    graph.add_edge(0, "r", 1)
    return graph


def model_for(graph: GraphDB) -> CostModel:
    return CostModel(GraphIndex.build(graph))


def plan_for(expression: str):
    return compile_plan(compile_query(expression, ALPHABET))


class TestSharedQuantities:
    def test_scan_work_is_transition_weighted_edge_count(self):
        graph = skewed_graph(rare=3, dense=50)
        model = model_for(graph)
        index = GraphIndex.build(graph)
        rare_count = index.label_edge_counts()[index.label_ids["r"]]
        assert rare_count == 3
        # A single-transition automaton scans exactly its label's edges.
        assert model.scan_work(plan_for("r")) == 3
        assert model.scan_work(plan_for("d")) == 50

    def test_absent_labels_contribute_nothing(self):
        model = model_for(skewed_graph())
        assert model.scan_work(plan_for("z")) == 0
        assert model.scan_work(plan_for("z.z")) == 0

    def test_first_layer_costs_split_by_direction(self):
        model = model_for(skewed_graph(rare=2, dense=200))
        forward, backward = model.first_layer_costs(plan_for("r.d"))
        assert forward == 2  # "r" edges leave the initial state
        assert backward == 200  # "d" edges enter the final state

    def test_repr_mentions_shape(self):
        text = repr(model_for(skewed_graph()))
        assert "CostModel" in text and "nodes=" in text


class TestPairStrategy:
    def test_rare_origin_side_goes_forward(self):
        # forward*8 <= backward: the historical executor rule, preserved.
        model = model_for(skewed_graph(rare=2, dense=200))
        assert model.choose_pair_strategy(plan_for("r.d")) == "forward"

    def test_balanced_sides_meet_in_the_middle(self):
        model = model_for(skewed_graph(rare=2, dense=200))
        assert model.choose_pair_strategy(plan_for("d.r")) == "bidirectional"
        assert model.choose_pair_strategy(plan_for("d.d")) == "bidirectional"

    def test_pair_estimates_cover_all_strategies(self):
        estimates = model_for(skewed_graph()).pair_estimates(plan_for("r.d"))
        assert [e.strategy for e in estimates] == [
            "forward",
            "backward",
            "bidirectional",
        ]


class TestEvaluateAllEstimates:
    def test_python_always_listed_first(self):
        model = model_for(skewed_graph())
        plan = plan_for("d*")
        for numpy_ok in (False, True):
            estimates = model.evaluate_all_estimates(plan, numpy_ok=numpy_ok)
            assert estimates[0].strategy == "python"

    def test_numpy_and_sharded_are_gated(self):
        model = model_for(skewed_graph())
        plan = plan_for("d*")
        strategies = {
            e.strategy for e in model.evaluate_all_estimates(plan, numpy_ok=False)
        }
        assert strategies == {"python"}
        strategies = {
            e.strategy
            for e in model.evaluate_all_estimates(
                plan, numpy_ok=True, shard_ok=True, workers=4
            )
        }
        assert strategies == {"python", "numpy", "sharded"}
        # workers=1 cannot shard even when the pool is allowed.
        strategies = {
            e.strategy
            for e in model.evaluate_all_estimates(plan, shard_ok=True, workers=1)
        }
        assert strategies == {"python"}

    def test_python_wins_small_graphs(self):
        model = model_for(skewed_graph(rare=2, dense=30))
        estimates = model.evaluate_all_estimates(plan_for("d*"), numpy_ok=True)
        assert cheapest(estimates).strategy == "python"

    def test_numpy_wins_large_dense_walks(self):
        model = model_for(chain_graph(8000))
        estimates = model.evaluate_all_estimates(plan_for("d*"), numpy_ok=True)
        assert cheapest(estimates).strategy == "numpy"

    def test_shard_pays_only_past_the_ipc_constant(self):
        model = model_for(chain_graph(500))
        estimates = model.evaluate_all_estimates(
            plan_for("d*"), shard_ok=True, workers=8
        )
        by_name = {e.strategy: e for e in estimates}
        assert by_name["sharded"].cost > SHARD_CALL_WEIGHT
        assert cheapest(estimates).strategy == "python"


class TestBinaryEstimates:
    def test_sparse_selective_prefers_python(self):
        # One "r" edge guards the initial state: almost every source dies in
        # its first layer, which the dense numpy visited mask cannot exploit.
        model = model_for(chain_graph(2000))
        estimates = model.binary_estimates(plan_for("r.d*"), numpy_ok=True)
        assert cheapest(estimates).strategy == "python"

    def test_dense_unselective_prefers_numpy(self):
        model = model_for(chain_graph(6000))
        estimates = model.binary_estimates(plan_for("d.d*"), numpy_ok=True)
        assert cheapest(estimates).strategy == "numpy"

    def test_numpy_estimate_carries_mask_accounting(self):
        model = model_for(chain_graph(100))
        estimates = model.binary_estimates(plan_for("d*"), numpy_ok=True)
        numpy_estimate = next(e for e in estimates if e.strategy == "numpy")
        assert numpy_estimate.detail["chunks"] >= 1
        assert numpy_estimate.detail["mask_bytes"] > 0
        assert numpy_estimate.cost >= NUMPY_CALL_WEIGHT


class TestEstimateObjects:
    def test_cheapest_breaks_ties_by_listing_order(self):
        first = CostEstimate("python", 10.0)
        second = CostEstimate("numpy", 10.0)
        assert cheapest([first, second]) is first

    def test_to_dict_flattens_detail(self):
        estimate = CostEstimate("numpy", 2.5, {"chunks": 3.0})
        assert estimate.to_dict() == {"strategy": "numpy", "cost": 2.5, "chunks": 3.0}
