"""Unit tests of the engine internals: CSR index, compiled plans, caches."""

from __future__ import annotations

import pytest

from repro.automata.dfa import DFA
from repro.engine import (
    GraphIndex,
    LRUCache,
    QueryEngine,
    automaton_fingerprint,
    compile_plan,
    get_index,
)
from repro.graphdb import GraphDB
from repro.queries import PathQuery


class TestGraphIndex:
    def test_csr_matches_adjacency(self, g0):
        index = GraphIndex.build(g0)
        assert index.num_nodes == g0.node_count()
        for node in g0.nodes:
            node_id = index.node_ids[node]
            for label in g0.labels():
                label_id = index.label_ids[label]
                successors = {
                    index.nodes_by_id[t] for t in index.successors_slice(label_id, node_id)
                }
                assert successors == set(g0.successors(node, label))
                predecessors = {
                    index.nodes_by_id[t]
                    for t in index.predecessors_slice(label_id, node_id)
                }
                assert predecessors == set(g0.predecessors(node, label))

    def test_version_tracking(self):
        graph = GraphDB(["a"])
        graph.add_edge("x", "a", "y")
        index = GraphIndex.build(graph)
        assert index.is_current(graph)
        graph.add_edge("y", "a", "x")
        assert not index.is_current(graph)
        assert GraphIndex.build(graph).is_current(graph)

    def test_version_idempotent_mutations(self):
        graph = GraphDB(["a"])
        graph.add_edge("x", "a", "y")
        version = graph.version
        graph.add_edge("x", "a", "y")  # duplicate edge: no state change
        graph.add_node("x")  # existing node: no state change
        assert graph.version == version

    def test_uids_are_unique(self):
        graph = GraphDB(["a"])
        graph.add_edge("x", "a", "y")
        assert graph.uid != graph.copy().uid
        assert graph.uid != graph.subgraph({"x"}).uid

    def test_deepcopy_and_pickle_mint_fresh_uids(self):
        import copy
        import pickle

        graph = GraphDB(["a"])
        graph.add_edge(0, "a", 1)
        clone = copy.deepcopy(graph)
        assert clone.uid != graph.uid
        restored = pickle.loads(pickle.dumps(graph))
        assert restored.uid != graph.uid
        assert restored.edges == graph.edges

    def test_deepcopy_does_not_alias_result_cache(self):
        # Regression: a deepcopied graph sharing the original's uid made the
        # engine serve one graph's cached results for the other.
        import copy

        engine = QueryEngine()
        graph = GraphDB(["a"])
        graph.add_edge(0, "a", 1)
        clone = copy.deepcopy(graph)
        graph.add_edge(1, "a", 2)
        clone.add_edge(5, "a", 0)  # same version counter, different content
        query = PathQuery.parse("a.a", ["a"])
        assert engine.evaluate(graph, query) == {0}
        assert engine.evaluate(clone, query) == {5}

    def test_get_index_caches_per_version(self):
        graph = GraphDB(["a"])
        graph.add_edge("x", "a", "y")
        first = get_index(graph)
        assert get_index(graph) is first
        graph.add_edge("y", "a", "x")
        rebuilt = get_index(graph)
        assert rebuilt is not first
        assert rebuilt.is_current(graph)

    def test_empty_graph(self):
        graph = GraphDB(["a"])
        index = GraphIndex.build(graph)
        assert index.num_nodes == 0
        assert index.edge_count == 0


class TestCompiledPlan:
    def test_fingerprint_shared_by_equal_queries(self):
        left = PathQuery.parse("a.b*", ["a", "b"])
        right = PathQuery.parse("a.b*", ["a", "b"])
        assert left.dfa is not right.dfa
        assert automaton_fingerprint(left.dfa) == automaton_fingerprint(right.dfa)

    def test_fingerprint_distinguishes_languages(self):
        one = PathQuery.parse("a", ["a", "b"]).dfa
        other = PathQuery.parse("b", ["a", "b"]).dfa
        assert automaton_fingerprint(one) != automaton_fingerprint(other)

    def test_empty_word_and_empty_language_flags(self):
        star = compile_plan(PathQuery.parse("a*", ["a"]).dfa)
        assert star.accepts_empty_word
        assert not star.is_empty_language
        from repro.automata.alphabet import Alphabet

        empty = compile_plan(DFA(Alphabet(["a"]), initial=0))
        assert empty.is_empty_language

    def test_delta_round_trip(self):
        dfa = PathQuery.parse("a.b", ["a", "b"]).dfa
        plan = compile_plan(dfa)
        # rdelta inverts delta.
        for symbol_pos, by_state in enumerate(plan.delta):
            for source, targets in by_state.items():
                for target in targets:
                    assert source in plan.rdelta[symbol_pos][target]

    def test_bind_symbols_maps_missing_labels_to_minus_one(self):
        plan = compile_plan(PathQuery.parse("a.z", ["a", "z"]).dfa)
        binding = plan.bind_symbols({"a": 0, "b": 1})
        assert binding[plan.symbol_positions["a"]] == 0
        assert binding[plan.symbol_positions["z"]] == -1


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("absent")
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestEngineCaching:
    def test_plan_cache_reused_across_equal_queries(self, g0):
        engine = QueryEngine()
        engine.evaluate(g0, PathQuery.parse("(a.b)*.c", g0.alphabet))
        compilations = engine.stats.plan_compilations
        engine.evaluate(g0, PathQuery.parse("(a.b)*.c", g0.alphabet))
        assert engine.stats.plan_compilations == compilations

    def test_result_cache_invalidated_by_mutation(self):
        engine = QueryEngine()
        graph = GraphDB(["a"])
        graph.add_edge("x", "a", "y")
        query = PathQuery.parse("a.a", ["a"])
        assert engine.evaluate(graph, query) == frozenset()
        graph.add_edge("y", "a", "z")
        # The version bump must invalidate the cached empty result; the
        # stale index is refreshed from the mutation delta, not rebuilt.
        assert engine.evaluate(graph, query) == {"x"}
        assert engine.stats.index_builds == 1
        assert engine.stats.index_refreshes == 1

    def test_selects_answers_from_cached_evaluation(self, g0):
        engine = QueryEngine()
        query = PathQuery.parse("(a.b)*.c", g0.alphabet)
        selected = engine.evaluate(g0, query)
        evaluations = engine.stats.evaluations
        for node in g0.nodes:
            assert engine.selects(g0, query, node) == (node in selected)
        # Membership came from the result cache: no kernel runs.
        assert engine.stats.evaluations == evaluations

    def test_stats_snapshot_keys(self, g0):
        engine = QueryEngine()
        engine.evaluate(g0, PathQuery.parse("a", g0.alphabet))
        snapshot = engine.stats_snapshot()
        for key in (
            "evaluations",
            "index_builds",
            "plan_compilations",
            "states_expanded",
            "edges_scanned",
            "plan_cache_hits",
            "result_cache_misses",
        ):
            assert key in snapshot

    def test_clear_caches(self, g0):
        engine = QueryEngine()
        engine.evaluate(g0, PathQuery.parse("a", g0.alphabet))
        engine.clear_caches()
        assert len(engine.plan_cache) == 0
        assert len(engine.result_cache) == 0
