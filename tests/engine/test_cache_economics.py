"""Cache economics: byte budgets, eviction accounting, cross-engine sharing.

The LRU caches gained two economic dimensions in the planner PR: an
optional **byte budget** (estimated entry sizes; LRU eviction past it, the
most recent entry always survives) and a process-wide **shared registry**
keyed by snapshot content identity, which lets every engine serving the
same bytes pay for a plan or a result exactly once.
"""

from __future__ import annotations

import pytest

from repro.engine import QueryEngine
from repro.engine.cache import (
    LRUCache,
    clear_shared_caches,
    estimate_entry_bytes,
    shared_cache_keys,
    shared_caches,
)
from repro.graphdb import GraphDB
from repro.queries import PathQuery


@pytest.fixture(autouse=True)
def _isolated_registry():
    clear_shared_caches()
    yield
    clear_shared_caches()


def big_value(tag: int) -> frozenset:
    return frozenset((tag, i) for i in range(500))


class TestEstimateEntryBytes:
    def test_proportional_to_cardinality(self):
        small = estimate_entry_bytes(frozenset(range(10)))
        large = estimate_entry_bytes(frozenset(range(10_000)))
        assert large > small * 100

    def test_costs_compiled_plans_from_their_table(self):
        class FakePlan:
            num_states = 10
            symbols = ("a", "b", "c")

        class BiggerPlan:
            num_states = 100
            symbols = ("a", "b", "c")

        assert estimate_entry_bytes(BiggerPlan()) > estimate_entry_bytes(FakePlan())

    def test_flat_buffers_are_exact_enough(self):
        assert estimate_entry_bytes(b"x" * 1000) >= 1000


class TestByteBudget:
    def test_budget_evicts_lru_entries(self):
        cache = LRUCache(100, budget_bytes=estimate_entry_bytes(big_value(0)) * 3)
        for tag in range(10):
            cache.put(tag, big_value(tag))
        assert len(cache) < 10
        assert cache.evictions > 0
        assert cache.size_bytes <= cache.budget_bytes

    def test_most_recent_entry_always_survives(self):
        cache = LRUCache(100, budget_bytes=1)  # nothing fits
        cache.put("huge", big_value(1))
        assert "huge" in cache
        cache.put("huger", big_value(2))
        assert "huger" in cache and "huge" not in cache
        assert len(cache) == 1

    def test_replacing_a_key_does_not_double_count(self):
        cache = LRUCache(100, budget_bytes=1 << 30)
        cache.put("k", big_value(1))
        first = cache.size_bytes
        cache.put("k", big_value(2))
        assert cache.size_bytes == pytest.approx(first, rel=0.2)
        assert len(cache) == 1

    def test_clear_resets_byte_accounting(self):
        cache = LRUCache(100, budget_bytes=1 << 30)
        cache.put("k", big_value(1))
        cache.clear()
        assert cache.size_bytes == 0 and len(cache) == 0

    def test_no_budget_skips_size_accounting(self):
        cache = LRUCache(100)
        cache.put("k", big_value(1))
        assert cache.size_bytes == 0
        assert cache.metrics()["budget_bytes"] is None

    def test_metrics_expose_the_economics(self):
        cache = LRUCache(4, budget_bytes=1 << 20)
        cache.put("k", "v")
        cache.get("k")
        cache.get("absent")
        metrics = cache.metrics()
        assert set(metrics) == {
            "capacity",
            "size",
            "hits",
            "misses",
            "hit_rate",
            "evictions",
            "budget_bytes",
            "size_bytes",
        }
        assert metrics["hits"] == 1 and metrics["misses"] == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(4, budget_bytes=0)


class TestSharedRegistry:
    def test_same_content_key_shares_one_pair(self):
        first = shared_caches(("rgz", "/tmp/a.rgz", 123))
        second = shared_caches(("rgz", "/tmp/a.rgz", 123))
        assert first[0] is second[0] and first[1] is second[1]
        assert shared_caches(("rgz", "/tmp/b.rgz", 999))[0] is not first[0]
        assert len(shared_cache_keys()) == 2

    def test_first_caller_fixes_the_capacities(self):
        plan_cache, result_cache = shared_caches(
            ("k",), plan_capacity=7, result_capacity=9, budget_bytes=1 << 20
        )
        again_plan, again_result = shared_caches(
            ("k",), plan_capacity=100, result_capacity=100, budget_bytes=None
        )
        assert again_plan is plan_cache and again_result is result_cache
        assert again_plan.capacity == 7
        assert again_result.capacity == 9
        assert again_result.budget_bytes == 1 << 20

    def test_adopting_engines_share_plans_and_results(self):
        graph = GraphDB(["a"])
        graph.add_edge("x", "a", "y")
        query = PathQuery.parse("a", graph.alphabet)
        first = QueryEngine()
        second = QueryEngine()
        first.adopt_shared_caches(("content", 1))
        second.adopt_shared_caches(("content", 1))
        assert first.plan_cache is second.plan_cache
        assert first.result_cache is second.result_cache
        expected = first.evaluate(graph, query)
        hits_before = second.result_cache.hits
        assert second.evaluate(graph, query) == expected
        assert second.result_cache.hits > hits_before
        # The sibling compiled nothing: the shared plan cache already had it.
        assert second.stats.plan_compilations == 0

    def test_snapshot_content_identity_spans_workspaces(self, tmp_path):
        # Two independent opens of the same snapshot mint distinct process
        # uids but identical content identities, so adopted shared caches
        # serve one open's results to the other.
        from repro.api import Workspace
        from repro.datasets import geo_graph

        path = tmp_path / "geo.rgz"
        Workspace(geo_graph()).save_snapshot(path)
        first = Workspace.open_snapshot(path)
        second = Workspace.open_snapshot(path)
        uid = first.graph.content_uid
        assert uid is not None and uid == second.graph.content_uid
        first.engine.adopt_shared_caches(uid)
        second.engine.adopt_shared_caches(uid)
        expected = first.query("(tram+bus)*.cinema").selected
        hits_before = second.engine.result_cache.hits
        assert second.query("(tram+bus)*.cinema").selected == expected
        assert second.engine.result_cache.hits > hits_before

    def test_adoption_rewires_the_stats_snapshot(self):
        engine = QueryEngine()
        engine.adopt_shared_caches(("content", 2))
        graph = GraphDB(["a"])
        graph.add_edge("x", "a", "y")
        engine.evaluate(graph, PathQuery.parse("a", graph.alphabet))
        snapshot = engine.stats.snapshot()
        assert snapshot["plan_cache_misses"] == engine.plan_cache.misses
        assert snapshot["result_cache_misses"] == engine.result_cache.misses
