"""Parity of the engine subsystem against the reference product construction.

The engine (CSR index + compiled plans + int-array kernels) must return
results identical to the original dict/frozenset implementation kept in
``repro.graphdb.product`` as ``reference_*`` -- on the paper's worked
examples, on the documented edge cases, and on randomized synthetic graphs.
"""

from __future__ import annotations

import random

import pytest

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.engine import QueryEngine
from repro.errors import GraphError
from repro.graphdb import (
    GraphDB,
    reference_any_node_selects,
    reference_binary_evaluate,
    reference_evaluate,
    reference_node_selects,
    reference_pair_selects,
)
from repro.regex import compile_query

EXPRESSIONS = ["a", "(a.b)*.c", "a*.(c+b.c)", "b.b.c.c", "eps", "a*", "(a+b)*.c", "c.b*"]


@pytest.fixture
def engine() -> QueryEngine:
    return QueryEngine()


def random_graph(rng: random.Random, labels: list[str]) -> GraphDB:
    graph = GraphDB(labels)
    node_count = rng.randint(2, 14)
    for _ in range(rng.randint(1, 40)):
        graph.add_edge(
            rng.randint(0, node_count), rng.choice(labels), rng.randint(0, node_count)
        )
    return graph


class TestWorkedExamples:
    def test_paper_examples_on_g0(self, engine, g0):
        assert engine.evaluate(g0, compile_query("a", g0.alphabet)) == g0.nodes - {"v4"}
        assert engine.evaluate(g0, compile_query("(a.b)*.c", g0.alphabet)) == {"v1", "v3"}
        assert engine.evaluate(g0, compile_query("b.b.c.c", g0.alphabet)) == frozenset()

    def test_geo_running_example(self, engine, geo):
        query = compile_query("(tram+bus)*.cinema", geo.alphabet)
        assert engine.evaluate(geo, query) == {"N1", "N2", "N4", "N6"}


class TestEdgeCases:
    def test_empty_language_no_finals(self, engine, g0):
        empty = DFA(g0.alphabet, initial=0)
        assert engine.evaluate(g0, empty) == frozenset()
        assert engine.binary_evaluate(g0, empty) == frozenset()
        assert not engine.any_selects(g0, empty, list(g0.nodes))

    def test_empty_language_unreachable_final(self, engine, g0):
        # A final state exists but no transition reaches it.
        dfa = DFA(g0.alphabet, initial=0, states=[0, 1], finals=[1])
        assert engine.evaluate(g0, dfa) == frozenset()
        assert not engine.selects(g0, dfa, "v1")

    def test_epsilon_nfa_rejected(self, engine, g0):
        nfa = NFA(g0.alphabet, states=[0, 1], initial=[0], finals=[1])
        nfa.add_epsilon_transition(0, 1)
        with pytest.raises(GraphError):
            engine.evaluate(g0, nfa)
        with pytest.raises(GraphError):
            engine.any_selects(g0, nfa, ["v1"])
        with pytest.raises(GraphError):
            engine.any_selects(g0, nfa, ["v1"], ephemeral=True)

    def test_epsilon_free_nfa_accepted(self, engine, g0):
        nfa = compile_query("a.b", g0.alphabet).to_nfa()
        assert engine.evaluate(g0, nfa) == reference_evaluate(g0, nfa)

    def test_unknown_node_raises(self, engine, g0):
        query = compile_query("a", g0.alphabet)
        with pytest.raises(GraphError):
            engine.selects(g0, query, "missing")
        with pytest.raises(GraphError):
            engine.any_selects(g0, query, ["v1", "missing"])
        with pytest.raises(GraphError):
            engine.pair_selects(g0, query, "v1", "missing")
        with pytest.raises(GraphError):
            engine.pair_selects(g0, query, "missing", "v1", ephemeral=True)

    def test_empty_word_acceptance(self, engine, g0):
        # initials & finals != {} : every node has the empty path.
        star = compile_query("a*", g0.alphabet)
        assert engine.evaluate(g0, star) == g0.nodes
        for node in g0.nodes:
            assert engine.selects(g0, star, node)
            assert engine.pair_selects(g0, star, node, node)

    def test_empty_node_set(self, engine, g0):
        query = compile_query("a*", g0.alphabet)
        assert not engine.any_selects(g0, query, [])
        assert not engine.any_selects(g0, query, [], ephemeral=True)

    def test_query_alphabet_disjoint_from_graph(self, engine, g0):
        query = compile_query("z", ["a", "b", "c", "z"])
        assert engine.evaluate(g0, query) == frozenset()
        assert engine.evaluate(g0, compile_query("a.b.c+z", ["a", "b", "c", "z"])) == {
            "v1",
            "v3",
        }

    def test_isolated_nodes_and_label_free_graph(self, engine):
        graph = GraphDB(["a"])
        graph.add_nodes(["x", "y"])
        query = compile_query("a", ["a"])
        assert engine.evaluate(graph, query) == frozenset()
        assert engine.evaluate(graph, compile_query("a*", ["a"])) == {"x", "y"}


class TestRandomizedParity:
    LABELS = ["a", "b", "c"]

    def test_monadic_parity(self, engine):
        rng = random.Random(7)
        for _ in range(25):
            graph = random_graph(rng, self.LABELS)
            for expression in EXPRESSIONS:
                query = compile_query(expression, self.LABELS)
                assert engine.evaluate(graph, query) == reference_evaluate(graph, query)

    def test_selects_parity(self, engine):
        rng = random.Random(11)
        for _ in range(10):
            graph = random_graph(rng, self.LABELS)
            for expression in EXPRESSIONS:
                query = compile_query(expression, self.LABELS)
                for node in sorted(graph.nodes)[:6]:
                    assert engine.selects(graph, query, node) == reference_node_selects(
                        graph, query, node
                    )

    def test_any_selects_parity_both_modes(self, engine):
        rng = random.Random(13)
        for _ in range(10):
            graph = random_graph(rng, self.LABELS)
            subset = sorted(graph.nodes)[:4]
            for expression in EXPRESSIONS:
                query = compile_query(expression, self.LABELS)
                expected = reference_any_node_selects(graph, query, subset)
                assert engine.any_selects(graph, query, subset) == expected
                assert engine.any_selects(graph, query, subset, ephemeral=True) == expected

    def test_binary_parity(self, engine):
        rng = random.Random(17)
        for _ in range(10):
            graph = random_graph(rng, self.LABELS)
            for expression in EXPRESSIONS:
                query = compile_query(expression, self.LABELS)
                pairs = reference_binary_evaluate(graph, query)
                assert engine.binary_evaluate(graph, query) == pairs
                for origin in sorted(graph.nodes)[:4]:
                    for end in sorted(graph.nodes)[:4]:
                        expected = reference_pair_selects(graph, query, origin, end)
                        assert engine.pair_selects(graph, query, origin, end) == expected
                        assert (
                            engine.pair_selects(graph, query, origin, end, ephemeral=True)
                            == expected
                        )

    def test_wrapper_functions_match_reference(self):
        # The public product.py wrappers delegate to the engine; their results
        # must still match the reference implementation they replaced.
        from repro.graphdb import binary_evaluate, evaluate

        rng = random.Random(23)
        for _ in range(8):
            graph = random_graph(rng, self.LABELS)
            for expression in EXPRESSIONS:
                query = compile_query(expression, self.LABELS)
                assert evaluate(graph, query) == reference_evaluate(graph, query)
                assert binary_evaluate(graph, query) == reference_binary_evaluate(
                    graph, query
                )


class TestTableAutomatonParity:
    """Kernel automata through the engine: tables and folds must evaluate
    exactly like the DFAs they encode, on every path (ephemeral walks and
    compiled plans)."""

    LABELS = ["a", "b", "c"]

    def test_table_ephemeral_any_selects_matches_dfa(self, engine):
        from repro.automata.kernel import TableDFA

        rng = random.Random(23)
        for _ in range(10):
            graph = random_graph(rng, self.LABELS)
            subset = sorted(graph.nodes)[:4]
            for expression in EXPRESSIONS:
                dfa = compile_query(expression, self.LABELS)
                table, _ = TableDFA.from_dfa(dfa)
                expected = engine.any_selects(graph, dfa, subset, ephemeral=True)
                assert engine.any_selects(graph, table, subset, ephemeral=True) == expected

    def test_table_ephemeral_pair_selects_matches_dfa(self, engine):
        from repro.automata.kernel import TableDFA

        rng = random.Random(29)
        for _ in range(6):
            graph = random_graph(rng, self.LABELS)
            nodes = sorted(graph.nodes)[:4]
            for expression in EXPRESSIONS:
                dfa = compile_query(expression, self.LABELS)
                table, _ = TableDFA.from_dfa(dfa)
                for origin in nodes:
                    for end in nodes:
                        expected = engine.pair_selects(graph, dfa, origin, end, ephemeral=True)
                        assert (
                            engine.pair_selects(graph, table, origin, end, ephemeral=True)
                            == expected
                        )

    def test_merge_fold_mid_merge_matches_materialized_dfa(self, engine):
        from repro.automata.kernel import MergeFold, pta_table

        rng = random.Random(31)
        for _ in range(8):
            graph = random_graph(rng, self.LABELS)
            subset = sorted(graph.nodes)[:4]
            words = [
                tuple(rng.choice(self.LABELS) for _ in range(rng.randrange(1, 4)))
                for _ in range(rng.randrange(1, 5))
            ]
            table = pta_table(GraphDB(self.LABELS).alphabet, words)
            fold = MergeFold(table)
            roots = fold.roots()
            if len(roots) > 1:
                keep, remove = rng.sample(roots, 2)
                fold.merge(min(keep, remove), max(keep, remove))
            materialized = fold.to_table().to_dfa()
            expected = engine.any_selects(graph, materialized, subset, ephemeral=True)
            assert engine.any_selects(graph, fold, subset, ephemeral=True) == expected

    def test_compiled_table_plan_matches_dfa_plan(self, engine):
        from repro.automata.kernel import TableDFA

        rng = random.Random(37)
        for _ in range(6):
            graph = random_graph(rng, self.LABELS)
            for expression in EXPRESSIONS:
                dfa = compile_query(expression, self.LABELS)
                table, _ = TableDFA.from_dfa(dfa)
                assert engine.evaluate(graph, table) == engine.evaluate(graph, dfa)

    def test_table_fingerprint_shares_plan_cache(self):
        from repro.automata.kernel import TableDFA
        from repro.engine.plan import automaton_fingerprint

        dfa = compile_query("(a.b)*.c", self.LABELS)
        left, _ = TableDFA.from_dfa(dfa)
        right, _ = TableDFA.from_dfa(dfa)
        assert automaton_fingerprint(left) == automaton_fingerprint(right)
        engine = QueryEngine()
        assert engine.plan_for(left) is engine.plan_for(right)


class TestBatchEvaluation:
    def test_evaluate_many_matches_single_calls(self, g0):
        engine = QueryEngine()
        queries = [compile_query(expression, g0.alphabet) for expression in EXPRESSIONS]
        batched = engine.evaluate_many(g0, queries)
        assert batched == [reference_evaluate(g0, query) for query in queries]
        # One graph, one index build for the whole batch.
        assert engine.stats.index_builds == 1

    def test_evaluate_many_amortizes_caches(self, g0):
        engine = QueryEngine()
        queries = [compile_query(expression, g0.alphabet) for expression in EXPRESSIONS]
        engine.evaluate_many(g0, queries)
        evaluations_after_first = engine.stats.evaluations
        engine.evaluate_many(g0, queries)
        # The second batch is answered entirely from the result cache.
        assert engine.stats.evaluations == evaluations_after_first
