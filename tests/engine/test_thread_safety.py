"""Thread-safety regression tests: one engine hammered from N threads.

The service layer serves many tenants from one shared per-snapshot engine,
so the LRU caches, the stats counters and index resolution must survive
concurrent callers.  These tests drive them hard from a thread pool and
assert exact counts where the design promises them (locked increments,
single index build) and structural integrity everywhere else.
"""

from __future__ import annotations

import threading

import pytest

from repro.datasets.synthetic import scale_free_graph
from repro.engine.cache import LRUCache
from repro.engine.engine import QueryEngine
from repro.queries.path_query import PathQuery
from repro.telemetry.metrics import Histogram, MetricsRegistry

THREADS = 8


def _run_in_threads(worker, count=THREADS):
    """Start ``count`` threads on ``worker(i)`` behind a barrier; re-raise."""
    barrier = threading.Barrier(count)
    errors: list[BaseException] = []

    def wrapped(i):
        barrier.wait()
        try:
            worker(i)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def test_counter_inc_is_atomic():
    registry = MetricsRegistry()
    counter = registry.counter("hammer_total")
    rounds = 5000

    _run_in_threads(lambda i: [counter.inc() for _ in range(rounds)])

    assert counter.value == THREADS * rounds


def test_gauge_inc_dec_balance():
    registry = MetricsRegistry()
    gauge = registry.gauge("hammer_inflight")

    def worker(i):
        for _ in range(2000):
            gauge.inc()
            gauge.dec()

    _run_in_threads(worker)
    assert gauge.value == 0.0


def test_histogram_observe_is_atomic():
    histogram = Histogram("hammer_seconds", buckets=(0.5, 1.0, 2.0))
    rounds = 3000

    _run_in_threads(lambda i: [histogram.observe(0.75) for _ in range(rounds)])

    assert histogram.count == THREADS * rounds
    assert histogram.cumulative_counts()[-1] == THREADS * rounds
    assert histogram.sum == pytest.approx(0.75 * THREADS * rounds)


def test_registry_get_or_create_is_race_free():
    registry = MetricsRegistry()
    seen = []

    def worker(i):
        for n in range(200):
            seen.append(registry.counter(f"shared_metric_{n % 20}"))

    _run_in_threads(worker)
    # Every thread must have received the same instrument per name.
    by_name: dict[str, set[int]] = {}
    for counter in seen:
        by_name.setdefault(counter.name, set()).add(id(counter))
    assert all(len(ids) == 1 for ids in by_name.values())


def test_lru_cache_survives_concurrent_mix():
    cache = LRUCache(capacity=32)
    gets_per_thread = 4000

    def worker(i):
        for n in range(gets_per_thread):
            key = (i + n) % 100
            if cache.get(key) is None:
                cache.put(key, key * 2)

    _run_in_threads(worker)
    assert len(cache) <= cache.capacity
    # Every lookup was counted exactly once as a hit or a miss.
    assert cache.hits + cache.misses == THREADS * gets_per_thread
    # Entries are intact key -> value pairs, not corrupted links.
    for key in range(100):
        value = cache.get(key)
        assert value is None or value == key * 2


@pytest.fixture(scope="module")
def shared_graph():
    return scale_free_graph(300, alphabet_size=8, zipf_exponent=1.0, seed=13)


def test_engine_results_identical_under_concurrency(shared_graph):
    expressions = ["l00.l01", "(l00+l01)*.l02", "l03*.l01", "l02.(l00+l03)*", "l01+l02"]
    queries = [PathQuery.parse(expr, shared_graph.alphabet) for expr in expressions]

    oracle_engine = QueryEngine()
    expected = [oracle_engine.evaluate(shared_graph, query) for query in queries]

    engine = QueryEngine(result_cache_size=2)  # tiny: force concurrent eviction
    results: dict[int, list] = {}

    def worker(i):
        mine = []
        for round_no in range(30):
            # Different threads walk the workload in different orders.
            query = queries[(i + round_no) % len(queries)]
            mine.append(engine.evaluate(shared_graph, query))
        results[i] = mine

    _run_in_threads(worker)

    for i, mine in results.items():
        for round_no, selected in enumerate(mine):
            query_index = (i + round_no) % len(queries)
            assert selected == expected[query_index], (
                f"thread {i} round {round_no} diverged on {expressions[query_index]!r}"
            )
    assert len(engine.plan_cache) <= engine.plan_cache.capacity
    assert len(engine.result_cache) <= engine.result_cache.capacity
    # Locked counters: every cache-missing evaluation was counted; with a
    # 2-entry result cache over 5 queries, far more than one per query ran.
    assert engine.stats.evaluations >= len(queries)
    assert engine.stats.evaluations <= THREADS * 30


def test_concurrent_first_touch_builds_index_once(shared_graph):
    engine = QueryEngine()
    _run_in_threads(lambda i: engine.index_for(shared_graph))
    assert engine.stats.index_builds == 1


def test_stats_inc_is_atomic():
    engine = QueryEngine()
    rounds = 5000
    _run_in_threads(lambda i: [engine.stats.inc("evaluations") for _ in range(rounds)])
    assert engine.stats.evaluations == THREADS * rounds
    engine.stats.kernel.add(0, 0)  # smoke: locked kernel add
    _run_in_threads(lambda i: [engine.stats.kernel.add(2, 3) for _ in range(rounds)])
    assert engine.stats.states_expanded == 2 * THREADS * rounds
    assert engine.stats.edges_scanned == 3 * THREADS * rounds
