"""Planner parity: rewrites never change answers and never add kernel work.

The cost-based planner may only ever make evaluation *cheaper*: every
automaton rewrite is language-inclusion-checked both ways before a plan is
compiled from it, and whole-graph walks over a rewritten (smaller) automaton
can at most match the unrewritten kernel work.  This suite pins both claims
on a randomized population of seeded graphs -- byte-identical selected sets
between ``planner="auto"`` and ``planner="off"`` engines, and work counters
that never exceed the planner-off baseline -- plus the rewriter's unit
behaviors (alphabet restriction, dead-branch pruning, parity rejection
fallback) and the planned-plan cache's single-miss economics.
"""

from __future__ import annotations

import random

import pytest

from repro.automata.kernel import TableDFA, language_included_tables
from repro.engine import QueryEngine
from repro.engine.planner import (
    PLANNER_MODES,
    coerce_table,
    restrict_alphabet,
    rewrite_table,
    selectivity_ordered,
)
from repro.engine.index import GraphIndex
from repro.engine.plan import compile_plan
from repro.errors import QueryError
from repro.graphdb import GraphDB
from repro.queries import PathQuery
from repro.regex import compile_query

LABELS = ["a", "b", "c"]
#: The declared alphabet is wider than any graph's labels: "z" never occurs
#: on an edge, so the restrict-alphabet rewrite has real work to do on every
#: expression that mentions it.
ALPHABET = LABELS + ["z"]

#: Plain walks, stars (empty-word acceptance), an empty language on most
#: graphs, eps-only -- plus branches through "z" that the planner can prune
#: away entirely.
EXPRESSIONS = [
    "a",
    "(a.b)*.c",
    "a*.(c+b.c)",
    "b.b.c.c",
    "eps",
    "a*",
    "(a+b)*.c",
    "c.b*",
    "z",
    "z*.a",
    "a+z.b",
    "(a+z)*.c",
    "z.z.a + b",
]


def random_graph(rng: random.Random) -> GraphDB:
    graph = GraphDB(LABELS)
    node_count = rng.randint(0, 18)
    if node_count and rng.random() < 0.2:
        graph.add_nodes([f"iso{i}" for i in range(rng.randint(1, 3))])
    for _ in range(rng.randint(0, 60)):
        if node_count == 0:
            break
        graph.add_edge(
            rng.randrange(node_count), rng.choice(LABELS), rng.randrange(node_count)
        )
    return graph


GRAPHS = [random_graph(random.Random(seed)) for seed in range(50)]


def table_for(expression: str) -> TableDFA:
    return TableDFA.from_dfa(compile_query(expression, ALPHABET))[0]


def query_for(expression: str) -> PathQuery:
    return PathQuery.parse(expression, ALPHABET)


class TestRewriteTable:
    def test_restricts_symbols_the_graph_never_carries(self):
        outcome = rewrite_table(table_for("a+z.b"), LABELS)
        assert outcome.parity == "verified"
        assert "restrict-alphabet" in outcome.applied
        assert outcome.symbols_after < outcome.symbols_before
        assert set(outcome.table.alphabet.symbols) <= set(LABELS)

    def test_prunes_branches_behind_dropped_symbols(self):
        # After dropping "z" the z.b arm's states lead nowhere: they must go.
        outcome = rewrite_table(table_for("a+z.b"), LABELS)
        assert "prune-dead" in outcome.applied
        assert outcome.states_after < outcome.states_before

    def test_clean_when_nothing_to_rewrite(self):
        table = TableDFA.from_dfa(compile_query("a.b", LABELS))[0]
        outcome = rewrite_table(table, LABELS)
        assert outcome.parity == "clean"
        assert outcome.applied == ()
        assert outcome.table is table

    def test_never_grows_on_population(self):
        for expression in EXPRESSIONS:
            outcome = rewrite_table(table_for(expression), LABELS)
            assert outcome.states_after <= outcome.states_before
            assert outcome.symbols_after <= outcome.symbols_before
            assert outcome.parity in ("clean", "verified")

    def test_rewritten_language_equals_restriction(self):
        # The parity the rewriter claims must be independently reproducible:
        # the rewritten automaton accepts exactly the restricted language.
        for expression in EXPRESSIONS:
            table = table_for(expression)
            outcome = rewrite_table(table, LABELS)
            if outcome.parity != "verified":
                continue
            baseline = restrict_alphabet(table, LABELS)
            assert language_included_tables(baseline, outcome.table)
            assert language_included_tables(outcome.table, baseline)

    def test_max_passes_zero_only_restricts(self):
        outcome = rewrite_table(table_for("a+z.b"), LABELS, max_passes=0)
        assert outcome.applied == ("restrict-alphabet",)
        assert outcome.parity == "verified"

    def test_outcome_to_dict_shape(self):
        report = rewrite_table(table_for("z*.a"), LABELS).to_dict()
        assert set(report) == {"rewrites", "parity", "states", "symbols"}
        assert set(report["states"]) == {"before", "after"}

    def test_coerce_table_rejects_non_automata(self):
        with pytest.raises(QueryError):
            coerce_table("not an automaton")

    def test_planner_modes_frozen(self):
        assert PLANNER_MODES == ("auto", "off")


class TestSelectivityOrdered:
    def test_moves_sorted_by_label_rarity(self):
        graph = GraphDB(["a", "b"])
        for i in range(30):
            graph.add_edge(i, "a", i + 1)
        graph.add_edge(0, "b", 31)
        index = GraphIndex.build(graph)
        plan = compile_plan(compile_query("(a+b).a*", ["a", "b"]))
        ordered = selectivity_ordered(plan, index)
        sym_labels = plan.bind_symbols(index.label_ids)
        counts = index.label_edge_counts()
        for moves in ordered.state_moves:
            weights = [
                counts[sym_labels[pos]] if sym_labels[pos] >= 0 else 0
                for pos, _ in moves
            ]
            assert weights == sorted(weights)

    def test_ordering_preserves_fingerprint_and_shape(self):
        graph = GRAPHS[7]
        index = GraphIndex.build(graph)
        plan = compile_plan(compile_query("(a+b)*.c", ALPHABET))
        ordered = selectivity_ordered(plan, index)
        assert ordered.fingerprint == plan.fingerprint
        assert ordered.num_states == plan.num_states
        for before, after in zip(plan.state_moves, ordered.state_moves):
            assert sorted(before) == sorted(after)


class TestEngineParityRandomized:
    """Planner-on and planner-off engines agree byte for byte."""

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_evaluate_identical_on_population(self, expression):
        on = QueryEngine(planner="auto")
        off = QueryEngine(planner="off")
        query = query_for(expression)
        for graph in GRAPHS:
            assert on.evaluate(graph, query) == off.evaluate(graph, query)

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_binary_evaluate_identical_on_population(self, expression):
        on = QueryEngine(planner="auto")
        off = QueryEngine(planner="off")
        query = query_for(expression)
        for graph in GRAPHS[:25]:
            assert on.binary_evaluate(graph, query) == off.binary_evaluate(graph, query)

    @pytest.mark.parametrize("expression", ["(a+z)*.c", "a+z.b", "c.b*"])
    def test_pair_and_membership_probes_identical(self, expression):
        on = QueryEngine(planner="auto")
        off = QueryEngine(planner="off")
        query = query_for(expression)
        for graph in GRAPHS[:20]:
            nodes = sorted(graph.nodes, key=repr)[:4]
            for node in nodes:
                assert on.selects(graph, query, node) == off.selects(graph, query, node)
            for origin in nodes:
                for end in nodes:
                    assert on.pair_selects(graph, query, origin, end) == off.pair_selects(
                        graph, query, origin, end
                    )

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_planner_never_does_more_whole_graph_work(self, expression):
        # Forced python backend on both sides: the counters then measure the
        # same kernel, so the only difference is the automaton the planner
        # compiled.  A rewritten (quotient) automaton expands at most the
        # original's product pairs and scans at most its edges.
        query = query_for(expression)
        for graph in GRAPHS[:25]:
            on = QueryEngine(planner="auto", backend="python")
            off = QueryEngine(planner="off", backend="python")
            assert on.evaluate(graph, query) == off.evaluate(graph, query)
            on_work = on.stats.states_expanded + on.stats.edges_scanned
            off_work = off.stats.states_expanded + off.stats.edges_scanned
            assert on_work <= off_work


class TestPlannedPlanCache:
    def test_single_miss_then_hits(self):
        engine = QueryEngine(planner="auto")
        graph = GRAPHS[3]
        query = query_for("(a+z)*.c")
        engine.evaluate(graph, query)
        assert engine.plan_cache.misses == 1
        assert engine.stats.plan_compilations == 1
        engine.evaluate(graph, query)
        assert engine.plan_cache.misses == 1
        assert engine.plan_cache.hits >= 1
        assert engine.stats.plan_compilations == 1

    def test_off_mode_compiles_verbatim(self):
        engine = QueryEngine(planner="off")
        graph = GRAPHS[3]
        query = query_for("a+z.b")
        plan, report = engine._resolve_plan(graph, query)
        assert report is None
        assert plan.fingerprint == engine.plan_for(query).fingerprint


class TestEngineExplain:
    def test_explain_reports_rewrites_costs_and_choice(self):
        engine = QueryEngine(planner="auto")
        graph = GRAPHS[5]
        report = engine.explain(graph, query_for("a+z.b"))
        assert set(report) >= {
            "semantics",
            "planner",
            "plan",
            "estimates",
            "pair_estimates",
            "chosen",
            "cache",
            "graph",
        }
        assert report["planner"]["mode"] == "auto"
        assert "restrict-alphabet" in report["planner"]["rewrites"]
        assert report["estimates"], "at least the python strategy must be costed"
        strategies = [estimate["strategy"] for estimate in report["estimates"]]
        assert "python" in strategies
        assert report["chosen"]["strategy"] in ("python", "numpy", "sharded")
        assert report["chosen"]["pair_strategy"] in ("forward", "bidirectional")
        assert report["graph"]["nodes"] == graph.node_count()

    def test_explain_off_mode(self):
        engine = QueryEngine(planner="off")
        report = engine.explain(GRAPHS[5], query_for("a+z.b"))
        assert report["planner"]["mode"] == "off"
        assert report["planner"]["rewrites"] == []

    def test_explain_runs_no_kernel(self):
        engine = QueryEngine(planner="auto")
        engine.explain(GRAPHS[5], query_for("(a+b)*.c"))
        assert engine.stats.evaluations == 0
        assert engine.stats.states_expanded == 0

    def test_unknown_planner_mode_rejected(self):
        with pytest.raises(ValueError):
            QueryEngine(planner="aggressive")
