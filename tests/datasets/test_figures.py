"""Tests that the reproduced figure graphs satisfy the paper's stated properties."""

from repro.datasets import (
    certain_node_graph,
    example_graph_g0,
    geo_graph,
    inconsistent_sample_graph,
    prefix_equivalent_graph,
    theorem_graph_for_abstar_c,
)
from repro.datasets.figures import g0_characteristic_sample
from repro.learning import Sample, is_consistent, learn_path_query
from repro.queries import PathQuery


class TestGeoGraph:
    def test_running_example_selection(self):
        geo = geo_graph()
        goal = PathQuery.parse("(tram+bus)*.cinema", geo.alphabet)
        assert goal.evaluate(geo) == {"N1", "N2", "N4", "N6"}

    def test_negative_example_n5(self):
        geo = geo_graph()
        goal = PathQuery.parse("(tram+bus)*.cinema", geo.alphabet)
        assert not goal.selects(geo, "N5")

    def test_restaurant_query(self):
        geo = geo_graph()
        assert PathQuery.parse("restaurant", geo.alphabet).evaluate(geo) == {"N5", "N6"}


class TestG0:
    def test_size(self):
        g0 = example_graph_g0()
        assert g0.node_count() == 7
        assert g0.edge_count() == 15

    def test_stated_query_selections(self):
        g0 = example_graph_g0()
        assert PathQuery.parse("a", g0.alphabet).evaluate(g0) == g0.nodes - {"v4"}
        assert PathQuery.parse("(a.b)*.c", g0.alphabet).evaluate(g0) == {"v1", "v3"}
        assert PathQuery.parse("b.b.c.c", g0.alphabet).evaluate(g0) == frozenset()

    def test_paths_of_v1_are_infinite(self):
        g0 = example_graph_g0()
        assert g0.has_cycle_reachable_from("v1")

    def test_aba_matchings(self):
        from repro.graphdb.paths import node_has_path

        g0 = example_graph_g0()
        assert node_has_path(g0, "v1", ("a", "b", "a"))
        assert node_has_path(g0, "v3", ("a", "b", "a"))

    def test_worked_example_sample_is_consistent(self):
        g0 = example_graph_g0()
        positives, negatives = g0_characteristic_sample()
        assert is_consistent(g0, Sample(positives, negatives))


class TestInconsistentSample:
    def test_sample_is_inconsistent(self):
        graph, positives, negatives = inconsistent_sample_graph()
        assert not is_consistent(graph, Sample(positives, negatives))

    def test_learner_abstains(self):
        graph, positives, negatives = inconsistent_sample_graph()
        result = learn_path_query(graph, Sample(positives, negatives), k=4)
        assert result.is_null


class TestPrefixEquivalentGraph:
    def test_goal_and_simple_query_are_indistinguishable(self):
        graph, positives, negatives = prefix_equivalent_graph()
        goal = PathQuery.parse("(a.b)*.c", graph.alphabet)
        simple = PathQuery.parse("a", graph.alphabet)
        assert goal.evaluate(graph) == simple.evaluate(graph) == frozenset(positives)

    def test_learner_returns_equivalent_simple_query(self):
        graph, positives, negatives = prefix_equivalent_graph()
        goal = PathQuery.parse("(a.b)*.c", graph.alphabet)
        result = learn_path_query(graph, Sample(positives, negatives), k=3)
        assert result.query is not None
        assert result.query.evaluate(graph) == goal.evaluate(graph)


class TestCertainNodeGraph:
    def test_certain_node_is_certain_positive(self):
        from repro.interactive import is_certain, is_informative

        graph, positives, negatives, certain = certain_node_graph()
        sample = Sample(positives, negatives)
        assert is_certain(graph, sample, certain)
        assert not is_informative(graph, sample, certain)

    def test_unique_consistent_prefix_free_query_is_b(self):
        graph, positives, negatives, certain = certain_node_graph()
        query = PathQuery.parse("b", graph.alphabet)
        assert query.is_consistent_with(graph, positives, negatives)
        assert query.selects(graph, certain)


class TestTheoremGraph:
    def test_characteristic_sample_learns_goal(self):
        graph, positives, negatives = theorem_graph_for_abstar_c()
        goal = PathQuery.parse("(a.b)*.c", graph.alphabet)
        result = learn_path_query(graph, Sample(positives, negatives), k=7)
        assert result.query is not None
        assert result.query.equivalent_to(goal)

    def test_sample_is_consistent_with_goal(self):
        graph, positives, negatives = theorem_graph_for_abstar_c()
        goal = PathQuery.parse("(a.b)*.c", graph.alphabet)
        assert goal.is_consistent_with(graph, positives, negatives)
