"""Unit tests for the synthetic, AliBaba-like and workflow graph generators."""

import pytest

from repro.datasets import (
    generate_alibaba_like,
    scale_free_graph,
    workflow_graph,
    zipfian_label_weights,
)
from repro.datasets.alibaba import (
    ALIBABA_FILLER_LABELS,
    ALIBABA_LABEL_CLASSES,
    ALIBABA_LABEL_FREQUENCIES,
    alibaba_alphabet,
)
from repro.datasets.synthetic import default_alphabet
from repro.datasets.workflows import workflow_goal_query
from repro.errors import GraphError
from repro.queries import PathQuery


class TestScaleFree:
    def test_size_and_edge_factor(self):
        graph = scale_free_graph(200, edge_factor=3.0, seed=1)
        assert graph.node_count() == 200
        assert graph.edge_count() == pytest.approx(600, abs=30)

    def test_determinism(self):
        left = scale_free_graph(100, seed=42)
        right = scale_free_graph(100, seed=42)
        assert left.edges == right.edges

    def test_different_seeds_differ(self):
        assert scale_free_graph(100, seed=1).edges != scale_free_graph(100, seed=2).edges

    def test_zipfian_label_skew(self):
        graph = scale_free_graph(400, alphabet_size=10, zipf_exponent=1.2, seed=3)
        histogram = graph.label_histogram()
        labels = default_alphabet(10)
        assert histogram.get(labels[0], 0) > histogram.get(labels[-1], 0)

    def test_scale_free_shape(self):
        graph = scale_free_graph(400, seed=5)
        stats = graph.degree_statistics()
        # A hub should have noticeably more than the average degree.
        assert stats["max_out_degree"] >= 3 * stats["mean_out_degree"]

    def test_explicit_label_weights(self):
        graph = scale_free_graph(
            200, alphabet=["x", "y"], label_weights=[10.0, 0.1], seed=0
        )
        histogram = graph.label_histogram()
        assert histogram.get("x", 0) > histogram.get("y", 0)

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            scale_free_graph(1)
        with pytest.raises(GraphError):
            scale_free_graph(10, edge_factor=0)
        with pytest.raises(GraphError):
            scale_free_graph(10, alphabet=["x"], label_weights=[1.0, 2.0])
        with pytest.raises(GraphError):
            zipfian_label_weights(0)


class TestAlibabaLike:
    def test_default_scale_matches_paper(self):
        graph = generate_alibaba_like(node_count=500, edge_count=1300, seed=2)
        assert graph.node_count() == 500
        assert graph.edge_count() == pytest.approx(1300, abs=80)

    def test_alphabet_covers_classes_and_fillers(self):
        alphabet = set(alibaba_alphabet())
        for class_symbols in ALIBABA_LABEL_CLASSES.values():
            assert set(class_symbols) <= alphabet
        assert set(ALIBABA_FILLER_LABELS) <= alphabet
        assert set(ALIBABA_LABEL_FREQUENCIES) == alphabet

    def test_rare_labels_are_rare(self):
        graph = generate_alibaba_like(node_count=1000, edge_count=2700, seed=4)
        histogram = graph.label_histogram()
        rare = histogram.get("biomarker_of", 0)
        frequent = histogram.get("interacts", 0)
        assert rare < frequent


class TestWorkflows:
    def test_goal_selects_exactly_the_matching_runs(self):
        graph = workflow_graph(matching_runs=4, other_runs=8, seed=1)
        goal = PathQuery.parse(workflow_goal_query(), graph.alphabet)
        selected = goal.evaluate(graph)
        starts = {node for node in selected if str(node).endswith("_s0")}
        assert len(starts) == 4

    def test_requires_at_least_one_matching_run(self):
        with pytest.raises(GraphError):
            workflow_graph(matching_runs=0)

    def test_determinism(self):
        assert workflow_graph(seed=3).edges == workflow_graph(seed=3).edges
