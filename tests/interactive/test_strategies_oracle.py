"""Unit tests for node-proposal strategies and the simulated-user oracle."""

import subprocess
import sys
import textwrap

import pytest

from repro.errors import InteractionError
from repro.interactive import (
    KInformativeRandomStrategy,
    KInformativeSmallestStrategy,
    QueryOracle,
    RandomStrategy,
    make_strategy,
)
from repro.interactive.informativeness import is_k_informative, uncovered_k_paths
from repro.learning import Sample
from repro.queries import PathQuery


class TestStrategyFactory:
    def test_known_names(self):
        assert make_strategy("kR").name == "kR"
        assert make_strategy("kS").name == "kS"
        assert make_strategy("random").name == "random"

    def test_unknown_name_raises(self):
        with pytest.raises(InteractionError):
            make_strategy("clever")

    def test_invalid_pool_size_raises(self):
        with pytest.raises(InteractionError):
            make_strategy("kR", pool_size=0)


class TestRandomStrategy:
    def test_proposes_unlabeled_node(self, g0, g0_sample):
        node = RandomStrategy(seed=1).propose(g0, g0_sample, k=2)
        assert node in g0.nodes
        assert node not in g0_sample.labeled

    def test_returns_none_when_everything_is_labeled(self, g0):
        sample = Sample(set(list(g0.nodes)[:4]), set(list(g0.nodes)[4:]))
        assert RandomStrategy(seed=1).propose(g0, sample, k=2) is None


class TestKInformativeStrategies:
    def test_kr_only_proposes_k_informative_nodes(self, g0):
        from repro.learning import Sample

        sample = Sample({"v3"}, {"v2"})
        strategy = KInformativeRandomStrategy(seed=3, pool_size=None)
        for _ in range(5):
            node = strategy.propose(g0, sample, k=3)
            assert node is not None
            assert is_k_informative(g0, sample, node, k=3)

    def test_ks_prefers_nodes_with_fewest_uncovered_paths(self, g0):
        from repro.learning import Sample

        sample = Sample({"v3"}, {"v2"})
        strategy = KInformativeSmallestStrategy(seed=0, pool_size=None)
        node = strategy.propose(g0, sample, k=3)
        assert node is not None
        count = uncovered_k_paths(g0, node, sample.negatives, k=3)
        for other in g0.nodes:
            if other in sample.labeled:
                continue
            other_count = uncovered_k_paths(g0, other, sample.negatives, k=3)
            if other_count > 0:
                assert count <= other_count

    def test_returns_none_when_no_informative_node_exists(self, certain_case):
        graph, sample, certain = certain_case
        # Label every node except the certain one; it has no uncovered path
        # beyond those of the positives... it does (path b), so instead label
        # everything: then no unlabeled node remains.
        full = sample
        for node in graph.nodes - sample.labeled:
            full = full.with_positive(node) if node == certain else full.with_negative(node)
        assert KInformativeRandomStrategy(seed=1).propose(graph, full, k=2) is None

    def test_determinism_with_same_seed(self, g0, g0_sample):
        left = KInformativeRandomStrategy(seed=7).propose(g0, g0_sample, k=2)
        right = KInformativeRandomStrategy(seed=7).propose(g0, g0_sample, k=2)
        assert left == right


class TestStableNodeOrder:
    """Regression: proposals depend on the graph's stable node order only.

    The old implementation sorted candidates by ``repr`` before drawing,
    which is unstable for nodes whose default repr embeds ``id()`` and, with
    equal reprs, silently fell back to the hash-seed-driven set iteration
    order.  Proposals must now be a function of (insertion order, seed).
    """

    _PROPOSE_SCRIPT = textwrap.dedent(
        """
        from repro.graphdb import GraphDB
        from repro.interactive import RandomStrategy, make_strategy
        from repro.learning import Sample

        graph = GraphDB()
        # String nodes hash-randomize between interpreter runs.
        for i in range(40):
            graph.add_edge(f"n{i:02d}", "a", f"n{(i + 1) % 40:02d}")
        sample = Sample(negatives={"n00"})
        print(RandomStrategy(seed=7).propose(graph, sample, k=2))
        print(make_strategy("kR", seed=7, pool_size=8).propose(graph, sample, k=2))
        print(make_strategy("kS", seed=7, pool_size=8).propose(graph, sample, k=2))
        """
    )

    def _proposals_under_hash_seed(self, hash_seed: str) -> str:
        import os
        from pathlib import Path

        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        outcome = subprocess.run(
            [sys.executable, "-c", self._PROPOSE_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return outcome.stdout

    def test_proposals_are_hash_seed_independent(self):
        runs = {self._proposals_under_hash_seed(seed) for seed in ("1", "2", "31337")}
        assert len(runs) == 1, runs

    def test_random_strategy_draws_from_insertion_order(self, g0):
        # Two graphs with the same insertion sequence propose identically;
        # repr plays no role (exercised with nodes sharing one repr).
        class Opaque:
            def __init__(self, key):
                self.key = key

            def __repr__(self):  # identical for every instance
                return "<opaque>"

        from repro.graphdb import GraphDB
        from repro.learning import Sample

        def build():
            graph = GraphDB()
            nodes = [Opaque(i) for i in range(12)]
            for left, right in zip(nodes, nodes[1:]):
                graph.add_edge(left, "a", right)
            return graph, nodes

        graph_a, nodes_a = build()
        graph_b, nodes_b = build()
        pick_a = RandomStrategy(seed=5).propose(graph_a, Sample(), k=2)
        pick_b = RandomStrategy(seed=5).propose(graph_b, Sample(), k=2)
        assert nodes_a.index(pick_a) == nodes_b.index(pick_b)


class TestQueryOracle:
    def test_labels_follow_the_goal(self, g0, abstar_c):
        oracle = QueryOracle(abstar_c)
        assert oracle.label(g0, "v1") == "+"
        assert oracle.label(g0, "v2") == "-"

    def test_satisfied_only_when_selection_matches(self, g0, abstar_c):
        oracle = QueryOracle(abstar_c)
        assert oracle.satisfied_with(g0, abstar_c)
        assert not oracle.satisfied_with(g0, PathQuery.parse("a", g0.alphabet))
        assert not oracle.satisfied_with(g0, None)

    def test_threshold_relaxes_satisfaction(self, g0, abstar_c):
        # The query c selects only v3: precision 1, recall 0.5, F1 = 2/3.
        partial = PathQuery.parse("c", g0.alphabet)
        strict = QueryOracle(abstar_c)
        relaxed = QueryOracle(abstar_c, satisfaction_threshold=0.6)
        assert not strict.satisfied_with(g0, partial)
        assert relaxed.satisfied_with(g0, partial)

    def test_invalid_threshold_raises(self, abstar_c):
        with pytest.raises(ValueError):
            QueryOracle(abstar_c, satisfaction_threshold=0.0)
