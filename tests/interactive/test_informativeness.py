"""Unit tests for certain / informative / k-informative node characterizations."""

from repro.interactive import (
    certain_negative_nodes,
    certain_positive_nodes,
    is_certain,
    is_informative,
    is_k_informative,
    k_informative_nodes,
    uncovered_k_paths,
)
from repro.interactive.informativeness import is_certain_negative, is_certain_positive
from repro.learning import Sample


class TestCertainNodes:
    def test_figure10_certain_positive(self, certain_case):
        graph, sample, certain = certain_case
        assert is_certain_positive(graph, sample, certain)
        assert not is_certain_negative(graph, sample, certain)
        assert is_certain(graph, sample, certain)

    def test_labeled_nodes_are_not_informative(self, certain_case):
        graph, sample, _ = certain_case
        for node in sample.labeled:
            assert not is_informative(graph, sample, node)

    def test_node_with_fresh_paths_is_informative(self, g0, g0_sample):
        # v6 has paths (e.g. towards v1's abc continuation) not covered by
        # the negatives, and no positive is dominated by it: informative.
        assert is_informative(g0, g0_sample, "v6")

    def test_dead_end_node_is_certain_negative(self, g0, g0_sample):
        # v4 has no outgoing edge: paths(v4) = {eps}, covered by the negatives.
        assert is_certain_negative(g0, g0_sample, "v4")
        assert not is_informative(g0, g0_sample, "v4")

    def test_certain_sets_enumeration(self, certain_case):
        graph, sample, certain = certain_case
        assert certain in certain_positive_nodes(graph, sample)
        negatives = certain_negative_nodes(graph, sample)
        assert negatives.isdisjoint(sample.labeled)

    def test_without_negatives_nothing_is_certain_negative(self, g0):
        sample = Sample(positives={"v1"})
        assert certain_negative_nodes(g0, sample) == frozenset()


class TestKInformativeness:
    def test_uncovered_k_paths_counts(self, g0, g0_sample):
        # v4's only path (eps) is covered, so it has zero uncovered paths.
        assert uncovered_k_paths(g0, "v4", g0_sample.negatives, k=2) == 0
        assert uncovered_k_paths(g0, "v3", g0_sample.negatives, k=2) > 0

    def test_uncovered_k_paths_limit(self, g0):
        full = uncovered_k_paths(g0, "v1", set(), k=2)
        limited = uncovered_k_paths(g0, "v1", set(), k=2, limit=2)
        assert limited == 2 <= full

    def test_k_informative_implies_informative(self, g0, g0_sample):
        for node in g0.nodes:
            if is_k_informative(g0, g0_sample, node, k=2):
                assert is_informative(g0, g0_sample, node)

    def test_labeled_nodes_are_not_k_informative(self, g0, g0_sample):
        for node in g0_sample.labeled:
            assert not is_k_informative(g0, g0_sample, node, k=3)

    def test_k_informative_nodes_enumeration(self, g0, g0_sample):
        nodes = set(k_informative_nodes(g0, g0_sample, k=2))
        assert "v4" not in nodes
        assert nodes.isdisjoint(g0_sample.labeled)

    def test_with_empty_sample_every_node_is_k_informative(self, g0):
        sample = Sample()
        assert set(k_informative_nodes(g0, sample, k=1)) == set(g0.nodes)

    def test_candidates_restriction(self, g0):
        # With only v2 labeled negative, the unlabeled v1 has the uncovered
        # path abc (3-informative) while the dead-end v4 has nothing.
        sample = Sample(negatives={"v2"})
        nodes = set(k_informative_nodes(g0, sample, k=3, candidates=["v4", "v1"]))
        assert nodes == {"v1"}

    def test_paper_sample_leaves_no_2_informative_node(self, g0, g0_sample):
        # After the worked example's four labels, every remaining node's
        # short paths are covered by the negatives: the interactions would
        # stop (or k would have to grow).
        assert set(k_informative_nodes(g0, g0_sample, k=2)) == set()
