"""Parity and lifecycle tests of the kernel-backed interactive session state.

The batched/incremental structures must be *observationally identical* to
the legacy per-node path: same informativeness verdicts, same uncovered-path
counts, same certainty answers, same session transcripts.  Every test here
pins the new code against the retained reference implementations on
randomized small graphs.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import scale_free_graph
from repro.engine import QueryEngine
from repro.engine.executor import table_evaluate_all
from repro.errors import InteractionError, LearningError
from repro.evaluation.workloads import synthetic_queries
from repro.interactive import (
    InteractiveCheckpoint,
    InteractiveSession,
    QueryOracle,
    SessionState,
    count_uncovered_k_paths,
    is_certain,
    is_k_informative,
    k_informative_set,
    make_strategy,
    reference_is_certain_negative,
    reference_is_certain_positive,
    uncovered_k_paths,
    uncovered_words_table,
)
from repro.interactive.informativeness import is_certain_negative, is_certain_positive
from repro.learning import Sample
from repro.learning.scp import NegativeCoverage, select_smallest_consistent_paths


def random_graph(seed: int, nodes: int = 120, labels: int = 5):
    return scale_free_graph(nodes, alphabet_size=labels, zipf_exponent=1.0, seed=seed)


def random_sample(rng: random.Random, graph, positives: int = 3, negatives: int = 4) -> Sample:
    nodes = list(graph.node_order)
    pos = rng.sample(nodes, positives)
    neg = rng.sample([n for n in nodes if n not in pos], negatives)
    return Sample(pos, neg)


class TestBatchedInformativeness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_batched_set_matches_per_node_verdicts(self, seed):
        rng = random.Random(seed)
        graph = random_graph(seed)
        engine = QueryEngine()
        sample = random_sample(rng, graph)
        for k in (0, 1, 2, 3):
            batched = k_informative_set(graph, sample, k=k, engine=engine)
            legacy = frozenset(
                node
                for node in graph.nodes
                if is_k_informative(graph, sample, node, k=k)
            )
            assert batched == legacy

    def test_batched_set_without_negatives_is_all_unlabeled(self, g0):
        sample = Sample(positives={"v1"})
        assert k_informative_set(g0, sample, k=2) == g0.nodes - {"v1"}

    @pytest.mark.parametrize("seed", [4, 5])
    def test_uncovered_counts_match_legacy(self, seed):
        rng = random.Random(seed)
        graph = random_graph(seed)
        engine = QueryEngine()
        sample = random_sample(rng, graph)
        index = engine.index_for(graph)
        for k in (1, 2, 3):
            table = uncovered_words_table(
                index,
                (index.node_ids[n] for n in sample.negatives),
                k=k,
                alphabet=graph.alphabet,
            )
            for node in rng.sample(list(graph.node_order), 25):
                want = uncovered_k_paths(graph, node, sample.negatives, k=k)
                got = count_uncovered_k_paths(index, table, index.node_ids[node], k=k)
                assert got == want, (node, k)
                # The cap mirrors the legacy limit semantics.
                capped = count_uncovered_k_paths(
                    index, table, index.node_ids[node], k=k, cap=2
                )
                assert capped == min(want, 2)

    def test_uncovered_counts_without_negatives(self, g0):
        engine = QueryEngine()
        index = engine.index_for(g0)
        for node in g0.nodes:
            want = uncovered_k_paths(g0, node, (), k=2)
            got = count_uncovered_k_paths(index, None, index.node_ids[node], k=2)
            assert got == want

    def test_uncovered_table_rejects_empty_negatives(self, g0):
        index = QueryEngine().index_for(g0)
        with pytest.raises(InteractionError):
            uncovered_words_table(index, (), k=2, alphabet=g0.alphabet)

    def test_table_evaluate_all_matches_plan_evaluation(self, g0, abstar_c):
        # The backward table walk is a general whole-graph kernel: on a real
        # query automaton it must agree with the plan-compiled evaluation.
        from repro.automata.kernel import TableDFA

        engine = QueryEngine()
        index = engine.index_for(g0)
        table, _ = TableDFA.from_dfa(abstar_c.dfa)
        selected_ids = table_evaluate_all(index, table)
        selected = frozenset(index.nodes_by_id[i] for i in selected_ids)
        assert selected == engine.evaluate(g0, abstar_c)


class TestSessionStateVerdicts:
    @pytest.mark.parametrize("seed", [6, 7, 8])
    def test_per_node_verdicts_track_legacy_through_a_session(self, seed):
        """Drive a label sequence and compare every verdict against legacy."""
        rng = random.Random(seed)
        graph = random_graph(seed, nodes=80)
        engine = QueryEngine()
        state = SessionState(graph, k=2, engine=engine)
        sample = Sample()
        nodes = list(graph.node_order)
        for round_index in range(12):
            node = rng.choice([n for n in nodes if n not in sample.labeled])
            label = "+" if rng.random() < 0.4 else "-"
            sample = sample.with_example(node, label)
            state.observe(node, label, sample)
            if round_index == 6:
                state.set_k(3)  # exercise the k-growth invalidation path
            k = state.k
            for probe in rng.sample([n for n in nodes if n not in sample.labeled], 12):
                assert state.is_informative(probe) == is_k_informative(
                    graph, sample, probe, k=k
                ), (round_index, probe)
            batched = state.informative_nodes()
            legacy = frozenset(
                n for n in nodes if is_k_informative(graph, sample, n, k=k)
            )
            assert batched == legacy

    def test_non_informative_verdicts_survive_negative_labels(self, seed=9):
        rng = random.Random(seed)
        graph = random_graph(seed, nodes=80)
        state = SessionState(graph, k=2, engine=QueryEngine())
        nodes = list(graph.node_order)
        sample = Sample().with_negative(nodes[0])
        state.observe(nodes[0], "-", sample)
        before = state.informative_nodes()
        walks_before = state.counters["node_walks"]
        # A further negative keeps every non-informative verdict (monotone
        # certainty): re-probing those nodes must be pure cache hits.
        sample = sample.with_negative(nodes[1])
        state.observe(nodes[1], "-", sample)
        non_informative = [
            n for n in nodes if n not in before and n not in sample.labeled
        ][:10]
        for node in non_informative:
            assert not state.is_informative(node)
        assert state.counters["node_walks"] == walks_before
        assert state.counters["verdict_hits"] >= len(non_informative)
        # And the informative set only ever shrinks under new negatives.
        after = state.informative_nodes()
        assert after <= before

    def test_graph_mutation_drops_stale_verdicts(self, g0):
        """Regression: an edge added mid-session can make a cached
        non-informative node informative; verdicts must not outlive the
        graph snapshot they were computed on."""
        state = SessionState(g0, k=1, engine=QueryEngine())
        sample = Sample().with_negative("v2")
        state.observe("v2", "-", sample)
        # v4 is a dead end: paths(v4) = {eps}, covered -> non-informative.
        assert not state.is_informative("v4")
        # v2 has no outgoing 'c' edge, so the new path ("c",) is uncovered.
        g0.add_edge("v4", "c", "v1")
        assert state.is_informative("v4")
        assert is_k_informative(g0, sample, "v4", k=1)

    def test_positive_labels_invalidate_nothing(self, seed=10):
        rng = random.Random(seed)
        graph = random_graph(seed, nodes=80)
        state = SessionState(graph, k=2, engine=QueryEngine())
        nodes = list(graph.node_order)
        sample = Sample().with_negative(nodes[0])
        state.observe(nodes[0], "-", sample)
        before = state.informative_nodes()
        positive = next(iter(before))
        sample = sample.with_positive(positive)
        state.observe(positive, "+", sample)
        walks = state.counters["batched_walks"]
        assert state.informative_nodes() == before - {positive}
        assert state.counters["batched_walks"] == walks  # no recomputation


class TestKernelCertainty:
    def test_matches_reference_on_worked_example(self, certain_case):
        graph, sample, certain = certain_case
        assert is_certain_positive(graph, sample, certain)
        assert not is_certain_negative(graph, sample, certain)

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_matches_reference_on_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = random_graph(seed, nodes=14, labels=3)
        sample = random_sample(rng, graph, positives=2, negatives=3)
        for node in graph.nodes:
            assert is_certain_positive(graph, sample, node) == reference_is_certain_positive(
                graph, sample, node
            ), node
            assert is_certain_negative(graph, sample, node) == reference_is_certain_negative(
                graph, sample, node
            ), node

    def test_is_certain_uses_kernel_checks(self, g0, g0_sample):
        assert is_certain(g0, g0_sample, "v4")  # dead end: certain-negative


class TestSharedCoverage:
    def test_prebuilt_coverage_matches_fresh_selection(self, seed=14):
        rng = random.Random(seed)
        graph = random_graph(seed, nodes=100)
        engine = QueryEngine()
        sample = random_sample(rng, graph)
        coverage = NegativeCoverage(engine.index_for(graph), sample.negatives)
        fresh = select_smallest_consistent_paths(graph, sample, k=3, engine=engine)
        shared = select_smallest_consistent_paths(
            graph, sample, k=3, engine=engine, coverage=coverage
        )
        assert fresh == shared

    def test_mismatched_coverage_is_rejected(self, g0, g0_sample):
        engine = QueryEngine()
        stale = NegativeCoverage(engine.index_for(g0), ())
        with pytest.raises(LearningError):
            select_smallest_consistent_paths(
                g0, g0_sample, k=2, engine=engine, coverage=stale
            )


class TestSessionTranscriptParity:
    """The incremental session must be indistinguishable from the legacy one."""

    @pytest.mark.parametrize("strategy", ["kR", "kS", "random"])
    @pytest.mark.parametrize("seed", [15, 16])
    def test_transcripts_identical(self, strategy, seed):
        graph = random_graph(seed, nodes=150, labels=6)
        queries = synthetic_queries(graph, alphabet_size=6)
        goal = sorted(queries.items())[seed % len(queries)][1]

        def run(incremental):
            engine = QueryEngine()
            session = InteractiveSession(
                graph,
                QueryOracle(goal, engine=engine),
                make_strategy(strategy, seed=seed, pool_size=32),
                k_start=2,
                k_max=4,
                max_interactions=20,
                engine=engine,
                incremental=incremental,
            )
            result = session.run()
            return (
                [(i.node, i.label, i.k, i.learned_expression) for i in result.interactions],
                result.halted_by,
            )

        assert run(True) == run(False)


class TestStrategySerialization:
    def test_malformed_strategy_payloads_raise_interaction_error(self):
        from repro.interactive import strategy_from_dict

        with pytest.raises(InteractionError):
            strategy_from_dict({"pool_size": 4})  # missing name
        with pytest.raises(InteractionError):
            strategy_from_dict(None)
        with pytest.raises(InteractionError):
            strategy_from_dict({"name": "kR", "rng_state": [1, "not-ints"]})

    def test_missing_pool_size_falls_back_to_default(self):
        from repro.interactive import strategy_from_dict

        strategy = strategy_from_dict({"name": "kS"})
        assert strategy._pool_size == 512


class TestCheckpointResume:
    def _session(self, graph, goal, engine, budget=None):
        return InteractiveSession(
            graph,
            QueryOracle(goal, engine=engine),
            make_strategy("kR", seed=3, pool_size=32),
            k_start=2,
            k_max=4,
            max_interactions=budget,
            engine=engine,
        )

    def test_checkpoint_roundtrips_through_json(self, g0, abstar_c):
        engine = QueryEngine()
        session = self._session(g0, abstar_c, engine, budget=3)
        session.run()
        checkpoint = session.checkpoint()
        rebuilt = InteractiveCheckpoint.from_dict(checkpoint.to_dict())
        assert rebuilt == checkpoint
        assert rebuilt.interaction_count == len(session.interactions)

    def test_checkpoint_is_a_registered_result_type(self, g0, abstar_c):
        from repro.api.result import result_from_dict, result_from_json, result_to_json

        engine = QueryEngine()
        session = self._session(g0, abstar_c, engine, budget=2)
        session.run()
        checkpoint = session.checkpoint()
        rebuilt = result_from_json(result_to_json(checkpoint))
        assert isinstance(rebuilt, InteractiveCheckpoint)
        assert result_from_dict(checkpoint.to_dict()) == checkpoint
        assert rebuilt.ok
        assert rebuilt.elapsed == checkpoint.elapsed

    @pytest.mark.parametrize("pause_after", [1, 3, 5])
    def test_resumed_session_matches_uninterrupted_run(self, pause_after, seed=17):
        graph = random_graph(seed, nodes=150, labels=6)
        queries = synthetic_queries(graph, alphabet_size=6)
        goal = sorted(queries.items())[0][1]

        def transcript(result):
            return [(i.node, i.label, i.k) for i in result.interactions]

        # One uninterrupted session...
        engine = QueryEngine()
        full = self._session(graph, goal, engine, budget=10).run()

        # ...versus pause via JSON round-trip, then resume to the same budget.
        engine = QueryEngine()
        first = self._session(graph, goal, engine, budget=pause_after)
        first.run()
        payload = first.checkpoint().to_dict()
        checkpoint = InteractiveCheckpoint.from_dict(payload)
        resumed = InteractiveSession.resume(
            checkpoint, graph, QueryOracle(goal, engine=engine), engine=engine
        )
        resumed.max_interactions = 10
        outcome = resumed.run()
        assert transcript(outcome) == transcript(full)
        assert outcome.halted_by == full.halted_by

    def test_workspace_resume_and_checkpoint_files(self, tmp_path, geo):
        import json

        from repro.api import InteractiveConfig, Workspace

        workspace = Workspace(geo)
        config = InteractiveConfig(strategy="kR", seed=1, max_interactions=2, k_max=4)
        checkpoint_path = tmp_path / "session.json"
        partial = workspace.learn_interactive(
            "(tram+bus)*.cinema", config, checkpoint_to=checkpoint_path
        )
        assert checkpoint_path.exists()
        payload = json.loads(checkpoint_path.read_text())
        assert payload["type"] == "InteractiveCheckpoint"
        assert len(payload["interactions"]) == partial.interaction_count
        # Resume from the file and run to the goal.
        resumed = workspace.learn_interactive(
            "(tram+bus)*.cinema",
            config.replace(max_interactions=None),
            resume_from=checkpoint_path,
        )
        assert resumed.halted_by == "goal"
        assert resumed.interaction_count >= partial.interaction_count

    def test_resume_budget_buys_new_interactions(self, tmp_path, geo):
        """Regression: resuming with the *same* config must make progress --
        the per-run budget is on top of the checkpointed interactions."""
        from repro.api import InteractiveConfig, Workspace

        workspace = Workspace(geo)
        config = InteractiveConfig(strategy="kR", seed=1, max_interactions=2, k_max=4)
        checkpoint_path = tmp_path / "session.json"
        first = workspace.learn_interactive(
            "(tram+bus)*.cinema", config, checkpoint_to=checkpoint_path
        )
        assert first.interaction_count == 2
        second = workspace.learn_interactive(
            "(tram+bus)*.cinema",
            config,
            resume_from=checkpoint_path,
            checkpoint_to=checkpoint_path,
        )
        assert (
            second.halted_by == "goal" or second.interaction_count == 4
        ), (second.halted_by, second.interaction_count)
        assert second.interaction_count > first.interaction_count
