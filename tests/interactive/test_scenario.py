"""Unit tests for the interactive learning loop (Figure 9)."""

import pytest

from repro.errors import InteractionError
from repro.interactive import (
    InteractiveSession,
    QueryOracle,
    make_strategy,
    run_interactive_learning,
)
from repro.queries import PathQuery


class TestSessionSteps:
    def test_session_learns_goal_on_g0(self, g0, abstar_c):
        result = run_interactive_learning(
            g0, QueryOracle(abstar_c), make_strategy("kR", seed=3), max_interactions=10
        )
        assert result.halted_by == "goal"
        assert result.query is not None
        assert result.query.evaluate(g0) == abstar_c.evaluate(g0)

    def test_session_learns_goal_on_geo(self, geo, geo_goal):
        result = run_interactive_learning(
            geo, QueryOracle(geo_goal), make_strategy("kS", seed=1), max_interactions=12
        )
        assert result.halted_by == "goal"
        assert result.query.evaluate(geo) == geo_goal.evaluate(geo)

    def test_interactions_record_labels_and_expressions(self, g0, abstar_c):
        result = run_interactive_learning(
            g0, QueryOracle(abstar_c), make_strategy("kR", seed=3), max_interactions=10
        )
        assert result.interaction_count == len(result.interactions)
        labels = {interaction.label for interaction in result.interactions}
        assert labels <= {"+", "-"}
        assert result.labels_fraction(g0) == pytest.approx(
            result.interaction_count / g0.node_count()
        )
        assert result.mean_seconds_between_interactions >= 0.0

    def test_max_interactions_is_respected(self, g0, abstar_c):
        result = run_interactive_learning(
            g0, QueryOracle(abstar_c), make_strategy("random", seed=5), max_interactions=2
        )
        assert result.interaction_count <= 2

    def test_interactive_uses_fewer_labels_than_full_labeling(self, geo, geo_goal):
        # The headline claim of Section 5.3, at toy scale: the interactive
        # loop reaches the goal without labeling the whole graph.
        result = run_interactive_learning(
            geo, QueryOracle(geo_goal), make_strategy("kR", seed=0), max_interactions=50
        )
        assert result.halted_by == "goal"
        assert result.interaction_count < geo.node_count()

    def test_invalid_k_bounds_raise(self, g0, abstar_c):
        with pytest.raises(InteractionError):
            InteractiveSession(
                g0, QueryOracle(abstar_c), make_strategy("kR"), k_start=3, k_max=2
            )


class TestSessionInternals:
    def test_neighborhood_is_a_small_fragment(self, g0, abstar_c):
        session = InteractiveSession(
            g0, QueryOracle(abstar_c), make_strategy("kR", seed=2)
        )
        fragment = session.neighborhood_of("v1")
        assert "v1" in fragment.nodes
        assert fragment.node_count() <= g0.node_count()

    def test_step_returns_interaction_and_updates_sample(self, g0, abstar_c):
        session = InteractiveSession(
            g0, QueryOracle(abstar_c), make_strategy("kR", seed=2)
        )
        interaction = session.step()
        assert interaction is not None
        assert interaction.node in session.sample.labeled
        assert session.last_result is not None

    def test_k_grows_when_no_informative_node_remains(self, certain_case):
        graph, _, _ = certain_case
        goal = PathQuery.parse("b", graph.alphabet)
        session = InteractiveSession(
            graph, QueryOracle(goal), make_strategy("kR", seed=1), k_start=1, k_max=3
        )
        outcome = session.run()
        # The loop must terminate one way or another on this tiny graph.
        assert outcome.halted_by in {"goal", "no_informative_node", "exhausted"}

    def test_weaker_halt_condition_stops_earlier(self, g0, abstar_c):
        strict = run_interactive_learning(
            g0, QueryOracle(abstar_c), make_strategy("kR", seed=4), max_interactions=10
        )
        relaxed = run_interactive_learning(
            g0,
            QueryOracle(abstar_c, satisfaction_threshold=0.5),
            make_strategy("kR", seed=4),
            max_interactions=10,
        )
        assert relaxed.interaction_count <= strict.interaction_count
