"""End-to-end daemon tests: concurrency, isolation, batching, shedding.

This file carries the PR's acceptance assertions: a running service
sustains 8+ concurrent clients across multiple tenants against one shared
snapshot with zero cross-tenant state leakage, request batching really
lands in ``evaluate_many``, and overload answers are structured 429-style
errors rather than hangs.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Workspace
from repro.api.config import ServiceConfig
from repro.api.result import QueryResult
from repro.errors import OverloadedError, ProtocolError, ServiceError
from repro.learning import Sample
from repro.service import QueryService, ServiceClient
from repro.storage.catalog import DatasetCatalog

GOAL = "(tram+bus)*.cinema"


@pytest.fixture(scope="module")
def catalog_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-catalog")
    catalog = DatasetCatalog(root)
    catalog.ensure("geo")
    catalog.ensure("g0")
    return str(root)


def make_service(catalog_root: str, **overrides) -> QueryService:
    defaults = dict(
        catalog_root=catalog_root,
        snapshots=("geo",),
        default_snapshot="geo",
        allow_remote_shutdown=True,
    )
    defaults.update(overrides)
    return QueryService(ServiceConfig(**defaults))


@pytest.fixture(scope="module")
def service(catalog_root):
    with make_service(catalog_root) as running:
        yield running


def client_for(service: QueryService, tenant: str = "default") -> ServiceClient:
    host, port = service.address
    return ServiceClient(host, port, tenant=tenant)


# -- basic request/response ---------------------------------------------------


def test_ping_and_typed_query_roundtrip(service):
    with client_for(service) as client:
        assert client.ping() is True
        result = client.query(GOAL)
        assert isinstance(result, QueryResult)
        assert result.nodes() == ["N1", "N2", "N4", "N6"]
        # Remote answers match a local workspace on the same figure graph.
        local = Workspace.from_figure("geo").query(GOAL)
        assert result.selected == local.selected


def test_named_snapshot_and_binary_semantics(service):
    with client_for(service) as client:
        binary = client.query("tram", snapshot="geo", semantics="binary")
        assert binary.semantics == "binary"
        assert all(isinstance(pair, tuple) for pair in binary.selected)
        # A snapshot that exists in the catalog but was not preloaded is
        # opened lazily on first use.
        g0 = client.query("a.b", snapshot="g0")
        assert g0.semantics == "path"
        assert "g0" in client.catalog()["hot"]


def test_learn_remotely_matches_local(service):
    with client_for(service) as client:
        remote = client.learn(["N2", "N6"], ["N5"])
    local = Workspace.from_figure("geo").learn(
        Sample(positives={"N2", "N6"}, negatives={"N5"})
    )
    assert remote.query.expression == local.query.expression


def test_unknown_snapshot_is_structured_404(service):
    with client_for(service) as client:
        with pytest.raises(ServiceError) as exc_info:
            client.query(GOAL, snapshot="no-such-dataset")
        assert exc_info.value.status == 404 and exc_info.value.code == "not_found"
        # The connection survives the error.
        assert client.ping() is True


def test_bad_expression_is_structured_400(service):
    with client_for(service) as client:
        with pytest.raises(ProtocolError) as exc_info:
            client.query("((broken")
        assert exc_info.value.status == 400
        with pytest.raises(ProtocolError):
            client.query(GOAL, semantics="nope")
        assert client.ping() is True


def test_oversized_request_rejected_connection_survives(catalog_root):
    with make_service(catalog_root, max_frame_bytes=2048) as service:
        host, port = service.address
        with socket.create_connection((host, port), timeout=10) as raw:
            reader = raw.makefile("rb")
            raw.sendall(b'{"op": "query", "params": {"expr": "' + b"a" * 4096 + b'"}}\n')
            answer = json.loads(reader.readline())
            assert answer["ok"] is False
            assert answer["error"]["code"] == "too_large"
            assert answer["error"]["status"] == 413
            # Framing recovered: a well-formed request still works.
            raw.sendall(b'{"id": 2, "op": "ping"}\n')
            answer = json.loads(reader.readline())
            assert answer["ok"] is True and answer["id"] == 2


# -- the acceptance test: concurrent multi-tenant traffic ---------------------


def test_eight_concurrent_clients_two_tenants_no_leakage(catalog_root):
    """8 clients / 2 tenants against one shared snapshot.

    Every client mixes queries with tenant-private interactive sessions
    under the *same session name*; correctness of every query result and
    strict per-tenant session counters prove the shared engine serves all
    tenants while no session state crosses the tenant boundary.
    """
    expressions = [GOAL, "tram", "bus", "tram.tram", "(tram.bus)*.cinema"]
    local = Workspace.from_figure("geo")
    expected = {expr: local.query(expr).selected for expr in expressions}
    interactive_config = {"max_interactions": 2, "pool_size": 32}

    # The single-tenant reference: 4 sequential resumed calls of the same
    # session.  Each concurrent tenant below must reproduce exactly this
    # interaction-count trajectory -- leakage across tenants would chain
    # all 8 calls into one session and blow past it.
    reference_counts: list[int] = []
    checkpoint = None
    reference_ws = Workspace.from_figure("geo")
    from repro.api import InteractiveConfig

    for _ in range(4):
        session = reference_ws.interactive_session(
            GOAL, InteractiveConfig(**interactive_config), resume_from=checkpoint
        )
        session.run()
        checkpoint = session.checkpoint().to_dict()
        reference_counts.append(len(session.interactions))

    with make_service(catalog_root, max_concurrent=16, per_tenant=8) as service:
        clients = 8
        per_client_rounds = 6
        errors: list[Exception] = []
        session_counts: list[tuple[str, int]] = []
        counts_lock = threading.Lock()
        barrier = threading.Barrier(clients)

        def worker(i: int) -> None:
            tenant = "acme" if i % 2 == 0 else "rival"
            try:
                with client_for(service, tenant=tenant) as client:
                    barrier.wait()
                    for round_no in range(per_client_rounds):
                        expr = expressions[(i + round_no) % len(expressions)]
                        result = client.query(expr)
                        assert result.selected == expected[expr], expr
                    # Same session name for everyone: only the tenant may
                    # distinguish them.
                    _result, info = client.interactive(
                        GOAL, session="shared-name", config=interactive_config
                    )
                    with counts_lock:
                        session_counts.append((tenant, info["interactions"]))
            except Exception as error:  # noqa: BLE001 - re-raised below
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]

        # Zero cross-tenant leakage: each tenant's 4 calls walked exactly
        # the single-tenant trajectory (and no one else's), and no session
        # materialized under any other tenant.
        for tenant in ("acme", "rival"):
            observed = sorted(count for t, count in session_counts if t == tenant)
            assert observed == sorted(reference_counts), tenant
            stored = service.sessions.get(tenant, "shared-name")
            assert stored is not None
            assert len(stored["interactions"]) == reference_counts[-1]
        assert service.sessions.get("default", "shared-name") is None

        # Shared-engine economics: one engine answered all tenants, so
        # repeated expressions were result-cache hits across tenants.
        with service._datasets_lock:
            engine = service._datasets["geo"].engine
        assert engine.stats.snapshot()["result_cache_hits"] > 0

        # And the stats op shows each tenant only its own sessions.
        with client_for(service, tenant="acme") as client:
            stats = client.stats()
            assert stats["tenant_sessions"] == ["shared-name"]
            assert stats["server"]["requests"] > clients * per_client_rounds


def test_batching_hits_evaluate_many(catalog_root):
    """Concurrent queries demonstrably coalesce into evaluate_many calls."""
    with make_service(catalog_root) as service:
        service.batcher.pause()
        clients = 8
        results: list = [None] * clients
        errors: list[Exception] = []

        def worker(i: int) -> None:
            tenant = "acme" if i % 2 == 0 else "rival"
            try:
                with client_for(service, tenant=tenant) as client:
                    results[i] = client.query(GOAL)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        # Wait until all 8 requests are queued behind the paused batcher,
        # then release them as one burst.
        for _ in range(1000):
            if service.batcher.depth == clients:
                break
            threading.Event().wait(0.01)
        assert service.batcher.depth == clients
        service.batcher.resume()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]

        expected = Workspace.from_figure("geo").query(GOAL).selected
        assert all(result.selected == expected for result in results)
        batches = service.registry.counter("service_batches_total").value
        batched = service.registry.counter("service_batched_queries_total").value
        assert batched == clients
        # All 8 queued requests fit one batch (batch_max=16 default).
        assert batches == 1
        size = service.registry.snapshot()["service_batch_size"]
        assert size["sum"] == clients


def test_load_shedding_returns_structured_429_not_a_hang(catalog_root):
    with make_service(catalog_root, queue_depth=3, max_concurrent=32) as service:
        service.batcher.pause()
        blocked_clients = [client_for(service, tenant=f"t{i}") for i in range(3)]
        threads = [
            threading.Thread(target=client.query, args=(GOAL,))
            for client in blocked_clients
        ]
        try:
            for thread in threads:
                thread.start()
            for _ in range(1000):
                if service.batcher.depth == 3:
                    break
                threading.Event().wait(0.01)
            assert service.batcher.depth == 3
            # Queue full: the next client is shed immediately and typed.
            with client_for(service, tenant="late") as late:
                with pytest.raises(OverloadedError) as exc_info:
                    late.query(GOAL)
                assert exc_info.value.status == 429
                # The shed connection is still healthy.
                assert late.ping() is True
            assert service.registry.counter("service_batch_shed_total").value >= 1
        finally:
            service.batcher.resume()
            for thread in threads:
                thread.join()
            for client in blocked_clients:
                client.close()


def test_per_tenant_cap_sheds_noisy_tenant_only(catalog_root):
    with make_service(catalog_root, per_tenant=1, max_concurrent=32) as service:
        service.batcher.pause()
        noisy = client_for(service, tenant="noisy")
        blocked = threading.Thread(target=noisy.query, args=(GOAL,))
        try:
            blocked.start()
            for _ in range(1000):
                if service.batcher.depth == 1:
                    break
                threading.Event().wait(0.01)
            assert service.batcher.depth == 1
            with client_for(service, tenant="noisy") as second:
                with pytest.raises(OverloadedError):
                    second.query(GOAL)
            assert service.registry.counter("service_shed_total").value >= 1
        finally:
            service.batcher.resume()
            blocked.join()
            noisy.close()
        # The quiet tenant was never blocked by the noisy tenant's cap.
        with client_for(service, tenant="quiet") as quiet:
            assert quiet.query(GOAL).count == 4


# -- sessions over the wire ---------------------------------------------------


def test_interactive_session_resumes_across_requests(service):
    with client_for(service, tenant="resume-me") as client:
        _result, first = client.interactive(
            GOAL, session="s", config={"max_interactions": 2, "pool_size": 32}
        )
        assert first == {"name": "s", "resumed": False, "interactions": 2}
        _result, second = client.interactive(
            GOAL, session="s", config={"max_interactions": 2, "pool_size": 32}
        )
        assert second["resumed"] is True
        assert second["interactions"] == 4
        assert client.stats()["tenant_sessions"] == ["s"]
        assert client.release_session("s") is True
        assert client.release_session("s") is False
        assert client.stats()["tenant_sessions"] == []


def test_session_runs_to_goal_matches_local(service):
    local = Workspace.from_figure("geo").learn_interactive(GOAL)
    with client_for(service, tenant="goal-seeker") as client:
        remote, _info = client.interactive(GOAL)
    assert remote.halted_by == "goal"
    assert remote.query.expression == local.query.expression


# -- observability ------------------------------------------------------------


def test_stats_and_metrics_surface_service_counters(service):
    with client_for(service) as client:
        client.query(GOAL)
        stats = client.stats()
        assert stats["server"]["requests"] >= 2
        assert "geo" in stats["datasets"]
        assert stats["datasets"]["geo"]["evaluations"] >= 1
        assert stats["server"]["admission"]["max_concurrent"] == 32
        text = client.metrics_text()
    assert "service_requests_total" in text
    assert "service_request_seconds_bucket" in text
    assert "service_engine_evaluations" in text


def test_http_metrics_endpoint(catalog_root):
    with make_service(catalog_root, metrics_port=0) as service:
        with client_for(service) as client:
            client.query(GOAL)
        host, port = service.metrics_address
        body = urllib.request.urlopen(f"http://{host}:{port}/metrics").read().decode()
        assert "service_requests_total" in body
        assert "service_datasets 1" in body
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"http://{host}:{port}/nope")


def test_metrics_file_written_on_shutdown(catalog_root, tmp_path):
    metrics_path = tmp_path / "final-metrics.prom"
    with make_service(catalog_root, metrics_path=str(metrics_path)) as service:
        with client_for(service) as client:
            client.query(GOAL)
    text = metrics_path.read_text()
    assert "service_requests_total 1" in text
    assert "service_engine_evaluations" in text


def test_per_tenant_accounting(catalog_root):
    # Private caches: content-identity cache sharing with other tests'
    # services would turn the first query into a hit and zero the deltas.
    with make_service(catalog_root, share_caches=False) as service:
        with client_for(service, tenant="acme") as acme:
            acme.query(GOAL)
            acme.query(GOAL)
            with pytest.raises(ServiceError):
                acme.query(GOAL, snapshot="no-such-dataset")
        with client_for(service, tenant="rival") as rival:
            rival.query("tram")
            table = rival.stats()["server"]["tenants"]
        acme_row = table["acme"]
        # ping is not accounted; the two queries and the failed one are.
        assert acme_row["queries"] == 3
        assert acme_row["errors"] == 1
        assert acme_row["sheds"] == 0
        assert acme_row["wall_milliseconds"] >= 0
        # The second identical query was a result-cache hit; kernel work
        # happened at least on the first.
        assert acme_row["cache_hits"] >= 1
        assert acme_row["kernel_units"] > 0
        # rival's row counts only its own traffic (stats is not a query).
        assert table["rival"]["queries"] == 1
        assert table["rival"]["errors"] == 0
        # The same table is exported as labeled Prometheus series.
        text = service.registry.render_prometheus()
        assert 'service_tenant_queries_total{tenant="acme"} 3' in text
        assert 'service_tenant_errors_total{tenant="acme"} 1' in text
        assert 'service_tenant_queries_total{tenant="rival"} 1' in text


def test_shed_requests_count_against_their_tenant(catalog_root):
    with make_service(catalog_root, queue_depth=1, max_concurrent=32) as service:
        service.batcher.pause()
        blocked = client_for(service, tenant="noisy")
        thread = threading.Thread(target=blocked.query, args=(GOAL,))
        try:
            thread.start()
            for _ in range(1000):
                if service.batcher.depth == 1:
                    break
                threading.Event().wait(0.01)
            with client_for(service, tenant="noisy") as second:
                with pytest.raises(OverloadedError):
                    second.query(GOAL)
        finally:
            service.batcher.resume()
            thread.join()
            blocked.close()
        row = service.tenant_stats()["noisy"]
        assert row["sheds"] == 1
        assert row["errors"] == 1


def test_trace_context_propagates_client_to_server_spans(catalog_root, tmp_path):
    from repro.telemetry import Telemetry, build_trace_tree, read_trace

    server_trace = tmp_path / "server-trace.jsonl"
    client_trace = tmp_path / "client-trace.jsonl"
    with make_service(catalog_root, trace_path=str(server_trace)) as service:
        telemetry = Telemetry(trace_path=client_trace)
        host, port = service.address
        with ServiceClient(host, port, tenant="acme", telemetry=telemetry) as client:
            envelope = client.request("query", {"expr": GOAL})
        telemetry.close()
    assert envelope["ok"] is True
    # The response echoes the trace context so the caller can log the id.
    trace_id = envelope["trace"]["trace_id"]
    client_records = list(read_trace(client_trace))
    server_records = list(read_trace(server_trace))
    (client_span,) = [r for r in client_records if r["name"] == "client.request"]
    assert client_span["trace"] == trace_id
    assert client_span["tenant"] == "acme"
    server_names = {r["name"] for r in server_records if r.get("trace") == trace_id}
    assert "server.request" in server_names
    assert "engine.evaluate" in server_names
    # Joining both files reconstructs one tree rooted at the client span,
    # with the server's request span as its child.
    tree = build_trace_tree(client_records + server_records, trace_id)
    (root,) = tree["roots"]
    assert root["name"] == "client.request"
    child_names = {child["name"] for child in root["children"]}
    assert "server.request" in child_names
    assert tree["tenants"] == ["acme"]


def test_untraced_client_gets_server_minted_trace_and_request_id_stamped(
    catalog_root, tmp_path
):
    from repro.telemetry import read_trace

    server_trace = tmp_path / "server-trace.jsonl"
    with make_service(catalog_root, trace_path=str(server_trace)) as service:
        with client_for(service) as client:
            envelope = client.request("query", {"expr": GOAL})
    # A tracing server mints a root context for untraced requests and
    # echoes it, so even a plain client learns the id to grep the server's
    # trace file by.
    trace_id = envelope["trace"]["trace_id"]
    request_spans = [
        r for r in read_trace(server_trace) if r["name"] == "server.request"
    ]
    assert request_spans
    span = request_spans[-1]
    assert span["trace"] == trace_id
    # The per-request span records the client-supplied wire id, joining
    # request logs to the trace without a side channel.
    assert span["attrs"]["request"] == envelope["id"]


def test_untraced_server_sends_no_trace_echo(service):
    with client_for(service) as client:
        envelope = client.request("query", {"expr": GOAL})
    assert "trace" not in envelope


def test_slow_query_log_records_profile_and_explain(catalog_root, tmp_path):
    from repro.telemetry import read_trace, summarize_slow

    slow_log = tmp_path / "slow.jsonl"
    with make_service(
        catalog_root,
        slow_log_path=str(slow_log),
        slow_query_seconds=1e-9,  # everything is slow: deterministic capture
    ) as service:
        with client_for(service, tenant="acme") as client:
            client.query(GOAL)
    entries = list(read_trace(slow_log))
    assert entries
    entry = entries[0]
    assert entry["expr"] == GOAL
    assert entry["tenant"] == "acme"
    assert entry["snapshot"] == "geo"
    assert entry["elapsed"] >= 0
    assert entry["threshold"] == 1e-9
    assert "total_seconds" in entry["profile"]
    assert "states_expanded" in entry["profile"]
    assert entry["explain"]["type"] == "ExplainResult"
    summary = summarize_slow(entries)
    assert summary["entries"] == len(entries)
    assert summary["tenants"] == {"acme": len(entries)}


def test_slow_query_log_carries_the_trace_id(catalog_root, tmp_path):
    from repro.telemetry import Telemetry, read_trace

    slow_log = tmp_path / "slow.jsonl"
    server_trace = tmp_path / "server-trace.jsonl"
    client_trace = tmp_path / "client-trace.jsonl"
    with make_service(
        catalog_root,
        trace_path=str(server_trace),
        slow_log_path=str(slow_log),
        slow_query_seconds=1e-9,
    ) as service:
        telemetry = Telemetry(trace_path=client_trace)
        host, port = service.address
        with ServiceClient(host, port, tenant="acme", telemetry=telemetry) as client:
            envelope = client.request("query", {"expr": GOAL})
        telemetry.close()
    trace_id = envelope["trace"]["trace_id"]
    entries = list(read_trace(slow_log))
    assert entries
    assert entries[0]["trace"] == trace_id


def test_slow_threshold_filters_fast_queries(catalog_root, tmp_path):
    slow_log = tmp_path / "slow.jsonl"
    with make_service(
        catalog_root,
        slow_log_path=str(slow_log),
        slow_query_seconds=3600.0,  # nothing on a figure graph is this slow
    ) as service:
        with client_for(service) as client:
            client.query(GOAL)
    assert slow_log.read_text() == ""


# -- shutdown -----------------------------------------------------------------


def test_remote_shutdown_when_enabled(catalog_root):
    service = make_service(catalog_root)
    service.start()
    with client_for(service) as client:
        assert client.shutdown() is True
    for _ in range(500):
        if service._stop.is_set():
            break
        threading.Event().wait(0.01)
    assert service._stop.is_set()
    service.shutdown()  # idempotent


def test_remote_shutdown_forbidden_by_default(catalog_root):
    with make_service(catalog_root, allow_remote_shutdown=False) as service:
        with client_for(service) as client:
            with pytest.raises(ServiceError) as exc_info:
                client.shutdown()
            assert exc_info.value.status == 403
            assert client.ping() is True
