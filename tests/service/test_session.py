"""Admission control and the per-tenant session table."""

from __future__ import annotations

from contextlib import ExitStack

import pytest

from repro.errors import OverloadedError, ServiceError
from repro.service.session import AdmissionController, SessionTable
from repro.telemetry.metrics import MetricsRegistry


class TestAdmissionController:
    def test_global_cap_sheds_with_429(self):
        admission = AdmissionController(max_concurrent=2, per_tenant=2)
        with ExitStack() as stack:
            stack.enter_context(admission.admit("a"))
            stack.enter_context(admission.admit("b"))
            with pytest.raises(OverloadedError) as exc_info:
                stack.enter_context(admission.admit("c"))
            assert exc_info.value.status == 429
        # Slots released: admission works again.
        with admission.admit("c"):
            pass

    def test_per_tenant_cap_protects_other_tenants(self):
        admission = AdmissionController(max_concurrent=10, per_tenant=1)
        with admission.admit("noisy"):
            with pytest.raises(OverloadedError):
                admission.admit("noisy").__enter__()
            # The quiet tenant is unaffected by the noisy one's cap.
            with admission.admit("quiet"):
                pass

    def test_shed_does_not_leak_slots(self):
        admission = AdmissionController(max_concurrent=1, per_tenant=1)
        with admission.admit("a"):
            for _ in range(3):
                with pytest.raises(OverloadedError):
                    admission.admit("b").__enter__()
        assert admission.snapshot()["inflight"] == 0
        with admission.admit("b"):
            assert admission.snapshot()["inflight"] == 1

    def test_registry_instruments_track_inflight_and_sheds(self):
        registry = MetricsRegistry()
        admission = AdmissionController(max_concurrent=1, per_tenant=1, registry=registry)
        with admission.admit("a"):
            assert registry.gauge("service_inflight").value == 1.0
            with pytest.raises(OverloadedError):
                admission.admit("a").__enter__()
        assert registry.gauge("service_inflight").value == 0.0
        assert registry.counter("service_shed_total").value == 1


class TestSessionTable:
    def test_tenants_are_fully_isolated(self):
        table = SessionTable()
        table.put("acme", "s1", {"k": 2})
        table.put("rival", "s1", {"k": 5})
        assert table.get("acme", "s1") == {"k": 2}
        assert table.get("rival", "s1") == {"k": 5}
        assert table.get("third", "s1") is None
        assert table.names("acme") == ["s1"]
        assert table.names("third") == []

    def test_release_only_touches_own_tenant(self):
        table = SessionTable()
        table.put("acme", "s1", {})
        table.put("rival", "s1", {})
        assert table.release("acme", "s1") is True
        assert table.release("acme", "s1") is False
        assert table.get("rival", "s1") == {}

    def test_per_tenant_session_cap(self):
        table = SessionTable(max_sessions_per_tenant=2)
        table.put("t", "a", {})
        table.put("t", "b", {})
        with pytest.raises(ServiceError) as exc_info:
            table.put("t", "c", {})
        assert exc_info.value.status == 429
        # Replacing an existing session is not a new slot.
        table.put("t", "a", {"updated": True})
        # Another tenant has its own budget.
        table.put("other", "c", {})
        assert table.total() == 3

    def test_stored_payload_is_copied(self):
        table = SessionTable()
        payload = {"interactions": 3}
        table.put("t", "s", payload)
        payload["interactions"] = 99
        fetched = table.get("t", "s")
        assert fetched == {"interactions": 3}
        fetched["interactions"] = 0
        assert table.get("t", "s") == {"interactions": 3}
