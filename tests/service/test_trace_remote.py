"""End-to-end distributed tracing: client -> daemon -> shard workers.

This file carries the PR's acceptance assertion: a traced query sent
through :class:`~repro.service.ServiceClient` against a sharded
(``workers>=2``) snapshot yields ONE trace -- client-side span, server-side
request span, engine span, and shard-worker spans all stamped with the same
trace id -- reconstructable into a single tree from the client's and the
server's trace files.  The daemon runs as a real subprocess, so the spans
genuinely cross two process boundaries (client/server and server/pool).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service import ServiceClient
from repro.storage.catalog import DatasetCatalog
from repro.telemetry import Telemetry, build_trace_tree, read_trace

GOAL = "(tram+bus)*.cinema"


@pytest.fixture(scope="module")
def catalog_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("trace-remote-catalog")
    DatasetCatalog(root).ensure("geo")
    return str(root)


def test_one_trace_spans_client_server_and_shard_workers(catalog_root, tmp_path):
    server_trace = tmp_path / "server-trace.jsonl"
    client_trace = tmp_path / "client-trace.jsonl"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--catalog",
            catalog_root,
            "--port",
            "0",
            "--snapshots",
            "geo",
            # Two shard workers on a tiny graph: --min-shard-edges 1 makes
            # it shard-eligible and --planner off pins dispatch to the
            # sharded kernel, so worker spans appear deterministically.
            "--workers",
            "2",
            "--min-shard-edges",
            "1",
            "--planner",
            "off",
            "--trace",
            str(server_trace),
            "--allow-remote-shutdown",
            "--indent",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(Path(__file__).resolve().parents[2]),
    )
    try:
        ready = json.loads(process.stdout.readline())
        assert ready["ok"] is True
        host, port = ready["ready"]["host"], ready["ready"]["port"]

        telemetry = Telemetry(trace_path=client_trace)
        with ServiceClient(host, port, tenant="acme", telemetry=telemetry) as client:
            envelope = client.request("query", {"expr": GOAL})
        telemetry.close()
        assert envelope["ok"] is True
        trace_id = envelope["trace"]["trace_id"]

        # Clean shutdown flushes and closes the server's trace sink.
        with ServiceClient(host, port) as admin:
            assert admin.shutdown() is True
        _stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()

    client_records = list(read_trace(client_trace))
    server_records = list(read_trace(server_trace))
    in_trace = [
        r
        for r in client_records + server_records
        if r.get("trace") == trace_id
    ]
    names = {r["name"] for r in in_trace}
    assert "client.request" in names
    assert "server.request" in names
    assert "engine.evaluate" in names
    shard_spans = [r for r in in_trace if r["name"].startswith("shard.")]
    assert len(shard_spans) >= 2  # one per worker process
    # Worker spans really came from other processes and carry their work
    # attribution and tenant stamp.
    server_pid_spans = {r["attrs"]["pid"] for r in shard_spans}
    assert all(isinstance(pid, int) for pid in server_pid_spans)
    for span in shard_spans:
        assert span["tenant"] == "acme"
        assert "states_expanded" in span["attrs"]

    # The whole thing reassembles into one tree rooted at the client span.
    tree = build_trace_tree(client_records + server_records, trace_id)
    assert tree["spans"] == len(in_trace)
    assert tree["tenants"] == ["acme"]
    (root,) = tree["roots"]
    assert root["name"] == "client.request"

    def walk(node):
        yield node["name"]
        for child in node["children"]:
            yield from walk(child)

    flattened = list(walk(root))
    assert "server.request" in flattened
    assert any(name.startswith("shard.") for name in flattened)
