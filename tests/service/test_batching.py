"""The micro-batcher: coalescing, bounded queue, per-item error isolation."""

from __future__ import annotations

import threading

import pytest

from repro.api import Workspace
from repro.errors import OverloadedError, ServiceError
from repro.queries.path_query import PathQuery
from repro.service.batching import MicroBatcher
from repro.telemetry.metrics import MetricsRegistry


class _Dataset:
    """The duck the batcher expects: a graph plus its engine."""

    def __init__(self, workspace: Workspace) -> None:
        self.graph = workspace.graph
        self.engine = workspace.engine


@pytest.fixture
def dataset():
    return _Dataset(Workspace.from_figure("geo"))


@pytest.fixture
def batcher(request):
    registry = MetricsRegistry()
    batcher = MicroBatcher(
        batch_window=0.0, batch_max=16, queue_depth=8, registry=registry
    )
    batcher.registry = registry
    batcher.start()
    request.addfinalizer(batcher.stop)
    return batcher


def _submit_concurrently(batcher, dataset, queries, timeout=30.0):
    results: dict[int, object] = {}
    errors: dict[int, Exception] = {}

    def worker(i, query):
        try:
            results[i] = batcher.submit(dataset, query, timeout=timeout)
        except Exception as error:  # noqa: BLE001 - asserted by callers
            errors[i] = error

    threads = [
        threading.Thread(target=worker, args=(i, query))
        for i, query in enumerate(queries)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


def test_paused_batcher_coalesces_one_batch(batcher, dataset):
    expressions = ["tram", "bus", "(tram+bus)*.cinema", "tram.tram"]
    queries = [PathQuery.parse(expr, dataset.graph.alphabet) for expr in expressions]
    expected = [dataset.engine.evaluate(dataset.graph, query) for query in queries]

    batcher.pause()
    done = threading.Event()
    results: list = [None] * len(queries)

    def worker(i):
        results[i] = batcher.submit(dataset, queries[i], timeout=30.0)
        if all(r is not None for r in results):
            done.set()

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(queries))]
    for thread in threads:
        thread.start()
    # All four must be queued (not executing) while paused.
    for _ in range(500):
        if batcher.depth == len(queries):
            break
        threading.Event().wait(0.01)
    assert batcher.depth == len(queries)
    batcher.resume()
    assert done.wait(30.0)
    for thread in threads:
        thread.join()

    assert results == expected
    # Exactly one evaluate_many call served all four requests.
    assert batcher.registry.counter("service_batches_total").value == 1
    assert batcher.registry.counter("service_batched_queries_total").value == 4
    snapshot = batcher.registry.snapshot()["service_batch_size"]
    assert snapshot["count"] == 1 and snapshot["sum"] == 4.0


def test_queue_depth_sheds_structured_429(batcher, dataset):
    query = PathQuery.parse("tram", dataset.graph.alphabet)
    batcher.pause()
    filler_done = threading.Event()
    admitted = []

    def filler(i):
        admitted.append(i)
        batcher.submit(dataset, query, timeout=30.0)
        if len(admitted) == batcher.queue_depth:
            filler_done.set()

    threads = [
        threading.Thread(target=filler, args=(i,)) for i in range(batcher.queue_depth)
    ]
    for thread in threads:
        thread.start()
    for _ in range(500):
        if batcher.depth == batcher.queue_depth:
            break
        threading.Event().wait(0.01)
    assert batcher.depth == batcher.queue_depth
    # The queue is full: the next submission sheds instead of hanging.
    with pytest.raises(OverloadedError) as exc_info:
        batcher.submit(dataset, query, timeout=30.0)
    assert exc_info.value.status == 429
    assert batcher.registry.counter("service_batch_shed_total").value == 1
    batcher.resume()
    for thread in threads:
        thread.join()


def test_batch_max_splits_large_bursts(dataset):
    registry = MetricsRegistry()
    batcher = MicroBatcher(batch_window=0.0, batch_max=3, queue_depth=64, registry=registry)
    batcher.start()
    try:
        batcher.pause()
        queries = [PathQuery.parse("tram", dataset.graph.alphabet) for _ in range(7)]
        holder: dict = {}

        def worker(i):
            holder[i] = batcher.submit(dataset, queries[i], timeout=30.0)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(7)]
        for thread in threads:
            thread.start()
        for _ in range(500):
            if batcher.depth == 7:
                break
            threading.Event().wait(0.01)
        batcher.resume()
        for thread in threads:
            thread.join()
        assert len(holder) == 7
        assert registry.counter("service_batched_queries_total").value == 7
        # 7 requests at batch_max=3 need at least ceil(7/3)=3 batches.
        assert registry.counter("service_batches_total").value >= 3
    finally:
        batcher.stop()


def test_error_isolated_to_its_request(batcher, dataset):
    good = PathQuery.parse("tram", dataset.graph.alphabet)
    bad = PathQuery.parse("bus", dataset.graph.alphabet)
    # Sabotage one query object so only its evaluation fails.
    bad._dfa = None
    batcher.pause()
    results, errors = {}, {}
    lock = threading.Lock()

    def worker(i, query):
        try:
            value = batcher.submit(dataset, query, timeout=30.0)
            with lock:
                results[i] = value
        except Exception as error:  # noqa: BLE001
            with lock:
                errors[i] = error

    threads = [
        threading.Thread(target=worker, args=(i, query))
        for i, query in enumerate([good, bad, good])
    ]
    for thread in threads:
        thread.start()
    for _ in range(500):
        if batcher.depth == 3:
            break
        threading.Event().wait(0.01)
    batcher.resume()
    for thread in threads:
        thread.join()
    # The good requests got their node sets; only the bad one failed.
    assert set(results) == {0, 2} and results[0] == results[2]
    assert set(errors) == {1}


def test_stop_fails_pending_requests_cleanly(dataset):
    batcher = MicroBatcher(batch_window=0.0, queue_depth=8)
    batcher.start()
    batcher.pause()
    query = PathQuery.parse("tram", dataset.graph.alphabet)
    outcome: dict = {}

    def worker():
        try:
            outcome["result"] = batcher.submit(dataset, query, timeout=30.0)
        except Exception as error:  # noqa: BLE001
            outcome["error"] = error

    thread = threading.Thread(target=worker)
    thread.start()
    for _ in range(500):
        if batcher.depth == 1:
            break
        threading.Event().wait(0.01)
    batcher.stop()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert "error" in outcome and outcome["error"].status == 503
    # And a post-stop submission is refused, not queued forever.
    with pytest.raises(ServiceError) as exc_info:
        batcher.submit(dataset, query, timeout=1.0)
    assert exc_info.value.status == 503


def test_duplicate_queries_deduplicate_within_batch(batcher, dataset):
    """A burst of identical expressions costs one evaluation, fanned back."""
    expressions = ["tram", "tram", "bus", "tram", "bus"]
    queries = [PathQuery.parse(expr, dataset.graph.alphabet) for expr in expressions]
    expected = [dataset.engine.evaluate(dataset.graph, query) for query in queries]

    batcher.pause()
    results, errors = {}, {}
    threads = []

    def worker(i):
        try:
            results[i] = batcher.submit(dataset, queries[i], timeout=30.0)
        except Exception as error:  # noqa: BLE001
            errors[i] = error

    for i in range(len(queries)):
        thread = threading.Thread(target=worker, args=(i,))
        threads.append(thread)
        thread.start()
    for _ in range(500):
        if batcher.depth == len(queries):
            break
        threading.Event().wait(0.01)
    batcher.resume()
    for thread in threads:
        thread.join()

    assert not errors
    assert [results[i] for i in range(len(queries))] == expected
    # 5 submissions, 2 distinct expressions -> 3 piggybacked on a batch-mate.
    deduped = batcher.registry.counter("service_batch_deduped_total").value
    assert deduped == 3


def test_queries_without_expression_never_deduplicate(batcher, dataset):
    """Dedupe keys fall back to identity for expression-less queries."""
    tram = PathQuery.parse("tram", dataset.graph.alphabet)
    bare = [q.dfa for q in (tram, tram)]  # raw DFAs carry no .expression
    expected = dataset.engine.evaluate(dataset.graph, tram)

    batcher.pause()
    results, errors = {}, {}
    threads = []

    def worker(i):
        try:
            results[i] = batcher.submit(dataset, bare[i], timeout=30.0)
        except Exception as error:  # noqa: BLE001
            errors[i] = error

    for i in range(len(bare)):
        thread = threading.Thread(target=worker, args=(i,))
        threads.append(thread)
        thread.start()
    for _ in range(500):
        if batcher.depth == len(bare):
            break
        threading.Event().wait(0.01)
    batcher.resume()
    for thread in threads:
        thread.join()

    assert not errors
    assert results[0] == results[1] == expected
    assert batcher.registry.counter("service_batch_deduped_total").value == 0
