"""The CLI faces of the service: ``repro serve`` and ``--remote``.

Includes the full daemon lifecycle as a subprocess -- start, discover the
ephemeral port from the ready line, serve concurrent clients, shut down
cleanly with exit code 0 -- which is the same choreography the CI serve
smoke step runs.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.api.cli import main
from repro.api.config import ServiceConfig
from repro.api.result import result_from_dict
from repro.service import QueryService, ServiceClient
from repro.storage.catalog import DatasetCatalog

GOAL = "(tram+bus)*.cinema"


@pytest.fixture(scope="module")
def catalog_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-cli-catalog")
    DatasetCatalog(root).ensure("geo")
    return str(root)


@pytest.fixture(scope="module")
def service(catalog_root):
    config = ServiceConfig(
        catalog_root=catalog_root, snapshots=("geo",), default_snapshot="geo"
    )
    with QueryService(config) as running:
        yield running


def run_cli(capsys, *argv: str) -> tuple[int, dict]:
    code = main(list(argv))
    envelope = json.loads(capsys.readouterr().out)
    return code, envelope


def test_query_remote_envelope(capsys, service):
    host, port = service.address
    code, envelope = run_cli(
        capsys, "query", "--remote", f"{host}:{port}", "--expr", GOAL
    )
    assert code == 0
    assert envelope["ok"] is True and envelope["command"] == "query"
    assert envelope["result"]["type"] == "QueryResult"
    assert envelope["result"]["served_by"] == f"{host}:{port}"
    # Remote envelopes have no local workspace, hence no engine_stats.
    assert "engine_stats" not in envelope
    rebuilt = result_from_dict(
        {k: v for k, v in envelope["result"].items() if k != "served_by"}
    )
    assert rebuilt.nodes() == ["N1", "N2", "N4", "N6"]


def test_query_remote_dataset_and_error(capsys, service):
    host, port = service.address
    code, envelope = run_cli(
        capsys,
        "query",
        "--remote",
        f"{host}:{port}",
        "--dataset",
        "missing",
        "--expr",
        GOAL,
    )
    assert code == 1
    assert envelope["ok"] is False
    # The server's 404 surfaces client-side as a ProtocolError (4xx class).
    assert envelope["error"]["type"] == "ProtocolError"
    assert "missing" in envelope["error"]["message"]


def test_query_remote_unreachable_is_structured(capsys):
    code, envelope = run_cli(
        capsys, "query", "--remote", "127.0.0.1:1", "--expr", GOAL
    )
    assert code == 1
    assert envelope["ok"] is False


def test_query_remote_bad_address(capsys):
    code, envelope = run_cli(capsys, "query", "--remote", "nonsense", "--expr", GOAL)
    assert code == 1
    assert envelope["error"]["type"] == "ServiceError"


def test_stats_remote_with_traffic_and_prometheus(capsys, service):
    host, port = service.address
    code, envelope = run_cli(
        capsys,
        "stats",
        "--remote",
        f"{host}:{port}",
        "--expr",
        GOAL,
        "--repeat",
        "3",
        "--prometheus",
    )
    assert code == 0
    result = envelope["result"]
    assert result["type"] == "ServiceStats"
    assert result["server"]["requests"] >= 4  # 3 queries + the stats call
    assert result["datasets"]["geo"]["evaluations"] >= 1
    assert "service_requests_total" in result["prometheus"]
    assert result["served_by"] == f"{host}:{port}"


def test_query_remote_with_trace_writes_client_spans(capsys, service, tmp_path):
    from repro.telemetry import read_trace

    trace_file = tmp_path / "client.jsonl"
    host, port = service.address
    code, envelope = run_cli(
        capsys,
        "query",
        "--remote",
        f"{host}:{port}",
        "--expr",
        GOAL,
        "--trace",
        str(trace_file),
    )
    assert code == 0
    records = [r for r in read_trace(trace_file) if r["name"] == "client.request"]
    assert len(records) == 1
    assert records[0]["trace"]
    # The module service traces nothing server-side, so no echo surfaces --
    # the client-side trace id is the one the client minted.
    assert records[0]["tenant"] == "cli"


def test_stats_remote_tenants_table(capsys, service):
    host, port = service.address
    run_cli(
        capsys,
        "query",
        "--remote",
        f"{host}:{port}",
        "--tenant",
        "acme-cli",
        "--expr",
        GOAL,
    )
    code, envelope = run_cli(
        capsys, "stats", "--remote", f"{host}:{port}", "--tenants"
    )
    assert code == 0
    tenants = envelope["result"]["tenants"]
    assert tenants["acme-cli"]["queries"] >= 1
    assert tenants["acme-cli"]["errors"] == 0


def test_serve_subprocess_full_lifecycle(catalog_root, tmp_path):
    """Daemon as a subprocess: ready line, concurrent clients, clean exit."""
    metrics_file = tmp_path / "metrics.prom"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--catalog",
            catalog_root,
            "--port",
            "0",
            "--snapshots",
            "geo",
            "--metrics-file",
            str(metrics_file),
            "--allow-remote-shutdown",
            "--indent",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(Path(__file__).resolve().parents[2]),
    )
    try:
        ready = json.loads(process.stdout.readline())
        assert ready["ok"] is True and ready["command"] == "serve"
        host = ready["ready"]["host"]
        port = ready["ready"]["port"]
        assert ready["ready"]["snapshots"] == ["geo"]

        results = []
        errors = []

        def worker(tenant):
            try:
                with ServiceClient(host, port, tenant=tenant) as client:
                    results.append(client.query(GOAL).count)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(f"tenant-{i % 2}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        assert results == [4, 4, 4, 4]

        with ServiceClient(host, port) as client:
            assert client.shutdown() is True
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
        final = json.loads(stdout)
        assert final["ok"] is True
        assert final["result"]["type"] == "ServeReport"
        assert final["result"]["server"]["requests"] >= 5
        assert "service_requests_total" in metrics_file.read_text()
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
