"""Wire-protocol coverage: framing, validation, and result round-trips.

Every :data:`~repro.api.result.RESULT_TYPES` subtype is pushed through the
actual client/server codec -- encoded as a response frame, read back via
:func:`~repro.service.protocol.read_frame`, rebuilt through the type-tag
dispatch -- plus the error-envelope and oversized-frame paths.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.api import (
    ExperimentConfig,
    InteractiveConfig,
    LearnerConfig,
    Workspace,
    result_from_dict,
)
from repro.errors import OverloadedError, ProtocolError, ServiceError
from repro.learning import BinarySample, NarySample, Sample
from repro.service import protocol


@pytest.fixture(scope="module")
def geo_workspace():
    return Workspace.from_figure("geo")


@pytest.fixture(scope="module")
def all_results(geo_workspace):
    """One live instance of every RESULT_TYPES subtype."""
    ws = geo_workspace
    interactive_cfg = InteractiveConfig(max_interactions=5, pool_size=32)
    session = ws.interactive_session("(tram+bus)*.cinema", interactive_cfg)
    interactive_result = session.run()
    return {
        "QueryResult": ws.query("(tram+bus)*.cinema"),
        "ExplainResult": ws.explain("(tram+bus)*.cinema"),
        "LearnerResult": ws.learn(Sample(positives={"N2", "N6"}, negatives={"N5"})),
        "BinaryLearnerResult": ws.learn(
            BinarySample(positives={("N2", "N5")}, negatives={("N4", "N5")}),
            LearnerConfig(semantics="binary", k=2),
        ),
        "NaryLearnerResult": ws.learn(
            NarySample(positives={("N2", "N5", "N3")}, negatives={("N4", "N5", "R1")}),
            LearnerConfig(semantics="nary", k=2),
        ),
        "InteractiveResult": interactive_result,
        "InteractiveCheckpoint": session.checkpoint(),
        "StaticExperimentResult": ws.run_experiment(
            ExperimentConfig(goal="(tram+bus)*.cinema", labeled_fractions=(0.3, 0.6))
        ),
        "InteractiveExperimentResult": ws.run_experiment(
            ExperimentConfig(
                goal="(tram+bus)*.cinema", scenario="interactive", max_interactions=10
            )
        ),
    }


def wire_roundtrip(envelope: dict) -> dict:
    """Encode an envelope, stream it, read it back -- the full codec path."""
    frame = protocol.encode_frame(envelope)
    received = protocol.read_frame(io.BytesIO(frame))
    assert received is not None
    return received


def test_all_result_types_covered(all_results):
    from repro.api.result import RESULT_TYPES

    assert set(all_results) == set(RESULT_TYPES)


def test_every_result_subtype_roundtrips_through_the_codec(all_results):
    request = protocol.Request(id=1, op="query", tenant="t")
    for tag, result in all_results.items():
        envelope = wire_roundtrip(
            protocol.ok_response(request, result.to_dict(), elapsed=0.01)
        )
        assert envelope["ok"] is True and envelope["id"] == 1
        rebuilt = result_from_dict(envelope["result"])
        assert type(rebuilt).__name__ == tag
        assert rebuilt.to_dict() == result.to_dict()


def test_request_frame_roundtrip():
    frame = protocol.encode_frame(
        {"id": 9, "op": "query", "tenant": "acme", "params": {"expr": "a.b"}}
    )
    assert frame.endswith(b"\n") and frame.count(b"\n") == 1
    request = protocol.parse_request(protocol.decode_frame(frame))
    assert request == protocol.Request(
        id=9, op="query", tenant="acme", params={"expr": "a.b"}
    )


def test_parse_request_validation():
    with pytest.raises(ProtocolError):
        protocol.parse_request({"op": "no-such-op"})
    with pytest.raises(ProtocolError):
        protocol.parse_request({"op": "query", "id": [1]})
    with pytest.raises(ProtocolError):
        protocol.parse_request({"op": "query", "tenant": ""})
    with pytest.raises(ProtocolError):
        protocol.parse_request({"op": "query", "params": "not-a-dict"})
    # Defaults: no id, default tenant, empty params.
    request = protocol.parse_request({"op": "ping"})
    assert request.tenant == protocol.DEFAULT_TENANT and request.params == {}


def test_parse_request_validates_trace_context():
    wire = {"trace_id": "abc123", "parent_span": "c1:7", "tenant": "acme"}
    request = protocol.parse_request({"op": "query", "trace": wire})
    assert request.trace == wire
    # No trace field: stays None (the untraced wire form is unchanged).
    assert protocol.parse_request({"op": "query"}).trace is None
    with pytest.raises(ProtocolError):
        protocol.parse_request({"op": "query", "trace": "abc123"})
    with pytest.raises(ProtocolError):
        protocol.parse_request({"op": "query", "trace": {"trace_id": ""}})
    with pytest.raises(ProtocolError):
        protocol.parse_request(
            {"op": "query", "trace": {"trace_id": "t", "parent_span": 7}}
        )
    with pytest.raises(ProtocolError):
        protocol.parse_request(
            {"op": "query", "trace": {"trace_id": "t", "tenant": 42}}
        )


def test_responses_echo_the_trace_context():
    wire = {"trace_id": "abc123", "parent_span": "c1:7"}
    request = protocol.Request(id=4, op="query", tenant="t", trace=wire)
    envelope = wire_roundtrip(protocol.ok_response(request, {"x": 1}, elapsed=0.0))
    assert envelope["trace"] == wire
    # extra wins over the raw echo: the server sends its enriched context.
    enriched = protocol.ok_response(
        request, {"x": 1}, elapsed=0.0, trace={"trace_id": "abc123", "tenant": "t"}
    )
    assert enriched["trace"] == {"trace_id": "abc123", "tenant": "t"}
    failed = protocol.error_response(4, ServiceError("m"), op="query", trace=wire)
    assert failed["trace"] == wire
    # Untraced envelopes carry no trace key at all.
    untraced = protocol.Request(id=5, op="query", tenant="t")
    assert "trace" not in protocol.ok_response(untraced, {}, elapsed=0.0)
    assert "trace" not in protocol.error_response(5, ServiceError("m"), op="query")


def test_decode_rejects_non_object_and_bad_json():
    with pytest.raises(ProtocolError):
        protocol.decode_frame(b"[1, 2, 3]\n")
    with pytest.raises(ProtocolError):
        protocol.decode_frame(b"not json {\n")


def test_error_envelope_carries_code_and_status():
    envelope = wire_roundtrip(
        protocol.error_response(3, OverloadedError("queue full"), op="query")
    )
    assert envelope["ok"] is False
    assert envelope["error"]["code"] == "overloaded"
    assert envelope["error"]["status"] == 429
    assert envelope["error"]["type"] == "OverloadedError"
    # And the client side re-raises it as the same typed exception.
    with pytest.raises(OverloadedError):
        protocol.raise_for_error(envelope)


def test_raise_for_error_maps_status_classes():
    def failed(code, status):
        return {
            "ok": False,
            "error": {"code": code, "status": status, "message": "m", "type": "X"},
        }

    with pytest.raises(ProtocolError):
        protocol.raise_for_error(failed("bad_request", 400))
    with pytest.raises(ProtocolError):
        protocol.raise_for_error(failed("too_large", 413))
    with pytest.raises(ServiceError) as exc_info:
        protocol.raise_for_error(failed("internal", 500))
    assert exc_info.value.status == 500
    ok = {"ok": True, "result": {}}
    assert protocol.raise_for_error(ok) is ok


def test_unexpected_exception_maps_to_internal():
    envelope = protocol.error_response(None, ValueError("boom"))
    assert envelope["error"]["code"] == "internal"
    assert envelope["error"]["status"] == 500


def test_oversized_frame_rejected_on_encode():
    huge = {"id": 1, "op": "query", "params": {"expr": "x" * 2048}}
    with pytest.raises(ProtocolError) as exc_info:
        protocol.encode_frame(huge, max_bytes=1024)
    assert exc_info.value.status == 413


def test_oversized_frame_rejected_on_read_without_desync():
    # An oversized line followed by a valid frame: the reader must reject
    # the first *and* still deliver the second (stream stays framed).
    good = protocol.encode_frame({"op": "ping"})
    stream = io.BytesIO(b"{\"pad\": \"" + b"x" * 5000 + b"\"}\n" + good)
    with pytest.raises(ProtocolError) as exc_info:
        protocol.read_frame(stream, max_bytes=1024)
    assert exc_info.value.status == 413
    assert protocol.read_frame(stream, max_bytes=1024) == {"op": "ping"}


def test_read_frame_eof_and_oversized_at_eof():
    assert protocol.read_frame(io.BytesIO(b"")) is None
    # Oversized data with no terminating newline before EOF still raises.
    stream = io.BytesIO(b"y" * 5000)
    with pytest.raises(ProtocolError):
        protocol.read_frame(stream, max_bytes=1024)
    assert protocol.read_frame(stream, max_bytes=1024) is None


def test_frames_are_single_line_json():
    payload = protocol.ok_response(
        protocol.Request(id=None, op="stats", tenant="t"),
        {"type": "ServiceStats", "ok": True},
        elapsed=0.0,
    )
    frame = protocol.encode_frame(payload)
    assert json.loads(frame) == payload
    assert b"\n" not in frame[:-1]
