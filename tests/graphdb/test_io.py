"""Unit tests for graph serialization."""

import pytest

from repro.errors import GraphError
from repro.graphdb import (
    GraphDB,
    graph_from_edge_list,
    graph_from_json,
    graph_to_edge_list,
    graph_to_json,
    load_graph,
    save_graph,
)


@pytest.fixture
def sample_graph():
    graph = GraphDB(["a", "b"])
    graph.add_edges([("x", "a", "y"), ("y", "b", "z")])
    graph.add_node("isolated")
    return graph


class TestEdgeList:
    def test_roundtrip(self, sample_graph):
        text = graph_to_edge_list(sample_graph)
        restored = graph_from_edge_list(text)
        assert restored.nodes == sample_graph.nodes
        assert restored.edges == sample_graph.edges

    def test_comments_and_blank_lines_are_ignored(self):
        text = "# comment\n\nx\ta\ty\n"
        graph = graph_from_edge_list(text)
        assert graph.edges == {("x", "a", "y")}

    def test_malformed_edge_raises(self):
        with pytest.raises(GraphError):
            graph_from_edge_list("x\ta\n")

    def test_malformed_node_directive_raises(self):
        with pytest.raises(GraphError):
            graph_from_edge_list("%node\tx\textra\n")


class TestJson:
    def test_roundtrip(self, sample_graph):
        text = graph_to_json(sample_graph)
        restored = graph_from_json(text)
        assert restored.nodes == sample_graph.nodes
        assert restored.edges == sample_graph.edges

    def test_invalid_json_raises(self):
        with pytest.raises(GraphError):
            graph_from_json("not json")

    def test_missing_edges_key_raises(self):
        with pytest.raises(GraphError):
            graph_from_json('{"nodes": []}')

    def test_malformed_edge_entry_raises(self):
        with pytest.raises(GraphError):
            graph_from_json('{"edges": [["x", "a"]]}')


class TestFiles:
    def test_save_and_load_json(self, sample_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(sample_graph, path)
        assert load_graph(path).edges == sample_graph.edges

    def test_save_and_load_edge_list(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        save_graph(sample_graph, path)
        assert load_graph(path).edges == sample_graph.edges
        assert load_graph(path).nodes == sample_graph.nodes
