"""Unit tests for graph serialization."""

import pytest

from repro.errors import GraphError
from repro.graphdb import (
    GraphDB,
    graph_from_edge_list,
    graph_from_json,
    graph_to_edge_list,
    graph_to_json,
    load_graph,
    save_graph,
)


@pytest.fixture
def sample_graph():
    graph = GraphDB(["a", "b"])
    graph.add_edges([("x", "a", "y"), ("y", "b", "z")])
    graph.add_node("isolated")
    return graph


class TestEdgeList:
    def test_roundtrip(self, sample_graph):
        text = graph_to_edge_list(sample_graph)
        restored = graph_from_edge_list(text)
        assert restored.nodes == sample_graph.nodes
        assert restored.edges == sample_graph.edges

    def test_comments_and_blank_lines_are_ignored(self):
        text = "# comment\n\nx\ta\ty\n"
        graph = graph_from_edge_list(text)
        assert graph.edges == {("x", "a", "y")}

    def test_malformed_edge_raises(self):
        with pytest.raises(GraphError):
            graph_from_edge_list("x\ta\n")

    def test_malformed_node_directive_raises(self):
        with pytest.raises(GraphError):
            graph_from_edge_list("%node\tx\textra\n")

    def test_tabs_and_newlines_in_names_roundtrip(self):
        graph = GraphDB()
        graph.add_edge("has\ttab", "label\nwith\nnewlines", "back\\slash")
        graph.add_edge("cr\rname", "l", "plain")
        graph.add_node("iso\tlated")
        restored = graph_from_edge_list(graph_to_edge_list(graph))
        assert restored.nodes == graph.nodes
        assert restored.edges == graph.edges

    def test_comment_and_directive_lookalike_names_roundtrip(self):
        graph = GraphDB()
        graph.add_edge("#not-a-comment", "a", "%node")
        graph.add_node("%node")  # already present as an edge endpoint
        graph.add_node("#iso")
        restored = graph_from_edge_list(graph_to_edge_list(graph))
        assert restored.nodes == graph.nodes
        assert restored.edges == graph.edges

    def test_unknown_escape_raises(self):
        with pytest.raises(GraphError):
            graph_from_edge_list("a\\q\tl\tb\n")

    def test_dangling_escape_raises(self):
        with pytest.raises(GraphError):
            graph_from_edge_list("a\tl\tb\\\n")

    def test_output_is_node_order_stable(self):
        graph = GraphDB()
        graph.add_edge("zeta", "later", "alpha")
        graph.add_edge("alpha", "early", "mid")
        graph.add_node("lonely")
        expected = (
            "# repro graph database edge list\n"
            "zeta\tlater\talpha\n"
            "alpha\tearly\tmid\n"
            "%node\tlonely\n"
        )
        # Edges come out keyed by (origin, label, end) positions in the
        # stable node/label orders, isolated nodes in insertion order --
        # no repr-sorting, no hash-seed dependence.
        assert graph_to_edge_list(graph) == expected
        assert graph_to_edge_list(graph) == graph_to_edge_list(graph.copy())

    def test_copy_and_subgraph_preserve_label_order(self):
        # Regression: copy()/subgraph() used to replay a *set* of edges, so
        # the copy's label first-use order (the canonical CSR numbering and
        # edge-list output order) depended on the hash seed.  Two edges from
        # the same origin make any instability visible.
        graph = GraphDB()
        graph.add_edge("a", "xlabel", "b")
        graph.add_edge("a", "ylabel", "c")
        assert graph.copy().label_order == graph.label_order
        assert graph.subgraph(graph.nodes).label_order == graph.label_order
        assert graph_to_edge_list(graph.copy()) == graph_to_edge_list(graph)


class TestJson:
    def test_roundtrip(self, sample_graph):
        text = graph_to_json(sample_graph)
        restored = graph_from_json(text)
        assert restored.nodes == sample_graph.nodes
        assert restored.edges == sample_graph.edges

    def test_invalid_json_raises(self):
        with pytest.raises(GraphError):
            graph_from_json("not json")

    def test_missing_edges_key_raises(self):
        with pytest.raises(GraphError):
            graph_from_json('{"nodes": []}')

    def test_malformed_edge_entry_raises(self):
        with pytest.raises(GraphError):
            graph_from_json('{"edges": [["x", "a"]]}')


class TestFiles:
    def test_save_and_load_json(self, sample_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(sample_graph, path)
        assert load_graph(path).edges == sample_graph.edges

    def test_save_and_load_edge_list(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        save_graph(sample_graph, path)
        assert load_graph(path).edges == sample_graph.edges
        assert load_graph(path).nodes == sample_graph.nodes
