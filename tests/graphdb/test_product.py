"""Unit tests for query evaluation via the product construction."""

import pytest

from repro.graphdb import (
    GraphDB,
    any_node_selects,
    binary_evaluate,
    evaluate,
    node_selects,
    pair_selects,
)
from repro.errors import GraphError
from repro.regex import compile_query


class TestMonadicEvaluation:
    def test_paper_examples_on_g0(self, g0):
        # Section 2: a selects all nodes except v4; (a.b)*.c selects v1 and v3;
        # b.b.c.c selects no node.
        assert evaluate(g0, compile_query("a", g0.alphabet)) == g0.nodes - {"v4"}
        assert evaluate(g0, compile_query("(a.b)*.c", g0.alphabet)) == {"v1", "v3"}
        assert evaluate(g0, compile_query("b.b.c.c", g0.alphabet)) == frozenset()

    def test_geo_running_example(self, geo):
        query = compile_query("(tram+bus)*.cinema", geo.alphabet)
        assert evaluate(geo, query) == {"N1", "N2", "N4", "N6"}

    def test_epsilon_query_selects_every_node(self, g0):
        assert evaluate(g0, compile_query("eps", g0.alphabet)) == g0.nodes

    def test_empty_language_selects_nothing(self, g0):
        from repro.automata.dfa import DFA

        empty = DFA(g0.alphabet, initial=0)
        assert evaluate(g0, empty) == frozenset()

    def test_node_selects_agrees_with_evaluate(self, g0):
        query = compile_query("(a.b)*.c", g0.alphabet)
        selected = evaluate(g0, query)
        for node in g0.nodes:
            assert node_selects(g0, query, node) == (node in selected)

    def test_node_selects_unknown_node_raises(self, g0):
        with pytest.raises(GraphError):
            node_selects(g0, compile_query("a", g0.alphabet), "missing")

    def test_query_with_labels_absent_from_graph(self, g0):
        # A query over a larger alphabet evaluates fine; unknown labels
        # simply never match an edge.
        assert evaluate(g0, compile_query("z", ["a", "b", "c", "z"])) == frozenset()
        assert evaluate(g0, compile_query("a.b.c+z", ["a", "b", "c", "z"])) == {
            "v1",
            "v3",
        }


class TestAnyNodeSelects:
    def test_merge_guard_of_paper_example(self, g0):
        negatives = {"v2", "v7"}
        # a*(c+bc) -- the result of merging eps and a -- selects the negative v2.
        assert any_node_selects(g0, compile_query("a*.(c+b.c)", g0.alphabet), negatives)
        # (a.b)*.c selects no negative node.
        assert not any_node_selects(g0, compile_query("(a.b)*.c", g0.alphabet), negatives)

    def test_empty_node_set(self, g0):
        assert not any_node_selects(g0, compile_query("a", g0.alphabet), set())

    def test_epsilon_in_language_selects_any_node(self, g0):
        assert any_node_selects(g0, compile_query("a*", g0.alphabet), {"v4"})


class TestBinaryEvaluation:
    @pytest.fixture
    def chain(self):
        graph = GraphDB(["a", "b"])
        graph.add_edges([("x", "a", "y"), ("y", "b", "z"), ("x", "b", "z")])
        return graph

    def test_binary_evaluate(self, chain):
        pairs = binary_evaluate(chain, compile_query("a.b", chain.alphabet))
        assert pairs == {("x", "z")}

    def test_binary_evaluate_with_star(self, chain):
        pairs = binary_evaluate(chain, compile_query("a*", chain.alphabet))
        # Every node reaches itself with eps, plus x reaches y with a.
        assert ("x", "x") in pairs
        assert ("x", "y") in pairs
        assert ("y", "y") in pairs
        assert ("y", "x") not in pairs

    def test_pair_selects(self, chain):
        query = compile_query("a.b", chain.alphabet)
        assert pair_selects(chain, query, "x", "z")
        assert not pair_selects(chain, query, "x", "y")
        assert not pair_selects(chain, query, "y", "z")

    def test_pair_selects_epsilon(self, chain):
        query = compile_query("b*", chain.alphabet)
        assert pair_selects(chain, query, "y", "y")
        assert pair_selects(chain, query, "y", "z")

    def test_pair_selects_unknown_node_raises(self, chain):
        with pytest.raises(GraphError):
            pair_selects(chain, compile_query("a", chain.alphabet), "x", "missing")

    def test_binary_agrees_with_pairwise_checks(self, g0):
        query = compile_query("a.b", g0.alphabet)
        pairs = binary_evaluate(g0, query)
        for origin in g0.nodes:
            for end in g0.nodes:
                assert pair_selects(g0, query, origin, end) == ((origin, end) in pairs)
