"""Unit tests for the path semantics of graph databases."""

import pytest

from repro.errors import GraphError
from repro.graphdb import (
    GraphDB,
    covered_by,
    enumerate_paths,
    enumerate_paths_between,
    paths_between_nfa,
    paths_nfa,
)
from repro.graphdb.paths import node_has_path


class TestPathsNFA:
    def test_language_is_paths_of_node(self, g0):
        nfa = paths_nfa(g0, "v1")
        # Section 2: abc is a path of v1, empty word always is, bc is not.
        assert nfa.accepts(())
        assert nfa.accepts(("a", "b", "c"))
        assert nfa.accepts(("a",))
        assert not nfa.accepts(("b",))
        assert not nfa.accepts(("c",))

    def test_multiple_start_nodes(self, g0):
        nfa = paths_nfa(g0, ["v2", "v7"])
        assert nfa.accepts(("b", "c"))   # path of v2
        assert nfa.accepts(("a", "a"))   # path of v7 (self loops)

    def test_unknown_node_raises(self, g0):
        with pytest.raises(GraphError):
            paths_nfa(g0, "missing")

    def test_paths_between_nfa(self, g0):
        nfa = paths_between_nfa(g0, "v1", "v4")
        assert nfa.accepts(("a", "b", "c"))
        assert not nfa.accepts(("a", "b"))
        assert not nfa.accepts(())


class TestEnumeratePaths:
    def test_paper_example_paths_of_v5(self, g0):
        assert list(enumerate_paths(g0, "v5", max_length=3)) == [(), ("a",), ("b",)]

    def test_canonical_order(self, g0):
        paths = list(enumerate_paths(g0, "v1", max_length=3))
        keys = [g0.alphabet.word_key(path) for path in paths]
        assert keys == sorted(keys)

    def test_limit(self, g0):
        assert len(list(enumerate_paths(g0, "v1", max_length=4, limit=5))) == 5

    def test_empty_word_is_always_first(self, g0):
        for node in g0.nodes:
            first = next(iter(enumerate_paths(g0, node, max_length=1)))
            assert first == ()

    def test_words_are_deduplicated(self):
        graph = GraphDB(["a"])
        graph.add_edges([("x", "a", "y"), ("x", "a", "z")])
        assert list(enumerate_paths(graph, "x", max_length=1)) == [(), ("a",)]

    def test_negative_max_length_raises(self, g0):
        with pytest.raises(GraphError):
            list(enumerate_paths(g0, "v1", max_length=-1))

    def test_unknown_node_raises(self, g0):
        with pytest.raises(GraphError):
            list(enumerate_paths(g0, "missing", max_length=1))


class TestEnumeratePathsBetween:
    def test_paths_between_nodes(self, g0):
        paths = list(enumerate_paths_between(g0, "v1", "v4", max_length=3))
        assert ("a", "b", "c") in paths
        assert ("a", "a", "a") in paths  # v1 a v2 a v5 a v4
        assert () not in paths

    def test_same_node_includes_empty_word(self, g0):
        paths = list(enumerate_paths_between(g0, "v1", "v1", max_length=2))
        assert paths[0] == ()

    def test_no_path_within_bound(self):
        graph = GraphDB(["a"])
        graph.add_edges([("x", "a", "y"), ("z", "a", "w")])
        assert list(enumerate_paths_between(graph, "x", "w", max_length=3)) == []


class TestCoverage:
    def test_node_has_path(self, g0):
        assert node_has_path(g0, "v2", ("b", "c"))
        assert not node_has_path(g0, "v7", ("c",))
        assert node_has_path(g0, "v4", ())

    def test_covered_by_negatives_of_paper_example(self, g0):
        negatives = {"v2", "v7"}
        # bc is covered by v2 (this blocks the eps/a merge in Section 3.2).
        assert covered_by(g0, ("b", "c"), negatives)
        # The empty word is covered by any non-empty node set.
        assert covered_by(g0, (), negatives)
        # abc and c are not covered: they are the SCPs of v1 and v3.
        assert not covered_by(g0, ("a", "b", "c"), negatives)
        assert not covered_by(g0, ("c",), negatives)

    def test_covered_by_empty_node_set_is_false(self, g0):
        assert not covered_by(g0, (), set())

    def test_covered_by_unknown_node_raises(self, g0):
        with pytest.raises(GraphError):
            covered_by(g0, ("a",), {"missing"})
