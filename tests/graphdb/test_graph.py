"""Unit tests for the GraphDB container."""

import pytest

from repro.automata import Alphabet
from repro.errors import GraphError
from repro.graphdb import GraphDB


class TestConstruction:
    def test_add_nodes_and_edges(self):
        graph = GraphDB()
        graph.add_edge("x", "a", "y")
        graph.add_node("z")
        assert graph.nodes == {"x", "y", "z"}
        assert graph.edges == {("x", "a", "y")}
        assert graph.node_count() == 3
        assert graph.edge_count() == 1

    def test_duplicate_edges_are_stored_once(self):
        graph = GraphDB()
        graph.add_edge("x", "a", "y")
        graph.add_edge("x", "a", "y")
        assert graph.edge_count() == 1

    def test_parallel_edges_with_different_labels(self):
        graph = GraphDB()
        graph.add_edge("x", "a", "y")
        graph.add_edge("x", "b", "y")
        assert graph.edge_count() == 2

    def test_fixed_alphabet_rejects_unknown_label(self):
        graph = GraphDB(["a", "b"])
        with pytest.raises(GraphError):
            graph.add_edge("x", "z", "y")

    def test_derived_alphabet_grows_with_labels(self):
        graph = GraphDB()
        graph.add_edge("x", "b", "y")
        graph.add_edge("y", "a", "x")
        assert graph.alphabet == Alphabet(["a", "b"])

    def test_alphabet_of_empty_unlabeled_graph_raises(self):
        with pytest.raises(GraphError):
            GraphDB().alphabet

    def test_invalid_label_and_node(self):
        graph = GraphDB()
        with pytest.raises(GraphError):
            graph.add_edge("x", "", "y")
        with pytest.raises(GraphError):
            graph.add_node(None)

    def test_from_edges(self):
        graph = GraphDB.from_edges([("x", "a", "y")], nodes=["z"])
        assert graph.nodes == {"x", "y", "z"}


class TestAdjacency:
    @pytest.fixture
    def graph(self):
        g = GraphDB(["a", "b"])
        g.add_edges([("x", "a", "y"), ("x", "a", "z"), ("x", "b", "y"), ("y", "a", "z")])
        return g

    def test_successors(self, graph):
        assert graph.successors("x", "a") == {"y", "z"}
        assert graph.successors("x") == {"y", "z"}
        assert graph.successors("z") == frozenset()

    def test_predecessors(self, graph):
        assert graph.predecessors("y", "a") == {"x"}
        assert graph.predecessors("z") == {"x", "y"}

    def test_degrees(self, graph):
        assert graph.out_degree("x") == 3
        assert graph.in_degree("z") == 2
        assert graph.out_degree("z") == 0

    def test_out_edges_and_in_edges(self, graph):
        assert set(graph.out_edges("y")) == {("a", "z")}
        assert set(graph.in_edges("y")) == {("x", "a"), ("x", "b")}

    def test_outgoing_labels(self, graph):
        assert graph.outgoing_labels("x") == {"a", "b"}

    def test_unknown_node_raises(self, graph):
        with pytest.raises(GraphError):
            graph.successors("missing")
        with pytest.raises(GraphError):
            graph.out_degree("missing")

    def test_has_edge_and_contains(self, graph):
        assert graph.has_edge("x", "a", "y")
        assert not graph.has_edge("y", "b", "x")
        assert "x" in graph
        assert "missing" not in graph


class TestNeighborhoodsAndSubgraphs:
    @pytest.fixture
    def chain(self):
        g = GraphDB(["a"])
        g.add_edges([("n1", "a", "n2"), ("n2", "a", "n3"), ("n3", "a", "n4")])
        return g

    def test_reachable_from(self, chain):
        assert chain.reachable_from("n2") == {"n2", "n3", "n4"}
        assert chain.reachable_from("n2", max_hops=1) == {"n2", "n3"}

    def test_neighborhood_radius(self, chain):
        fragment = chain.neighborhood("n2", 1)
        assert fragment.nodes == {"n1", "n2", "n3"}
        assert fragment.has_edge("n1", "a", "n2")
        assert not fragment.has_edge("n3", "a", "n4")

    def test_neighborhood_negative_radius_raises(self, chain):
        with pytest.raises(GraphError):
            chain.neighborhood("n1", -1)

    def test_subgraph(self, chain):
        sub = chain.subgraph({"n1", "n2"})
        assert sub.edges == {("n1", "a", "n2")}

    def test_subgraph_with_unknown_node_raises(self, chain):
        with pytest.raises(GraphError):
            chain.subgraph({"n1", "missing"})

    def test_copy_is_independent(self, chain):
        clone = chain.copy()
        clone.add_edge("n4", "a", "n1")
        assert not chain.has_edge("n4", "a", "n1")


class TestCyclesAndStatistics:
    def test_cycle_detection(self):
        graph = GraphDB(["a"])
        graph.add_edges([("x", "a", "y"), ("y", "a", "x"), ("z", "a", "x"), ("w", "a", "v")])
        assert graph.has_cycle_reachable_from("z")
        assert graph.has_cycle_reachable_from("x")
        assert not graph.has_cycle_reachable_from("w")
        assert not graph.has_cycle_reachable_from("v")

    def test_label_histogram(self):
        graph = GraphDB(["a", "b"])
        graph.add_edges([("x", "a", "y"), ("y", "a", "z"), ("x", "b", "z")])
        assert graph.label_histogram() == {"a": 2, "b": 1}

    def test_degree_statistics(self):
        graph = GraphDB(["a"])
        graph.add_edges([("x", "a", "y"), ("x", "a", "z")])
        stats = graph.degree_statistics()
        assert stats["max_out_degree"] == 2.0
        assert stats["mean_out_degree"] == pytest.approx(2 / 3)
