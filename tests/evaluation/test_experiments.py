"""Unit tests for the static and interactive experiment drivers and reporting."""

import random

import pytest

from repro.errors import LearningError
from repro.evaluation import (
    render_figure11,
    render_figure12,
    render_table1,
    render_table2,
    run_interactive_experiment,
    run_static_experiment,
)
from repro.evaluation.static import draw_sample
from repro.evaluation.workloads import Workload
from repro.datasets import scale_free_graph
from repro.queries import PathQuery, selectivity_report


@pytest.fixture(scope="module")
def small_workload() -> Workload:
    graph = scale_free_graph(250, alphabet_size=8, seed=9)
    query = PathQuery.parse("l00.(l01+l02)*.l03", graph.alphabet)
    return Workload(name="tiny", query=query, graph=graph, description="A.B*.C")


class TestDrawSample:
    def test_sample_is_labeled_by_the_goal(self, small_workload):
        rng = random.Random(0)
        sample = draw_sample(
            small_workload.graph, small_workload.query, labeled_fraction=0.05, rng=rng
        )
        selected = small_workload.query.evaluate(small_workload.graph)
        assert sample.positives <= selected
        assert sample.negatives.isdisjoint(selected)
        assert len(sample) >= 2

    def test_positive_share_override(self, small_workload):
        rng = random.Random(1)
        sample = draw_sample(
            small_workload.graph,
            small_workload.query,
            labeled_fraction=0.1,
            rng=rng,
            positive_share=0.5,
        )
        assert len(sample.positives) >= 1

    def test_invalid_fraction_raises(self, small_workload):
        with pytest.raises(LearningError):
            draw_sample(
                small_workload.graph,
                small_workload.query,
                labeled_fraction=0.0,
                rng=random.Random(0),
            )


class TestStaticExperiment:
    def test_sweep_produces_one_point_per_fraction(self, small_workload):
        result = run_static_experiment(
            small_workload, labeled_fractions=(0.02, 0.05, 0.1), seed=3, k_max=3
        )
        assert len(result.points) == 3
        assert [p.labeled_fraction for p in result.points] == [0.02, 0.05, 0.1]
        for point in result.points:
            assert 0.0 <= point.f1 <= 1.0
            assert point.learning_seconds >= 0.0

    def test_f1_and_time_series(self, small_workload):
        result = run_static_experiment(
            small_workload, labeled_fractions=(0.05,), seed=3, k_max=3
        )
        assert len(result.f1_series()) == 1
        assert len(result.time_series()) == 1

    def test_labels_needed_for_f1(self, small_workload):
        result = run_static_experiment(
            small_workload, labeled_fractions=(0.02, 0.3), seed=0, k_max=3
        )
        threshold = result.labels_needed_for_f1(0.5)
        assert threshold is None or threshold in (0.02, 0.3)

    def test_baseline_ablation_runs(self, small_workload):
        result = run_static_experiment(
            small_workload,
            labeled_fractions=(0.05,),
            seed=0,
            use_generalization=False,
        )
        assert len(result.points) == 1


class TestInteractiveExperiment:
    def test_row_fields(self, small_workload):
        row = run_interactive_experiment(
            small_workload, strategy="kR", seed=1, max_interactions=15, k_max=3
        )
        assert row.workload_name == "tiny"
        assert row.strategy == "kR"
        assert row.interactions <= 15
        assert 0.0 <= row.labeled_fraction <= 1.0
        assert 0.0 <= row.final_f1 <= 1.0

    def test_relaxed_target_halts_no_later_than_strict(self, small_workload):
        relaxed = run_interactive_experiment(
            small_workload, strategy="kS", seed=2, max_interactions=25, target_f1=0.6
        )
        strict = run_interactive_experiment(
            small_workload, strategy="kS", seed=2, max_interactions=25, target_f1=1.0
        )
        assert relaxed.interactions <= strict.interactions

    def test_invalid_budget_raises(self, small_workload):
        with pytest.raises(LearningError):
            run_interactive_experiment(small_workload, max_interactions=0)


class TestReporting:
    def test_render_table1(self, small_workload):
        report = selectivity_report({"q": small_workload.query}, small_workload.graph)
        text = render_table1(report)
        assert "Table 1" in text
        assert "q" in text

    def test_render_figures_and_table2(self, small_workload):
        static = run_static_experiment(
            small_workload, labeled_fractions=(0.05,), seed=0, k_max=3
        )
        interactive = run_interactive_experiment(
            small_workload, strategy="kR", seed=0, max_interactions=10, k_max=3
        )
        assert "F1" in render_figure11([static])
        assert "time" in render_figure12([static])
        table2 = render_table2([interactive], {"tiny": 0.07})
        assert "kR" in table2
        assert "7.00%" in table2
