"""Unit tests for the static and interactive experiment drivers and reporting."""

import random

import pytest

from repro.errors import LearningError
from repro.evaluation import (
    render_figure11,
    render_figure12,
    render_table1,
    render_table2,
    run_interactive_experiment,
    run_interactive_grid,
    run_static_experiment,
)
from repro.evaluation.static import draw_sample
from repro.evaluation.workloads import Workload
from repro.datasets import scale_free_graph
from repro.queries import PathQuery, selectivity_report


@pytest.fixture(scope="module")
def small_workload() -> Workload:
    graph = scale_free_graph(250, alphabet_size=8, seed=9)
    query = PathQuery.parse("l00.(l01+l02)*.l03", graph.alphabet)
    return Workload(name="tiny", query=query, graph=graph, description="A.B*.C")


class TestDrawSample:
    def test_sample_is_labeled_by_the_goal(self, small_workload):
        rng = random.Random(0)
        sample = draw_sample(
            small_workload.graph, small_workload.query, labeled_fraction=0.05, rng=rng
        )
        selected = small_workload.query.evaluate(small_workload.graph)
        assert sample.positives <= selected
        assert sample.negatives.isdisjoint(selected)
        assert len(sample) >= 2

    def test_positive_share_override(self, small_workload):
        rng = random.Random(1)
        sample = draw_sample(
            small_workload.graph,
            small_workload.query,
            labeled_fraction=0.1,
            rng=rng,
            positive_share=0.5,
        )
        assert len(sample.positives) >= 1

    def test_invalid_fraction_raises(self, small_workload):
        with pytest.raises(LearningError):
            draw_sample(
                small_workload.graph,
                small_workload.query,
                labeled_fraction=0.0,
                rng=random.Random(0),
            )


class TestStaticExperiment:
    def test_sweep_produces_one_point_per_fraction(self, small_workload):
        result = run_static_experiment(
            small_workload, labeled_fractions=(0.02, 0.05, 0.1), seed=3, k_max=3
        )
        assert len(result.points) == 3
        assert [p.labeled_fraction for p in result.points] == [0.02, 0.05, 0.1]
        for point in result.points:
            assert 0.0 <= point.f1 <= 1.0
            assert point.learning_seconds >= 0.0

    def test_f1_and_time_series(self, small_workload):
        result = run_static_experiment(
            small_workload, labeled_fractions=(0.05,), seed=3, k_max=3
        )
        assert len(result.f1_series()) == 1
        assert len(result.time_series()) == 1

    def test_labels_needed_for_f1(self, small_workload):
        result = run_static_experiment(
            small_workload, labeled_fractions=(0.02, 0.3), seed=0, k_max=3
        )
        threshold = result.labels_needed_for_f1(0.5)
        assert threshold is None or threshold in (0.02, 0.3)

    def test_baseline_ablation_runs(self, small_workload):
        result = run_static_experiment(
            small_workload,
            labeled_fractions=(0.05,),
            seed=0,
            use_generalization=False,
        )
        assert len(result.points) == 1


class TestInteractiveExperiment:
    def test_row_fields(self, small_workload):
        row = run_interactive_experiment(
            small_workload, strategy="kR", seed=1, max_interactions=15, k_max=3
        )
        assert row.workload_name == "tiny"
        assert row.strategy == "kR"
        assert row.interactions <= 15
        assert 0.0 <= row.labeled_fraction <= 1.0
        assert 0.0 <= row.final_f1 <= 1.0

    def test_relaxed_target_halts_no_later_than_strict(self, small_workload):
        relaxed = run_interactive_experiment(
            small_workload, strategy="kS", seed=2, max_interactions=25, target_f1=0.6
        )
        strict = run_interactive_experiment(
            small_workload, strategy="kS", seed=2, max_interactions=25, target_f1=1.0
        )
        assert relaxed.interactions <= strict.interactions

    def test_invalid_budget_raises(self, small_workload):
        with pytest.raises(LearningError):
            run_interactive_experiment(small_workload, max_interactions=0)


class TestReporting:
    def test_render_table1(self, small_workload):
        report = selectivity_report({"q": small_workload.query}, small_workload.graph)
        text = render_table1(report)
        assert "Table 1" in text
        assert "q" in text

    def test_render_figures_and_table2(self, small_workload):
        static = run_static_experiment(
            small_workload, labeled_fractions=(0.05,), seed=0, k_max=3
        )
        interactive = run_interactive_experiment(
            small_workload, strategy="kR", seed=0, max_interactions=10, k_max=3
        )
        assert "F1" in render_figure11([static])
        assert "time" in render_figure12([static])
        table2 = render_table2([interactive], {"tiny": 0.07})
        assert "kR" in table2
        assert "7.00%" in table2


class TestInteractiveGrid:
    def test_grid_shape_and_order(self, small_workload):
        results = run_interactive_grid(
            [small_workload],
            strategies=("kR", "kS"),
            seeds=(0, 1),
            max_interactions=5,
            pool_size=16,
            max_workers=1,
        )
        assert [(r.workload_name, r.strategy) for r in results] == [
            ("tiny", "kR"),
            ("tiny", "kR"),
            ("tiny", "kS"),
            ("tiny", "kS"),
        ]
        assert all(r.interactions <= 5 for r in results)

    def test_grid_matches_single_runs(self, small_workload):
        grid = run_interactive_grid(
            [small_workload],
            strategies=("kR",),
            seeds=(3,),
            max_interactions=6,
            pool_size=16,
            max_workers=1,
        )
        single = run_interactive_experiment(
            small_workload, strategy="kR", seed=3, max_interactions=6, pool_size=16
        )
        assert grid[0].interactions == single.interactions
        assert grid[0].final_f1 == single.final_f1
        assert grid[0].halted_by == single.halted_by

    def test_empty_grid(self):
        assert run_interactive_grid([], max_workers=1) == []

    def test_invalid_workers_raise(self, small_workload):
        with pytest.raises(LearningError):
            run_interactive_grid([small_workload], max_workers=0)

    def test_process_pool_matches_inline(self, small_workload):
        kwargs = dict(
            strategies=("kR",),
            seeds=(0, 1),
            max_interactions=4,
            pool_size=16,
        )
        inline = run_interactive_grid([small_workload], max_workers=1, **kwargs)
        try:
            pooled = run_interactive_grid([small_workload], max_workers=2, **kwargs)
        except (OSError, PermissionError) as error:  # pragma: no cover
            pytest.skip(f"process pools unavailable in this sandbox: {error}")
        assert [(r.strategy, r.interactions, r.final_f1) for r in pooled] == [
            (r.strategy, r.interactions, r.final_f1) for r in inline
        ]
