"""Unit tests for the F1 / precision / recall metrics."""

import pytest

from repro.evaluation import ClassificationScores, f1_score, score_query
from repro.evaluation.metrics import compare_node_sets
from repro.queries import PathQuery


class TestClassificationScores:
    def test_perfect_prediction(self):
        scores = compare_node_sets({"a", "b"}, {"a", "b"}, {"a", "b", "c"})
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0
        assert scores.accuracy == 1.0

    def test_partial_prediction(self):
        scores = compare_node_sets({"a"}, {"a", "b"}, {"a", "b", "c", "d"})
        assert scores.precision == 1.0
        assert scores.recall == 0.5
        assert scores.f1 == pytest.approx(2 / 3)
        assert scores.accuracy == 0.75

    def test_disjoint_prediction(self):
        scores = compare_node_sets({"c"}, {"a"}, {"a", "b", "c"})
        assert scores.f1 == 0.0

    def test_empty_prediction_and_reference(self):
        scores = compare_node_sets(set(), set(), {"a"})
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_counts(self):
        scores = ClassificationScores(2, 1, 3, 4)
        assert scores.precision == pytest.approx(2 / 3)
        assert scores.recall == pytest.approx(2 / 5)
        assert scores.accuracy == pytest.approx(6 / 10)


class TestQueryScoring:
    def test_equal_queries_have_f1_one(self, g0, abstar_c):
        assert f1_score(abstar_c, abstar_c, g0) == 1.0

    def test_null_query_scores_as_empty_prediction(self, g0, abstar_c):
        scores = score_query(None, abstar_c, g0)
        assert scores.f1 == 0.0
        assert scores.recall == 0.0

    def test_overgeneral_query_loses_precision(self, g0, abstar_c):
        broad = PathQuery.parse("a", g0.alphabet)  # selects 6 of 7 nodes
        scores = score_query(broad, abstar_c, g0)
        assert scores.recall == 1.0
        assert scores.precision == pytest.approx(2 / 6)
