"""Unit tests for the experimental workloads (Table 1 structures and syn1-3)."""

import pytest

from repro.evaluation import biological_queries, biological_workloads, synthetic_workloads
from repro.evaluation.workloads import (
    biological_query_expressions,
    synthetic_query_expressions,
)


class TestBiologicalQueries:
    def test_six_queries_with_table1_names(self):
        queries = biological_queries()
        assert set(queries) == {"bio1", "bio2", "bio3", "bio4", "bio5", "bio6"}

    def test_structures_use_expected_classes(self):
        expressions = biological_query_expressions()
        # bio1 = b.A.A* starts with the rare biomarker label.
        assert "biomarker_of" in str(expressions["bio1"])
        # bio3 = C.E contains no Kleene star.
        assert "*" not in str(expressions["bio3"])
        # bio5 combines the A and I classes.
        assert "inhibits" in str(expressions["bio5"])
        assert "interacts" in str(expressions["bio5"])

    def test_workloads_on_small_graph(self):
        workloads = biological_workloads(node_count=300, edge_count=800, seed=3)
        assert len(workloads) == 6
        # All six queries share the same graph instance.
        graphs = {id(w.graph) for w in workloads}
        assert len(graphs) == 1

    def test_selectivity_ordering_matches_table1(self):
        # Table 1 orders bio1 < bio2 < ... < bio6 by selectivity; check the
        # reproduction keeps the two ends in the right order at small scale.
        workloads = {w.name: w for w in biological_workloads(node_count=600, edge_count=1600, seed=7)}
        assert workloads["bio1"].selectivity <= workloads["bio3"].selectivity
        assert workloads["bio3"].selectivity <= workloads["bio6"].selectivity


class TestSyntheticWorkloads:
    def test_three_queries_per_size(self):
        workloads = synthetic_workloads(node_counts=(500, 800), seed=5)
        names = {w.name for w in workloads}
        assert names == {
            "syn1@500",
            "syn2@500",
            "syn3@500",
            "syn1@800",
            "syn2@800",
            "syn3@800",
        }

    def test_structures_are_a_bstar_c(self):
        for name, expression in synthetic_query_expressions().items():
            assert "*" in str(expression), name

    def test_selectivity_ordering(self):
        workloads = {w.name: w for w in synthetic_workloads(node_counts=(2000,), seed=11)}
        assert (
            workloads["syn1@2000"].selectivity
            < workloads["syn2@2000"].selectivity
            < workloads["syn3@2000"].selectivity
        )

    def test_workload_selectivity_matches_query_on_graph(self):
        workload = synthetic_workloads(node_counts=(400,), seed=2)[0]
        assert workload.selectivity == pytest.approx(
            len(workload.query.evaluate(workload.graph)) / workload.graph.node_count()
        )
