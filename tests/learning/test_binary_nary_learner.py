"""Unit tests for Algorithms 2 and 3 (binary and n-ary learners)."""

import pytest

from repro.errors import LearningError
from repro.graphdb import GraphDB
from repro.learning import BinarySample, NarySample, learn_binary_query, learn_nary_query
from repro.queries import BinaryPathQuery


@pytest.fixture
def chain_graph():
    graph = GraphDB(["a", "b", "c"])
    graph.add_edges(
        [
            ("n1", "a", "n2"),
            ("n2", "b", "n3"),
            ("n3", "c", "n4"),
            ("n1", "c", "n5"),
            ("n5", "c", "n4"),
            ("n2", "a", "n2"),
        ]
    )
    return graph


class TestBinaryLearner:
    def test_learns_consistent_binary_query(self, chain_graph):
        sample = BinarySample({("n1", "n3")}, {("n1", "n5"), ("n3", "n4")})
        result = learn_binary_query(chain_graph, sample, k=3)
        assert not result.is_null
        assert result.query.is_consistent_with(
            chain_graph, sample.positives, sample.negatives
        )

    def test_scp_uses_destination_information(self, chain_graph):
        # The smallest path between n1 and n3 is ab; the monadic learner
        # would have considered the smaller path c (towards n5) as well.
        sample = BinarySample({("n1", "n3")}, {("n3", "n4")})
        result = learn_binary_query(chain_graph, sample, k=3)
        assert result.scps[("n1", "n3")] == ("a", "b")

    def test_empty_positive_sample_abstains(self, chain_graph):
        assert learn_binary_query(chain_graph, BinarySample(), k=2).is_null

    def test_unreachable_positive_pair_abstains(self, chain_graph):
        sample = BinarySample({("n4", "n1")})
        assert learn_binary_query(chain_graph, sample, k=4).is_null

    def test_negative_k_raises(self, chain_graph):
        with pytest.raises(LearningError):
            learn_binary_query(chain_graph, BinarySample({("n1", "n2")}), k=-1)

    def test_self_pair_with_epsilon(self, chain_graph):
        sample = BinarySample({("n1", "n1")})
        result = learn_binary_query(chain_graph, sample, k=2)
        assert not result.is_null
        assert result.query.selects(chain_graph, "n1", "n1")


class TestNaryLearner:
    def test_learns_component_queries(self, chain_graph):
        sample = NarySample(
            {("n1", "n2", "n3")},
            {("n1", "n5", "n4")},
        )
        result = learn_nary_query(chain_graph, sample, k=3)
        assert not result.is_null
        assert result.query.arity == 3
        assert result.query.selects(chain_graph, ("n1", "n2", "n3"))
        assert not result.query.selects(chain_graph, ("n1", "n5", "n4"))

    def test_abstains_when_a_component_abstains(self, chain_graph):
        # No path from n4 back to n1, so the first component cannot be learned.
        sample = NarySample({("n4", "n1", "n2")})
        result = learn_nary_query(chain_graph, sample, k=3)
        assert result.is_null
        assert result.components[0].is_null

    def test_empty_sample_abstains(self, chain_graph):
        assert learn_nary_query(chain_graph, NarySample(), k=2).is_null

    def test_negative_k_raises(self, chain_graph):
        with pytest.raises(LearningError):
            learn_nary_query(chain_graph, NarySample({("n1", "n2", "n3")}), k=-1)

    def test_component_results_are_exposed(self, chain_graph):
        sample = NarySample({("n1", "n2", "n3")})
        result = learn_nary_query(chain_graph, sample, k=3)
        assert len(result.components) == 2
        assert all(isinstance(c.query, BinaryPathQuery) for c in result.components)
