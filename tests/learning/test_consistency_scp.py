"""Unit tests for consistency checking (Lemma 3.1) and SCP selection."""

import pytest

from repro.errors import LearningError
from repro.learning import (
    Sample,
    bounded_consistent,
    is_consistent,
    sample_has_consistent_query,
    select_smallest_consistent_paths,
    smallest_consistent_path,
)


class TestExactConsistency:
    def test_paper_sample_on_g0_is_consistent(self, g0, g0_sample):
        assert is_consistent(g0, g0_sample)

    def test_figure5_sample_is_inconsistent(self, inconsistent_case):
        graph, sample = inconsistent_case
        assert not is_consistent(graph, sample)

    def test_sample_without_positives_is_consistent(self, g0):
        assert is_consistent(g0, Sample(negatives={"v2"}))

    def test_sample_without_negatives_is_consistent(self, g0):
        assert is_consistent(g0, Sample(positives={"v1", "v4"}))

    def test_positive_dominated_by_negative_is_inconsistent(self, g0):
        # v4 has no outgoing edge, so paths(v4) = {eps} which any negative covers.
        assert not is_consistent(g0, Sample({"v4"}, {"v5"}))


class TestBoundedConsistency:
    def test_bounded_matches_exact_on_paper_sample(self, g0, g0_sample):
        assert bounded_consistent(g0, g0_sample, k=3)

    def test_bounded_fails_when_k_too_small(self, g0):
        # v1's only consistent path w.r.t. {v2, v7} is abc (length 3).
        sample = Sample({"v1"}, {"v2", "v7"})
        assert not bounded_consistent(g0, sample, k=2)
        assert bounded_consistent(g0, sample, k=3)

    def test_bounded_on_inconsistent_sample(self, inconsistent_case):
        graph, sample = inconsistent_case
        assert not bounded_consistent(graph, sample, k=5)

    def test_dispatcher(self, g0, g0_sample):
        assert sample_has_consistent_query(g0, g0_sample)
        assert sample_has_consistent_query(g0, g0_sample, k=3)


class TestSmallestConsistentPath:
    def test_paper_scps(self, g0):
        # Section 3.2: the SCPs are abc for v1 and c for v3.
        negatives = {"v2", "v7"}
        assert smallest_consistent_path(g0, "v1", negatives, k=3) == ("a", "b", "c")
        assert smallest_consistent_path(g0, "v3", negatives, k=3) == ("c",)

    def test_no_scp_within_bound(self, g0):
        assert smallest_consistent_path(g0, "v1", {"v2", "v7"}, k=2) is None

    def test_scp_without_negatives_is_epsilon(self, g0):
        assert smallest_consistent_path(g0, "v1", set(), k=2) == ()

    def test_negative_bound_raises(self, g0):
        with pytest.raises(LearningError):
            smallest_consistent_path(g0, "v1", set(), k=-1)

    def test_scp_for_inconsistent_positive_is_none(self, inconsistent_case):
        graph, sample = inconsistent_case
        positive = next(iter(sample.positives))
        assert smallest_consistent_path(graph, positive, sample.negatives, k=6) is None


class TestSelectSCPs:
    def test_selects_per_positive(self, g0, g0_sample):
        scps = select_smallest_consistent_paths(g0, g0_sample, k=3)
        assert scps == {"v1": ("a", "b", "c"), "v3": ("c",)}

    def test_positives_without_scp_are_omitted(self, g0, g0_sample):
        scps = select_smallest_consistent_paths(g0, g0_sample, k=2)
        assert "v1" not in scps
        assert scps["v3"] == ("c",)

    def test_scps_are_never_covered_by_negatives(self, g0, g0_sample):
        from repro.graphdb import covered_by

        scps = select_smallest_consistent_paths(g0, g0_sample, k=4)
        for path in scps.values():
            assert not covered_by(g0, path, g0_sample.negatives)
