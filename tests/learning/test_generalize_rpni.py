"""Unit tests for the generalization engine and the word-level RPNI learner."""

import pytest

from repro.automata import Alphabet, prefix_tree_acceptor
from repro.errors import LearningError
from repro.learning import rpni
from repro.learning.generalize import generalize_pta
from repro.queries import PathQuery


@pytest.fixture
def abc():
    return Alphabet(["a", "b", "c"])


class TestGeneralizePTA:
    def test_no_negatives_generalizes_aggressively(self, abc):
        pta = prefix_tree_acceptor(abc, [("a", "b", "c"), ("c",)])
        result = generalize_pta(pta, lambda dfa: False, alphabet=abc)
        # With nothing blocking merges, everything collapses to one state.
        assert len(result) == 1

    def test_negative_words_block_merges(self, abc):
        pta = prefix_tree_acceptor(abc, [("a", "b", "c"), ("c",)])
        negatives = [(), ("a",), ("a", "b"), ("a", "c"), ("b", "c")]

        def violates(candidate):
            return any(candidate.accepts(word) for word in negatives)

        result = generalize_pta(pta, violates, alphabet=abc)
        learned = PathQuery.from_automaton(result)
        assert learned == PathQuery.parse("(a.b)*.c", abc)

    def test_initial_guard_violation_raises(self, abc):
        pta = prefix_tree_acceptor(abc, [("a",)])
        with pytest.raises(LearningError):
            generalize_pta(pta, lambda dfa: True, alphabet=abc)

    def test_max_merges_cap(self, abc):
        pta = prefix_tree_acceptor(abc, [("a", "a", "a", "a")])
        capped = generalize_pta(pta, lambda dfa: False, alphabet=abc, max_merges=0)
        uncapped = generalize_pta(pta, lambda dfa: False, alphabet=abc)
        assert len(capped) == len(pta) > len(uncapped)

    def test_result_language_contains_input_words(self, abc):
        words = [("a", "b"), ("c",), ("b", "b", "a")]
        pta = prefix_tree_acceptor(abc, words)
        negatives = [("a",), ("b",)]

        def violates(candidate):
            return any(candidate.accepts(word) for word in negatives)

        result = generalize_pta(pta, violates, alphabet=abc)
        for word in words:
            assert result.accepts(word)
        for word in negatives:
            assert not result.accepts(word)


class TestRPNI:
    def test_paper_characteristic_words_give_abstar_c(self, abc):
        # Theorem 3.5's example: P+ = {c, abc}, P- = {eps, a, ab, ac, bc}.
        learned = rpni(
            abc,
            [("c",), ("a", "b", "c")],
            [(), ("a",), ("a", "b"), ("a", "c"), ("b", "c")],
        )
        assert PathQuery.from_automaton(learned) == PathQuery.parse("(a.b)*.c", abc)

    def test_learned_dfa_is_consistent_with_sample(self, abc):
        positives = [("a",), ("a", "a", "a")]
        negatives = [("b",), ("a", "b")]
        learned = rpni(abc, positives, negatives)
        for word in positives:
            assert learned.accepts(word)
        for word in negatives:
            assert not learned.accepts(word)

    def test_empty_positive_set_gives_empty_language(self, abc):
        learned = rpni(abc, [], [("a",)])
        assert learned.is_empty()

    def test_contradictory_sample_raises(self, abc):
        with pytest.raises(LearningError):
            rpni(abc, [("a",)], [("a",)])

    def test_single_positive_word(self, abc):
        learned = rpni(abc, [("a", "b")], [])
        # With no negatives, every state of the PTA merges into one, so the
        # learned language is (a+b)* -- maximal over the observed symbols.
        assert learned.accepts(("a", "b"))
        assert learned.accepts(("b", "a", "a"))
        assert len(learned) == 1

    def test_star_language_from_characteristic_words(self, abc):
        # Characteristic-style sample for a*: positives eps, a, aa; negatives b, ab, ba.
        learned = rpni(abc, [(), ("a",), ("a", "a")], [("b",), ("a", "b"), ("b", "a"), ("c",)])
        assert PathQuery.from_automaton(learned) == PathQuery.parse("a*", abc)
