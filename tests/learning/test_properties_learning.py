"""Property-based tests (hypothesis) on the learning algorithms.

Random small graphs and random goal queries are generated; samples are
labeled by the goal (so they are always consistent).  The invariants tested
are the paper's soundness guarantees: a returned query is always consistent
with the sample, SCPs are never covered by negatives, and RPNI's output is
always consistent with its word sample.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata import Alphabet
from repro.graphdb import GraphDB, covered_by
from repro.learning import Sample, learn_path_query, rpni
from repro.learning.scp import select_smallest_consistent_paths
from repro.queries import PathQuery

ALPHABET = Alphabet(["a", "b", "c"])
SYMBOLS = list(ALPHABET.symbols)

GOAL_EXPRESSIONS = [
    "a",
    "b.c",
    "a.b*",
    "(a.b)*.c",
    "(a+b).c",
    "a*.c",
    "a.(b+c)",
    "c.c",
]


@st.composite
def random_graphs(draw) -> GraphDB:
    """Small random edge-labeled graphs (4-9 nodes, ~2 edges per node)."""
    node_count = draw(st.integers(min_value=4, max_value=9))
    nodes = [f"u{i}" for i in range(node_count)]
    edge_count = draw(st.integers(min_value=node_count, max_value=2 * node_count))
    graph = GraphDB(ALPHABET)
    graph.add_nodes(nodes)
    for _ in range(edge_count):
        origin = draw(st.sampled_from(nodes))
        end = draw(st.sampled_from(nodes))
        label = draw(st.sampled_from(SYMBOLS))
        graph.add_edge(origin, label, end)
    return graph


@st.composite
def graph_and_goal_sample(draw):
    """A random graph plus a sample labeled consistently with a random goal."""
    graph = draw(random_graphs())
    goal = PathQuery.parse(draw(st.sampled_from(GOAL_EXPRESSIONS)), ALPHABET)
    selected = goal.evaluate(graph)
    unselected = graph.nodes - selected
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    positives = set(rng.sample(sorted(selected), min(len(selected), 3))) if selected else set()
    negatives = set(rng.sample(sorted(unselected), min(len(unselected), 3))) if unselected else set()
    return graph, goal, Sample(positives, negatives)


@settings(max_examples=40, deadline=None)
@given(case=graph_and_goal_sample())
def test_learner_output_is_consistent_with_the_sample(case):
    graph, _, sample = case
    result = learn_path_query(graph, sample, k=4)
    if result.query is not None:
        assert result.query.is_consistent_with(graph, sample.positives, sample.negatives)


@settings(max_examples=40, deadline=None)
@given(case=graph_and_goal_sample())
def test_hypothesis_never_selects_a_negative(case):
    graph, _, sample = case
    result = learn_path_query(graph, sample, k=4)
    if result.hypothesis is not None:
        assert not any(
            result.hypothesis.selects(graph, node) for node in sample.negatives
        )


@settings(max_examples=40, deadline=None)
@given(case=graph_and_goal_sample())
def test_scps_are_uncovered_and_canonically_minimal(case):
    graph, _, sample = case
    scps = select_smallest_consistent_paths(graph, sample, k=3)
    for node, path in scps.items():
        assert not covered_by(graph, path, sample.negatives)
        # No strictly smaller uncovered path exists for that node.
        from repro.graphdb import enumerate_paths

        for smaller in enumerate_paths(graph, node, max_length=3):
            if graph.alphabet.word_key(smaller) >= graph.alphabet.word_key(path):
                break
            assert covered_by(graph, smaller, sample.negatives)


@settings(max_examples=40, deadline=None)
@given(
    positives=st.lists(
        st.lists(st.sampled_from(SYMBOLS), max_size=4).map(tuple), min_size=1, max_size=5
    ),
    negatives=st.lists(
        st.lists(st.sampled_from(SYMBOLS), max_size=4).map(tuple), max_size=5
    ),
)
def test_rpni_is_consistent_with_its_word_sample(positives, negatives):
    negative_set = set(negatives) - set(positives)
    learned = rpni(ALPHABET, positives, negative_set)
    for word in positives:
        assert learned.accepts(word)
    for word in negative_set:
        assert not learned.accepts(word)


@settings(max_examples=30, deadline=None)
@given(case=graph_and_goal_sample())
def test_learner_abstains_or_selects_all_positives(case):
    graph, _, sample = case
    result = learn_path_query(graph, sample, k=4)
    if result.query is not None:
        assert all(result.query.selects(graph, node) for node in sample.positives)
