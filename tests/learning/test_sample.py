"""Unit tests for samples of labeled examples."""

import pytest

from repro.errors import SampleError
from repro.learning import BinarySample, NarySample, Sample
from repro.learning.sample import NEGATIVE, POSITIVE


class TestSample:
    def test_positive_and_negative_sets(self):
        sample = Sample({"x", "y"}, {"z"})
        assert sample.positives == {"x", "y"}
        assert sample.negatives == {"z"}
        assert sample.labeled == {"x", "y", "z"}
        assert len(sample) == 3
        assert bool(sample)

    def test_empty_sample_is_falsy(self):
        assert not Sample()

    def test_conflicting_labels_raise(self):
        with pytest.raises(SampleError):
            Sample({"x"}, {"x"})

    def test_label_of_and_contains(self):
        sample = Sample({"x"}, {"y"})
        assert sample.label_of("x") == POSITIVE
        assert sample.label_of("y") == NEGATIVE
        assert sample.label_of("z") is None
        assert "x" in sample and "z" not in sample

    def test_with_example_returns_new_sample(self):
        sample = Sample({"x"})
        extended = sample.with_negative("y")
        assert "y" not in sample.labeled
        assert extended.negatives == {"y"}

    def test_with_example_rejects_relabeling(self):
        sample = Sample({"x"})
        with pytest.raises(SampleError):
            sample.with_negative("x")

    def test_with_example_same_label_is_idempotent(self):
        sample = Sample({"x"})
        assert sample.with_positive("x") == sample

    def test_with_example_invalid_label(self):
        with pytest.raises(SampleError):
            Sample().with_example("x", "?")

    def test_extends(self):
        small = Sample({"x"}, {"y"})
        big = Sample({"x", "w"}, {"y", "z"})
        assert big.extends(small)
        assert not small.extends(big)

    def test_iteration_yields_labeled_pairs(self):
        sample = Sample({"x"}, {"y"})
        assert set(sample) == {("x", POSITIVE), ("y", NEGATIVE)}

    def test_from_pairs(self):
        sample = Sample.from_pairs([("x", "+"), ("y", "-")])
        assert sample.positives == {"x"}
        assert sample.negatives == {"y"}
        with pytest.raises(SampleError):
            Sample.from_pairs([("x", "?")])

    def test_check_against_graph(self, g0):
        Sample({"v1"}, {"v2"}).check_against(g0)
        with pytest.raises(SampleError):
            Sample({"missing"}).check_against(g0)

    def test_equality_and_hash(self):
        assert Sample({"x"}, {"y"}) == Sample({"x"}, {"y"})
        assert hash(Sample({"x"})) == hash(Sample({"x"}))
        assert Sample({"x"}) != Sample({"y"})


class TestBinarySample:
    def test_pairs(self):
        sample = BinarySample({("x", "y")}, {("y", "z")})
        assert ("x", "y") in sample.positives

    def test_check_against(self, g0):
        BinarySample({("v1", "v4")}).check_against(g0)
        with pytest.raises(SampleError):
            BinarySample({("v1", "missing")}).check_against(g0)


class TestNarySample:
    def test_arity_is_enforced(self):
        with pytest.raises(SampleError):
            NarySample({("x", "y")}, {("x", "y", "z")})
        with pytest.raises(SampleError):
            NarySample({("x",)})

    def test_arity_property(self):
        assert NarySample({("x", "y", "z")}).arity == 3
        assert NarySample().arity is None

    def test_project(self):
        sample = NarySample({("a", "b", "c")}, {("d", "e", "f")})
        first = sample.project(0)
        assert first.positives == {("a", "b")}
        assert first.negatives == {("d", "e")}
        second = sample.project(1)
        assert second.positives == {("b", "c")}

    def test_project_out_of_range(self):
        with pytest.raises(SampleError):
            NarySample({("a", "b")}).project(1)

    def test_project_prefers_positive_on_conflict(self):
        sample = NarySample({("a", "b", "c")}, {("a", "b", "z")})
        projected = sample.project(0)
        assert ("a", "b") in projected.positives
        assert ("a", "b") not in projected.negatives

    def test_check_against(self, g0):
        NarySample({("v1", "v2", "v3")}).check_against(g0)
        with pytest.raises(SampleError):
            NarySample({("v1", "v2", "nope")}).check_against(g0)
