"""Unit tests for Algorithm 1 (the path-query learner)."""

import pytest

from repro.errors import LearningError
from repro.learning import Sample, learn_path_query, learn_with_dynamic_k


class TestWorkedExample:
    def test_learns_abstar_c_on_g0(self, g0, g0_sample, abstar_c):
        result = learn_path_query(g0, g0_sample, k=3)
        assert not result.is_null
        assert result.query.equivalent_to(abstar_c)

    def test_intermediate_artifacts(self, g0, g0_sample):
        result = learn_path_query(g0, g0_sample, k=3)
        assert result.scps == {"v1": ("a", "b", "c"), "v3": ("c",)}
        assert result.pta_states == 5  # Figure 6(a)
        assert result.generalized_states == 3  # Figure 6(b)
        assert result.selects_all_positives
        assert result.positives_without_scp == frozenset()

    def test_learned_query_is_consistent(self, g0, g0_sample):
        result = learn_path_query(g0, g0_sample, k=3)
        assert result.query.is_consistent_with(
            g0, g0_sample.positives, g0_sample.negatives
        )

    def test_small_k_abstains_but_exposes_hypothesis(self, g0, g0_sample):
        # With k = 2 the SCP abc of v1 is not found; the learned query (from
        # the single SCP c) does not select v1, so Algorithm 1 abstains.
        result = learn_path_query(g0, g0_sample, k=2)
        assert result.is_null
        assert result.query is None
        assert result.hypothesis is not None
        assert result.best_effort_query is result.hypothesis
        assert "v1" in result.positives_without_scp


class TestAbstention:
    def test_empty_sample_abstains(self, g0):
        assert learn_path_query(g0, Sample(), k=2).is_null

    def test_sample_without_positives_abstains(self, g0):
        assert learn_path_query(g0, Sample(negatives={"v2"}), k=2).is_null

    def test_inconsistent_sample_abstains(self, inconsistent_case):
        graph, sample = inconsistent_case
        result = learn_path_query(graph, sample, k=5)
        assert result.is_null
        assert result.scps == {}

    def test_negative_k_raises(self, g0, g0_sample):
        with pytest.raises(LearningError):
            learn_path_query(g0, g0_sample, k=-1)


class TestConsistencyGuarantee:
    def test_learned_query_never_selects_a_negative(self, g0):
        # Soundness: whatever the sample, a returned query is consistent.
        samples = [
            Sample({"v1"}, {"v2"}),
            Sample({"v3", "v5"}, {"v4"}),
            Sample({"v6"}, {"v4", "v7"}),
        ]
        for sample in samples:
            result = learn_path_query(g0, sample, k=3)
            if result.query is not None:
                assert result.query.is_consistent_with(
                    g0, sample.positives, sample.negatives
                )

    def test_no_negatives_learns_epsilon_like_query(self, g0):
        result = learn_path_query(g0, Sample({"v1", "v5"}), k=2)
        assert not result.is_null
        # With no negative example everything generalizes to a single state
        # whose language contains the empty word, so every node is selected.
        assert result.query.evaluate(g0) == g0.nodes


class TestDynamicK:
    def test_dynamic_k_grows_until_success(self, g0, g0_sample):
        result = learn_with_dynamic_k(g0, g0_sample, k_start=2, k_max=5)
        assert not result.is_null
        assert result.k == 3

    def test_dynamic_k_stops_at_k_max(self, inconsistent_case):
        graph, sample = inconsistent_case
        result = learn_with_dynamic_k(graph, sample, k_start=2, k_max=3)
        assert result.is_null
        assert result.k == 3

    def test_invalid_bounds_raise(self, g0, g0_sample):
        with pytest.raises(LearningError):
            learn_with_dynamic_k(g0, g0_sample, k_start=4, k_max=2)


class TestGeoExample:
    def test_learned_query_is_consistent_with_intro_labels(self, geo):
        # The introduction's labels: N2 and N6 positive, N5 negative.
        sample = Sample({"N2", "N6"}, {"N5"})
        result = learn_with_dynamic_k(geo, sample)
        assert not result.is_null
        assert result.query.is_consistent_with(geo, sample.positives, sample.negatives)

    def test_richer_sample_matches_goal_selection(self, geo, geo_goal):
        sample = Sample({"N1", "N2", "N4", "N6"}, {"N3", "N5", "C1", "R1"})
        result = learn_with_dynamic_k(geo, sample)
        assert not result.is_null
        assert result.query.evaluate(geo) == geo_goal.evaluate(geo)
