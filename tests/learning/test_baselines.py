"""Unit tests for the disjunction-of-SCPs baseline learner."""

from repro.learning import Sample, learn_path_query, learn_scp_disjunction
from repro.queries import PathQuery


class TestSCPDisjunctionBaseline:
    def test_baseline_returns_disjunction_of_scps(self, g0, g0_sample):
        result = learn_scp_disjunction(g0, g0_sample, k=3)
        assert not result.is_null
        # Section 3.2: the disjunction of the SCPs is c + a.b.c.
        assert result.query == PathQuery.parse("c+a.b.c", g0.alphabet)

    def test_baseline_is_consistent(self, g0, g0_sample):
        result = learn_scp_disjunction(g0, g0_sample, k=3)
        assert result.query.is_consistent_with(
            g0, g0_sample.positives, g0_sample.negatives
        )

    def test_baseline_cannot_express_kleene_star(self, g0, g0_sample, abstar_c):
        # The baseline never generalizes, so it does not learn (a.b)*.c even
        # from the characteristic sample -- the full learner does.
        baseline = learn_scp_disjunction(g0, g0_sample, k=3)
        full = learn_path_query(g0, g0_sample, k=3)
        assert not baseline.query.equivalent_to(abstar_c)
        assert full.query.equivalent_to(abstar_c)

    def test_baseline_abstains_when_a_positive_has_no_scp(self, g0, g0_sample):
        result = learn_scp_disjunction(g0, g0_sample, k=2)
        assert result.is_null
        assert result.hypothesis is not None

    def test_baseline_abstains_on_empty_sample(self, g0):
        assert learn_scp_disjunction(g0, Sample(), k=2).is_null

    def test_baseline_abstains_on_inconsistent_sample(self, inconsistent_case):
        graph, sample = inconsistent_case
        assert learn_scp_disjunction(graph, sample, k=5).is_null
