"""Unit tests for characteristic samples and characteristic graphs (Theorem 3.5)."""

import pytest

from repro.automata import Alphabet
from repro.errors import LearningError
from repro.learning import (
    characteristic_graph,
    characteristic_word_sample,
    learn_path_query,
    rpni,
)
from repro.learning.characteristic import theoretical_k
from repro.queries import PathQuery


@pytest.fixture
def abc():
    return Alphabet(["a", "b", "c"])


class TestCharacteristicWordSample:
    def test_running_example_positives(self, abc):
        query = PathQuery.parse("(a.b)*.c", abc)
        positives, negatives = characteristic_word_sample(query)
        # The paper's P+ for (a.b)*.c is {c, abc}.
        assert ("c",) in positives
        assert ("a", "b", "c") in positives
        # Every stated P- word shows up among the negatives.
        for word in [(), ("a",), ("a", "b")]:
            assert word in negatives

    def test_positives_are_in_language_negatives_are_not(self, abc):
        for expression in ["(a.b)*.c", "a.b", "a+b.c", "a*.b"]:
            query = PathQuery.parse(expression, abc)
            positives, negatives = characteristic_word_sample(query)
            assert positives, expression
            for word in positives:
                assert query.accepts_word(word)
            for word in negatives:
                assert not query.accepts_word(word)

    def test_rpni_recovers_query_from_characteristic_sample(self, abc):
        for expression in ["(a.b)*.c", "a.b", "a*.b", "(a+b).c"]:
            query = PathQuery.parse(expression, abc)
            positives, negatives = characteristic_word_sample(query)
            learned = rpni(abc, positives, negatives)
            assert PathQuery.from_automaton(learned) == query, expression

    def test_empty_query_raises(self, abc):
        from repro.automata.dfa import DFA

        with pytest.raises(LearningError):
            characteristic_word_sample(DFA(abc, initial=0))


class TestTheoreticalK:
    def test_value_is_2n_plus_1(self, abc):
        query = PathQuery.parse("(a.b)*.c", abc)
        assert theoretical_k(query) == 2 * query.size + 1 == 7


class TestCharacteristicGraph:
    @pytest.mark.parametrize("expression", ["(a.b)*.c", "a.b", "(a+b).c", "a.b*.c"])
    def test_learner_recovers_goal_from_characteristic_graph(self, abc, expression):
        goal = PathQuery.parse(expression, abc)
        graph, sample = characteristic_graph(goal)
        result = learn_path_query(graph, sample, k=theoretical_k(goal))
        assert not result.is_null
        assert result.query.equivalent_to(goal)

    def test_sample_is_consistent_with_goal(self, abc):
        goal = PathQuery.parse("(a.b)*.c", abc)
        graph, sample = characteristic_graph(goal)
        assert goal.is_consistent_with(graph, sample.positives, sample.negatives)

    def test_extending_the_sample_consistently_keeps_the_result(self, abc):
        # Definition 3.4: any consistent extension of the characteristic
        # sample still makes the learner output the goal query.
        goal = PathQuery.parse("(a.b)*.c", abc)
        graph, sample = characteristic_graph(goal)
        extra_negative = next(
            node
            for node in graph.nodes
            if node not in sample.labeled and not goal.selects(graph, node)
        )
        extended = sample.with_negative(extra_negative)
        result = learn_path_query(graph, extended, k=theoretical_k(goal))
        assert not result.is_null
        assert result.query.equivalent_to(goal)

    def test_sample_size_is_small(self, abc):
        goal = PathQuery.parse("(a.b)*.c", abc)
        _, sample = characteristic_graph(goal)
        assert len(sample.negatives) == 1
        assert len(sample.positives) <= 6
