"""Unit tests for regex compilation (Thompson) and DFA -> regex conversion."""

import pytest

from repro.automata import Alphabet, canonical_dfa, language_equivalent
from repro.errors import RegexSyntaxError
from repro.regex import compile_query, dfa_to_regex, parse, regex_to_dfa, regex_to_nfa
from repro.regex.ast import EmptySet


@pytest.fixture
def abc():
    return Alphabet(["a", "b", "c"])


class TestThompsonConstruction:
    @pytest.mark.parametrize(
        "expression, accepted, rejected",
        [
            ("a", [("a",)], [(), ("b",), ("a", "a")]),
            ("eps", [()], [("a",)]),
            ("a.b", [("a", "b")], [("a",), ("b",), ("a", "b", "c")]),
            ("a+b", [("a",), ("b",)], [("c",), ("a", "b")]),
            ("a*", [(), ("a",), ("a", "a", "a")], [("b",), ("a", "b")]),
            (
                "(a.b)*.c",
                [("c",), ("a", "b", "c"), ("a", "b", "a", "b", "c")],
                [(), ("a", "b"), ("a", "c"), ("c", "c")],
            ),
            (
                "(a+b)*.c",
                [("c",), ("a", "c"), ("b", "a", "c")],
                [("c", "a"), ("a",)],
            ),
        ],
    )
    def test_language_of_compiled_expression(self, abc, expression, accepted, rejected):
        nfa = regex_to_nfa(parse(expression), abc)
        dfa = regex_to_dfa(parse(expression), abc)
        for word in accepted:
            assert nfa.accepts(word)
            assert dfa.accepts(word)
        for word in rejected:
            assert not nfa.accepts(word)
            assert not dfa.accepts(word)

    def test_compile_query_accepts_string_and_ast(self, abc):
        from_string = compile_query("(a.b)*.c", abc)
        from_ast = compile_query(parse("(a.b)*.c"), abc)
        assert from_string.structurally_equal(from_ast)

    def test_compile_query_with_iterable_alphabet(self):
        dfa = compile_query("a.b", ["a", "b", "c"])
        assert dfa.accepts(("a", "b"))

    def test_compile_query_rejects_symbols_outside_alphabet(self, abc):
        with pytest.raises(RegexSyntaxError):
            compile_query("a.z", abc)

    def test_alphabet_is_inferred_when_missing(self):
        dfa = compile_query("tram.bus")
        assert dfa.accepts(("tram", "bus"))


class TestStateElimination:
    @pytest.mark.parametrize(
        "expression",
        ["a", "a.b", "a+b", "a*", "(a.b)*.c", "(a+b)*.c", "a.(b+c)*", "a.b.c+b"],
    )
    def test_roundtrip_preserves_language(self, abc, expression):
        dfa = compile_query(expression, abc)
        recovered = dfa_to_regex(dfa)
        assert language_equivalent(compile_query(recovered, abc), dfa)

    def test_empty_language_gives_empty_set(self, abc):
        from repro.automata.dfa import DFA

        empty = DFA(abc, initial=0)
        assert dfa_to_regex(empty) == EmptySet()

    def test_roundtrip_of_canonical_dfa(self, abc):
        original = compile_query("(a.b)*.c", abc)
        recovered = compile_query(dfa_to_regex(canonical_dfa(original)), abc)
        assert language_equivalent(original, recovered)
