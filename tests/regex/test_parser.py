"""Unit tests for the regular expression parser."""

import pytest

from repro.errors import RegexSyntaxError
from repro.regex import parse
from repro.regex.ast import Concat, Epsilon, Star, Symbol, Union


class TestAtoms:
    def test_single_symbol(self):
        assert parse("a") == Symbol("a")

    def test_multicharacter_symbol(self):
        assert parse("ProteinPurification") == Symbol("ProteinPurification")

    def test_epsilon_keywords(self):
        assert parse("eps") == Epsilon()
        assert parse("epsilon") == Epsilon()
        assert parse("ε") == Epsilon()

    def test_parenthesized_atom(self):
        assert parse("(a)") == Symbol("a")


class TestOperators:
    def test_concatenation_with_dot(self):
        assert parse("a.b") == Concat(Symbol("a"), Symbol("b"))

    def test_concatenation_with_middle_dot(self):
        assert parse("a·b") == Concat(Symbol("a"), Symbol("b"))

    def test_implicit_concatenation_with_whitespace(self):
        assert parse("a b") == Concat(Symbol("a"), Symbol("b"))

    def test_union(self):
        assert parse("a+b") == Union(Symbol("a"), Symbol("b"))

    def test_star(self):
        assert parse("a*") == Star(Symbol("a"))

    def test_star_binds_tighter_than_concatenation(self):
        assert parse("a.b*") == Concat(Symbol("a"), Star(Symbol("b")))

    def test_concatenation_binds_tighter_than_union(self):
        assert parse("a.b+c") == Union(Concat(Symbol("a"), Symbol("b")), Symbol("c"))

    def test_parentheses_override_precedence(self):
        assert parse("(a+b).c") == Concat(Union(Symbol("a"), Symbol("b")), Symbol("c"))

    def test_double_star_collapses(self):
        assert parse("a**") == Star(Symbol("a"))


class TestPaperQueries:
    def test_running_example(self):
        regex = parse("(tram+bus)*.cinema")
        assert isinstance(regex, Concat)
        assert isinstance(regex.left, Star)

    def test_workflow_example(self):
        regex = parse("ProteinPurification.ProteinSeparation*.MassSpectrometry")
        assert regex.alphabet_symbols() == {
            "ProteinPurification",
            "ProteinSeparation",
            "MassSpectrometry",
        }

    def test_abstar_c(self):
        regex = parse("(a.b)*.c")
        assert str(regex) == "(a.b)*.c"


class TestErrors:
    def test_empty_expression_raises(self):
        with pytest.raises(RegexSyntaxError):
            parse("")
        with pytest.raises(RegexSyntaxError):
            parse("   ")

    def test_unbalanced_parenthesis_raises(self):
        with pytest.raises(RegexSyntaxError):
            parse("(a+b")

    def test_trailing_operator_raises(self):
        with pytest.raises(RegexSyntaxError):
            parse("a+")

    def test_leading_star_raises(self):
        with pytest.raises(RegexSyntaxError):
            parse("*a")

    def test_unexpected_character_raises(self):
        with pytest.raises(RegexSyntaxError) as excinfo:
            parse("a ? b")
        assert excinfo.value.position is not None

    def test_dangling_close_paren_raises(self):
        with pytest.raises(RegexSyntaxError):
            parse("a)b")
