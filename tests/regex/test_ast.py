"""Unit tests for the regex AST smart constructors and rendering."""

from repro.regex.ast import (
    Concat,
    EmptySet,
    Epsilon,
    Star,
    Symbol,
    Union,
    concat,
    disjunction,
    disjunction_of_symbols,
    epsilon,
    star,
    symbol,
    word_regex,
)


class TestSmartConstructors:
    def test_concat_drops_epsilon(self):
        assert concat(Symbol("a"), Epsilon(), Symbol("b")) == Concat(Symbol("a"), Symbol("b"))

    def test_concat_of_nothing_is_epsilon(self):
        assert concat() == Epsilon()

    def test_concat_absorbs_empty_set(self):
        assert concat(Symbol("a"), EmptySet()) == EmptySet()

    def test_disjunction_deduplicates(self):
        assert disjunction(Symbol("a"), Symbol("a")) == Symbol("a")

    def test_disjunction_drops_empty_set(self):
        assert disjunction(Symbol("a"), EmptySet()) == Symbol("a")

    def test_disjunction_of_nothing_is_empty_set(self):
        assert disjunction() == EmptySet()

    def test_star_of_epsilon_is_epsilon(self):
        assert star(Epsilon()) == Epsilon()

    def test_star_is_idempotent(self):
        assert star(star(Symbol("a"))) == Star(Symbol("a"))

    def test_disjunction_of_symbols(self):
        regex = disjunction_of_symbols(["a", "b", "c"])
        assert regex.alphabet_symbols() == {"a", "b", "c"}

    def test_word_regex(self):
        assert word_regex(("a", "b")) == Concat(Symbol("a"), Symbol("b"))
        assert word_regex(()) == Epsilon()

    def test_epsilon_and_symbol_helpers(self):
        assert epsilon() == Epsilon()
        assert symbol("x") == Symbol("x")


class TestMetrics:
    def test_node_count(self):
        # Concat + Symbol(a) + Star + Union + Symbol(b) + Symbol(c) = 6 nodes.
        regex = concat(Symbol("a"), star(Union(Symbol("b"), Symbol("c"))))
        assert regex.node_count() == 6

    def test_alphabet_symbols(self):
        regex = concat(Symbol("a"), star(Union(Symbol("b"), Symbol("a"))))
        assert regex.alphabet_symbols() == {"a", "b"}


class TestRendering:
    def test_union_inside_concat_is_parenthesized(self):
        regex = Concat(Union(Symbol("a"), Symbol("b")), Symbol("c"))
        assert str(regex) == "(a+b).c"

    def test_star_of_concat_is_parenthesized(self):
        regex = Star(Concat(Symbol("a"), Symbol("b")))
        assert str(regex) == "(a.b)*"

    def test_epsilon_renders(self):
        assert str(Epsilon()) == "eps"

    def test_roundtrip_through_parser(self):
        from repro.regex import parse

        for text in ["(a.b)*.c", "a+b.c", "(a+b)*", "a.(b+c)*.a"]:
            assert str(parse(str(parse(text)))) == str(parse(text))
