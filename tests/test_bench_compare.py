"""Unit tests for the benchmark-regression comparator (benchmarks/compare.py)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare", Path(__file__).resolve().parents[1] / "benchmarks" / "compare.py"
)
compare = importlib.util.module_from_spec(_SPEC)
sys.modules["bench_compare"] = compare  # dataclass introspection needs the registration
_SPEC.loader.exec_module(compare)


def report(**benches) -> dict:
    """A minimal pytest-benchmark JSON: name -> (mean, speedup-or-None)."""
    return {
        "benchmarks": [
            {
                "name": name,
                "stats": {"mean": mean},
                "extra_info": {} if speedup is None else {"speedup": speedup},
            }
            for name, (mean, speedup) in benches.items()
        ]
    }


class TestCompareReports:
    def test_mean_within_tolerance_passes(self):
        outcome = compare.compare_reports(
            report(t=(1.0, None)), report(t=(1.2, None)), tolerance=0.25
        )
        assert [c.ok for c in outcome] == [True]
        assert outcome[0].metric == "mean"

    def test_mean_beyond_tolerance_fails_as_advisory(self):
        outcome = compare.compare_reports(
            report(t=(1.0, None)), report(t=(1.3, None)), tolerance=0.25
        )
        assert [c.ok for c in outcome] == [False]
        assert outcome[0].advisory  # machine-dependent: warning unless strict
        assert "warn" in outcome[0].render()

    def test_speedup_metric_wins_over_mean(self):
        # Fresh run is absolutely slower (different machine) but the relative
        # speedup held: the machine-independent metric must be the one used.
        outcome = compare.compare_reports(
            report(t=(1.0, 3.0)), report(t=(5.0, 2.9)), tolerance=0.25
        )
        assert outcome[0].metric == "speedup"
        assert outcome[0].ok

    def test_speedup_collapse_fails(self):
        outcome = compare.compare_reports(
            report(t=(1.0, 3.0)), report(t=(1.0, 1.5)), tolerance=0.25
        )
        assert not outcome[0].ok
        assert not outcome[0].advisory  # relative metric: a hard failure

    def test_missing_benchmark_fails_and_new_one_passes(self):
        outcome = compare.compare_reports(
            report(old=(1.0, None)), report(new=(1.0, None)), tolerance=0.25
        )
        by_name = {c.name: c for c in outcome}
        assert not by_name["old"].ok and by_name["old"].metric == "missing"
        assert by_name["new"].ok and by_name["new"].metric == "new"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare.compare_reports(report(), report(), tolerance=-0.1)


class TestMergeSummary:
    def _compare(self, baseline, fresh):
        return compare.compare_reports(baseline, fresh, tolerance=0.25)

    def test_suites_accumulate_into_one_artifact(self, tmp_path):
        summary_file = tmp_path / "BENCH_summary.json"
        compare.merge_summary(
            summary_file,
            "engine-benchmark",
            self._compare(report(t=(1.0, 3.0)), report(t=(1.0, 2.9))),
            generated="2026-08-08T00:00:00",
        )
        merged = compare.merge_summary(
            summary_file,
            "learner-benchmark",
            self._compare(report(u=(1.0, None)), report(u=(1.1, None))),
            generated="2026-08-08T00:01:00",
        )
        entries = merged["entries"]
        assert [(e["suite"], e["name"]) for e in entries] == [
            ("engine-benchmark", "t"),
            ("learner-benchmark", "u"),
        ]
        assert entries[0]["metric"] == "speedup" and entries[0]["ok"]
        assert entries[1]["metric"] == "mean" and entries[1]["advisory"]
        assert entries[0]["datetime"] == "2026-08-08T00:00:00"
        # What landed on disk is what merge returned.
        assert json.loads(summary_file.read_text())["entries"] == entries

    def test_rerunning_a_suite_replaces_only_its_rows(self, tmp_path):
        summary_file = tmp_path / "summary.json"
        compare.merge_summary(
            summary_file, "a", self._compare(report(x=(1.0, 2.0)), report(x=(1.0, 2.0))),
            generated="g1",
        )
        compare.merge_summary(
            summary_file, "b", self._compare(report(y=(1.0, 2.0)), report(y=(1.0, 2.0))),
            generated="g1",
        )
        merged = compare.merge_summary(
            summary_file, "a", self._compare(report(x=(1.0, 4.0)), report(x=(1.0, 4.0))),
            generated="g2",
        )
        by_suite = {entry["suite"]: entry for entry in merged["entries"]}
        assert len(merged["entries"]) == 2
        assert by_suite["a"]["fresh"] == 4.0 and by_suite["a"]["datetime"] == "g2"
        assert by_suite["b"]["datetime"] == "g1"

    def test_corrupt_summary_file_is_rebuilt(self, tmp_path):
        summary_file = tmp_path / "summary.json"
        summary_file.write_text("{not json")
        merged = compare.merge_summary(
            summary_file, "a", self._compare(report(x=(1.0, 2.0)), report(x=(1.0, 2.0))),
            generated=None,
        )
        assert len(merged["entries"]) == 1
        assert json.loads(summary_file.read_text())["generated"] is None


class TestMain:
    def _write(self, path: Path, payload: dict) -> Path:
        path.write_text(json.dumps(payload))
        return path

    def test_gate_passes_and_fails_via_exit_code(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", report(t=(1.0, 3.0)))
        good = self._write(tmp_path / "good.json", report(t=(1.1, 2.9)))
        bad = self._write(tmp_path / "bad.json", report(t=(2.0, 1.0)))
        assert compare.main(["--baseline", str(baseline), "--fresh", str(good)]) == 0
        assert "gate passed" in capsys.readouterr().out
        assert compare.main(["--baseline", str(baseline), "--fresh", str(bad)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_mean_regressions_warn_by_default_and_fail_in_strict_mode(
        self, tmp_path, capsys
    ):
        baseline = self._write(tmp_path / "base.json", report(t=(1.0, None)))
        slow = self._write(tmp_path / "slow.json", report(t=(2.0, None)))
        assert compare.main(["--baseline", str(baseline), "--fresh", str(slow)]) == 0
        assert "advisory" in capsys.readouterr().out
        assert (
            compare.main(
                ["--baseline", str(baseline), "--fresh", str(slow), "--strict-means"]
            )
            == 1
        )

    def test_write_baseline_round_trips(self, tmp_path, capsys):
        fresh = self._write(tmp_path / "fresh.json", report(t=(1.0, 2.5)))
        baseline = tmp_path / "baselines" / "t.json"
        assert (
            compare.main(
                ["--baseline", str(baseline), "--fresh", str(fresh), "--write-baseline"]
            )
            == 0
        )
        capsys.readouterr()
        assert compare.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0

    def test_summary_flag_names_the_suite_after_the_baseline(self, tmp_path, capsys):
        baseline = self._write(
            tmp_path / "engine-benchmark.json", report(t=(1.0, 3.0))
        )
        fresh = self._write(tmp_path / "fresh.json", report(t=(1.0, 2.9)))
        summary_file = tmp_path / "BENCH_summary.json"
        code = compare.main(
            [
                "--baseline", str(baseline),
                "--fresh", str(fresh),
                "--summary", str(summary_file),
            ]
        )
        assert code == 0
        assert "summary merged" in capsys.readouterr().out
        (entry,) = json.loads(summary_file.read_text())["entries"]
        assert entry["suite"] == "engine-benchmark"
        assert entry["name"] == "t" and entry["ok"] is True

    def test_tolerance_flag(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", report(t=(1.0, 3.0)))
        fresh = self._write(tmp_path / "fresh.json", report(t=(1.0, 2.0)))
        assert (
            compare.main(
                ["--baseline", str(baseline), "--fresh", str(fresh), "--tolerance", "0.5"]
            )
            == 0
        )
        capsys.readouterr()
        assert compare.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 1
