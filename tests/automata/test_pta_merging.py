"""Unit tests for the prefix tree acceptor and state-merging operations."""

import pytest

from repro.automata import Alphabet, prefix_tree_acceptor
from repro.automata.merging import deterministic_merge, merge_states
from repro.automata.pta import pta_states_in_canonical_order
from repro.errors import AutomatonError


@pytest.fixture
def abc():
    return Alphabet(["a", "b", "c"])


class TestPrefixTreeAcceptor:
    def test_pta_of_paper_example(self, abc):
        # Figure 6(a): PTA of {abc, c} has states eps, a, ab, abc, c.
        pta = prefix_tree_acceptor(abc, [("a", "b", "c"), ("c",)])
        assert set(pta.states) == {(), ("a",), ("a", "b"), ("a", "b", "c"), ("c",)}
        assert pta.final_states == {("a", "b", "c"), ("c",)}

    def test_pta_accepts_exactly_the_words(self, abc):
        words = [("a", "b"), ("a",), ("c", "c")]
        pta = prefix_tree_acceptor(abc, words)
        for word in words:
            assert pta.accepts(word)
        assert not pta.accepts(("b",))
        assert not pta.accepts(("a", "b", "c"))

    def test_pta_of_empty_word(self, abc):
        pta = prefix_tree_acceptor(abc, [()])
        assert pta.accepts(())
        assert len(pta) == 1

    def test_pta_states_in_canonical_order(self, abc):
        pta = prefix_tree_acceptor(abc, [("a", "b", "c"), ("c",)])
        ordered = pta_states_in_canonical_order(pta, abc)
        assert ordered == [(), ("a",), ("c",), ("a", "b"), ("a", "b", "c")]

    def test_pta_shares_prefixes(self, abc):
        pta = prefix_tree_acceptor(abc, [("a", "b"), ("a", "c")])
        # eps, a, ab, ac -> 4 states, not 5.
        assert len(pta) == 4


class TestMergeStates:
    def test_plain_merge_may_create_nondeterminism(self, abc):
        pta = prefix_tree_acceptor(abc, [("a", "b", "c"), ("c",)])
        merged = merge_states(pta, (), ("a",))
        # Merging eps and a creates the language a*(c + bc) (paper Section 3.2).
        assert merged.accepts(("b", "c"))
        assert merged.accepts(("c",))
        assert merged.accepts(("a", "a", "c"))

    def test_merge_unknown_state_raises(self, abc):
        pta = prefix_tree_acceptor(abc, [("a",)])
        with pytest.raises(AutomatonError):
            merge_states(pta, (), ("z",))


class TestDeterministicMerge:
    def test_paper_merge_eps_ab_yields_abstar_c(self, abc):
        # Section 3.2: merging eps and ab in the PTA of {abc, c} gives (a.b)*.c.
        pta = prefix_tree_acceptor(abc, [("a", "b", "c"), ("c",)])
        merged = deterministic_merge(pta, (), ("a", "b"))
        assert merged.accepts(("c",))
        assert merged.accepts(("a", "b", "c"))
        assert merged.accepts(("a", "b", "a", "b", "c"))
        assert not merged.accepts(("b", "c"))
        assert not merged.accepts(())

    def test_merge_result_is_deterministic(self, abc):
        pta = prefix_tree_acceptor(abc, [("a", "b", "c"), ("c",), ("a", "c")])
        merged = deterministic_merge(pta, (), ("a",))
        seen = {}
        for source, symbol, _ in merged.transitions():
            assert (source, symbol) not in seen
            seen[(source, symbol)] = True

    def test_merge_language_includes_original(self, abc):
        pta = prefix_tree_acceptor(abc, [("a", "b"), ("b",)])
        merged = deterministic_merge(pta, (), ("a",))
        for word in [("a", "b"), ("b",)]:
            assert merged.accepts(word)

    def test_merge_same_state_is_identity(self, abc):
        pta = prefix_tree_acceptor(abc, [("a",)])
        merged = deterministic_merge(pta, (), ())
        assert merged.accepts(("a",))
        assert len(merged) == len(pta)

    def test_merge_unknown_state_raises(self, abc):
        pta = prefix_tree_acceptor(abc, [("a",)])
        with pytest.raises(AutomatonError):
            deterministic_merge(pta, ("z",), ())
