"""Unit tests for deterministic finite automata."""

import pytest

from repro.automata import Alphabet
from repro.automata.dfa import DFA, SINK
from repro.errors import AutomatonError


@pytest.fixture
def abc():
    return Alphabet(["a", "b", "c"])


def build_abstar_c(alphabet) -> DFA:
    """The canonical DFA of (a.b)*.c (Figure 4 of the paper)."""
    dfa = DFA(alphabet, initial="q0", finals=["q2"])
    dfa.add_transition("q0", "a", "q1")
    dfa.add_transition("q1", "b", "q0")
    dfa.add_transition("q0", "c", "q2")
    return dfa


class TestConstruction:
    def test_duplicate_conflicting_transition_raises(self, abc):
        dfa = DFA(abc, initial=0)
        dfa.add_transition(0, "a", 1)
        with pytest.raises(AutomatonError):
            dfa.add_transition(0, "a", 2)

    def test_duplicate_identical_transition_is_idempotent(self, abc):
        dfa = DFA(abc, initial=0)
        dfa.add_transition(0, "a", 1)
        dfa.add_transition(0, "a", 1)
        assert dfa.transition_count() == 1

    def test_unknown_symbol_raises(self, abc):
        with pytest.raises(AutomatonError):
            DFA(abc, initial=0).add_transition(0, "z", 1)

    def test_set_final_toggles(self, abc):
        dfa = DFA(abc, initial=0)
        dfa.set_final(0, True)
        assert dfa.is_final(0)
        dfa.set_final(0, False)
        assert not dfa.is_final(0)


class TestSemantics:
    def test_accepts_figure4_language(self, abc):
        dfa = build_abstar_c(abc)
        assert dfa.accepts(("c",))
        assert dfa.accepts(("a", "b", "c"))
        assert dfa.accepts(("a", "b", "a", "b", "c"))
        assert not dfa.accepts(())
        assert not dfa.accepts(("a", "b"))
        assert not dfa.accepts(("c", "c"))

    def test_run_dies_on_missing_transition(self, abc):
        dfa = build_abstar_c(abc)
        assert dfa.run(("b",)) is None

    def test_shortest_accepted_word(self, abc):
        dfa = build_abstar_c(abc)
        assert dfa.shortest_accepted_word() == ("c",)

    def test_is_empty(self, abc):
        dfa = DFA(abc, initial=0)
        assert dfa.is_empty()
        assert not build_abstar_c(abc).is_empty()


class TestCompletionAndComplement:
    def test_completed_adds_sink(self, abc):
        dfa = build_abstar_c(abc)
        complete = dfa.completed()
        assert SINK in complete.states
        for state in complete.states:
            for symbol in abc:
                assert complete.delta(state, symbol) is not None

    def test_complement_swaps_acceptance(self, abc):
        dfa = build_abstar_c(abc)
        complement = dfa.complement()
        for word in [(), ("c",), ("a", "b"), ("a", "b", "c"), ("b",)]:
            assert complement.accepts(word) == (not dfa.accepts(word))

    def test_user_state_named_sink_does_not_collide(self, abc):
        # Regression: SINK used to be the string "__sink__", so a user state
        # with that exact name collided with the completion sink -- the user
        # state received the sink's self-loops and (via complement) its
        # rejecting role.  SINK is now a dedicated sentinel object.
        dfa = DFA(abc, initial=0)
        dfa.add_transition(0, "a", "__sink__")
        dfa.add_final("__sink__")
        complete = dfa.completed()
        assert SINK in complete.states
        assert "__sink__" in complete.states
        assert SINK != "__sink__"
        # The accepting user state keeps its language role...
        assert complete.accepts(("a",))
        assert not complete.accepts(("a", "a"))
        # ...and the real sink is a rejecting trap with self-loops.
        assert not complete.is_final(SINK)
        for symbol in abc:
            assert complete.delta(SINK, symbol) is SINK

    def test_complement_with_user_state_named_sink(self, abc):
        dfa = DFA(abc, initial=0)
        dfa.add_transition(0, "a", "__sink__")
        dfa.add_final("__sink__")
        complement = dfa.complement()
        for word in [(), ("a",), ("a", "a"), ("b",)]:
            assert complement.accepts(word) == (not dfa.accepts(word))


class TestStructure:
    def test_trim_removes_dead_states(self, abc):
        dfa = build_abstar_c(abc)
        dfa.add_transition("q2", "a", "dead")
        trimmed = dfa.trim()
        assert "dead" not in trimmed.states

    def test_trim_keeps_initial_even_if_language_empty(self, abc):
        dfa = DFA(abc, initial=0)
        dfa.add_transition(0, "a", 1)
        trimmed = dfa.trim()
        assert trimmed.initial == 0

    def test_relabeled_is_deterministic_and_preserves_language(self, abc):
        dfa = build_abstar_c(abc)
        relabeled = dfa.relabeled()
        assert relabeled.initial == 0
        for word in [("c",), ("a", "b", "c"), ("a",), ()]:
            assert relabeled.accepts(word) == dfa.accepts(word)

    def test_structurally_equal_on_isomorphic_automata(self, abc):
        left = build_abstar_c(abc)
        right = DFA(abc, initial="s", finals=["f"])
        right.add_transition("s", "a", "t")
        right.add_transition("t", "b", "s")
        right.add_transition("s", "c", "f")
        assert left.structurally_equal(right)

    def test_structurally_unequal_on_different_languages(self, abc):
        left = build_abstar_c(abc)
        right = DFA.single_word(abc, ("c",))
        assert not left.structurally_equal(right)


class TestConversions:
    def test_to_nfa_preserves_language(self, abc):
        dfa = build_abstar_c(abc)
        nfa = dfa.to_nfa()
        for word in [("c",), ("a", "b", "c"), ("a",), ()]:
            assert nfa.accepts(word) == dfa.accepts(word)

    def test_single_word(self, abc):
        dfa = DFA.single_word(abc, ("a", "c"))
        assert dfa.accepts(("a", "c"))
        assert not dfa.accepts(("a",))
        assert not dfa.accepts(("a", "c", "a"))
        assert len(dfa) == 3

    def test_single_empty_word(self, abc):
        dfa = DFA.single_word(abc, ())
        assert dfa.accepts(())
        assert not dfa.accepts(("a",))
