"""Unit tests for alphabets and the canonical order on words."""

import pytest

from repro.automata.alphabet import Alphabet, word_to_str
from repro.errors import AlphabetError


class TestConstruction:
    def test_symbols_are_sorted_by_default(self):
        alphabet = Alphabet(["c", "a", "b"])
        assert alphabet.symbols == ("a", "b", "c")

    def test_explicit_order_is_preserved_when_sort_disabled(self):
        alphabet = Alphabet(["c", "a", "b"], sort=False)
        assert alphabet.symbols == ("c", "a", "b")

    def test_duplicate_symbols_are_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet(["a", "a"])

    def test_empty_symbol_is_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet(["a", ""])

    def test_non_string_symbol_is_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet(["a", 3])

    def test_multicharacter_symbols_are_supported(self):
        alphabet = Alphabet(["tram", "bus", "cinema"])
        assert "tram" in alphabet
        assert alphabet.index("bus") == 0

    def test_equality_and_hash(self):
        assert Alphabet(["a", "b"]) == Alphabet(["b", "a"])
        assert hash(Alphabet(["a", "b"])) == hash(Alphabet(["b", "a"]))
        assert Alphabet(["a", "b"]) != Alphabet(["a", "c"])


class TestMembershipAndIndex:
    def test_contains_and_len(self):
        alphabet = Alphabet(["a", "b", "c"])
        assert "a" in alphabet
        assert "z" not in alphabet
        assert len(alphabet) == 3

    def test_index_of_unknown_symbol_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet(["a"]).index("b")

    def test_check_word_accepts_valid_and_rejects_unknown(self):
        alphabet = Alphabet(["a", "b"])
        assert alphabet.check_word(["a", "b", "a"]) == ("a", "b", "a")
        with pytest.raises(AlphabetError):
            alphabet.check_word(["a", "z"])


class TestCanonicalOrder:
    def test_shorter_words_come_first(self):
        alphabet = Alphabet(["a", "b"])
        assert alphabet.canonical_less(("b",), ("a", "a"))

    def test_equal_length_words_compare_lexicographically(self):
        alphabet = Alphabet(["a", "b"])
        assert alphabet.canonical_less(("a", "b"), ("b", "a"))
        assert not alphabet.canonical_less(("b", "a"), ("a", "b"))

    def test_canonical_sorted_matches_paper_example(self):
        # Section 2: w <= u iff |w| < |u|, or equal length and lexicographic.
        alphabet = Alphabet(["a", "b", "c"])
        words = [("c",), ("a", "b", "c"), (), ("b",), ("a", "a")]
        assert alphabet.canonical_sorted(words) == [
            (),
            ("b",),
            ("c",),
            ("a", "a"),
            ("a", "b", "c"),
        ]

    def test_canonical_min(self):
        alphabet = Alphabet(["a", "b", "c"])
        assert alphabet.canonical_min([("a", "b"), ("c",), ("b", "a")]) == ("c",)

    def test_custom_symbol_order_changes_lexicographic_order(self):
        alphabet = Alphabet(["b", "a"], sort=False)
        # With order b < a, the word (b,) precedes (a,).
        assert alphabet.canonical_less(("b",), ("a",))


class TestWordGeneration:
    def test_words_up_to_counts(self):
        alphabet = Alphabet(["a", "b"])
        words = list(alphabet.words_up_to(2))
        assert len(words) == 1 + 2 + 4
        assert words[0] == ()
        assert set(words[1:3]) == {("a",), ("b",)}

    def test_words_up_to_is_canonically_ordered(self):
        alphabet = Alphabet(["a", "b", "c"])
        words = list(alphabet.words_up_to(2))
        assert words == alphabet.canonical_sorted(words)

    def test_negative_length_raises(self):
        with pytest.raises(AlphabetError):
            list(Alphabet(["a"]).words_up_to(-1))


class TestRestrictAndUnion:
    def test_restrict_keeps_order(self):
        alphabet = Alphabet(["a", "b", "c", "d"])
        assert alphabet.restrict(["c", "a"]).symbols == ("a", "c")

    def test_restrict_to_unknown_symbol_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet(["a"]).restrict(["z"])

    def test_union(self):
        merged = Alphabet(["a", "b"]).union(Alphabet(["b", "c"]))
        assert merged.symbols == ("a", "b", "c")


class TestDisplay:
    def test_word_to_str(self):
        assert word_to_str(("a", "b")) == "a.b"
        assert word_to_str(()) == "ε"
