"""Unit tests for nondeterministic finite automata."""

import pytest

from repro.automata import Alphabet
from repro.automata.nfa import NFA
from repro.errors import AutomatonError


@pytest.fixture
def ab_alphabet():
    return Alphabet(["a", "b"])


def build_ab_star_b(alphabet) -> NFA:
    """An NFA for (a+b)*b used across several tests."""
    nfa = NFA(alphabet, initial=[0], finals=[1])
    nfa.add_transition(0, "a", 0)
    nfa.add_transition(0, "b", 0)
    nfa.add_transition(0, "b", 1)
    return nfa


class TestConstruction:
    def test_add_transition_with_unknown_symbol_raises(self, ab_alphabet):
        nfa = NFA(ab_alphabet)
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, "z", 1)

    def test_states_include_endpoints_and_markers(self, ab_alphabet):
        nfa = NFA(ab_alphabet, initial=[0], finals=[2])
        nfa.add_transition(0, "a", 1)
        assert nfa.states == {0, 1, 2}
        assert nfa.initial_states == {0}
        assert nfa.final_states == {2}

    def test_transition_count(self, ab_alphabet):
        nfa = build_ab_star_b(ab_alphabet)
        assert nfa.transition_count() == 3
        assert len(nfa) == 2


class TestAcceptance:
    def test_accepts_nondeterministic_language(self, ab_alphabet):
        nfa = build_ab_star_b(ab_alphabet)
        assert nfa.accepts(("b",))
        assert nfa.accepts(("a", "a", "b"))
        assert nfa.accepts(("b", "a", "b"))
        assert not nfa.accepts(())
        assert not nfa.accepts(("a",))
        assert not nfa.accepts(("b", "a"))

    def test_run_returns_reachable_state_set(self, ab_alphabet):
        nfa = build_ab_star_b(ab_alphabet)
        assert nfa.run(("b",)) == {0, 1}
        assert nfa.run(("a",)) == {0}

    def test_epsilon_transitions_are_followed(self, ab_alphabet):
        nfa = NFA(ab_alphabet, initial=[0], finals=[2])
        nfa.add_epsilon_transition(0, 1)
        nfa.add_transition(1, "a", 2)
        assert nfa.accepts(("a",))
        assert nfa.has_epsilon_transitions

    def test_epsilon_closure_is_transitive(self, ab_alphabet):
        nfa = NFA(ab_alphabet)
        nfa.add_epsilon_transition(0, 1)
        nfa.add_epsilon_transition(1, 2)
        assert nfa.epsilon_closure([0]) == {0, 1, 2}


class TestStructure:
    def test_reachable_and_coreachable(self, ab_alphabet):
        nfa = NFA(ab_alphabet, initial=[0], finals=[2])
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, "b", 2)
        nfa.add_transition(3, "a", 2)  # unreachable source
        nfa.add_transition(1, "a", 4)  # dead-end target
        assert 3 not in nfa.reachable_states()
        assert 4 not in nfa.coreachable_states()
        trimmed = nfa.trim()
        assert trimmed.states == {0, 1, 2}

    def test_is_empty(self, ab_alphabet):
        empty = NFA(ab_alphabet, initial=[0])
        assert empty.is_empty()
        nonempty = build_ab_star_b(ab_alphabet)
        assert not nonempty.is_empty()

    def test_copy_is_independent(self, ab_alphabet):
        nfa = build_ab_star_b(ab_alphabet)
        clone = nfa.copy()
        clone.add_transition(1, "a", 5)
        assert 5 not in nfa.states

    def test_relabeled_preserves_language(self, ab_alphabet):
        nfa = build_ab_star_b(ab_alphabet)
        relabeled = nfa.relabeled()
        for word in [(), ("b",), ("a", "b"), ("a",), ("b", "a", "b")]:
            assert nfa.accepts(word) == relabeled.accepts(word)


class TestHelpers:
    def test_shortest_accepted_word(self, ab_alphabet):
        nfa = build_ab_star_b(ab_alphabet)
        assert nfa.shortest_accepted_word() == ("b",)

    def test_shortest_accepted_word_of_empty_language_is_none(self, ab_alphabet):
        assert NFA(ab_alphabet, initial=[0]).shortest_accepted_word() is None

    def test_shortest_accepted_word_epsilon(self, ab_alphabet):
        nfa = NFA(ab_alphabet, initial=[0], finals=[0])
        assert nfa.shortest_accepted_word() == ()

    def test_from_words_accepts_exactly_those_words(self, ab_alphabet):
        nfa = NFA.from_words(ab_alphabet, [("a", "b"), ("b",)])
        assert nfa.accepts(("a", "b"))
        assert nfa.accepts(("b",))
        assert not nfa.accepts(("a",))
        assert not nfa.accepts(("a", "b", "b"))
