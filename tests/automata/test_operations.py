"""Unit tests for Boolean operations and decision procedures on automata."""

import pytest

from repro.automata import (
    Alphabet,
    complement,
    enumerate_words,
    intersect,
    intersection_empty,
    is_empty,
    language_equivalent,
    language_included,
    union,
)
from repro.automata.nfa import NFA
from repro.automata.operations import accepts_all, accepts_any
from repro.errors import AutomatonError
from repro.regex import compile_query


@pytest.fixture
def abc():
    return Alphabet(["a", "b", "c"])


class TestIntersection:
    def test_intersection_of_overlapping_languages(self, abc):
        left = compile_query("(a+b)*", abc)
        right = compile_query("a.b*", abc)
        product = intersect(left, right)
        assert product.accepts(("a",))
        assert product.accepts(("a", "b", "b"))
        assert not product.accepts(("b",))

    def test_intersection_empty_detects_disjoint_languages(self, abc):
        assert intersection_empty(compile_query("a.a*", abc), compile_query("b.b*", abc))
        assert not intersection_empty(compile_query("a*", abc), compile_query("a.a", abc))

    def test_intersection_across_different_alphabets(self):
        left = compile_query("a", Alphabet(["a", "b"]))
        right = compile_query("a", Alphabet(["a", "c"]))
        assert not intersection_empty(left, right)


class TestUnionAndComplement:
    def test_union_accepts_both_sides(self, abc):
        combined = union(compile_query("a", abc), compile_query("b.c", abc))
        assert combined.accepts(("a",))
        assert combined.accepts(("b", "c"))
        assert not combined.accepts(("b",))

    def test_complement(self, abc):
        comp = complement(compile_query("a*", abc))
        assert not comp.accepts(("a", "a"))
        assert comp.accepts(("b",))
        assert not comp.accepts(())


class TestEmptinessInclusionEquivalence:
    def test_is_empty(self, abc):
        assert is_empty(NFA(abc, initial=[0]))
        assert not is_empty(compile_query("a", abc))

    def test_language_included(self, abc):
        assert language_included(compile_query("a.b", abc), compile_query("a.b*", abc))
        assert not language_included(compile_query("a.b*", abc), compile_query("a.b", abc))

    def test_language_equivalent(self, abc):
        assert language_equivalent(
            compile_query("(a.b)*.c", abc), compile_query("c+a.b.(a.b)*.c", abc)
        )
        assert not language_equivalent(compile_query("a", abc), compile_query("a.b", abc))


class TestEnumeration:
    def test_enumerate_words_in_canonical_order(self, abc):
        dfa = compile_query("(a.b)*.c", abc)
        words = list(enumerate_words(dfa, max_length=5))
        assert words == [("c",), ("a", "b", "c"), ("a", "b", "a", "b", "c")]

    def test_enumerate_words_respects_limit(self, abc):
        dfa = compile_query("a*", abc)
        assert len(list(enumerate_words(dfa, max_length=10, limit=4))) == 4

    def test_enumerate_words_negative_length_raises(self, abc):
        with pytest.raises(AutomatonError):
            list(enumerate_words(compile_query("a", abc), max_length=-1))

    def test_enumerate_words_includes_epsilon(self, abc):
        dfa = compile_query("a*", abc)
        words = list(enumerate_words(dfa, max_length=2))
        assert words[0] == ()


class TestConvenience:
    def test_accepts_any_and_all(self, abc):
        dfa = compile_query("a+b", abc)
        assert accepts_any(dfa, [("c",), ("b",)])
        assert not accepts_any(dfa, [("c",), ("a", "a")])
        assert accepts_all(dfa, [("a",), ("b",)])
        assert not accepts_all(dfa, [("a",), ("c",)])
