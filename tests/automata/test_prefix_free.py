"""Unit tests for prefix-free queries (Section 2 of the paper)."""

import pytest

from repro.automata import Alphabet, is_prefix_free, prefix_free
from repro.automata.operations import language_equivalent
from repro.regex import compile_query


@pytest.fixture
def abc():
    return Alphabet(["a", "b", "c"])


class TestIsPrefixFree:
    def test_abstar_c_is_prefix_free(self, abc):
        assert is_prefix_free(compile_query("(a.b)*.c", abc))

    def test_a_bstar_is_not_prefix_free(self, abc):
        # The paper's example: a and a.b* are equivalent; a.b* is not prefix-free.
        assert not is_prefix_free(compile_query("a.b*", abc))

    def test_a_plus_ab_is_not_prefix_free(self, abc):
        assert not is_prefix_free(compile_query("a+a.b", abc))

    def test_single_symbol_is_prefix_free(self, abc):
        assert is_prefix_free(compile_query("a", abc))

    def test_astar_is_not_prefix_free(self, abc):
        # eps is a prefix of a.
        assert not is_prefix_free(compile_query("a*", abc))


class TestPrefixFreeTransformation:
    def test_a_bstar_reduces_to_a(self, abc):
        reduced = prefix_free(compile_query("a.b*", abc))
        assert language_equivalent(reduced, compile_query("a", abc))

    def test_prefix_free_query_is_unchanged(self, abc):
        query = compile_query("(a.b)*.c", abc)
        assert language_equivalent(prefix_free(query), query)

    def test_result_is_always_prefix_free(self, abc):
        for expression in ["a.b*", "a+a.b", "a*", "(a+b)*.c", "a.(b+c)*"]:
            assert is_prefix_free(prefix_free(compile_query(expression, abc)))

    def test_astar_reduces_to_epsilon(self, abc):
        reduced = prefix_free(compile_query("a*", abc))
        assert reduced.accepts(())
        assert not reduced.accepts(("a",))

    def test_language_is_minimal_words_of_original(self, abc):
        # For a + a.b, only 'a' survives (a is a prefix of ab).
        reduced = prefix_free(compile_query("a+a.b", abc))
        assert reduced.accepts(("a",))
        assert not reduced.accepts(("a", "b"))
