"""Property-based tests (hypothesis) on the automata substrate.

The generators build random regular expressions and random word samples over
a small alphabet, and check the algebraic invariants that the learner's
correctness rests on: determinization and minimization preserve the
language, the canonical DFA is a unique normal form, boolean operations
behave like set operations, and the prefix-free transformation produces the
minimal-words language.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import (
    Alphabet,
    canonical_dfa,
    complement,
    determinize,
    intersect,
    language_equivalent,
    prefix_tree_acceptor,
    union,
)
from repro.automata.prefix_free import is_prefix_free, prefix_free
from repro.regex import regex_to_dfa, regex_to_nfa
from repro.regex.ast import Epsilon, Regex, Star, Symbol, concat, disjunction

ALPHABET = Alphabet(["a", "b", "c"])
SYMBOLS = list(ALPHABET.symbols)

words = st.lists(st.sampled_from(SYMBOLS), max_size=5).map(tuple)
word_sets = st.lists(words, min_size=1, max_size=6)


def regexes(max_depth: int = 3) -> st.SearchStrategy[Regex]:
    """Random small regular expressions over {a, b, c}."""
    leaves = st.one_of(
        st.sampled_from(SYMBOLS).map(Symbol),
        st.just(Epsilon()),
    )

    def extend(children: st.SearchStrategy[Regex]) -> st.SearchStrategy[Regex]:
        return st.one_of(
            st.tuples(children, children).map(lambda pair: concat(*pair)),
            st.tuples(children, children).map(lambda pair: disjunction(*pair)),
            children.map(lambda inner: Star(inner) if not isinstance(inner, Epsilon) else inner),
        )

    return st.recursive(leaves, extend, max_leaves=6)


@settings(max_examples=60, deadline=None)
@given(regex=regexes(), word=words)
def test_determinization_preserves_language(regex, word):
    nfa = regex_to_nfa(regex, ALPHABET)
    dfa = determinize(nfa)
    assert dfa.accepts(word) == nfa.accepts(word)


@settings(max_examples=60, deadline=None)
@given(regex=regexes(), word=words)
def test_canonical_dfa_preserves_language(regex, word):
    nfa = regex_to_nfa(regex, ALPHABET)
    canonical = canonical_dfa(nfa)
    assert canonical.accepts(word) == nfa.accepts(word)


@settings(max_examples=40, deadline=None)
@given(regex=regexes())
def test_canonical_dfa_is_a_normal_form(regex):
    # Canonicalizing twice yields a structurally identical automaton.
    first = canonical_dfa(regex_to_nfa(regex, ALPHABET))
    second = canonical_dfa(first)
    assert first.structurally_equal(second)


@settings(max_examples=50, deadline=None)
@given(left=regexes(), right=regexes(), word=words)
def test_intersection_behaves_like_set_intersection(left, right, word):
    left_dfa = regex_to_dfa(left, ALPHABET)
    right_dfa = regex_to_dfa(right, ALPHABET)
    product = intersect(left_dfa, right_dfa)
    assert product.accepts(word) == (left_dfa.accepts(word) and right_dfa.accepts(word))


@settings(max_examples=50, deadline=None)
@given(left=regexes(), right=regexes(), word=words)
def test_union_behaves_like_set_union(left, right, word):
    left_dfa = regex_to_dfa(left, ALPHABET)
    right_dfa = regex_to_dfa(right, ALPHABET)
    combined = union(left_dfa, right_dfa)
    assert combined.accepts(word) == (left_dfa.accepts(word) or right_dfa.accepts(word))


@settings(max_examples=50, deadline=None)
@given(regex=regexes(), word=words)
def test_complement_flips_membership(regex, word):
    dfa = regex_to_dfa(regex, ALPHABET)
    assert complement(dfa).accepts(word) == (not dfa.accepts(word))


@settings(max_examples=40, deadline=None)
@given(sample=word_sets)
def test_pta_accepts_exactly_the_sample(sample):
    pta = prefix_tree_acceptor(ALPHABET, sample)
    for word in sample:
        assert pta.accepts(word)
    # Any word that is not in the sample is rejected.
    for word in [("a", "a", "a", "a", "a", "a"), ("c", "b", "a", "c")]:
        assert pta.accepts(word) == (word in set(sample))


@settings(max_examples=40, deadline=None)
@given(regex=regexes())
def test_prefix_free_form_is_prefix_free(regex):
    dfa = regex_to_dfa(regex, ALPHABET)
    if dfa.is_empty():
        pytest.skip("empty language has no prefix-free representative of interest")
    assert is_prefix_free(prefix_free(dfa))


@settings(max_examples=40, deadline=None)
@given(regex=regexes(), word=words)
def test_prefix_free_accepts_only_minimal_words(regex, word):
    dfa = regex_to_dfa(regex, ALPHABET)
    reduced = prefix_free(dfa)
    has_proper_prefix_in_language = any(
        dfa.accepts(word[:cut]) for cut in range(len(word))
    )
    expected = dfa.accepts(word) and not has_proper_prefix_in_language
    assert reduced.accepts(word) == expected


@settings(max_examples=40, deadline=None)
@given(regex=regexes())
def test_language_equivalence_is_reflexive(regex):
    dfa = regex_to_dfa(regex, ALPHABET)
    assert language_equivalent(dfa, canonical_dfa(dfa))
