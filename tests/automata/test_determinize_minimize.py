"""Unit tests for determinization, minimization and the canonical DFA."""

import pytest

from repro.automata import Alphabet, canonical_dfa, determinize, minimize
from repro.automata.dfa import DFA
from repro.automata.minimize import query_size
from repro.automata.nfa import NFA
from repro.regex import compile_query


@pytest.fixture
def abc():
    return Alphabet(["a", "b", "c"])


class TestDeterminize:
    def test_determinized_language_matches(self, abc):
        nfa = NFA(abc, initial=[0], finals=[2])
        nfa.add_transition(0, "a", 0)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, "b", 2)
        dfa = determinize(nfa)
        for word in [("a", "b"), ("a", "a", "b"), ("b",), ("a",), ()]:
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_determinize_handles_epsilon_transitions(self, abc):
        nfa = NFA(abc, initial=[0], finals=[2])
        nfa.add_epsilon_transition(0, 1)
        nfa.add_transition(1, "a", 2)
        dfa = determinize(nfa)
        assert dfa.accepts(("a",))
        assert not dfa.accepts(())

    def test_determinize_empty_language(self, abc):
        nfa = NFA(abc, initial=[0])
        assert determinize(nfa).is_empty()


class TestMinimize:
    def test_minimize_collapses_equivalent_states(self, abc):
        # Two redundant accepting states reached by a and by b.
        dfa = DFA(abc, initial=0, finals=[1, 2])
        dfa.add_transition(0, "a", 1)
        dfa.add_transition(0, "b", 2)
        minimal = minimize(dfa)
        # States: initial, accepting (merged), sink.
        assert len(minimal) <= 3

    def test_minimize_preserves_language(self, abc):
        dfa = compile_query("(a.b)*.c+c", abc)
        minimal = minimize(dfa)
        for word in [("c",), ("a", "b", "c"), ("a", "b"), (), ("c", "c")]:
            assert minimal.accepts(word) == dfa.accepts(word)


class TestCanonicalDFA:
    def test_figure4_size_is_three(self, abc):
        # The paper: the size of (a.b)*.c is 3 (Figure 4).
        assert query_size(compile_query("(a.b)*.c", abc)) == 3

    def test_canonical_dfa_is_trimmed(self, abc):
        dfa = compile_query("a.b", abc)
        canonical = canonical_dfa(dfa)
        assert len(canonical) == 3  # no sink state in the canonical form

    def test_equal_languages_give_structurally_equal_canonical_dfas(self, abc):
        left = canonical_dfa(compile_query("(a.b)*.c", abc))
        right = canonical_dfa(compile_query("c+a.b.(a.b)*.c", abc))
        assert left.structurally_equal(right)

    def test_canonical_dfa_accepts_same_language(self, abc):
        original = compile_query("(a+b).c*", abc)
        canonical = canonical_dfa(original)
        for word in [("a",), ("b", "c", "c"), ("c",), (), ("a", "c")]:
            assert canonical.accepts(word) == original.accepts(word)

    def test_canonical_dfa_accepts_nfa_input(self, abc):
        nfa = NFA.from_words(abc, [("a",), ("a", "b")])
        canonical = canonical_dfa(nfa)
        assert canonical.accepts(("a",))
        assert canonical.accepts(("a", "b"))
        assert not canonical.accepts(("b",))
