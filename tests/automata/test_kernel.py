"""Parity tests for the int-coded automata kernel.

Every kernel-native algorithm is pinned against the legacy object-level
implementation it replaced (kept as ``reference_*`` in the wrapper
modules): round-trips, subset determinization, Hopcroft vs Moore
minimization, the canonical DFA normal form, products, batched membership
and the union-find RPNI fold.  The generators are randomized (random
regular expressions and word samples over a small alphabet), so this suite
is the safety net the one-kernel refactor rests on.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import Alphabet, language_equivalent, prefix_tree_acceptor
from repro.automata.determinize import determinize, reference_determinize
from repro.automata.dfa import DFA
from repro.automata.kernel import (
    MergeFold,
    TableDFA,
    fold_generalize,
    intersection_nonempty,
    language_included_tables,
    product_table,
    pta_table,
)
from repro.automata.merging import deterministic_merge, reference_deterministic_merge
from repro.automata.minimize import (
    canonical_dfa,
    minimize,
    reference_canonical_dfa,
    reference_minimize,
)
from repro.automata.operations import intersection_empty, language_included
from repro.errors import LearningError
from repro.learning.generalize import generalize_pta, reference_generalize_pta
from repro.learning.rpni import rpni
from repro.regex import regex_to_dfa, regex_to_nfa
from repro.regex.ast import Epsilon, Regex, Star, Symbol, concat, disjunction

ALPHABET = Alphabet(["a", "b", "c"])
SYMBOLS = list(ALPHABET.symbols)

words = st.lists(st.sampled_from(SYMBOLS), max_size=5).map(tuple)
word_sets = st.lists(words, min_size=1, max_size=8)


def regexes(max_depth: int = 3) -> st.SearchStrategy[Regex]:
    """Random small regular expressions over {a, b, c}."""
    leaves = st.one_of(
        st.sampled_from(SYMBOLS).map(Symbol),
        st.just(Epsilon()),
    )

    def extend(children: st.SearchStrategy[Regex]) -> st.SearchStrategy[Regex]:
        return st.one_of(
            st.tuples(children, children).map(lambda pair: concat(*pair)),
            st.tuples(children, children).map(lambda pair: disjunction(*pair)),
            children.map(lambda inner: Star(inner) if not isinstance(inner, Epsilon) else inner),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def assert_same_dfa(left: DFA, right: DFA) -> None:
    """Byte-level structural identity: states, finals and transitions."""
    assert left.alphabet == right.alphabet
    assert left.initial == right.initial
    assert left.states == right.states
    assert left.final_states == right.final_states
    assert set(left.transitions()) == set(right.transitions())


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(regex=regexes())
    def test_dfa_table_round_trip_is_exact(self, regex):
        dfa = regex_to_dfa(regex, ALPHABET)
        table, order = TableDFA.from_dfa(dfa)
        assert_same_dfa(table.to_dfa(states=order), dfa)

    @settings(max_examples=50, deadline=None)
    @given(regex=regexes(), word=words)
    def test_table_membership_matches_dfa(self, regex, word):
        dfa = regex_to_dfa(regex, ALPHABET)
        table, _ = TableDFA.from_dfa(dfa)
        assert table.accepts(word) == dfa.accepts(word)

    @settings(max_examples=30, deadline=None)
    @given(regex=regexes(), sample=word_sets)
    def test_batched_membership_matches_per_word(self, regex, sample):
        dfa = regex_to_dfa(regex, ALPHABET)
        table, _ = TableDFA.from_dfa(dfa)
        assert table.accepts_many(sample) == [dfa.accepts(word) for word in sample]

    @settings(max_examples=30, deadline=None)
    @given(regex=regexes())
    def test_emptiness_and_shortest_word_match(self, regex):
        dfa = regex_to_dfa(regex, ALPHABET)
        table, _ = TableDFA.from_dfa(dfa)
        assert table.is_empty_language() == dfa.is_empty()
        assert table.shortest_word() == dfa.shortest_accepted_word()


class TestDeterminizeParity:
    @settings(max_examples=50, deadline=None)
    @given(regex=regexes())
    def test_subset_construction_matches_reference(self, regex):
        nfa = regex_to_nfa(regex, ALPHABET)
        assert_same_dfa(determinize(nfa), reference_determinize(nfa))


class TestMinimizeParity:
    @settings(max_examples=50, deadline=None)
    @given(regex=regexes())
    def test_hopcroft_agrees_with_moore(self, regex):
        dfa = regex_to_dfa(regex, ALPHABET)
        hopcroft = minimize(dfa)
        moore = reference_minimize(dfa)
        assert len(hopcroft) == len(moore)
        assert language_equivalent(hopcroft, moore)

    @settings(max_examples=50, deadline=None)
    @given(regex=regexes())
    def test_canonical_dfa_matches_prerefactor_pipeline(self, regex):
        nfa = regex_to_nfa(regex, ALPHABET)
        assert_same_dfa(canonical_dfa(nfa), reference_canonical_dfa(nfa))


class TestProducts:
    @settings(max_examples=40, deadline=None)
    @given(left=regexes(), right=regexes(), word=words)
    def test_product_table_is_the_intersection(self, left, right, word):
        left_dfa = regex_to_dfa(left, ALPHABET)
        right_dfa = regex_to_dfa(right, ALPHABET)
        left_table, _ = TableDFA.from_dfa(left_dfa)
        right_table, _ = TableDFA.from_dfa(right_dfa)
        product, _ = product_table(left_table, right_table)
        assert product.accepts(word) == (left_dfa.accepts(word) and right_dfa.accepts(word))

    @settings(max_examples=40, deadline=None)
    @given(left=regexes(), right=regexes())
    def test_intersection_emptiness_matches_product(self, left, right):
        left_dfa = regex_to_dfa(left, ALPHABET)
        right_dfa = regex_to_dfa(right, ALPHABET)
        left_table, _ = TableDFA.from_dfa(left_dfa)
        right_table, _ = TableDFA.from_dfa(right_dfa)
        product, _ = product_table(left_table, right_table)
        assert intersection_nonempty(left_table, right_table) == (
            not product.is_empty_language()
        )
        # The operations-layer DFA fast path agrees too.
        assert intersection_empty(left_dfa, right_dfa) == product.is_empty_language()

    @settings(max_examples=40, deadline=None)
    @given(left=regexes(), right=regexes())
    def test_inclusion_matches_complement_route(self, left, right):
        left_dfa = regex_to_dfa(left, ALPHABET)
        right_dfa = regex_to_dfa(right, ALPHABET)
        left_table, _ = TableDFA.from_dfa(left_dfa)
        right_table, _ = TableDFA.from_dfa(right_dfa)
        via_kernel = language_included_tables(left_table, right_table)
        # Classic exponential route: L(left) & complement(L(right)) empty.
        via_complement = intersection_empty(left_dfa, right_dfa.complement())
        assert via_kernel == via_complement
        assert language_included(left_dfa, right_dfa) == via_kernel


class TestMergeFold:
    def _random_pta(self, rng: random.Random):
        sample = [
            tuple(rng.choice(SYMBOLS) for _ in range(rng.randrange(0, 5)))
            for _ in range(rng.randrange(1, 7))
        ]
        return prefix_tree_acceptor(ALPHABET, sample), sample

    @pytest.mark.parametrize("seed", range(25))
    def test_fold_matches_reference_merge(self, seed):
        rng = random.Random(seed)
        pta, _ = self._random_pta(rng)
        states = sorted(pta.states, key=ALPHABET.word_key)
        keep, remove = rng.sample(states, 2) if len(states) > 1 else (states[0], states[0])
        merged = deterministic_merge(pta, keep, remove)
        reference = reference_deterministic_merge(pta, keep, remove)
        # The merged partition is unique; representatives may differ, so
        # compare class count and language, then the canonical normal form.
        assert len(merged) == len(reference)
        assert language_equivalent(merged, reference)
        assert_same_dfa(canonical_dfa(merged), canonical_dfa(reference))

    @pytest.mark.parametrize("seed", range(15))
    def test_rollback_restores_the_fold_exactly(self, seed):
        rng = random.Random(seed)
        pta, _ = self._random_pta(rng)
        table, _ = TableDFA.from_dfa(pta)
        fold = MergeFold(table)
        before = fold.to_table().fingerprint()
        states = fold.roots()
        mark = fold.mark()
        if len(states) > 1:
            keep, remove = rng.sample(states, 2)
            fold.merge(keep, remove)
        fold.rollback(mark)
        assert fold.to_table().fingerprint() == before

    def test_deterministic_merge_keeps_keep_as_representative(self):
        # The public wrapper must preserve the legacy guarantee that the
        # merged class is named `keep`, even when `remove` is canonically
        # smaller (the fold's internal min-root rule would pick it).
        pta = prefix_tree_acceptor(ALPHABET, [("a", "b"), ("b",)])
        merged = deterministic_merge(pta, ("a",), ())
        assert ("a",) in merged.states
        assert () not in merged.states
        assert merged.initial == ("a",)

    def test_speculative_merge_then_commit(self):
        pta = prefix_tree_acceptor(ALPHABET, [("a", "b", "c"), ("c",)])
        table, labels = TableDFA.from_dfa(pta)
        ids = {label: index for index, label in enumerate(labels)}
        fold = MergeFold(table)
        # Section 3.2's worked merge: eps with ab gives (a.b)*.c.
        fold.merge(ids[()], ids[("a", "b")])
        fold.commit()
        assert fold.accepts(("c",))
        assert fold.accepts(("a", "b", "a", "b", "c"))
        assert not fold.accepts(("b", "c"))


def oracle_generalize(pta: DFA, alphabet: Alphabet, violates) -> DFA:
    """Independent slow oracle: canonical red-blue loop on dicts and sets.

    Classes are tracked in a plain union-find keyed by the canonical index
    of the PTA's prefix states, with the smallest member as representative
    (the access-word order classical RPNI prescribes); every candidate
    merge builds a fresh quotient DFA for the guard.  None of the kernel's
    machinery is used, so agreement with :func:`fold_generalize` pins the
    whole in-place merge/undo path.

    (The *legacy* loop is not a usable oracle here: its
    ``deterministic_merge`` picked class representatives in Python set
    iteration order, so on adversarial samples its merge order -- and hence
    its result -- silently depended on the hash seed.)
    """
    order = sorted(pta.states, key=alphabet.word_key)
    ids = {state: index for index, state in enumerate(order)}

    def find(parent, x):
        while parent[x] != x:
            x = parent[x]
        return x

    def fold(parent, left, right):
        parent = dict(parent)
        pending = [(left, right)]
        while pending:
            x, y = pending.pop()
            rx, ry = find(parent, x), find(parent, y)
            if rx == ry:
                continue
            if ry < rx:
                rx, ry = ry, rx
            parent[ry] = rx
            targets: dict[str, int] = {}
            for index in range(len(order)):
                if find(parent, index) != rx:
                    continue
                for symbol, target in pta.outgoing(order[index]):
                    target_root = find(parent, ids[target])
                    previous = targets.get(symbol)
                    if previous is None:
                        targets[symbol] = target_root
                    elif find(parent, previous) != target_root:
                        pending.append((previous, target_root))
        return parent

    def quotient(parent):
        representative = {
            state: order[find(parent, ids[state])] for state in pta.states
        }
        dfa = DFA(
            pta.alphabet,
            initial=representative[pta.initial],
            states=set(representative.values()),
            finals={representative[s] for s in pta.final_states},
        )
        for source, symbol, target in pta.transitions():
            if dfa.delta(representative[source], symbol) is None:
                dfa.add_transition(
                    representative[source], symbol, representative[target]
                )
        return dfa

    parent = {index: index for index in range(len(order))}
    red = {0}
    while True:
        quotient_dfa = quotient(parent)
        red_roots = sorted({find(parent, r) for r in red})
        blue = sorted(
            {ids[t] for r in red_roots for _, t in quotient_dfa.outgoing(order[r])}
            - set(red_roots)
        )
        if not blue:
            return quotient_dfa
        candidate = blue[0]
        merged = False
        for red_root in red_roots:
            merged_parent = fold(parent, red_root, candidate)
            if violates(quotient(merged_parent)):
                continue
            parent = merged_parent
            red = {find(parent, r) for r in red_roots}
            merged = True
            break
        if not merged:
            red = set(red_roots) | {candidate}


def _random_word_sample(rng: random.Random):
    positives = [
        tuple(rng.choice(SYMBOLS) for _ in range(rng.randrange(0, 5)))
        for _ in range(rng.randrange(1, 6))
    ]
    positive_set = set(positives)
    negatives = [
        word
        for word in (
            tuple(rng.choice(SYMBOLS) for _ in range(rng.randrange(0, 5)))
            for _ in range(rng.randrange(0, 8))
        )
        if word not in positive_set
    ]
    return positives, negatives


class TestGeneralizationParity:
    @pytest.mark.parametrize("seed", range(30))
    def test_fold_generalize_matches_canonical_oracle(self, seed):
        rng = random.Random(seed)
        positives, negatives = _random_word_sample(rng)

        def word_guard(candidate):
            return any(candidate.accepts(word) for word in negatives)

        pta = prefix_tree_acceptor(ALPHABET, positives)
        kernel_result = generalize_pta(pta, word_guard, alphabet=ALPHABET)
        oracle_result = oracle_generalize(pta, ALPHABET, word_guard)
        assert_same_dfa(canonical_dfa(kernel_result), canonical_dfa(oracle_result))

    @pytest.mark.parametrize("seed", range(20))
    def test_generalization_results_are_sample_consistent(self, seed):
        # The legacy loop is kept as reference_generalize_pta; both it and
        # the kernel loop must produce sample-consistent hypotheses (their
        # merge orders may differ -- see the oracle's docstring).
        rng = random.Random(500 + seed)
        positives, negatives = _random_word_sample(rng)

        def word_guard(candidate):
            return any(candidate.accepts(word) for word in negatives)

        pta = prefix_tree_acceptor(ALPHABET, positives)
        for result in (
            generalize_pta(pta, word_guard, alphabet=ALPHABET),
            reference_generalize_pta(pta, word_guard, alphabet=ALPHABET),
        ):
            for word in positives:
                assert result.accepts(word)
            for word in negatives:
                assert not result.accepts(word)

    @pytest.mark.parametrize("seed", range(20))
    def test_rpni_matches_canonical_oracle_pipeline(self, seed):
        rng = random.Random(1000 + seed)
        positives, negatives = _random_word_sample(rng)

        def word_guard(candidate):
            return any(candidate.accepts(word) for word in negatives)

        learned = rpni(ALPHABET, positives, negatives)
        pta = prefix_tree_acceptor(ALPHABET, positives)
        oracle = canonical_dfa(oracle_generalize(pta, ALPHABET, word_guard))
        assert_same_dfa(learned, oracle)

    def test_fold_generalize_guard_violation_raises(self):
        table = pta_table(ALPHABET, [("a",)])
        with pytest.raises(LearningError):
            fold_generalize(table, lambda fold: True)

    def test_fold_generalize_max_merges_cap(self):
        table = pta_table(ALPHABET, [("a", "a", "a", "a")])
        capped = fold_generalize(table, lambda fold: False, max_merges=0)
        uncapped = fold_generalize(table, lambda fold: False)
        assert len(capped.roots()) == table.n > len(uncapped.roots())


class TestPtaTable:
    def test_states_numbered_in_canonical_order(self):
        table, prefixes = pta_table(
            ALPHABET, [("a", "b", "c"), ("c",)], with_prefixes=True
        )
        assert prefixes == [(), ("a",), ("c",), ("a", "b"), ("a", "b", "c")]
        assert table.n == 5
        assert sorted(table.iter_finals()) == [2, 4]

    def test_table_pta_equals_wrapper_pta(self):
        sample = [("a", "b"), ("a",), ("c", "c")]
        table, prefixes = pta_table(ALPHABET, sample, with_prefixes=True)
        assert_same_dfa(table.to_dfa(states=prefixes), prefix_tree_acceptor(ALPHABET, sample))
