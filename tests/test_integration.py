"""End-to-end integration tests replaying the paper's worked examples."""


from repro import (
    GraphDB,
    PathQuery,
    QueryOracle,
    Sample,
    learn_path_query,
    learn_with_dynamic_k,
    make_strategy,
    run_interactive_learning,
)
from repro.datasets import example_graph_g0, geo_graph, workflow_graph
from repro.datasets.workflows import workflow_goal_query
from repro.evaluation import f1_score


class TestSection32WorkedExample:
    """The full Section 3.2 walk-through on the graph G0."""

    def test_full_pipeline(self):
        graph = example_graph_g0()
        sample = Sample({"v1", "v3"}, {"v2", "v7"})
        result = learn_path_query(graph, sample, k=3)

        # SCP selection (lines 1-2).
        assert result.scps == {"v1": ("a", "b", "c"), "v3": ("c",)}
        # PTA (line 3, Figure 6a) and generalization (lines 4-5, Figure 6b).
        assert result.pta_states == 5
        assert result.generalized_states == 3
        # Final check and output (lines 6-7).
        goal = PathQuery.parse("(a.b)*.c", graph.alphabet)
        assert result.query.equivalent_to(goal)
        assert f1_score(result.query, goal, graph) == 1.0


class TestIntroductionGeoExample:
    """The introduction's geographical database scenario."""

    def test_static_labels_from_the_introduction(self):
        geo = geo_graph()
        sample = Sample({"N2", "N6"}, {"N5"})
        result = learn_with_dynamic_k(geo, sample)
        assert not result.is_null
        # Consistency with the user's labels is guaranteed; the exact goal is
        # not (the three labels underdetermine it).
        assert result.query.is_consistent_with(geo, sample.positives, sample.negatives)

    def test_interactive_session_recovers_the_goal_selection(self):
        geo = geo_graph()
        goal = PathQuery.parse("(tram+bus)*.cinema", geo.alphabet)
        outcome = run_interactive_learning(
            geo, QueryOracle(goal), make_strategy("kS", seed=1), max_interactions=12
        )
        assert outcome.halted_by == "goal"
        assert outcome.query.evaluate(geo) == goal.evaluate(geo)
        # Far fewer labels than the size of the graph.
        assert outcome.interaction_count < geo.node_count()


class TestWorkflowMiningExample:
    """The introduction's scientific-workflow mining scenario."""

    def test_learning_the_workflow_pattern(self):
        graph = workflow_graph(matching_runs=5, other_runs=10, seed=2)
        goal = PathQuery.parse(workflow_goal_query(), graph.alphabet)
        selected = goal.evaluate(graph)
        positives = set(list(sorted(selected, key=repr))[:3])
        negatives = {
            node
            for node in sorted(graph.nodes - selected, key=repr)
            if str(node).endswith("_s0")
        }
        result = learn_with_dynamic_k(graph, Sample(positives, negatives), k_max=6)
        assert not result.is_null
        # The learned query selects every workflow run that matches the
        # pattern and none of the runs that do not.
        learned_starts = {
            node for node in result.query.evaluate(graph) if str(node).endswith("_s0")
        }
        goal_starts = {node for node in selected if str(node).endswith("_s0")}
        assert learned_starts == goal_starts


class TestPublicAPISurface:
    """The top-level package re-exports the documented entry points."""

    def test_quickstart_snippet_runs(self):
        graph = GraphDB()
        graph.add_edge("N2", "bus", "N1")
        graph.add_edge("N1", "tram", "N4")
        graph.add_edge("N4", "cinema", "C1")
        sample = Sample(positives={"N2"}, negatives={"C1"})
        result = learn_path_query(graph, sample, k=3)
        assert result.query is not None
        assert result.query.selects(graph, "N2")
        assert not result.query.selects(graph, "C1")

    def test_version_is_exposed(self):
        import repro

        assert repro.__version__
