"""The Workspace facade: typed configs, engine ownership, experiment wiring."""

from __future__ import annotations

import pytest

from repro.api import (
    EngineConfig,
    ExperimentConfig,
    InteractiveConfig,
    LearnerConfig,
    Workspace,
)
from repro.datasets import geo_graph
from repro.engine import QueryEngine, get_default_engine
from repro.errors import ConfigError
from repro.learning import BinarySample, Sample


def test_workspace_owns_a_private_engine():
    ws = Workspace(geo_graph())
    assert isinstance(ws.engine, QueryEngine)
    assert ws.engine is not get_default_engine()


def test_engine_config_sizes_the_engine():
    ws = Workspace(geo_graph(), engine_config=EngineConfig(plan_cache_size=7, result_cache_size=9))
    assert ws.engine.plan_cache.capacity == 7
    assert ws.engine.result_cache.capacity == 9
    with pytest.raises(ConfigError):
        Workspace(geo_graph(), engine=QueryEngine(), engine_config=EngineConfig())


def test_from_file_roundtrip(tmp_path):
    ws = Workspace.from_figure("geo")
    path = tmp_path / "geo.tsv"
    ws.save(path)
    reloaded = Workspace.from_file(path)
    assert reloaded.graph.nodes == ws.graph.nodes
    assert reloaded.graph.edges == ws.graph.edges
    assert reloaded.name == "geo"


def test_from_figure_unknown_name():
    with pytest.raises(ConfigError):
        Workspace.from_figure("nope")


def test_query_uses_workspace_engine_stats():
    ws = Workspace.from_figure("geo")
    before = ws.stats()["evaluations"]
    ws.query("(tram+bus)*.cinema")
    ws.query("(tram+bus)*.cinema")  # result-cache hit
    after = ws.stats()
    assert after["evaluations"] == before + 1
    assert after["result_cache_hits"] >= 1
    assert after["graph_nodes"] == 10


def test_learn_matches_legacy_shim():
    from repro.learning import learn_with_dynamic_k

    graph = geo_graph()
    sample = Sample(positives={"N2", "N6"}, negatives={"N5"})
    ws = Workspace(graph)
    modern = ws.learn(sample)
    legacy = learn_with_dynamic_k(graph, sample)
    assert modern.query == legacy.query
    assert modern.k == legacy.k


def test_learn_semantics_dispatch_and_mismatch():
    ws = Workspace.from_figure("geo")
    binary = ws.learn(BinarySample(positives={("N2", "N5")}))
    assert type(binary).__name__ == "BinaryLearnerResult"
    with pytest.raises(ConfigError):
        ws.learn(Sample(positives={"N2"}), LearnerConfig(semantics="binary"))
    with pytest.raises(ConfigError):
        ws.learn("not a sample")


def test_query_oracle_labels_track_graph_version():
    from repro import PathQuery, QueryOracle

    ws = Workspace.from_figure("geo")
    goal = PathQuery.parse("(tram+bus)*.cinema", ws.graph.alphabet)
    oracle = QueryOracle(goal, engine=ws.engine)
    assert oracle.label(ws.graph, "N5") == "-"
    ws.graph.add_edge("N5", "cinema", "C9")  # N5 now reaches a cinema
    assert oracle.label(ws.graph, "N5") == "+"


def test_experiment_name_override_and_default():
    ws = Workspace.from_figure("geo")
    named = ws.run_experiment(
        ExperimentConfig(goal="cinema", name="workspace", labeled_fractions=(0.3,))
    )
    assert named.workload_name == "workspace"  # even a collidable name sticks
    unnamed = ws.run_experiment(ExperimentConfig(goal="cinema", labeled_fractions=(0.3,)))
    assert unnamed.workload_name == "geo"


def test_learn_dynamic_k_applies_to_binary_semantics():
    ws = Workspace.from_figure("geo")
    # N2 -> C1 needs a length-3 path (bus.tram.cinema); k=1 alone abstains.
    sample = BinarySample(positives={("N2", "C1")})
    fixed = ws.learn(sample, LearnerConfig(semantics="binary", k=1, dynamic_k=False))
    assert fixed.is_null
    grown = ws.learn(sample, LearnerConfig(semantics="binary", k=1, k_max=3))
    assert grown.ok
    assert grown.k == 3


def test_dynamic_k_elapsed_covers_all_attempts(monkeypatch):
    from dataclasses import replace

    import repro.learning.learner as learner_mod

    real = learner_mod.learn_path_query
    calls = []

    def spy(graph, sample, *, k, engine=None):
        calls.append(k)
        return replace(real(graph, sample, k=k, engine=engine), elapsed=1.0)

    monkeypatch.setattr(learner_mod, "learn_path_query", spy)
    sample = Sample(positives={"N2", "N6"}, negatives={"N5"})
    result = learner_mod.learn_with_dynamic_k(geo_graph(), sample, k_start=0, k_max=4)
    assert len(calls) > 1  # k had to grow
    assert result.elapsed == float(len(calls))  # whole procedure, not last try


def test_learn_fixed_k_and_baseline():
    ws = Workspace.from_figure("geo")
    sample = Sample(positives={"N2", "N6"}, negatives={"N5"})
    fixed = ws.learn(sample, LearnerConfig(k=2, dynamic_k=False))
    assert fixed.k == 2
    baseline = ws.learn(sample, LearnerConfig(generalize=False))
    # The baseline never uses the Kleene star: plain disjunction of SCPs.
    assert baseline.hypothesis is not None
    assert "*" not in baseline.hypothesis.expression


def test_learn_interactive_reaches_goal():
    ws = Workspace.from_figure("geo")
    result = ws.learn_interactive(
        "(tram+bus)*.cinema", InteractiveConfig(max_interactions=30, seed=1)
    )
    assert result.halted_by == "goal"
    goal_nodes = ws.query("(tram+bus)*.cinema").selected
    assert result.query.evaluate(ws.graph, engine=ws.engine) == goal_nodes


def test_run_experiment_static_and_interactive():
    ws = Workspace.from_figure("geo")
    static = ws.run_experiment(
        ExperimentConfig(goal="(tram+bus)*.cinema", labeled_fractions=(0.3, 0.6))
    )
    assert static.workload_name == "geo"
    assert len(static.points) == 2
    interactive = ws.run_experiment(
        ExperimentConfig(goal="(tram+bus)*.cinema", scenario="interactive", max_interactions=30)
    )
    assert interactive.final_f1 == 1.0
    with pytest.raises(ConfigError):
        ws.run_experiment(ExperimentConfig())  # goal missing
    with pytest.raises(ConfigError):
        ws.run_experiment("static")  # not a config


def test_experiment_runs_on_workspace_engine_only():
    """The bugfix: experiments must not fall back to the default engine."""
    ws = Workspace.from_figure("geo")
    default = get_default_engine()
    default_before = default.stats_snapshot()["evaluations"]
    ws.run_experiment(
        ExperimentConfig(goal="(tram+bus)*.cinema", labeled_fractions=(0.3,))
    )
    ws.run_experiment(
        ExperimentConfig(
            goal="(tram+bus)*.cinema", scenario="interactive", max_interactions=10
        )
    )
    assert ws.stats()["evaluations"] > 0
    assert default.stats_snapshot()["evaluations"] == default_before


def test_config_validation_and_roundtrip():
    with pytest.raises(ConfigError):
        LearnerConfig(k=-1)
    with pytest.raises(ConfigError):
        LearnerConfig(k=5, k_max=2)
    with pytest.raises(ConfigError):
        LearnerConfig(semantics="ternary")
    with pytest.raises(ConfigError):
        LearnerConfig(semantics="binary", generalize=False)
    with pytest.raises(ConfigError):
        InteractiveConfig(strategy="greedy")
    with pytest.raises(ConfigError):
        InteractiveConfig(target_f1=0.0)
    with pytest.raises(ConfigError):
        ExperimentConfig(goal="a", labeled_fractions=(0.0,))
    with pytest.raises(ConfigError):
        ExperimentConfig(goal="a", scenario="batch")
    with pytest.raises(ConfigError):
        EngineConfig(plan_cache_size=0)

    config = ExperimentConfig(goal="a.b", labeled_fractions=(0.1, 0.2), strategy="kS")
    rebuilt = ExperimentConfig.from_dict(config.to_dict())
    assert rebuilt == config
    assert rebuilt.labeled_fractions == (0.1, 0.2)
    with pytest.raises(ConfigError):
        ExperimentConfig.from_dict({"goal": "a", "no_such_field": 1})
    assert config.replace(seed=3).seed == 3
