"""The planner's public surface: config knobs, legacy shims, Workspace.explain."""

from __future__ import annotations

import pytest

from repro.api import (
    PLANNERS,
    EngineConfig,
    ExplainResult,
    ServiceConfig,
    Workspace,
)
from repro.errors import ConfigError, QueryError


class TestEngineConfigKnobs:
    def test_defaults_and_validation(self):
        config = EngineConfig()
        assert config.planner == "auto"
        assert config.max_rewrite_passes == 3
        assert config.cache_budget_bytes is None
        with pytest.raises(ConfigError):
            EngineConfig(planner="aggressive")
        with pytest.raises(ConfigError):
            EngineConfig(max_rewrite_passes=-1)
        with pytest.raises(ConfigError):
            EngineConfig(cache_budget_bytes=0)

    def test_json_roundtrip_carries_planner_fields(self):
        config = EngineConfig(
            planner="off", max_rewrite_passes=5, cache_budget_bytes=1 << 20
        )
        rebuilt = EngineConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.planner == "off"
        assert rebuilt.cache_budget_bytes == 1 << 20

    def test_build_threads_knobs_into_the_engine(self):
        engine = EngineConfig(
            planner="off", max_rewrite_passes=1, cache_budget_bytes=4096
        ).build()
        assert engine.planner == "off"
        assert engine.max_rewrite_passes == 1
        assert engine.result_cache.budget_bytes == 4096

    def test_planners_constant(self):
        assert PLANNERS == ("auto", "off")


class TestLegacyFieldShims:
    def test_old_names_map_with_a_deprecation_warning(self):
        payload = {"planner_mode": "off", "rewrite_passes": 2, "cache_budget": 512}
        with pytest.warns(DeprecationWarning):
            config = EngineConfig.from_dict(payload)
        assert config.planner == "off"
        assert config.max_rewrite_passes == 2
        assert config.cache_budget_bytes == 512

    def test_old_and_new_name_together_is_an_error(self):
        with pytest.raises(ConfigError):
            EngineConfig.from_dict({"planner_mode": "off", "planner": "auto"})

    def test_unknown_fields_still_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig.from_dict({"no_such_knob": 1})


class TestServiceConfigKnobs:
    def test_planner_fields_flow_into_engine_config(self):
        service = ServiceConfig(planner="off", cache_budget_bytes=2048)
        engine_config = service.engine_config()
        assert engine_config.planner == "off"
        assert engine_config.cache_budget_bytes == 2048
        assert service.share_caches is True

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceConfig(planner="sometimes")
        with pytest.raises(ConfigError):
            ServiceConfig(cache_budget_bytes=-5)
        with pytest.raises(ConfigError):
            ServiceConfig(share_caches="yes")


class TestWorkspaceExplain:
    @pytest.fixture
    def geo(self):
        return Workspace.from_figure("geo")

    def test_explain_reports_a_plan_without_evaluating(self, geo):
        result = geo.explain("(tram+bus)*.cinema")
        assert isinstance(result, ExplainResult)
        assert result.ok
        assert result.semantics == "path"
        assert result.planner["mode"] == "auto"
        assert result.strategy in ("python", "numpy", "sharded")
        assert result.chosen["pair_strategy"] in ("forward", "bidirectional")
        assert result.graph["nodes"] == 10
        assert geo.stats()["evaluations"] == 0

    def test_explain_prunes_labels_the_graph_lacks(self, geo):
        # The geo alphabet is declared by the graph, so force a wider one
        # through a query whose automaton the planner can only keep or shrink.
        result = geo.explain("bus.cinema")
        assert result.planner["parity"] in ("clean", "verified")
        assert result.plan["states"] >= 1

    def test_explain_binary_semantics(self, geo):
        result = geo.explain("bus.cinema", semantics="binary")
        assert result.semantics == "binary"
        strategies = [estimate["strategy"] for estimate in result.estimates]
        assert "python" in strategies

    def test_cache_disposition_flips_after_a_query(self, geo):
        assert geo.explain("bus.cinema").cache["disposition"] == "miss"
        geo.query("bus.cinema")
        assert geo.explain("bus.cinema").cache["disposition"] == "hit"

    def test_explain_rejects_bad_inputs(self, geo):
        with pytest.raises(ConfigError):
            geo.explain("a", semantics="ternary")
        with pytest.raises(QueryError):
            geo.explain(42)

    def test_planner_off_workspace(self):
        ws = Workspace.from_figure("geo", engine_config=EngineConfig(planner="off"))
        result = ws.explain("bus.cinema")
        assert result.planner["mode"] == "off"
        assert result.rewrites == ()
        # Answers are identical either way; only the plan pipeline differs.
        on = Workspace.from_figure("geo")
        assert ws.query("bus.cinema").selected == on.query("bus.cinema").selected
