"""The storage layer through the public API: workspace snapshots and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main
from repro.api.config import StorageConfig
from repro.api.workspace import Workspace
from repro.datasets import geo_graph
from repro.errors import ConfigError, GraphError, StorageError
from repro.graphdb.io import graph_to_edge_list


def run_cli(capsys, *argv: str) -> tuple[int, dict]:
    code = main(list(argv))
    envelope = json.loads(capsys.readouterr().out)
    return code, envelope


@pytest.fixture
def geo():
    return geo_graph()


@pytest.fixture
def geo_snapshot(geo, tmp_path):
    path = tmp_path / "geo.rgz"
    Workspace(geo).save_snapshot(path, meta={"name": "geo"})
    return path


class TestWorkspaceSnapshots:
    def test_save_then_open_round_trip(self, geo, geo_snapshot):
        ws = Workspace.open_snapshot(geo_snapshot)
        assert ws.name == "geo"
        original = Workspace(geo)
        for expr in ("(tram+bus)*.cinema", "restaurant"):
            assert ws.query(expr).selected == original.query(expr).selected

    def test_open_snapshot_does_not_rebuild(self, geo_snapshot):
        ws = Workspace.open_snapshot(geo_snapshot)
        ws.query("(tram+bus)*.cinema")
        stats = ws.stats()
        assert stats["index_builds"] == 0
        assert stats["graph_nodes"] == 10
        assert stats["graph_edges"] == 13

    def test_snapshot_workspace_graph_is_frozen(self, geo_snapshot):
        ws = Workspace.open_snapshot(geo_snapshot)
        with pytest.raises(GraphError, match="frozen"):
            ws.graph.add_edge("a", "l", "b")
        thawed = ws.graph.thaw()
        thawed.add_edge("N1", "bus", "new-stop")
        assert Workspace(thawed).query("bus").count >= 1

    def test_open_snapshot_via_catalog_name(self, geo, tmp_path):
        storage = StorageConfig(catalog_root=str(tmp_path / "cat"))
        storage.catalog().save("geo-city", geo)
        ws = Workspace.open_snapshot("geo-city", storage=storage)
        assert ws.query("(tram+bus)*.cinema").count == 4

    def test_open_snapshot_missing(self, tmp_path):
        with pytest.raises(StorageError):
            Workspace.open_snapshot(
                "never-registered",
                storage=StorageConfig(catalog_root=str(tmp_path / "empty")),
            )

    def test_declared_alphabet_survives_round_trip(self, tmp_path):
        # A fixed alphabet constrains which queries *parse*; it must not be
        # silently narrowed to the labels that happen to have edges.
        from repro.graphdb import GraphDB

        graph = GraphDB(["a", "b", "c"])
        graph.add_edge("x", "a", "y")
        path = tmp_path / "fixed.rgz"
        Workspace(graph).save_snapshot(path)
        ws = Workspace.open_snapshot(path)
        assert sorted(ws.graph.alphabet) == ["a", "b", "c"]
        assert ws.query("b*").count == ws.graph.node_count()  # parses; eps matches all
        thawed = ws.graph.thaw()
        assert thawed.has_fixed_alphabet
        assert sorted(thawed.alphabet) == ["a", "b", "c"]

    def test_missing_file_path_is_not_a_catalog_lookup(self, tmp_path):
        # A typo'd *path* must fail as a missing file, not fall back to the
        # default catalog (and must not create catalog directories).
        import os

        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            with pytest.raises(StorageError, match="does not exist"):
                Workspace.open_snapshot(tmp_path / "typo.rgz")
            with pytest.raises(StorageError, match="does not exist"):
                Workspace.open_snapshot("sub/typo.rgz")
            assert not (tmp_path / ".repro").exists()
        finally:
            os.chdir(cwd)

    def test_save_snapshot_meta_defaults(self, geo, tmp_path):
        from repro.storage import snapshot_info

        ws = Workspace(geo, name="metro")
        info = ws.save_snapshot(tmp_path / "m.rgz")
        assert info["meta"]["workspace"] == "metro"
        assert snapshot_info(tmp_path / "m.rgz")["nodes"] == 10

    def test_learn_on_snapshot_workspace(self, geo, geo_snapshot):
        from repro.learning.sample import Sample

        ws = Workspace.open_snapshot(geo_snapshot)
        result = ws.learn(Sample(positives={"N2", "N6"}, negatives={"N5"}))
        reference = Workspace(geo).learn(Sample(positives={"N2", "N6"}, negatives={"N5"}))
        assert result.ok and reference.ok
        assert result.query.expression == reference.query.expression


class TestStorageConfig:
    def test_round_trip(self):
        config = StorageConfig(verify_checksum=True, use_mmap=False, catalog_root="/tmp/x")
        assert StorageConfig.from_dict(config.to_dict()) == config

    def test_validation(self):
        with pytest.raises(ConfigError):
            StorageConfig(verify_checksum="yes")
        with pytest.raises(ConfigError):
            StorageConfig(use_mmap=1)
        with pytest.raises(ConfigError):
            StorageConfig(catalog_root=7)

    def test_engine_config_refresh_fields(self):
        from repro.api.config import EngineConfig

        engine = EngineConfig(incremental_refresh=False, refresh_ratio=0.5).build()
        assert engine.incremental_refresh is False
        assert engine.refresh_ratio == 0.5
        with pytest.raises(ConfigError):
            EngineConfig(refresh_ratio=-1)


class TestCli:
    def test_ingest_and_query_snapshot(self, capsys, geo, tmp_path):
        source = tmp_path / "geo.tsv"
        source.write_text(graph_to_edge_list(geo), encoding="utf-8")
        snap = tmp_path / "geo.rgz"
        code, envelope = run_cli(capsys, "ingest", "--input", str(source), "--output", str(snap))
        assert code == 0
        assert envelope["result"]["report"]["edges_added"] == 13
        assert envelope["result"]["snapshot"]["nodes"] == 10

        code, envelope = run_cli(
            capsys, "query", "--snapshot", str(snap), "--expr", "(tram+bus)*.cinema"
        )
        assert code == 0
        assert sorted(envelope["result"]["selected"]) == ["N1", "N2", "N4", "N6"]
        assert envelope["engine_stats"]["index_builds"] == 0

    def test_ingest_into_catalog_and_info(self, capsys, geo, tmp_path):
        source = tmp_path / "geo.tsv"
        source.write_text(graph_to_edge_list(geo), encoding="utf-8")
        catalog_dir = tmp_path / "cat"
        code, envelope = run_cli(
            capsys,
            "ingest",
            "--input",
            str(source),
            "--catalog",
            str(catalog_dir),
            "--name",
            "geo",
        )
        assert code == 0
        assert envelope["result"]["catalog"]["name"] == "geo"

        code, envelope = run_cli(capsys, "info", "--catalog", str(catalog_dir))
        assert code == 0
        assert "geo" in envelope["result"]["catalog"]["snapshots"]

        code, envelope = run_cli(capsys, "info", "--catalog", str(catalog_dir), "--name", "geo")
        assert code == 0
        assert envelope["result"]["snapshot"]["edges"] == 13

    def test_info_on_snapshot_file(self, capsys, geo_snapshot):
        code, envelope = run_cli(capsys, "info", "--snapshot", str(geo_snapshot))
        assert code == 0
        info = envelope["result"]["snapshot"]
        assert info["nodes"] == 10 and info["format_version"] == 1

    def test_ingest_requires_destination(self, capsys, tmp_path):
        source = tmp_path / "x.tsv"
        source.write_text("a\tl\tb\n")
        code, envelope = run_cli(capsys, "ingest", "--input", str(source))
        assert code == 1
        assert "output" in envelope["error"]["message"]

    def test_ingest_skip_policy(self, capsys, tmp_path):
        source = tmp_path / "x.tsv"
        source.write_text("a\tl\tb\nbroken-line\nc\tl\td\n")
        code, envelope = run_cli(
            capsys,
            "ingest",
            "--input",
            str(source),
            "--output",
            str(tmp_path / "x.rgz"),
            "--on-error",
            "skip",
        )
        assert code == 0
        assert envelope["result"]["report"]["malformed_lines"] == 1
        assert envelope["result"]["report"]["edges_added"] == 2

    def test_corrupt_checkpoint_file_yields_error_envelope(self, capsys, tmp_path):
        # Regression: an unparseable --checkpoint file used to escape as a
        # raw JSONDecodeError traceback instead of a JSON error envelope.
        checkpoint = tmp_path / "ck.json"
        checkpoint.write_text('{"broken')
        code, envelope = run_cli(
            capsys,
            "interactive",
            "--figure",
            "geo",
            "--goal",
            "(tram+bus)*.cinema",
            "--checkpoint",
            str(checkpoint),
        )
        assert code == 1
        assert envelope["error"]["type"] == "SerializationError"

    def test_info_on_garbage_file(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.rgz"
        bogus.write_bytes(b"definitely not a snapshot")
        code, envelope = run_cli(capsys, "info", "--snapshot", str(bogus))
        assert code == 1
        assert envelope["error"]["type"] == "StorageError"
