"""Snapshot of the public surface: ``repro.__all__`` must not drift silently.

If you intentionally add or remove a public name, update EXPECTED_ALL here in
the same change -- that is the point of the test.
"""

from __future__ import annotations

import repro

EXPECTED_ALL = frozenset(
    {
        "__version__",
        # errors
        "ReproError",
        "AlphabetError",
        "AutomatonError",
        "RegexSyntaxError",
        "GraphError",
        "QueryError",
        "SampleError",
        "LearningError",
        "InteractionError",
        "ConfigError",
        "SerializationError",
        "StorageError",
        "TelemetryError",
        # core types
        "Alphabet",
        "GraphDB",
        "QueryEngine",
        "EngineStats",
        "get_default_engine",
        "PathQuery",
        "BinaryPathQuery",
        "NaryPathQuery",
        "Sample",
        "BinarySample",
        "NarySample",
        # public API facade
        "Workspace",
        "EngineConfig",
        "TelemetryConfig",
        "LearnerConfig",
        "InteractiveConfig",
        "ExperimentConfig",
        "StorageConfig",
        "Result",
        "QueryResult",
        "result_from_dict",
        "result_from_json",
        "result_to_json",
        # storage layer
        "DatasetCatalog",
        "GraphView",
        "MappedGraphIndex",
        "open_snapshot",
        "write_snapshot",
        # telemetry
        "Telemetry",
        "MetricsRegistry",
        # learning entry points (legacy shims)
        "learn_path_query",
        "learn_with_dynamic_k",
        "learn_binary_query",
        "learn_nary_query",
        # interactive entry points (legacy shims)
        "QueryOracle",
        "make_strategy",
        "InteractiveSession",
        "InteractiveCheckpoint",
        "SessionState",
        "run_interactive_learning",
        # evaluation
        "f1_score",
        "score_query",
        "run_interactive_grid",
    }
)


def test_public_api_snapshot():
    assert set(repro.__all__) == EXPECTED_ALL


def test_all_names_are_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists {name!r} but it is not importable"


def test_no_duplicates_in_all():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_engine_stats_reexport():
    from repro.engine.engine import EngineStats

    assert repro.EngineStats is EngineStats


def test_api_subpackage_all_importable():
    import repro.api

    for name in repro.api.__all__:
        assert hasattr(repro.api, name)
