"""The ``python -m repro`` CLI: envelopes, subcommands, error paths."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.cli import main
from repro.api.result import result_from_dict
from repro.datasets import geo_graph
from repro.graphdb.io import save_graph


def run_cli(capsys, *argv: str) -> tuple[int, dict]:
    code = main(list(argv))
    envelope = json.loads(capsys.readouterr().out)
    return code, envelope


def test_learn_on_figure_graph(capsys):
    code, envelope = run_cli(
        capsys, "learn", "--figure", "geo", "--positives", "N2,N6", "--negatives", "N5"
    )
    assert code == 0
    assert envelope["ok"] is True
    assert envelope["command"] == "learn"
    assert envelope["elapsed"] > 0
    assert envelope["result"]["type"] == "LearnerResult"
    assert envelope["engine_stats"]["graph_nodes"] == 10
    # The envelope's result payload feeds straight back into the library.
    rebuilt = result_from_dict(envelope["result"])
    assert rebuilt.ok
    assert rebuilt.query is not None


def test_learn_binary_semantics(capsys):
    code, envelope = run_cli(
        capsys,
        "learn",
        "--figure",
        "geo",
        "--semantics",
        "binary",
        "--positives",
        "N2:N5",
        "--negatives",
        "N4:N5",
    )
    assert code == 0
    assert envelope["result"]["type"] == "BinaryLearnerResult"


def test_learn_rejects_malformed_binary_pairs(capsys):
    code, envelope = run_cli(
        capsys, "learn", "--figure", "geo", "--semantics", "binary", "--positives", "N2"
    )
    assert code == 1
    assert envelope["ok"] is False
    assert envelope["error"]["type"] == "ConfigError"


def test_query_subcommand(capsys):
    code, envelope = run_cli(
        capsys, "query", "--figure", "geo", "--expr", "(tram+bus)*.cinema", "--indent", "0"
    )
    assert code == 0
    assert envelope["result"]["selected"] == ["N1", "N2", "N4", "N6"]


def test_explain_subcommand(capsys):
    code, envelope = run_cli(
        capsys, "explain", "--figure", "geo", "--expr", "(tram+bus)*.cinema"
    )
    assert code == 0
    result = envelope["result"]
    assert result["type"] == "ExplainResult"
    assert result["planner"]["mode"] == "auto"
    assert result["chosen"]["strategy"] in ("python", "numpy", "sharded")
    assert [e["strategy"] for e in result["estimates"]].count("python") == 1
    assert result["cache"]["disposition"] == "miss"
    # Explaining never evaluates: the engine ran no kernel.
    assert envelope["engine_stats"]["evaluations"] == 0
    rebuilt = result_from_dict(result)
    assert rebuilt.ok


def test_explain_planner_off_and_cache_budget(capsys):
    code, envelope = run_cli(
        capsys,
        "explain",
        "--figure",
        "geo",
        "--expr",
        "bus.cinema",
        "--planner",
        "off",
        "--cache-budget",
        "65536",
    )
    assert code == 0
    result = envelope["result"]
    assert result["planner"]["mode"] == "off"
    assert result["planner"]["rewrites"] == []
    assert result["cache"]["result"]["budget_bytes"] == 65536


def test_query_planner_flag_answers_identically(capsys):
    argv = ["query", "--figure", "geo", "--expr", "(tram+bus)*.cinema"]
    _, on = run_cli(capsys, *argv)
    _, off = run_cli(capsys, *argv, "--planner", "off")
    assert on["result"]["selected"] == off["result"]["selected"]


def test_query_on_graph_file(tmp_path, capsys):
    path = tmp_path / "geo.json"
    save_graph(geo_graph(), path)
    code, envelope = run_cli(
        capsys, "query", "--graph", str(path), "--expr", "(tram+bus)*.cinema"
    )
    assert code == 0
    assert envelope["result"]["count"] == 4


def test_missing_graph_file_is_a_json_error(capsys):
    code, envelope = run_cli(capsys, "query", "--graph", "/no/such/file.tsv", "--expr", "a")
    assert code == 1
    assert envelope["ok"] is False


def test_experiment_static(capsys):
    code, envelope = run_cli(
        capsys,
        "experiment",
        "--figure",
        "geo",
        "--goal",
        "(tram+bus)*.cinema",
        "--fractions",
        "0.3,0.6",
    )
    assert code == 0
    assert envelope["result"]["type"] == "StaticExperimentResult"
    assert len(envelope["result"]["points"]) == 2


def test_experiment_interactive(capsys):
    code, envelope = run_cli(
        capsys,
        "experiment",
        "--figure",
        "geo",
        "--goal",
        "(tram+bus)*.cinema",
        "--scenario",
        "interactive",
        "--max-interactions",
        "30",
    )
    assert code == 0
    assert envelope["result"]["type"] == "InteractiveExperimentResult"
    assert envelope["result"]["final_f1"] == 1.0


def test_bench_reports_warm_speedup(capsys):
    code, envelope = run_cli(
        capsys,
        "bench",
        "--figure",
        "geo",
        "--expr",
        "(tram+bus)*.cinema",
        "--repeat",
        "20",
    )
    assert code == 0
    run = envelope["result"]["runs"][0]
    assert run["selected"] == 4
    assert envelope["engine_stats"]["result_cache_hits"] >= 1


def test_bench_repeat_one_reports_null_warm_timing(capsys):
    code, envelope = run_cli(
        capsys, "bench", "--figure", "geo", "--expr", "tram", "--repeat", "1"
    )
    assert code == 0
    assert envelope["result"]["runs"][0]["warm_seconds_per_eval"] is None


def test_abstention_is_not_a_failure(capsys):
    """A legitimate null answer executes fine: ok envelope, exit 0."""
    code, envelope = run_cli(
        capsys, "learn", "--figure", "geo", "--positives", "C1", "--negatives", "N1",
        "--fixed-k", "--k", "1",
    )
    assert code == 0
    assert envelope["ok"] is True
    assert envelope["result"]["ok"] is False  # the learner abstained
    assert "error" not in envelope


def test_syntax_error_envelope(capsys):
    code, envelope = run_cli(capsys, "query", "--figure", "geo", "--expr", "(((")
    assert code == 1
    assert envelope["error"]["type"] == "RegexSyntaxError"


@pytest.mark.parametrize("module_args", [["-m", "repro"]])
def test_python_dash_m_entry_point(module_args):
    """The acceptance path: python -m repro learn on a figure graph."""
    repo_src = Path(__file__).resolve().parents[2] / "src"
    process = subprocess.run(
        [
            sys.executable,
            *module_args,
            "learn",
            "--figure",
            "geo",
            "--positives",
            "N2,N6",
            "--negatives",
            "N5",
            "--indent",
            "0",
        ],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(repo_src)},
    )
    assert process.returncode == 0, process.stderr
    envelope = json.loads(process.stdout)
    assert envelope["ok"] is True
    assert envelope["result"]["type"] == "LearnerResult"


def test_interactive_runs_to_goal(capsys):
    code, envelope = run_cli(
        capsys,
        "interactive",
        "--figure",
        "geo",
        "--goal",
        "(tram+bus)*.cinema",
        "--strategy",
        "kR",
    )
    assert code == 0
    assert envelope["ok"] is True
    assert envelope["command"] == "interactive"
    assert envelope["result"]["type"] == "InteractiveResult"
    assert envelope["result"]["halted_by"] == "goal"
    rebuilt = result_from_dict(envelope["result"])
    assert rebuilt.ok


def test_interactive_checkpoint_resume(capsys, tmp_path):
    checkpoint = tmp_path / "session.json"
    code, first = run_cli(
        capsys,
        "interactive",
        "--figure",
        "geo",
        "--goal",
        "(tram+bus)*.cinema",
        "--max-interactions",
        "2",
        "--checkpoint",
        str(checkpoint),
    )
    assert code == 0
    assert first["result"]["halted_by"] == "max_interactions"
    payload = json.loads(checkpoint.read_text())
    assert payload["type"] == "InteractiveCheckpoint"
    assert len(payload["interactions"]) == 2
    # Second invocation resumes from the file and finishes the session.
    code, second = run_cli(
        capsys,
        "interactive",
        "--figure",
        "geo",
        "--goal",
        "(tram+bus)*.cinema",
        "--checkpoint",
        str(checkpoint),
    )
    assert code == 0
    assert second["result"]["halted_by"] == "goal"
    assert len(second["result"]["interactions"]) >= 2
    # The checkpoint file was updated in place with the finished session.
    updated = json.loads(checkpoint.read_text())
    assert len(updated["interactions"]) >= 2


def test_interactive_legacy_loop_matches_default(capsys):
    def run(*extra):
        code, envelope = run_cli(
            capsys,
            "interactive",
            "--figure",
            "geo",
            "--goal",
            "(tram+bus)*.cinema",
            "--seed",
            "5",
            *extra,
        )
        assert code == 0
        return [
            (i["node"], i["label"]) for i in envelope["result"]["interactions"]
        ]

    assert run() == run("--legacy-loop")
