"""The uniform Result protocol: JSON round-trips for every result type."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ExperimentConfig,
    InteractiveConfig,
    LearnerConfig,
    Result,
    Workspace,
    result_from_dict,
    result_from_json,
    result_to_json,
)
from repro.errors import SerializationError
from repro.learning import BinarySample, NarySample, Sample


@pytest.fixture
def geo_workspace():
    return Workspace.from_figure("geo")


def roundtrip(result):
    """to_dict -> JSON text -> from_dict, through the dispatching loader."""
    payload = json.loads(result_to_json(result))
    rebuilt = result_from_dict(payload)
    assert type(rebuilt) is type(result)
    return rebuilt


def assert_protocol(result):
    assert isinstance(result, Result)
    assert isinstance(result.ok, bool)
    assert isinstance(result.elapsed, float)
    assert isinstance(result.to_dict(), dict)
    assert result.to_dict()["type"] == type(result).__name__


def test_learner_result_roundtrip(geo_workspace):
    result = geo_workspace.learn(Sample(positives={"N2", "N6"}, negatives={"N5"}))
    assert_protocol(result)
    assert result.ok and result.elapsed > 0
    rebuilt = roundtrip(result)
    assert rebuilt == result
    assert rebuilt.query.expression == result.query.expression
    assert rebuilt.scps == result.scps


def test_binary_learner_result_roundtrip(geo_workspace):
    sample = BinarySample(positives={("N2", "N5")}, negatives={("N4", "N5")})
    result = geo_workspace.learn(sample, LearnerConfig(semantics="binary", k=2))
    assert_protocol(result)
    rebuilt = roundtrip(result)
    assert rebuilt == result
    assert rebuilt.scps == result.scps


def test_nary_learner_result_roundtrip(geo_workspace):
    sample = NarySample(positives={("N2", "N5", "N3")}, negatives={("N4", "N5", "R1")})
    result = geo_workspace.learn(sample, LearnerConfig(semantics="nary", k=2))
    assert_protocol(result)
    rebuilt = roundtrip(result)
    assert rebuilt == result
    assert rebuilt.is_null == result.is_null


def test_interactive_result_roundtrip(geo_workspace):
    result = geo_workspace.learn_interactive(
        "(tram+bus)*.cinema", InteractiveConfig(max_interactions=30)
    )
    assert_protocol(result)
    assert result.halted_by == "goal"
    rebuilt = roundtrip(result)
    assert rebuilt == result
    assert rebuilt.interaction_count == result.interaction_count
    assert rebuilt.sample == result.sample


def test_static_experiment_result_roundtrip(geo_workspace):
    result = geo_workspace.run_experiment(
        ExperimentConfig(goal="(tram+bus)*.cinema", labeled_fractions=(0.3, 0.6))
    )
    assert_protocol(result)
    assert result.ok and len(result.points) == 2
    rebuilt = roundtrip(result)
    assert rebuilt == result
    assert rebuilt.f1_series() == result.f1_series()


def test_interactive_experiment_result_roundtrip(geo_workspace):
    result = geo_workspace.run_experiment(
        ExperimentConfig(
            goal="(tram+bus)*.cinema", scenario="interactive", max_interactions=30
        )
    )
    assert_protocol(result)
    assert result.final_f1 == 1.0
    rebuilt = roundtrip(result)
    assert rebuilt == result


def test_query_result_roundtrip(geo_workspace):
    result = geo_workspace.query("(tram+bus)*.cinema")
    assert_protocol(result)
    assert result.nodes() == ["N1", "N2", "N4", "N6"]
    rebuilt = roundtrip(result)
    assert rebuilt.selected == result.selected
    binary = geo_workspace.query("tram", semantics="binary")
    rebuilt_binary = roundtrip(binary)
    assert rebuilt_binary.selected == binary.selected


def test_explain_result_roundtrip(geo_workspace):
    result = geo_workspace.explain("(tram+bus)*.cinema")
    assert_protocol(result)
    assert result.strategy in ("python", "numpy", "sharded")
    rebuilt = roundtrip(result)
    assert rebuilt.to_dict() == result.to_dict()
    assert rebuilt.query.expression == result.query.expression
    assert rebuilt.rewrites == result.rewrites
    binary = geo_workspace.explain("tram", semantics="binary")
    rebuilt_binary = roundtrip(binary)
    assert rebuilt_binary.to_dict() == binary.to_dict()
    assert rebuilt_binary.semantics == "binary"


def test_result_from_json_dispatch(geo_workspace):
    result = geo_workspace.learn(Sample(positives={"N2"}, negatives={"C1"}))
    rebuilt = result_from_json(result_to_json(result))
    assert rebuilt == result


def test_unknown_type_tag_rejected():
    with pytest.raises(SerializationError):
        result_from_dict({"type": "NoSuchResult"})
    with pytest.raises(SerializationError):
        result_from_dict({"ok": True})
    with pytest.raises(SerializationError):
        result_from_json("not json at all {")


def test_malformed_payload_rejected():
    from repro.learning.learner import LearnerResult

    with pytest.raises(SerializationError):
        LearnerResult.from_dict({"type": "LearnerResult"})  # missing fields
