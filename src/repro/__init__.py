"""repro -- a reproduction of *Learning Path Queries on Graph Databases*.

(Bonifati, Ciucanu, Lemay -- EDBT 2015, DOI 10.5441/002/edbt.2015.11)

The package learns regular path queries on edge-labeled directed graphs from
positive/negative node examples, both from a fixed sample (Algorithm 1 --
``learner``) and interactively (Section 4's scenario), and ships the full
experimental harness of the paper's Section 5.

Quickstart (the :class:`Workspace` facade is the public API seam)::

    from repro import GraphDB, Sample, Workspace

    graph = GraphDB()
    graph.add_edge("N2", "bus", "N1")
    graph.add_edge("N1", "tram", "N4")
    graph.add_edge("N4", "cinema", "C1")

    ws = Workspace(graph)
    result = ws.learn(Sample(positives={"N2"}, negatives={"C1"}))
    print(result.query.expression)          # a query consistent with the labels
    print(ws.query(result.query.expression).nodes())
    print(ws.stats())                       # this workspace's engine counters

The same pipeline is drivable without Python through ``python -m repro``
(subcommands ``learn``, ``query``, ``experiment``, ``bench``).

Subpackages
-----------
``repro.api``          the public surface: Workspace, typed configs, Result protocol, CLI.
``repro.automata``     finite automata substrate (NFA/DFA, canonical DFA, PTA).
``repro.regex``        regular expressions: parser, Thompson construction, display.
``repro.graphdb``      the graph database, path semantics and query evaluation.
``repro.engine``       the indexed query engine: CSR index, compiled plans, caches.
``repro.storage``      durable storage: binary snapshots, mmap indexes, bulk ingest, catalog.
``repro.telemetry``    observability: metrics registry, structured tracing, profiles.
``repro.datasets``     paper figure graphs, synthetic/AliBaba-like generators.
``repro.queries``      monadic, binary and n-ary path query semantics.
``repro.learning``     Algorithm 1/2/3, RPNI, characteristic samples (Theorem 3.5).
``repro.interactive``  the interactive scenario: strategies, oracles, the loop.
``repro.evaluation``   metrics, workloads and the Table/Figure experiment drivers.
"""

from repro.errors import (
    AlphabetError,
    AutomatonError,
    ConfigError,
    GraphError,
    InteractionError,
    LearningError,
    QueryError,
    RegexSyntaxError,
    ReproError,
    SampleError,
    SerializationError,
    StorageError,
    TelemetryError,
)
from repro.automata import Alphabet
from repro.engine import EngineStats, QueryEngine, get_default_engine
from repro.graphdb import GraphDB
from repro.queries import BinaryPathQuery, NaryPathQuery, PathQuery
from repro.learning import (
    BinarySample,
    NarySample,
    Sample,
    learn_binary_query,
    learn_nary_query,
    learn_path_query,
    learn_with_dynamic_k,
)
from repro.interactive import (
    InteractiveCheckpoint,
    InteractiveSession,
    QueryOracle,
    SessionState,
    make_strategy,
    run_interactive_learning,
)
from repro.evaluation import f1_score, run_interactive_grid, score_query
from repro.api import (
    EngineConfig,
    ExperimentConfig,
    InteractiveConfig,
    LearnerConfig,
    QueryResult,
    Result,
    StorageConfig,
    TelemetryConfig,
    Workspace,
    result_from_dict,
    result_from_json,
    result_to_json,
)
from repro.telemetry import MetricsRegistry, Telemetry
from repro.storage import (
    DatasetCatalog,
    GraphView,
    MappedGraphIndex,
    open_snapshot,
    write_snapshot,
)

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "AlphabetError",
    "AutomatonError",
    "RegexSyntaxError",
    "GraphError",
    "QueryError",
    "SampleError",
    "LearningError",
    "InteractionError",
    "ConfigError",
    "SerializationError",
    "StorageError",
    "TelemetryError",
    # core types
    "Alphabet",
    "GraphDB",
    "QueryEngine",
    "EngineStats",
    "get_default_engine",
    "PathQuery",
    "BinaryPathQuery",
    "NaryPathQuery",
    "Sample",
    "BinarySample",
    "NarySample",
    # public API facade
    "Workspace",
    "EngineConfig",
    "TelemetryConfig",
    "LearnerConfig",
    "InteractiveConfig",
    "ExperimentConfig",
    "StorageConfig",
    "Result",
    "QueryResult",
    "result_from_dict",
    "result_from_json",
    "result_to_json",
    # storage layer
    "DatasetCatalog",
    "GraphView",
    "MappedGraphIndex",
    "open_snapshot",
    "write_snapshot",
    # telemetry
    "Telemetry",
    "MetricsRegistry",
    # learning entry points (legacy shims; prefer Workspace.learn)
    "learn_path_query",
    "learn_with_dynamic_k",
    "learn_binary_query",
    "learn_nary_query",
    # interactive entry points (legacy shims; prefer Workspace.learn_interactive)
    "QueryOracle",
    "make_strategy",
    "InteractiveSession",
    "InteractiveCheckpoint",
    "SessionState",
    "run_interactive_learning",
    # evaluation
    "f1_score",
    "score_query",
    "run_interactive_grid",
]
