"""repro -- a reproduction of *Learning Path Queries on Graph Databases*.

(Bonifati, Ciucanu, Lemay -- EDBT 2015, DOI 10.5441/002/edbt.2015.11)

The package learns regular path queries on edge-labeled directed graphs from
positive/negative node examples, both from a fixed sample (Algorithm 1 --
``learner``) and interactively (Section 4's scenario), and ships the full
experimental harness of the paper's Section 5.

Quickstart::

    from repro import GraphDB, PathQuery, Sample, learn_path_query

    graph = GraphDB()
    graph.add_edge("N2", "bus", "N1")
    graph.add_edge("N1", "tram", "N4")
    graph.add_edge("N4", "cinema", "C1")

    sample = Sample(positives={"N2"}, negatives={"C1"})
    result = learn_path_query(graph, sample, k=3)
    print(result.query.expression)          # a query consistent with the labels

Subpackages
-----------
``repro.automata``     finite automata substrate (NFA/DFA, canonical DFA, PTA).
``repro.regex``        regular expressions: parser, Thompson construction, display.
``repro.graphdb``      the graph database, path semantics and query evaluation.
``repro.engine``       the indexed query engine: CSR index, compiled plans, caches.
``repro.datasets``     paper figure graphs, synthetic/AliBaba-like generators.
``repro.queries``      monadic, binary and n-ary path query semantics.
``repro.learning``     Algorithm 1/2/3, RPNI, characteristic samples (Theorem 3.5).
``repro.interactive``  the interactive scenario: strategies, oracles, the loop.
``repro.evaluation``   metrics, workloads and the Table/Figure experiment drivers.
"""

from repro.errors import (
    AlphabetError,
    AutomatonError,
    GraphError,
    InteractionError,
    LearningError,
    QueryError,
    RegexSyntaxError,
    ReproError,
    SampleError,
)
from repro.automata import Alphabet
from repro.engine import QueryEngine, get_default_engine
from repro.graphdb import GraphDB
from repro.queries import BinaryPathQuery, NaryPathQuery, PathQuery
from repro.learning import (
    BinarySample,
    NarySample,
    Sample,
    learn_binary_query,
    learn_nary_query,
    learn_path_query,
    learn_with_dynamic_k,
)
from repro.interactive import (
    InteractiveSession,
    QueryOracle,
    make_strategy,
    run_interactive_learning,
)
from repro.evaluation import f1_score, score_query

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "AlphabetError",
    "AutomatonError",
    "RegexSyntaxError",
    "GraphError",
    "QueryError",
    "SampleError",
    "LearningError",
    "InteractionError",
    # core types
    "Alphabet",
    "GraphDB",
    "QueryEngine",
    "get_default_engine",
    "PathQuery",
    "BinaryPathQuery",
    "NaryPathQuery",
    "Sample",
    "BinarySample",
    "NarySample",
    # learning entry points
    "learn_path_query",
    "learn_with_dynamic_k",
    "learn_binary_query",
    "learn_nary_query",
    # interactive entry points
    "QueryOracle",
    "make_strategy",
    "InteractiveSession",
    "run_interactive_learning",
    # evaluation
    "f1_score",
    "score_query",
]
