"""The interactive learning loop (Figure 9 of the paper).

Starting from an empty sample, the loop repeatedly:

1. checks the halt condition (by default: the learned query selects exactly
   the same nodes as the goal, i.e. F1 = 1 -- the strongest condition of
   Section 5.3; the user may also stop earlier when satisfied);
2. asks the strategy for the next node to label (step 3 of the figure);
3. extracts the node's neighborhood -- the small visualizable fragment shown
   to the user (step 4);
4. asks the oracle/user for the label (step 5) and adds it to the sample;
5. re-runs the learner on all labels collected so far (step 6), growing the
   path-length bound ``k`` dynamically when no k-informative node remains
   (Section 5.1's procedure for the interactive case).

The loop records per-interaction timings and the evolution of the learned
query so the experiment drivers can reproduce Table 2 directly from the
returned :class:`InteractiveResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.engine import QueryEngine, get_default_engine
from repro.errors import InteractionError, SerializationError
from repro.graphdb.graph import GraphDB, Node
from repro.interactive.oracle import Oracle
from repro.interactive.state import SessionState
from repro.interactive.strategies import Strategy, strategy_from_dict
from repro.learning.learner import DEFAULT_K, LearnerResult, learn_path_query
from repro.learning.sample import Sample
from repro.queries.path_query import PathQuery


@dataclass(frozen=True)
class Interaction:
    """One user interaction: the proposed node, its label and bookkeeping data.

    ``profile`` (profiling-mode sessions only) is a JSON-safe per-round
    breakdown: oracle vs learn seconds, whether the hypothesis was reused,
    and the engine's per-query profile of the round's last evaluation.
    """

    index: int
    node: Node
    label: str
    k: int
    seconds: float
    learned_expression: str | None
    profile: dict | None = None

    def to_dict(self) -> dict:
        """A JSON-safe snapshot of this interaction."""
        payload = {
            "index": self.index,
            "node": self.node,
            "label": self.label,
            "k": self.k,
            "seconds": self.seconds,
            "learned_expression": self.learned_expression,
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Interaction":
        """Rebuild an interaction from :meth:`to_dict` output."""
        return cls(
            index=payload["index"],
            node=payload["node"],
            label=payload["label"],
            k=payload["k"],
            seconds=payload["seconds"],
            learned_expression=payload.get("learned_expression"),
            profile=payload.get("profile"),
        )


@dataclass
class InteractiveResult:
    """The outcome of an interactive learning session.

    Implements the uniform :class:`repro.api.Result` protocol: ``ok``,
    ``query``, ``elapsed`` and a JSON-safe ``to_dict``/``from_dict`` pair.
    """

    query: PathQuery | None
    sample: Sample
    interactions: list[Interaction] = field(default_factory=list)
    halted_by: str = "exhausted"
    total_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Result protocol: True iff the session produced a query."""
        return self.query is not None

    @property
    def elapsed(self) -> float:
        """Result protocol: total wall-clock seconds of the session."""
        return self.total_seconds

    @property
    def interaction_count(self) -> int:
        """The number of labels the user provided."""
        return len(self.interactions)

    def labels_fraction(self, graph: GraphDB) -> float:
        """The fraction of graph nodes the user had to label (Table 2's key column)."""
        if graph.node_count() == 0:
            return 0.0
        return self.interaction_count / graph.node_count()

    @property
    def mean_seconds_between_interactions(self) -> float:
        """Average time spent computing between two interactions (Table 2)."""
        if not self.interactions:
            return 0.0
        return sum(i.seconds for i in self.interactions) / len(self.interactions)

    # -- serialization (Result protocol) -------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        return {
            "type": "InteractiveResult",
            "ok": self.ok,
            "elapsed": self.elapsed,
            "query": None if self.query is None else self.query.to_dict(),
            "sample": {
                "positives": sorted(self.sample.positives, key=repr),
                "negatives": sorted(self.sample.negatives, key=repr),
            },
            "interactions": [interaction.to_dict() for interaction in self.interactions],
            "halted_by": self.halted_by,
            "total_seconds": self.total_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InteractiveResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            sample = payload.get("sample", {})
            return cls(
                query=(
                    None if payload["query"] is None else PathQuery.from_dict(payload["query"])
                ),
                sample=Sample(sample.get("positives", ()), sample.get("negatives", ())),
                interactions=[
                    Interaction.from_dict(entry)
                    for entry in payload.get("interactions", [])
                ],
                halted_by=payload.get("halted_by", "exhausted"),
                total_seconds=payload.get("total_seconds", 0.0),
            )
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed InteractiveResult payload: {error}"
            ) from error


class InteractiveSession:
    """A stateful interactive learning session.

    Drives the Figure 9 loop step by step; :func:`run_interactive_learning`
    is the convenience wrapper that runs it to completion.

    With ``incremental=True`` (the default) the session carries a
    :class:`~repro.interactive.state.SessionState` across rounds: batched
    k-informativeness (one CSR product walk per round), a shared
    negatives-coverage cache for the learner's SCP selection, and hypothesis
    reuse when a new positive label provably cannot change the learned
    query.  ``incremental=False`` runs the legacy per-node path -- same
    proposals, same labels, same learned queries (the speed benchmark pins
    the two transcripts against each other), just slower.
    """

    def __init__(
        self,
        graph: GraphDB,
        oracle: Oracle,
        strategy: Strategy,
        *,
        k_start: int = DEFAULT_K,
        k_max: int = 6,
        max_interactions: int | None = None,
        neighborhood_radius: int | None = None,
        engine: QueryEngine | None = None,
        incremental: bool = True,
    ) -> None:
        if k_start < 0 or k_max < k_start:
            raise InteractionError("need 0 <= k_start <= k_max")
        self.graph = graph
        self.oracle = oracle
        self.strategy = strategy
        self.k_start = k_start
        self.k = k_start
        self.k_max = k_max
        self.max_interactions = max_interactions
        self.neighborhood_radius = neighborhood_radius
        self.engine = engine
        self.sample = Sample()
        self.interactions: list[Interaction] = []
        self.last_result: LearnerResult | None = None
        self.state = (
            SessionState(graph, k=k_start, engine=engine) if incremental else None
        )
        #: Wall-clock seconds accumulated by earlier runs of a resumed
        #: session; the final result and checkpoints add it back in.
        self.prior_seconds = 0.0

    @property
    def telemetry(self):
        """The session engine's telemetry bundle (the default engine's when
        no engine was supplied)."""
        return (self.engine or get_default_engine()).telemetry

    # -- steps of the Figure 9 loop -------------------------------------------

    def propose_node(self) -> Node | None:
        """Step 3: pick the next node, growing ``k`` while none is available."""
        while True:
            node = self.strategy.propose(
                self.graph, self.sample, k=self.k, state=self.state
            )
            if node is not None:
                return node
            if self.k >= self.k_max:
                return None
            self.k += 1
            if self.state is not None:
                self.state.set_k(self.k)

    def neighborhood_of(self, node: Node) -> GraphDB:
        """Step 4: the fragment of the graph shown to the user for this node."""
        radius = self.neighborhood_radius if self.neighborhood_radius is not None else self.k
        return self.graph.neighborhood(node, radius)

    def record_label(self, node: Node, label: str) -> None:
        """Step 5: add the user's label to the sample."""
        self.sample = self.sample.with_example(node, label)
        if self.state is not None:
            self.state.observe(node, label, self.sample)

    def learn(self) -> LearnerResult:
        """Step 6: run the learner on all labels collected so far.

        If the learner abstains at the session's current ``k`` (some positive
        node's consistent paths are all longer than ``k``), the bound is
        raised up to ``k_max`` for this learning call, mirroring the dynamic
        procedure of Section 5.1.  The strategy keeps using the session's
        ``k``, which only grows when no k-informative node remains.

        Incremental sessions delegate to
        :meth:`~repro.interactive.state.SessionState.learn`, which runs the
        same procedure but shares the negatives-coverage cache across rounds
        and skips the re-learn entirely when the new labels provably cannot
        change the hypothesis.
        """
        if self.state is not None:
            result = self.state.learn(self.k, self.k_max)
            self.last_result = result
            return result
        result = learn_path_query(self.graph, self.sample, k=self.k, engine=self.engine)
        learn_k = self.k
        while result.is_null and result.positives_without_scp and learn_k < self.k_max:
            learn_k += 1
            result = learn_path_query(self.graph, self.sample, k=learn_k, engine=self.engine)
        self.last_result = result
        return result

    def step(self) -> Interaction | None:
        """Run one full interaction; returns None when no node can be proposed."""
        if (
            self.max_interactions is not None
            and len(self.interactions) >= self.max_interactions
        ):
            return None
        telemetry = self.telemetry
        with telemetry.span("interactive.round", round=len(self.interactions)) as span:
            node = self.propose_node()
            if node is None:
                span.set(outcome="no_informative_node")
                return None
            started = time.perf_counter()
            label = self.oracle.label(self.graph, node)
            labeled = time.perf_counter()
            self.record_label(node, label)
            reuses_before = (
                self.state.counters["reused_learns"] if self.state is not None else 0
            )
            result = self.learn()
            elapsed = time.perf_counter() - started
            profile = None
            if telemetry.profiling:
                reused = (
                    self.state is not None
                    and self.state.counters["reused_learns"] > reuses_before
                )
                profile = {
                    "oracle_seconds": labeled - started,
                    "learn_seconds": result.elapsed,
                    "round_seconds": elapsed,
                    "reused_hypothesis": reused,
                    "evaluate": (self.engine or get_default_engine()).take_profile(),
                }
            interaction = Interaction(
                index=len(self.interactions),
                node=node,
                label=label,
                k=self.k,
                seconds=elapsed,
                learned_expression=None if result.is_null else result.query.expression,
                profile=profile,
            )
            span.set(
                node=str(node),
                label=label,
                k=self.k,
                learned=interaction.learned_expression,
            )
            self.interactions.append(interaction)
            return interaction

    # -- halt conditions --------------------------------------------------------

    def goal_reached(self) -> bool:
        """Whether the user is satisfied with the latest learned query.

        The best-effort hypothesis is shown to the user even when Algorithm 1
        formally abstains, matching the "user satisfied by an intermediate
        query" halt conditions of Section 5.3.
        """
        query = None if self.last_result is None else self.last_result.best_effort_query
        return self.oracle.satisfied_with(self.graph, query)

    def run(self) -> InteractiveResult:
        """Run interactions until the halt condition triggers or nothing remains."""
        started = time.perf_counter()
        halted_by = "exhausted"
        with self.telemetry.span("interactive.session") as span:
            # The loop needs at least one positive label before a query can
            # exist, so the halt check runs after each interaction.
            while True:
                if self.goal_reached():
                    halted_by = "goal"
                    break
                interaction = self.step()
                if interaction is None:
                    halted_by = (
                        "max_interactions"
                        if self.max_interactions is not None
                        and len(self.interactions) >= self.max_interactions
                        else "no_informative_node"
                    )
                    break
            span.set(halted_by=halted_by, interactions=len(self.interactions))
        self.prior_seconds += time.perf_counter() - started
        query = None if self.last_result is None else self.last_result.best_effort_query
        return InteractiveResult(
            query=query,
            sample=self.sample,
            interactions=self.interactions,
            halted_by=halted_by,
            total_seconds=self.prior_seconds,
        )

    # -- checkpoint / resume ----------------------------------------------------

    def checkpoint(self) -> "InteractiveCheckpoint":
        """Snapshot the session so it can be resumed in another process.

        The snapshot captures everything the loop's determinism depends on
        -- the sample, the grown ``k``, the interaction log and the
        strategy's RNG state -- so a resumed session continues exactly where
        an uninterrupted one would be.  The graph, oracle and engine are
        *not* captured; the resuming caller supplies them.
        """
        return InteractiveCheckpoint(
            k=self.k,
            k_start=self.k_start,
            k_max=self.k_max,
            max_interactions=self.max_interactions,
            neighborhood_radius=self.neighborhood_radius,
            positives=sorted(self.sample.positives, key=repr),
            negatives=sorted(self.sample.negatives, key=repr),
            interactions=list(self.interactions),
            strategy=self.strategy.config_dict(),
            elapsed=self.prior_seconds,
        )

    @classmethod
    def resume(
        cls,
        checkpoint: "InteractiveCheckpoint",
        graph: GraphDB,
        oracle: Oracle,
        *,
        engine: QueryEngine | None = None,
        incremental: bool = True,
    ) -> "InteractiveSession":
        """Rebuild a session from a :class:`InteractiveCheckpoint`.

        The strategy (including its RNG position), the sample, the grown
        ``k`` and the interaction log are restored from the snapshot; the
        learner is re-run once on the restored sample so the halt condition
        sees the same hypothesis an uninterrupted session would have.
        """
        session = cls(
            graph,
            oracle,
            strategy_from_dict(checkpoint.strategy),
            k_start=checkpoint.k_start,
            k_max=checkpoint.k_max,
            max_interactions=checkpoint.max_interactions,
            neighborhood_radius=checkpoint.neighborhood_radius,
            engine=engine,
            incremental=incremental,
        )
        session.prior_seconds = checkpoint.elapsed
        session.interactions = list(checkpoint.interactions)
        sample = Sample(checkpoint.positives, checkpoint.negatives)
        sample.check_against(graph)
        session.sample = sample
        if session.state is not None:
            session.state.sample = sample
        session.k = checkpoint.k
        if session.state is not None:
            session.state.set_k(checkpoint.k)
        if sample.positives or sample.negatives:
            session.learn()
        return session


@dataclass(frozen=True)
class InteractiveCheckpoint:
    """A JSON-safe snapshot of a paused interactive session.

    Produced by :meth:`InteractiveSession.checkpoint`, consumed by
    :meth:`InteractiveSession.resume`; participates in the uniform result
    serialization machinery (``to_dict``/``from_dict`` with a ``"type"``
    tag, registered in :data:`repro.api.result.RESULT_TYPES`), which is what
    the ``repro interactive --checkpoint`` CLI round-trips through.
    """

    k: int
    k_start: int
    k_max: int
    max_interactions: int | None
    neighborhood_radius: int | None
    positives: list
    negatives: list
    interactions: list[Interaction]
    strategy: dict
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """Result protocol: a checkpoint always represents a resumable session."""
        return True

    @property
    def query(self) -> str | None:
        """Result protocol: the latest learned expression, if any."""
        for interaction in reversed(self.interactions):
            if interaction.learned_expression is not None:
                return interaction.learned_expression
        return None

    @property
    def interaction_count(self) -> int:
        """The number of labels collected before the pause."""
        return len(self.interactions)

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        return {
            "type": "InteractiveCheckpoint",
            "ok": self.ok,
            "elapsed": self.elapsed,
            "query": self.query,
            "k": self.k,
            "k_start": self.k_start,
            "k_max": self.k_max,
            "max_interactions": self.max_interactions,
            "neighborhood_radius": self.neighborhood_radius,
            "sample": {"positives": list(self.positives), "negatives": list(self.negatives)},
            "interactions": [interaction.to_dict() for interaction in self.interactions],
            "strategy": self.strategy,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InteractiveCheckpoint":
        """Rebuild a checkpoint from :meth:`to_dict` output."""
        try:
            sample = payload.get("sample", {})
            return cls(
                k=payload["k"],
                k_start=payload["k_start"],
                k_max=payload["k_max"],
                max_interactions=payload.get("max_interactions"),
                neighborhood_radius=payload.get("neighborhood_radius"),
                positives=list(sample.get("positives", ())),
                negatives=list(sample.get("negatives", ())),
                interactions=[
                    Interaction.from_dict(entry)
                    for entry in payload.get("interactions", [])
                ],
                strategy=payload["strategy"],
                elapsed=payload.get("elapsed", 0.0),
            )
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed InteractiveCheckpoint payload: {error}"
            ) from error


def run_interactive_learning(
    graph: GraphDB,
    oracle: Oracle,
    strategy: Strategy,
    *,
    k_start: int = DEFAULT_K,
    k_max: int = 6,
    max_interactions: int | None = None,
    engine: QueryEngine | None = None,
    incremental: bool = True,
) -> InteractiveResult:
    """Run a full interactive session and return its result.

    ``engine`` is forwarded to the session's learner calls; omitted, the
    process-wide default engine is used.

    .. deprecated:: 1.1
        Prefer :meth:`repro.api.Workspace.learn_interactive` with an
        :class:`repro.api.InteractiveConfig`, which owns the oracle, strategy
        and engine wiring; this module-level function is kept as a thin
        compatibility shim.
    """
    session = InteractiveSession(
        graph,
        oracle,
        strategy,
        k_start=k_start,
        k_max=k_max,
        max_interactions=max_interactions,
        engine=engine,
        incremental=incremental,
    )
    return session.run()
