"""Node-selection strategies for the interactive scenario (Section 4.2).

A strategy takes the graph and the current sample and proposes the next node
for the user to label.  The paper evaluates two practical strategies, both
restricted to *k-informative* nodes so that they never propose a node whose
label could not bring information:

* ``kR`` -- pick a k-informative node uniformly at random;
* ``kS`` -- pick the k-informative node with the smallest number of
  non-covered k-paths (favouring nodes whose SCP computation has the
  smallest search space).

A naive uniform-random strategy over unlabeled nodes is provided as the
baseline the ablation benchmark compares against.

On large graphs, scanning every node for informativeness at every
interaction would dominate the running time, so the two k-strategies accept
a ``pool_size``: candidates are drawn from a random sample of the unlabeled
nodes of that size (the default, 512, keeps per-interaction times in the
"order of seconds" regime the paper reports while behaving indistinguishably
from the full scan in our experiments).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import InteractionError
from repro.graphdb.graph import GraphDB, Node
from repro.interactive.informativeness import is_k_informative, uncovered_k_paths
from repro.learning.sample import Sample


class Strategy:
    """Interface of a node-proposal strategy."""

    #: Short name used in experiment reports (e.g. ``"kR"``).
    name: str = "strategy"

    def propose(self, graph: GraphDB, sample: Sample, *, k: int) -> Node | None:
        """Return the next node to label, or None when no useful node remains."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _unlabeled_nodes(graph: GraphDB, sample: Sample) -> list[Node]:
    return [node for node in graph.nodes if node not in sample.labeled]


class RandomStrategy(Strategy):
    """Naive baseline: a uniformly random unlabeled node (no informativeness filter)."""

    name = "random"

    def __init__(self, seed: int | random.Random = 0) -> None:
        self._rng = seed if isinstance(seed, random.Random) else random.Random(seed)

    def propose(self, graph: GraphDB, sample: Sample, *, k: int) -> Node | None:
        candidates = _unlabeled_nodes(graph, sample)
        if not candidates:
            return None
        return self._rng.choice(sorted(candidates, key=repr))


class _PooledKStrategy(Strategy):
    """Shared machinery of the two k-informative strategies."""

    def __init__(self, seed: int | random.Random = 0, *, pool_size: int | None = 512) -> None:
        self._rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        if pool_size is not None and pool_size < 1:
            raise InteractionError("pool_size must be positive (or None for a full scan)")
        self._pool_size = pool_size

    def _candidate_pool(self, graph: GraphDB, sample: Sample) -> list[Node]:
        unlabeled = sorted(_unlabeled_nodes(graph, sample), key=repr)
        if not unlabeled:
            return []
        if self._pool_size is None or len(unlabeled) <= self._pool_size:
            self._rng.shuffle(unlabeled)
            return unlabeled
        return self._rng.sample(unlabeled, self._pool_size)


class KInformativeRandomStrategy(_PooledKStrategy):
    """The paper's ``kR`` strategy: a random k-informative node."""

    name = "kR"

    def propose(self, graph: GraphDB, sample: Sample, *, k: int) -> Node | None:
        for node in self._candidate_pool(graph, sample):
            if is_k_informative(graph, sample, node, k=k):
                return node
        return None


class KInformativeSmallestStrategy(_PooledKStrategy):
    """The paper's ``kS`` strategy: the k-informative node with fewest uncovered k-paths."""

    name = "kS"

    #: Counting stops at this many uncovered paths per node; nodes at the cap
    #: are considered equally (the strategy only favours *small* counts).
    count_cap = 64

    def propose(self, graph: GraphDB, sample: Sample, *, k: int) -> Node | None:
        best_node: Node | None = None
        best_count: int | None = None
        for node in self._candidate_pool(graph, sample):
            if node in sample.labeled:
                continue
            count = uncovered_k_paths(
                graph, node, sample.negatives, k=k, limit=self.count_cap
            )
            if count == 0:
                continue  # not k-informative
            if best_count is None or count < best_count:
                best_node, best_count = node, count
                if best_count == 1:
                    break  # cannot do better
        return best_node


def make_strategy(name: str, *, seed: int = 0, pool_size: int | None = 512) -> Strategy:
    """Factory used by the experiment drivers: ``"kR"``, ``"kS"`` or ``"random"``."""
    normalized = name.strip()
    if normalized == "kR":
        return KInformativeRandomStrategy(seed, pool_size=pool_size)
    if normalized == "kS":
        return KInformativeSmallestStrategy(seed, pool_size=pool_size)
    if normalized.lower() == "random":
        return RandomStrategy(seed)
    raise InteractionError(f"unknown strategy {name!r}; expected 'kR', 'kS' or 'random'")


STRATEGY_NAMES: Sequence[str] = ("kR", "kS", "random")
