"""Node-selection strategies for the interactive scenario (Section 4.2).

A strategy takes the graph and the current sample and proposes the next node
for the user to label.  The paper evaluates two practical strategies, both
restricted to *k-informative* nodes so that they never propose a node whose
label could not bring information:

* ``kR`` -- pick a k-informative node uniformly at random;
* ``kS`` -- pick the k-informative node with the smallest number of
  non-covered k-paths (favouring nodes whose SCP computation has the
  smallest search space).

A naive uniform-random strategy over unlabeled nodes is provided as the
baseline the ablation benchmark compares against.

On large graphs, scanning every node for informativeness at every
interaction would dominate the running time, so the two k-strategies accept
a ``pool_size``: candidates are drawn from a random sample of the unlabeled
nodes of that size (the default, 512, keeps per-interaction times in the
"order of seconds" regime the paper reports while behaving indistinguishably
from the full scan in our experiments).

When the session passes its :class:`~repro.interactive.state.SessionState`
to :meth:`Strategy.propose`, informativeness verdicts and uncovered-path
counts come from the state's batched kernel structures (one CSR product
walk per round, shared across all candidates); without a state the
strategies fall back to the legacy per-node walks, which the parity suite
and the speed benchmark pin the batched path against.

All candidate orderings derive from the graph's *stable node order*
(insertion order), never from ``repr`` sorting or raw set iteration, so a
fixed seed reproduces the same proposal sequence in any process regardless
of the hash seed or of how nodes print themselves.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.errors import InteractionError
from repro.graphdb.graph import GraphDB, Node
from repro.interactive.informativeness import is_k_informative, uncovered_k_paths
from repro.learning.sample import Sample

if TYPE_CHECKING:  # imported lazily to avoid a cycle at import time
    from repro.interactive.state import SessionState


class Strategy:
    """Interface of a node-proposal strategy."""

    #: Short name used in experiment reports (e.g. ``"kR"``).
    name: str = "strategy"

    def propose(
        self,
        graph: GraphDB,
        sample: Sample,
        *,
        k: int,
        state: "SessionState | None" = None,
    ) -> Node | None:
        """Return the next node to label, or None when no useful node remains."""
        raise NotImplementedError

    # -- checkpointing ---------------------------------------------------------

    def rng_state(self) -> list:
        """The strategy's RNG state as a JSON-safe value (see :meth:`set_rng_state`)."""
        version, internal, gauss = self._rng.getstate()
        return [version, list(internal), gauss]

    def set_rng_state(self, payload: Sequence) -> None:
        """Restore the RNG from :meth:`rng_state` output."""
        version, internal, gauss = payload
        self._rng.setstate((version, tuple(internal), gauss))

    def config_dict(self) -> dict:
        """A JSON-safe snapshot sufficient to resume the strategy mid-session."""
        return {"name": self.name, "pool_size": None, "rng_state": self.rng_state()}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _unlabeled_nodes(graph: GraphDB, sample: Sample) -> list[Node]:
    labeled = sample.labeled
    return [node for node in graph.node_order if node not in labeled]


class RandomStrategy(Strategy):
    """Naive baseline: a uniformly random unlabeled node (no informativeness filter)."""

    name = "random"

    def __init__(self, seed: int | random.Random = 0) -> None:
        self._rng = seed if isinstance(seed, random.Random) else random.Random(seed)

    def propose(
        self,
        graph: GraphDB,
        sample: Sample,
        *,
        k: int,
        state: "SessionState | None" = None,
    ) -> Node | None:
        # The candidates come pre-ordered by the graph's stable node order;
        # sorting by repr here would make the draw depend on how nodes print
        # themselves (a default object repr embeds the memory address).
        candidates = _unlabeled_nodes(graph, sample)
        if not candidates:
            return None
        return self._rng.choice(candidates)


class _PooledKStrategy(Strategy):
    """Shared machinery of the two k-informative strategies."""

    def __init__(self, seed: int | random.Random = 0, *, pool_size: int | None = 512) -> None:
        self._rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        if pool_size is not None and pool_size < 1:
            raise InteractionError("pool_size must be positive (or None for a full scan)")
        self._pool_size = pool_size

    def config_dict(self) -> dict:
        return {"name": self.name, "pool_size": self._pool_size, "rng_state": self.rng_state()}

    def _candidate_pool(self, graph: GraphDB, sample: Sample) -> list[Node]:
        unlabeled = _unlabeled_nodes(graph, sample)
        if not unlabeled:
            return []
        if self._pool_size is None or len(unlabeled) <= self._pool_size:
            self._rng.shuffle(unlabeled)
            return unlabeled
        return self._rng.sample(unlabeled, self._pool_size)


class KInformativeRandomStrategy(_PooledKStrategy):
    """The paper's ``kR`` strategy: a random k-informative node."""

    name = "kR"

    def propose(
        self,
        graph: GraphDB,
        sample: Sample,
        *,
        k: int,
        state: "SessionState | None" = None,
    ) -> Node | None:
        pool = self._candidate_pool(graph, sample)
        if state is not None:
            if self._pool_size is None:
                # Full scan: one batched product walk decides every node.
                informative = state.informative_nodes()
                for node in pool:
                    if node in informative:
                        return node
                return None
            for node in pool:
                if state.is_informative(node):
                    return node
            return None
        for node in pool:
            if is_k_informative(graph, sample, node, k=k):
                return node
        return None


class KInformativeSmallestStrategy(_PooledKStrategy):
    """The paper's ``kS`` strategy: the k-informative node with fewest uncovered k-paths."""

    name = "kS"

    #: Counting stops at this many uncovered paths per node; nodes at the cap
    #: are considered equally (the strategy only favours *small* counts).
    count_cap = 64

    def propose(
        self,
        graph: GraphDB,
        sample: Sample,
        *,
        k: int,
        state: "SessionState | None" = None,
    ) -> Node | None:
        best_node: Node | None = None
        best_count: int | None = None
        batched = (
            state.informative_nodes()
            if state is not None and self._pool_size is None
            else None
        )
        for node in self._candidate_pool(graph, sample):
            if node in sample.labeled:
                continue
            if batched is not None:
                if node not in batched:
                    continue  # batched verdict: zero uncovered paths
                count = state.uncovered_count(node, cap=self.count_cap)
            elif state is not None:
                if not state.is_informative(node):
                    continue  # cached/per-candidate verdict: zero uncovered paths
                count = state.uncovered_count(node, cap=self.count_cap)
            else:
                count = uncovered_k_paths(
                    graph, node, sample.negatives, k=k, limit=self.count_cap
                )
            if count == 0:
                continue  # not k-informative
            if best_count is None or count < best_count:
                best_node, best_count = node, count
                if best_count == 1:
                    break  # cannot do better
        return best_node


def make_strategy(name: str, *, seed: int = 0, pool_size: int | None = 512) -> Strategy:
    """Factory used by the experiment drivers: ``"kR"``, ``"kS"`` or ``"random"``."""
    normalized = name.strip()
    if normalized == "kR":
        return KInformativeRandomStrategy(seed, pool_size=pool_size)
    if normalized == "kS":
        return KInformativeSmallestStrategy(seed, pool_size=pool_size)
    if normalized.lower() == "random":
        return RandomStrategy(seed)
    raise InteractionError(f"unknown strategy {name!r}; expected 'kR', 'kS' or 'random'")


def strategy_from_dict(payload: dict) -> Strategy:
    """Rebuild a strategy mid-session from :meth:`Strategy.config_dict` output."""
    try:
        name = payload["name"]
        pool_size = payload.get("pool_size", 512)
        rng_state = payload.get("rng_state")
    except (KeyError, TypeError) as error:
        raise InteractionError(f"malformed strategy payload: {error!r}") from error
    if name == "random":
        strategy = RandomStrategy()
    else:
        strategy = make_strategy(name, pool_size=pool_size)
    try:
        if rng_state is not None:
            strategy.set_rng_state(rng_state)
    except (TypeError, ValueError) as error:
        raise InteractionError(f"malformed strategy RNG state: {error}") from error
    return strategy


STRATEGY_NAMES: Sequence[str] = ("kR", "kS", "random")
