"""Interactive learning from user interactions (Section 4 of the paper).

The interactive scenario (Figure 9) starts from an empty sample, repeatedly
picks a node according to a *strategy*, asks the user (here: a simulated
oracle) to label it, propagates the label, re-runs the learner, and stops
when a halt condition holds.

* :mod:`repro.interactive.informativeness` -- certain nodes (Lemma 4.1),
  informative nodes, and the practical ``k``-informativeness notion;
* :mod:`repro.interactive.strategies` -- the paper's strategies ``kR``
  (random k-informative node) and ``kS`` (k-informative node with the fewest
  non-covered k-paths), plus a naive random baseline;
* :mod:`repro.interactive.oracle` -- simulated users that label nodes
  according to a goal query;
* :mod:`repro.interactive.scenario` -- the interactive loop itself, with the
  halt conditions used by the experiments.
"""

from repro.interactive.informativeness import (
    certain_negative_nodes,
    certain_positive_nodes,
    is_certain,
    is_informative,
    is_k_informative,
    k_informative_nodes,
    reference_is_certain_negative,
    reference_is_certain_positive,
    uncovered_k_paths,
)
from repro.interactive.state import (
    SessionState,
    count_uncovered_k_paths,
    k_informative_set,
    uncovered_words_table,
)
from repro.interactive.strategies import (
    KInformativeRandomStrategy,
    KInformativeSmallestStrategy,
    RandomStrategy,
    Strategy,
    make_strategy,
    strategy_from_dict,
)
from repro.interactive.oracle import Oracle, QueryOracle
from repro.interactive.scenario import (
    InteractiveCheckpoint,
    InteractiveResult,
    InteractiveSession,
    run_interactive_learning,
)

__all__ = [
    "is_certain",
    "is_informative",
    "is_k_informative",
    "k_informative_nodes",
    "k_informative_set",
    "uncovered_k_paths",
    "uncovered_words_table",
    "count_uncovered_k_paths",
    "certain_positive_nodes",
    "certain_negative_nodes",
    "reference_is_certain_positive",
    "reference_is_certain_negative",
    "SessionState",
    "Strategy",
    "RandomStrategy",
    "KInformativeRandomStrategy",
    "KInformativeSmallestStrategy",
    "make_strategy",
    "strategy_from_dict",
    "Oracle",
    "QueryOracle",
    "InteractiveSession",
    "InteractiveCheckpoint",
    "InteractiveResult",
    "run_interactive_learning",
]
