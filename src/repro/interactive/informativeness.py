"""Certain, informative and k-informative nodes (Section 4.2).

A node is *certain* w.r.t. a sample when labeling it cannot eliminate any
consistent query; Lemma 4.1 characterizes the two flavours:

* certain-positive: some positive node's paths are all covered by the
  negatives together with this node's paths;
* certain-negative: the node's paths are all covered by the negatives.

A node is *informative* when it is neither labeled nor certain.  Deciding
informativeness exactly is PSPACE-complete (Lemma 4.2) -- the exact
functions here go through automata inclusion and are intended for small
graphs (tests, worked examples).  The practical notion the strategies use is
``k``-informativeness: a node with at least one path of length at most ``k``
that no negative covers is guaranteed informative, and counting such paths
is cheap.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.automata.kernel import TableDFA, language_included_tables
from repro.automata.operations import language_included, union
from repro.graphdb.graph import GraphDB, Node
from repro.graphdb.paths import covered_by, enumerate_paths, paths_nfa
from repro.learning.sample import Sample


def _paths_table(graph: GraphDB, start_nodes: Iterable[Node] | Node) -> TableDFA:
    """``paths_G(X)`` determinized straight into the int-coded kernel."""
    table, _subsets = TableDFA.from_nfa(paths_nfa(graph, start_nodes))
    return table


def is_certain_positive(graph: GraphDB, sample: Sample, node: Node) -> bool:
    """Exact certain-positive check (Lemma 4.1, item 1).

    Runs on the kernel: both path languages are determinized into
    :class:`~repro.automata.kernel.TableDFA` form and compared with the
    linear product-inclusion walk (no complementation).  The covering
    language ``paths(S-) | paths(node)`` is one multi-initial NFA -- the
    graph with the negatives *and* the node as start states -- rather than
    an explicit union automaton.  :func:`reference_is_certain_positive` is
    the retained legacy oracle the parity suite pins this against.
    """
    if not sample.positives:
        return False
    cover = _paths_table(graph, set(sample.negatives) | {node})
    for positive in sample.positives:
        if language_included_tables(_paths_table(graph, positive), cover):
            return True
    return False


def is_certain_negative(graph: GraphDB, sample: Sample, node: Node) -> bool:
    """Exact certain-negative check (Lemma 4.1, item 2).

    Kernel-backed like :func:`is_certain_positive`;
    :func:`reference_is_certain_negative` is the legacy oracle.
    """
    if not sample.negatives:
        return False
    return language_included_tables(
        _paths_table(graph, node), _paths_table(graph, sample.negatives)
    )


def reference_is_certain_positive(graph: GraphDB, sample: Sample, node: Node) -> bool:
    """The pre-kernel certain-positive check (object automata; parity oracle)."""
    if not sample.positives:
        return False
    node_paths = paths_nfa(graph, node)
    if sample.negatives:
        cover = union(paths_nfa(graph, sample.negatives), node_paths)
    else:
        cover = node_paths
    for positive in sample.positives:
        if language_included(paths_nfa(graph, positive), cover):
            return True
    return False


def reference_is_certain_negative(graph: GraphDB, sample: Sample, node: Node) -> bool:
    """The pre-kernel certain-negative check (object automata; parity oracle)."""
    if not sample.negatives:
        return False
    return language_included(
        paths_nfa(graph, node), paths_nfa(graph, sample.negatives)
    )


def is_certain(graph: GraphDB, sample: Sample, node: Node) -> bool:
    """Whether the node is certain (either certain-positive or certain-negative)."""
    return is_certain_negative(graph, sample, node) or is_certain_positive(
        graph, sample, node
    )


def is_informative(graph: GraphDB, sample: Sample, node: Node) -> bool:
    """Exact informativeness: not labeled and not certain.

    PSPACE-complete in general (Lemma 4.2); use :func:`is_k_informative` on
    anything larger than toy graphs.
    """
    if node in sample.labeled:
        return False
    return not is_certain(graph, sample, node)


def certain_positive_nodes(graph: GraphDB, sample: Sample) -> frozenset[Node]:
    """All unlabeled nodes that are certain-positive (exact, small graphs only)."""
    return frozenset(
        node
        for node in graph.nodes
        if node not in sample.labeled and is_certain_positive(graph, sample, node)
    )


def certain_negative_nodes(graph: GraphDB, sample: Sample) -> frozenset[Node]:
    """All unlabeled nodes that are certain-negative (exact, small graphs only)."""
    return frozenset(
        node
        for node in graph.nodes
        if node not in sample.labeled and is_certain_negative(graph, sample, node)
    )


# -- the practical, bounded notion ---------------------------------------------


def uncovered_k_paths(
    graph: GraphDB,
    node: Node,
    negatives: Iterable[Node],
    *,
    k: int,
    limit: int | None = None,
) -> int:
    """The number of paths of ``node`` (length <= k) not covered by the negatives.

    This is the quantity the ``kS`` strategy minimizes.  ``limit`` stops the
    count early (the strategies only need to compare small counts).
    """
    negative_set = frozenset(negatives)
    count = 0
    for path in enumerate_paths(graph, node, max_length=k):
        if not covered_by(graph, path, negative_set):
            count += 1
            if limit is not None and count >= limit:
                break
    return count


def is_k_informative(graph: GraphDB, sample: Sample, node: Node, *, k: int) -> bool:
    """Whether the node is ``k``-informative (Section 4.2).

    A node is k-informative when it is unlabeled and has at least one path
    of length at most ``k`` that no negative example covers.  Every
    k-informative node is informative; the converse need not hold.
    """
    if node in sample.labeled:
        return False
    return uncovered_k_paths(graph, node, sample.negatives, k=k, limit=1) > 0


def k_informative_nodes(
    graph: GraphDB,
    sample: Sample,
    *,
    k: int,
    candidates: Iterable[Node] | None = None,
) -> Iterator[Node]:
    """Yield the k-informative nodes among ``candidates`` (default: all nodes)."""
    pool = candidates if candidates is not None else graph.nodes
    for node in pool:
        if is_k_informative(graph, sample, node, k=k):
            yield node
