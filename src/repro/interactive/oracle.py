"""Simulated users ("oracles") for the interactive scenario.

The paper's experiments simulate the user: every proposed node is labeled
according to whether the goal query selects it.  :class:`QueryOracle`
implements exactly that; the :class:`Oracle` base class allows plugging in
other behaviours (e.g. a noisy user) in examples and tests.
"""

from __future__ import annotations

from repro.engine.engine import QueryEngine
from repro.graphdb.graph import GraphDB, Node
from repro.learning.sample import NEGATIVE, POSITIVE
from repro.queries.path_query import PathQuery


class Oracle:
    """Interface of a user that labels nodes on demand."""

    def label(self, graph: GraphDB, node: Node) -> str:
        """Return ``'+'`` or ``'-'`` for the given node."""
        raise NotImplementedError

    def satisfied_with(self, graph: GraphDB, query: PathQuery | None) -> bool:
        """Whether the user would stop the interactions given this query.

        The default implementation never stops early (the loop's own halt
        condition decides); subclasses may override to model a user that
        accepts an intermediate query.
        """
        return False


class QueryOracle(Oracle):
    """A user who labels nodes perfectly consistently with a goal query.

    The goal query's node set is computed once per graph and cached, so that
    labeling thousands of nodes during an interactive experiment stays cheap.

    ``satisfaction_threshold`` models the halt condition: 1.0 (the default)
    is the paper's strongest condition -- the user stops only when the
    learned query selects exactly the goal's node set (F1 = 1); lower values
    model the weaker "the user is satisfied by an intermediate query"
    conditions Section 5.3 mentions.
    """

    def __init__(
        self,
        goal: PathQuery,
        *,
        satisfaction_threshold: float = 1.0,
        engine: QueryEngine | None = None,
    ) -> None:
        if not 0.0 < satisfaction_threshold <= 1.0:
            raise ValueError("satisfaction_threshold must be in (0, 1]")
        self.goal = goal
        self.satisfaction_threshold = satisfaction_threshold
        self.engine = engine
        self._cache: dict[tuple[int, int], frozenset[Node]] = {}

    def _selected(self, graph: GraphDB) -> frozenset[Node]:
        # (uid, version) keys the cache soundly: mutating the graph moves its
        # version counter, so labels never go stale mid-session.
        key = (graph.uid, graph.version)
        if key not in self._cache:
            self._cache[key] = self.goal.evaluate(graph, engine=self.engine)
        return self._cache[key]

    def label(self, graph: GraphDB, node: Node) -> str:
        """Label the node with the goal query's verdict."""
        return POSITIVE if node in self._selected(graph) else NEGATIVE

    def satisfied_with(self, graph: GraphDB, query: PathQuery | None) -> bool:
        """Whether the learned query is close enough to the goal to stop.

        With the default threshold of 1.0 this is the strongest halt
        condition of Section 5.3: the learned and goal queries select exactly
        the same nodes.
        """
        if query is None:
            return False
        goal_nodes = self._selected(graph)
        learned_nodes = query.evaluate(graph, engine=self.engine)
        if self.satisfaction_threshold >= 1.0:
            return learned_nodes == goal_nodes
        true_positives = len(learned_nodes & goal_nodes)
        if true_positives == 0:
            return not goal_nodes and not learned_nodes
        precision = true_positives / len(learned_nodes)
        recall = true_positives / len(goal_nodes)
        f1 = 2.0 * precision * recall / (precision + recall)
        return f1 >= self.satisfaction_threshold
