"""Kernel-backed incremental state of an interactive session (Section 4.2).

The legacy interactive loop re-derived everything from scratch at every
round: each strategy call re-enumerated candidate paths per node and re-ran
``covered_by`` per (node, path) pair, and each label triggered a full
re-learn.  This module is the engine-native replacement:

* :func:`uncovered_words_table` compiles the current negative set into one
  :class:`~repro.automata.kernel.TableDFA` accepting exactly the words no
  negative covers (the complement of the negatives' prefix language, cut at
  ``k`` by construction) -- built once per round, and only when the negative
  set actually changed;
* batched k-informativeness runs **one** backward CSR product walk per round
  (:func:`repro.engine.executor.table_evaluate_all` through the engine's
  ephemeral path) and yields the verdict of *every* node at once, replacing
  the per-node ``enumerate_paths`` loop;
* :class:`SessionState` carries the pieces across rounds and invalidates
  only what a new label can change: a positive label leaves the coverage
  automaton, the informative set and the ``NegativeCoverage`` prefix cache
  untouched (certainty is monotone, Lemma 4.1), while a negative label
  invalidates exactly those three; and when the new positive's smallest
  consistent path is already among the learner's SCPs, the previous
  MergeFold hypothesis is provably identical and is reused without
  re-learning.
"""

from __future__ import annotations

import time
from array import array
from collections.abc import Iterable
from dataclasses import replace

from repro.automata.alphabet import Alphabet
from repro.automata.kernel import NO_STATE, TableDFA
from repro.engine.engine import QueryEngine, get_default_engine
from repro.engine.index import GraphIndex
from repro.errors import InteractionError
from repro.graphdb.graph import GraphDB, Node
from repro.graphdb.paths import covered_by, enumerate_paths
from repro.learning.learner import LearnerResult, learn_path_query
from repro.learning.sample import NEGATIVE, Sample
from repro.learning.scp import NegativeCoverage

#: Placeholder for the dead (= "word is uncovered") state while the frontier
#: automaton is under construction; patched to the real id at the end.
_DEAD = -2


def successor_sets(index: GraphIndex) -> list[dict[int, frozenset[int]]]:
    """Per-label ``node id -> frozenset of successor ids`` views of an index.

    One pass over the CSR arrays; the frontier automaton construction then
    takes its multi-source steps as C-level ``frozenset.union`` calls over
    these instead of re-slicing the CSR arrays per (frontier, label) pair.
    A session builds this once per graph snapshot and reuses it every round.
    """
    sets: list[dict[int, frozenset[int]]] = []
    for label_id in range(index.num_labels):
        offsets = index.fwd_offsets[label_id]
        targets = index.fwd_targets[label_id]
        per_node: dict[int, frozenset[int]] = {}
        for node in range(index.num_nodes):
            start, stop = offsets[node], offsets[node + 1]
            if start != stop:
                per_node[node] = frozenset(targets[start:stop])
        sets.append(per_node)
    return sets


def uncovered_words_table(
    index: GraphIndex,
    negative_ids: Iterable[int],
    *,
    k: int,
    alphabet: Alphabet,
    succ_sets: list[dict[int, frozenset[int]]] | None = None,
) -> TableDFA:
    """The uncovered-words automaton of a negative set, as a :class:`TableDFA`.

    States are the distinct multi-source frontiers reachable from the
    negatives within ``k`` edge steps (deduplicated across depths), plus one
    accepting *dead* state standing for the empty frontier.  A word drives
    the automaton into the dead state iff no negative node covers it
    (coverage is prefix-monotone, so emptiness is absorbing), which makes
    this the exact batched form of :func:`repro.graphdb.paths.covered_by`
    against a fixed node set.

    States first reached at depth ``k`` are left unexpanded (their rows stay
    :data:`~repro.automata.kernel.NO_STATE`): the walks that consume this
    table are themselves bounded to ``k`` symbols and never read them.
    """
    if k < 0:
        raise InteractionError("the path-length bound k must be non-negative")
    start = frozenset(negative_ids)
    if not start:
        raise InteractionError(
            "uncovered_words_table needs a non-empty negative set; with no "
            "negatives every word is uncovered"
        )
    m = len(alphabet)
    label_of = [index.label_ids.get(symbol, -1) for symbol in alphabet.symbols]
    if succ_sets is None:
        succ_sets = successor_sets(index)
    empty: frozenset[int] = frozenset()

    frontiers: list[frozenset[int]] = [start]
    ids: dict[frozenset[int], int] = {start: 0}
    rows: dict[int, list[int]] = {}
    level = [0]
    for _depth in range(k):
        next_level: list[int] = []
        for fid in level:
            frontier = frontiers[fid]
            row = [_DEAD] * m
            for position in range(m):
                label_id = label_of[position]
                if label_id < 0:
                    continue  # no such edges anywhere: the step empties the frontier
                per_node = succ_sets[label_id]
                nxt = empty.union(
                    *(per_node[node] for node in frontier if node in per_node)
                )
                if not nxt:
                    continue
                nid = ids.get(nxt)
                if nid is None:
                    nid = len(frontiers)
                    ids[nxt] = nid
                    frontiers.append(nxt)
                    next_level.append(nid)
                row[position] = nid
            rows[fid] = row
        level = next_level

    dead = len(frontiers)
    n = dead + 1
    trans = array("i", [NO_STATE] * (n * m))
    for fid in range(dead):
        row = rows.get(fid)
        if row is None:
            continue  # first reached at depth k; never consulted by bounded walks
        base = fid * m
        for position in range(m):
            target = row[position]
            trans[base + position] = dead if target == _DEAD else target
    dead_base = dead * m
    for position in range(m):
        trans[dead_base + position] = dead  # emptiness is absorbing
    return TableDFA(alphabet, n=n, trans=trans, finals=1 << dead, initial=0)


def count_uncovered_k_paths(
    index: GraphIndex,
    table: TableDFA | None,
    node_id: int,
    *,
    k: int,
    cap: int | None = None,
    succ_sets: list[dict[int, frozenset[int]]] | None = None,
) -> int:
    """The number of paths of one node (length <= k) the negatives don't cover.

    The per-candidate counterpart of the batched verdict: candidate words
    are enumerated level by level over the CSR index (each distinct word is
    one trie edge, so no dedup bookkeeping is needed) while the shared
    ``table`` -- built once per round by :func:`uncovered_words_table` --
    answers coverage in one int lookup per extension, replacing the
    multi-source ``covered_by`` walk the legacy count re-ran per word.
    ``table=None`` means "no negatives": every word counts.  ``cap`` stops
    the count early, like the legacy ``limit``.
    """
    if cap is not None and cap <= 0:
        return 0
    if succ_sets is None:
        succ_sets = successor_sets(index)
    if table is None:
        count = 1  # the empty word is uncovered when there are no negatives
    else:
        count = 1 if table.is_final(table.initial) else 0
    if cap is not None and count >= cap:
        return count

    if table is not None:
        trans, m = table.trans, table.m
        finals = table.finals
        label_of = table.bind_labels(index.label_ids)
    else:
        label_of = list(range(index.num_labels))
        m = index.num_labels
        trans, finals = None, 0

    empty: frozenset[int] = frozenset()
    level: list[tuple[frozenset[int], int]] = [(frozenset((node_id,)), 0)]
    for _depth in range(k):
        next_level: list[tuple[frozenset[int], int]] = []
        for frontier, astate in level:
            abase = astate * m
            for position in range(m):
                label_id = label_of[position]
                if label_id < 0:
                    continue
                per_node = succ_sets[label_id]
                moved = empty.union(
                    *(per_node[node] for node in frontier if node in per_node)
                )
                if not moved:
                    continue  # the word is not realizable from the candidate
                if trans is None:
                    next_state = 0
                    uncovered = True
                else:
                    next_state = trans[abase + position]
                    uncovered = bool((finals >> next_state) & 1)
                if uncovered:
                    count += 1
                    if cap is not None and count >= cap:
                        return count
                next_level.append((moved, next_state))
        level = next_level
    return count


def k_informative_set(
    graph: GraphDB,
    sample: Sample,
    *,
    k: int,
    engine: QueryEngine | None = None,
) -> frozenset[Node]:
    """All k-informative nodes of the graph, in one batched product walk.

    Semantically identical to filtering every unlabeled node through
    :func:`repro.interactive.informativeness.is_k_informative` (the parity
    suite pins this), but computed for the whole graph at once: one
    uncovered-words automaton, one backward CSR walk.
    """
    engine = engine if engine is not None else get_default_engine()
    labeled = sample.labeled
    if not sample.negatives:
        # Every unlabeled node has the uncovered empty path.
        return frozenset(node for node in graph.nodes if node not in labeled)
    index = engine.index_for(graph)
    node_ids = index.node_ids
    table = uncovered_words_table(
        index, (node_ids[node] for node in sample.negatives), k=k, alphabet=graph.alphabet
    )
    selected = engine.evaluate(graph, table, ephemeral=True, max_depth=k)
    return selected - labeled


class SessionState:
    """Incremental cross-round state of one interactive learning session.

    Owns the pieces whose recomputation dominated the legacy loop and keeps
    them alive for as long as they stay valid:

    ======================  =======================  =====================
    carried structure        invalidated by           survives
    ======================  =======================  =====================
    uncovered-words table    negative label, k move   positive labels
    k-informative set        negative label, k move   positive labels [#]_
    NegativeCoverage cache   negative label           positive labels, k moves
    learner result           negative label, new SCP  positives w/ known SCP
    ======================  =======================  =====================

    .. [#] a positive label only removes the labeled node itself from the
       set -- certainty is monotone in the sample (Lemma 4.1), so no other
       node's verdict can change.
    """

    def __init__(
        self,
        graph: GraphDB,
        *,
        k: int,
        engine: QueryEngine | None = None,
        sample: Sample | None = None,
    ) -> None:
        self.graph = graph
        self.engine = engine if engine is not None else get_default_engine()
        self.k = k
        self.sample = sample if sample is not None else Sample()
        self.last_result: LearnerResult | None = None
        self._table: TableDFA | None = None
        self._table_index: GraphIndex | None = None
        self._seen_index: GraphIndex | None = None
        self._succ_sets: list[dict[int, frozenset[int]]] | None = None
        self._succ_index: GraphIndex | None = None
        self._informative: frozenset[Node] | None = None
        # Per-node verdict caches.  Monotone certainty (Lemma 4.1) gives the
        # two sets different lifetimes: a node found *non*-informative stays
        # non-informative when negatives are added (the uncovered language
        # only shrinks), so ``_non_informative`` survives negative labels;
        # a node found informative can be killed by a new negative, so
        # ``_informative_nodes`` is dropped then.  Growing ``k`` flips the
        # monotonicity (longer witnesses become legal), so it clears
        # ``_non_informative`` and keeps ``_informative_nodes``.
        self._non_informative: set[Node] = set()
        self._informative_nodes: set[Node] = set()
        self._coverage: NegativeCoverage | None = None
        self._pending_positives: list[Node] = []
        self._pending_negatives: list[Node] = []
        #: Incrementality counters (reported by the simulation driver).
        self.counters = {
            "batched_walks": 0,
            "node_walks": 0,
            "verdict_hits": 0,
            "count_queries": 0,
            "full_learns": 0,
            "reused_learns": 0,
        }
        # Mirror the counters into the engine's metrics registry as computed
        # gauges (one registration per session; a newer session for the same
        # engine takes over the names).
        registry = self.engine.telemetry.registry
        for name in self.counters:
            registry.callback(
                f"interactive_{name}",
                lambda n=name, c=self.counters: c[n],
                help=f"Session incrementality counter '{name}'",
            )

    # -- label propagation ----------------------------------------------------

    def observe(self, node: Node, label: str, sample: Sample) -> None:
        """Propagate one new label; invalidate only what it can change."""
        self.sample = sample
        if label == NEGATIVE:
            # The negative set moved: coverage, its automaton and every
            # *informative* verdict derived from them are stale.  The
            # non-informative verdicts survive: adding a negative can only
            # shrink the uncovered language (monotone certainty, Lemma 4.1).
            self._table = None
            self._table_index = None
            self._informative = None
            self._informative_nodes.clear()
            self._coverage = None
            self._pending_negatives.append(node)
        else:
            # Lemma 4.1 monotonicity: a positive label cannot make any other
            # node informative or uninformative; only the node itself leaves
            # the candidate set.
            if self._informative is not None:
                self._informative = self._informative - {node}
            self._pending_positives.append(node)

    def set_k(self, k: int) -> None:
        """Move the session's path-length bound.

        The monotonicity flips relative to :meth:`observe`: a larger ``k``
        legalizes longer witnesses, so nodes found non-informative may flip
        while nodes found informative stay informative.
        """
        if k == self.k:
            return
        grew = k > self.k
        self.k = k
        self._table = None
        self._table_index = None
        self._informative = None
        if grew:
            self._non_informative.clear()
        else:
            self._informative_nodes.clear()
        # The NegativeCoverage prefix cache is per-word, not per-k: keep it.

    # -- informativeness ------------------------------------------------------

    def _index(self) -> GraphIndex:
        """The engine's current CSR snapshot, with staleness propagation.

        A graph mutation mints a new index (version counter), and with it
        every node-level verdict this state carries may be wrong -- an added
        edge can give a cached non-informative node an uncovered path.  The
        table and coverage caches revalidate against the index identity
        elsewhere; the verdict caches are cleared here, on the same signal.
        """
        index = self.engine.index_for(self.graph)
        if index is not self._seen_index:
            if self._seen_index is not None:
                self._informative = None
                self._informative_nodes.clear()
                self._non_informative.clear()
            self._seen_index = index
        return index

    def _successor_sets(self, index: GraphIndex) -> list[dict[int, frozenset[int]]]:
        if self._succ_sets is None or self._succ_index is not index:
            self._succ_sets = successor_sets(index)
            self._succ_index = index
        return self._succ_sets

    def _uncovered_table(self, index: GraphIndex) -> TableDFA:
        if self._table is None or self._table_index is not index:
            self._table = uncovered_words_table(
                index,
                (index.node_ids[node] for node in self.sample.negatives),
                k=self.k,
                alphabet=self.graph.alphabet,
                succ_sets=self._successor_sets(index),
            )
            self._table_index = index
        return self._table

    def informative_nodes(self) -> frozenset[Node]:
        """The current k-informative (unlabeled) nodes, batched and cached.

        At most one backward CSR product walk per (negative set, ``k``)
        pair; every further call -- and every round that only added positive
        labels -- is a set lookup.  The walk's verdicts also seed the
        per-node caches :meth:`is_informative` reads.
        """
        index = self._index()  # first: drops every cache if the graph moved
        if self._informative is not None:
            return self._informative
        labeled = self.sample.labeled
        if not self.sample.negatives:
            self._informative = frozenset(
                node for node in self.graph.nodes if node not in labeled
            )
            return self._informative
        table = self._uncovered_table(index)
        with self.engine.telemetry.span(
            "interactive.batched_walk", k=self.k, negatives=len(self.sample.negatives)
        ) as span:
            selected = self.engine.evaluate(
                self.graph, table, ephemeral=True, max_depth=self.k
            )
            span.set(selected=len(selected))
        self.counters["batched_walks"] += 1
        self._informative = selected - labeled
        # One walk decided every node: seed the per-node verdict caches.
        self._informative_nodes.update(selected)
        self._non_informative.update(
            node for node in self.graph.nodes if node not in selected
        )
        return self._informative

    def is_informative(self, node: Node) -> bool:
        """Per-candidate k-informativeness against the shared round table.

        A cache hit is O(1); a miss runs one early-exit forward product walk
        (:func:`repro.engine.executor.table_any_selects`, bounded to ``k``
        symbols) against the uncovered-words automaton, then records the
        verdict with the monotone lifetime rules documented on the class.
        The caller is responsible for excluding labeled nodes (labeled nodes
        are never informative).
        """
        index = self._index()  # first: drops every cache if the graph moved
        if node in self._non_informative:
            self.counters["verdict_hits"] += 1
            return False
        if node in self._informative_nodes:
            self.counters["verdict_hits"] += 1
            return True
        if not self.sample.negatives:
            # Every node's empty path is uncovered.
            self._informative_nodes.add(node)
            return True
        table = self._uncovered_table(index)
        verdict = self.engine.any_selects(
            self.graph, table, (node,), ephemeral=True, max_depth=self.k
        )
        self.counters["node_walks"] += 1
        if verdict:
            self._informative_nodes.add(node)
        else:
            self._non_informative.add(node)
        return verdict

    def uncovered_count(self, node: Node, *, cap: int | None = None) -> int:
        """Uncovered-path count of one candidate against the shared table."""
        index = self._index()
        table = self._uncovered_table(index) if self.sample.negatives else None
        self.counters["count_queries"] += 1
        return count_uncovered_k_paths(
            index,
            table,
            index.node_ids[node],
            k=self.k,
            cap=cap,
            succ_sets=self._successor_sets(index),
        )

    # -- learning -------------------------------------------------------------

    def coverage(self) -> NegativeCoverage:
        """The shared SCP prefix cache for the current negative set."""
        if self._coverage is None or not self._coverage.is_current(
            self.graph, self.sample.negatives
        ):
            self._coverage = NegativeCoverage(self._index(), self.sample.negatives)
        return self._coverage

    def _reusable_result(self, k: int) -> LearnerResult | None:
        """The previous hypothesis, iff the pending labels provably keep it.

        Sound because Algorithm 1 is a deterministic function of (SCP word
        set, negative set, k), and its red-blue loop replays identically
        when none of its decisions can flip:

        * a pending *positive* whose smallest consistent path is already
          among the carried SCP words leaves the PTA (and hence everything
          downstream) unchanged -- and is necessarily selected, since the
          quotient language contains every SCP;
        * a pending *negative* ``v`` that covers no carried SCP word leaves
          every positive's SCP in place (SCPs only grow under new
          negatives, and the carried one is still consistent); and if the
          carried hypothesis does not select ``v``, neither did any
          intermediate hypothesis of the previous merge loop (languages
          grow monotonically along accepted merges), so every
          accept/reject decision -- and the fold -- replays identically.

        Anything outside these two cases falls back to a full re-learn.
        """
        prev = self.last_result
        if (
            prev is None
            or prev.k != k
            or (prev.is_null and prev.positives_without_scp)
        ):
            return None
        if not self.sample.positives:
            # Still the trivial no-positives abstention, whatever was added.
            return prev
        if prev.hypothesis is None:
            return None
        prev_words = set(prev.scps.values())
        if self._pending_negatives:
            if any(
                covered_by(self.graph, word, self._pending_negatives)
                for word in prev_words
            ):
                return None
            if self.engine.any_selects(
                self.graph, prev.hypothesis, self._pending_negatives
            ):
                return None
        fresh: dict[Node, tuple] = {}
        if self._pending_positives:
            coverage = self.coverage()
            for node in self._pending_positives:
                word = next(
                    (
                        path
                        for path in enumerate_paths(self.graph, node, max_length=k)
                        if not coverage.covers(path)
                    ),
                    None,
                )
                if word is None or word not in prev_words:
                    return None
                fresh[node] = word
        if not fresh:
            return prev
        return replace(prev, scps={**prev.scps, **fresh})

    def learn(self, k: int, k_max: int) -> LearnerResult:
        """Re-learn on the current sample, reusing what the labels allow.

        Mirrors the session loop's dynamic procedure: learn at ``k``; while
        the learner abstains because some positive has no SCP within the
        bound, raise the bound up to ``k_max``.
        """
        started = time.perf_counter()
        with self.engine.telemetry.span("interactive.learn", k=k) as span:
            reused = self._reusable_result(k)
            if reused is not None:
                self.counters["reused_learns"] += 1
                result = replace(reused, elapsed=time.perf_counter() - started)
                span.set(reused=True)
            else:
                coverage = self.coverage()
                result = learn_path_query(
                    self.graph, self.sample, k=k, engine=self.engine, coverage=coverage
                )
                self.counters["full_learns"] += 1
                learn_k = k
                while result.is_null and result.positives_without_scp and learn_k < k_max:
                    learn_k += 1
                    result = learn_path_query(
                        self.graph, self.sample, k=learn_k, engine=self.engine, coverage=coverage
                    )
                    self.counters["full_learns"] += 1
                span.set(reused=False, final_k=result.k)
        self.last_result = result
        self._pending_positives.clear()
        self._pending_negatives.clear()
        return result
