"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one type to handle any failure of
this package without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AlphabetError(ReproError):
    """A symbol or word refers to a symbol outside the declared alphabet."""


class AutomatonError(ReproError):
    """An automaton is malformed or an operation received an invalid one."""


class RegexSyntaxError(ReproError):
    """A regular expression string could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class GraphError(ReproError):
    """A graph database operation received invalid nodes, edges or labels."""


class QueryError(ReproError):
    """A path query is malformed or evaluated against an incompatible graph."""


class SampleError(ReproError):
    """A sample of examples is malformed (e.g. a node labeled both + and -)."""


class LearningError(ReproError):
    """The learning algorithm was invoked with invalid parameters."""


class InteractionError(ReproError):
    """The interactive scenario was driven into an invalid state."""


class StorageError(ReproError):
    """A storage-layer operation failed (corrupt snapshot, bad ingest input,
    unknown catalog entry, ...)."""


class ConfigError(ReproError):
    """A typed configuration object (:mod:`repro.api.config`) is invalid."""


class TelemetryError(ReproError):
    """A telemetry operation failed (metric type clash, unreadable trace,
    malformed trace record, ...)."""


class SerializationError(ReproError):
    """A result or config payload could not be (de)serialized."""


class ServiceError(ReproError):
    """A query-service operation failed (client or server side).

    ``code`` is the wire-protocol error code (``bad_request``,
    ``overloaded``, ...) and ``status`` its HTTP-flavoured numeric twin --
    what a load balancer or client backoff policy keys on.
    """

    code = "internal"
    status = 500

    def __init__(self, message: str, *, code: str | None = None, status: int | None = None):
        super().__init__(message)
        if code is not None:
            self.code = code
        if status is not None:
            self.status = status


class ProtocolError(ServiceError):
    """A wire frame is malformed, oversized or semantically invalid."""

    code = "bad_request"
    status = 400


class OverloadedError(ServiceError):
    """The service shed the request (admission queue full or caps hit).

    The 429-style answer: the request was *not* executed; the client may
    retry after backing off.
    """

    code = "overloaded"
    status = 429
