"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one type to handle any failure of
this package without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AlphabetError(ReproError):
    """A symbol or word refers to a symbol outside the declared alphabet."""


class AutomatonError(ReproError):
    """An automaton is malformed or an operation received an invalid one."""


class RegexSyntaxError(ReproError):
    """A regular expression string could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class GraphError(ReproError):
    """A graph database operation received invalid nodes, edges or labels."""


class QueryError(ReproError):
    """A path query is malformed or evaluated against an incompatible graph."""


class SampleError(ReproError):
    """A sample of examples is malformed (e.g. a node labeled both + and -)."""


class LearningError(ReproError):
    """The learning algorithm was invoked with invalid parameters."""


class InteractionError(ReproError):
    """The interactive scenario was driven into an invalid state."""


class StorageError(ReproError):
    """A storage-layer operation failed (corrupt snapshot, bad ingest input,
    unknown catalog entry, ...)."""


class ConfigError(ReproError):
    """A typed configuration object (:mod:`repro.api.config`) is invalid."""


class TelemetryError(ReproError):
    """A telemetry operation failed (metric type clash, unreadable trace,
    malformed trace record, ...)."""


class SerializationError(ReproError):
    """A result or config payload could not be (de)serialized."""
