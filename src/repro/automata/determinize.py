"""Subset construction: NFA -> DFA.

Only the reachable part of the subset automaton is built, so the output is
already trimmed on the reachability side.  The construction itself runs in
the int-coded kernel (:meth:`repro.automata.kernel.TableDFA.from_nfa`);
this module is the boundary wrapper that restores the classic "states are
frozensets of NFA states" view.
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import DFA
from repro.automata.kernel import TableDFA
from repro.automata.nfa import NFA


def determinize(nfa: NFA) -> DFA:
    """Return a DFA accepting the same language as ``nfa``.

    The DFA states are frozensets of NFA states; callers that want opaque
    integer states can follow with :meth:`DFA.relabeled`, and callers that
    want the dense kernel form directly should use
    :meth:`~repro.automata.kernel.TableDFA.from_nfa`.
    """
    table, subsets = TableDFA.from_nfa(nfa)
    return table.to_dfa(states=subsets)


def reference_determinize(nfa: NFA) -> DFA:
    """The original object-level subset construction, kept as the parity
    oracle for the kernel's :meth:`TableDFA.from_nfa`."""
    start = nfa.epsilon_closure(nfa.initial_states)
    dfa = DFA(nfa.alphabet, initial=start)
    if start & nfa.final_states:
        dfa.add_final(start)
    queue: deque[frozenset] = deque([start])
    seen: set[frozenset] = {start}
    while queue:
        current = queue.popleft()
        for symbol in nfa.alphabet:
            target = nfa.step(current, symbol)
            if not target:
                continue
            dfa.add_transition(current, symbol, target)
            if target & nfa.final_states:
                dfa.add_final(target)
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return dfa
