"""Deterministic finite word automata (DFA).

A DFA here is *partial*: a missing transition means the word is rejected.
This matches the paper's canonical DFAs (Figure 4 shows the canonical DFA of
``(a.b)*.c`` with three states and no dead/sink state).  The size of a query
is the number of states of its canonical DFA, so keeping the representation
trimmed is important for reporting sizes faithfully.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator, Sequence

from repro.automata.alphabet import Alphabet, Word
from repro.automata.nfa import NFA
from repro.errors import AutomatonError

State = Hashable


class _SinkState:
    """The unique rejecting sink state added by :meth:`DFA.completed`.

    A dedicated sentinel *object* rather than a string: a user state
    literally named ``"__sink__"`` must never collide with the sink that
    completion introduces (it used to, silently corrupting the completed
    automaton).  Identity is the only equality that matters here, so the
    class carries no state.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<sink>"


#: The rejecting sink state added by :meth:`DFA.completed`.
SINK = _SinkState()


class DFA:
    """A (partial) deterministic finite word automaton."""

    def __init__(
        self,
        alphabet: Alphabet,
        *,
        initial: State,
        states: Iterable[State] = (),
        finals: Iterable[State] = (),
    ) -> None:
        self.alphabet = alphabet
        self.initial: State = initial
        self._states: set[State] = set(states)
        self._states.add(initial)
        self._finals: set[State] = set(finals)
        self._states.update(self._finals)
        self._transitions: dict[State, dict[str, State]] = {}

    # -- construction --------------------------------------------------------

    def add_state(self, state: State) -> State:
        """Add a state (idempotent) and return it."""
        self._states.add(state)
        return state

    def add_final(self, state: State) -> None:
        """Mark ``state`` as accepting, adding it if necessary."""
        self._states.add(state)
        self._finals.add(state)

    def set_final(self, state: State, final: bool) -> None:
        """Set whether ``state`` is accepting."""
        self._states.add(state)
        if final:
            self._finals.add(state)
        else:
            self._finals.discard(state)

    def add_transition(self, source: State, symbol: str, target: State) -> None:
        """Add the deterministic transition ``source --symbol--> target``.

        Raises :class:`AutomatonError` if a different transition on the same
        symbol already leaves ``source``.
        """
        if symbol not in self.alphabet:
            raise AutomatonError(f"symbol {symbol!r} is not in the alphabet")
        existing = self._transitions.get(source, {}).get(symbol)
        if existing is not None and existing != target:
            raise AutomatonError(
                f"state {source!r} already has a transition on {symbol!r} to {existing!r}"
            )
        self._states.add(source)
        self._states.add(target)
        self._transitions.setdefault(source, {})[symbol] = target

    # -- accessors -----------------------------------------------------------

    @property
    def states(self) -> frozenset[State]:
        """The set of states."""
        return frozenset(self._states)

    @property
    def final_states(self) -> frozenset[State]:
        """The set of accepting states."""
        return frozenset(self._finals)

    def is_final(self, state: State) -> bool:
        """Whether ``state`` is accepting."""
        return state in self._finals

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        return (
            f"DFA(states={len(self._states)}, finals={len(self._finals)}, "
            f"transitions={self.transition_count()})"
        )

    def transition_count(self) -> int:
        """The number of transitions."""
        return sum(len(by_symbol) for by_symbol in self._transitions.values())

    def delta(self, state: State, symbol: str) -> State | None:
        """The successor of ``state`` on ``symbol``, or None if undefined."""
        return self._transitions.get(state, {}).get(symbol)

    def outgoing(self, state: State) -> Iterator[tuple[str, State]]:
        """Yield the ``(symbol, target)`` transitions leaving ``state``."""
        yield from self._transitions.get(state, {}).items()

    def transitions(self) -> Iterator[tuple[State, str, State]]:
        """Yield all (source, symbol, target) transitions."""
        for source, by_symbol in self._transitions.items():
            for symbol, target in by_symbol.items():
                yield source, symbol, target

    # -- semantics -----------------------------------------------------------

    def run(self, word: Sequence[str]) -> State | None:
        """The state reached on ``word``, or None if the run dies."""
        state: State | None = self.initial
        for symbol in word:
            if state is None:
                return None
            state = self.delta(state, symbol)
        return state

    def accepts(self, word: Sequence[str]) -> bool:
        """Whether the automaton accepts the given word."""
        state = self.run(word)
        return state is not None and state in self._finals

    def is_empty(self) -> bool:
        """Whether the accepted language is empty."""
        return not (self.reachable_states() & self._finals)

    def shortest_accepted_word(self) -> Word | None:
        """The canonically smallest accepted word, or None if L is empty."""
        if self.initial in self._finals:
            return ()
        queue: deque[tuple[State, Word]] = deque([(self.initial, ())])
        seen: set[State] = {self.initial}
        while queue:
            state, word = queue.popleft()
            for symbol in self.alphabet:
                target = self.delta(state, symbol)
                if target is None:
                    continue
                if target in self._finals:
                    return word + (symbol,)
                if target not in seen:
                    seen.add(target)
                    queue.append((target, word + (symbol,)))
        return None

    # -- structural utilities ------------------------------------------------

    def reachable_states(self) -> frozenset[State]:
        """States reachable from the initial state."""
        reached: set[State] = {self.initial}
        stack: list[State] = [self.initial]
        while stack:
            state = stack.pop()
            for _, target in self.outgoing(state):
                if target not in reached:
                    reached.add(target)
                    stack.append(target)
        return frozenset(reached)

    def trim(self) -> "DFA":
        """Return a copy keeping only reachable and co-reachable states.

        The initial state is always kept (even if the language is empty) so
        the result remains a well-formed DFA.
        """
        reachable = self.reachable_states()
        predecessors: dict[State, set[State]] = {}
        for source, _, target in self.transitions():
            predecessors.setdefault(target, set()).add(source)
        coreachable: set[State] = set(self._finals)
        stack = list(coreachable)
        while stack:
            state = stack.pop()
            for pred in predecessors.get(state, ()):
                if pred not in coreachable:
                    coreachable.add(pred)
                    stack.append(pred)
        useful = (reachable & frozenset(coreachable)) | {self.initial}
        trimmed = DFA(
            self.alphabet,
            initial=self.initial,
            states=useful,
            finals=self._finals & useful,
        )
        for source, symbol, target in self.transitions():
            if source in useful and target in useful:
                trimmed.add_transition(source, symbol, target)
        return trimmed

    def completed(self) -> "DFA":
        """Return a complete copy (every state has a transition on every symbol).

        Missing transitions are redirected to a fresh rejecting sink state.
        """
        complete = DFA(
            self.alphabet,
            initial=self.initial,
            states=self._states,
            finals=self._finals,
        )
        needs_sink = False
        for state in self._states:
            for symbol in self.alphabet:
                target = self.delta(state, symbol)
                if target is None:
                    needs_sink = True
                    complete.add_transition(state, symbol, SINK)
                else:
                    complete.add_transition(state, symbol, target)
        if needs_sink:
            for symbol in self.alphabet:
                complete.add_transition(SINK, symbol, SINK)
        return complete

    def complement(self) -> "DFA":
        """Return a DFA for the complement language (over the same alphabet)."""
        complete = self.completed()
        result = DFA(
            self.alphabet,
            initial=complete.initial,
            states=complete.states,
            finals=complete.states - complete.final_states,
        )
        for source, symbol, target in complete.transitions():
            result.add_transition(source, symbol, target)
        return result

    def copy(self) -> "DFA":
        """A deep copy of this automaton."""
        other = DFA(
            self.alphabet,
            initial=self.initial,
            states=self._states,
            finals=self._finals,
        )
        for source, symbol, target in self.transitions():
            other.add_transition(source, symbol, target)
        return other

    def relabeled(self) -> "DFA":
        """An isomorphic copy whose states are 0..n-1 in BFS order.

        Because the BFS explores symbols in alphabet order, two isomorphic
        DFAs relabel to structurally identical automata, which gives a cheap
        isomorphism test used by the test suite.
        """
        order: list[State] = [self.initial]
        seen: set[State] = {self.initial}
        queue: deque[State] = deque([self.initial])
        while queue:
            state = queue.popleft()
            for symbol in self.alphabet:
                target = self.delta(state, symbol)
                if target is not None and target not in seen:
                    seen.add(target)
                    order.append(target)
                    queue.append(target)
        for state in sorted(self._states - seen, key=repr):
            order.append(state)
        mapping = {state: index for index, state in enumerate(order)}
        other = DFA(
            self.alphabet,
            initial=mapping[self.initial],
            states=mapping.values(),
            finals=(mapping[s] for s in self._finals),
        )
        for source, symbol, target in self.transitions():
            other.add_transition(mapping[source], symbol, mapping[target])
        return other

    def structurally_equal(self, other: "DFA") -> bool:
        """Whether the two DFAs are isomorphic (after BFS relabeling)."""
        left = self.trim().relabeled()
        right = other.trim().relabeled()
        if left.alphabet != right.alphabet:
            return False
        if left.states != right.states or left.final_states != right.final_states:
            return False
        return dict(left._transitions) == dict(right._transitions)

    # -- conversions ----------------------------------------------------------

    def to_nfa(self) -> NFA:
        """View this DFA as an NFA (copies the structure)."""
        nfa = NFA(
            self.alphabet,
            states=self._states,
            initial=[self.initial],
            finals=self._finals,
        )
        for source, symbol, target in self.transitions():
            nfa.add_transition(source, symbol, target)
        return nfa

    @classmethod
    def single_word(cls, alphabet: Alphabet, word: Sequence[str]) -> "DFA":
        """A DFA accepting exactly the one given word."""
        dfa = cls(alphabet, initial=0)
        current = 0
        for index, symbol in enumerate(word, start=1):
            dfa.add_transition(current, symbol, index)
            current = index
        dfa.add_final(current)
        return dfa
