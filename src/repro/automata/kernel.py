"""The int-coded automata kernel: one array-backed DFA core for every layer.

Everything above this module -- the automata algebra, the RPNI-style
learners and the query engine's plan compiler -- used to run on ``DFA``/
``NFA`` objects with hashable states and nested transition dicts, and the
engine then re-flattened every hypothesis into int tables anyway.  This
module is the single dense representation they now share:

* :class:`TableDFA` -- states are ``0..n-1``, symbols are the interned ids
  of an :class:`~repro.automata.alphabet.Alphabet` (``0..m-1``), the
  transition function is one flat ``array('i')`` of size ``n * m`` with
  ``-1`` for missing transitions, and the accepting set is an int bitmask.
* Kernel-native algorithms -- PTA construction from interned words
  (:func:`pta_table`), Hopcroft minimization (:meth:`TableDFA.minimized`),
  subset determinization (:meth:`TableDFA.from_nfa`), reachable product /
  intersection / inclusion (:func:`product_table`,
  :func:`intersection_nonempty`, :func:`language_included_tables`) and
  batched membership (:meth:`TableDFA.accepts_many`).
* :class:`MergeFold` -- the union-find RPNI merge-and-fold that replaces
  the copying ``deterministic_merge``: candidate merges are applied *in
  place* against an undo log (:meth:`MergeFold.mark` /
  :meth:`MergeFold.rollback`), so the learner's merge loop never clones the
  hypothesis automaton.  :func:`fold_generalize` is the red-blue loop of
  Algorithm 1 run directly on the fold.

The classic object API (:mod:`repro.automata.dfa`,
:mod:`~repro.automata.determinize`, :mod:`~repro.automata.minimize`,
:mod:`~repro.automata.pta`, :mod:`~repro.automata.merging`) is preserved as
thin wrappers that convert at the boundary; the engine's
:func:`repro.engine.plan.compile_plan` consumes the kernel arrays directly.
"""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.automata.alphabet import Alphabet, Word
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import AutomatonError, LearningError

#: Sentinel for a missing transition in a transition table.
NO_STATE = -1


class TableAutomaton:
    """Marker base for kernel automata the engine can walk without compiling.

    Subclasses (:class:`TableDFA` and :class:`MergeFold`) expose the uniform
    walk protocol used by the engine's ephemeral kernels:

    * ``alphabet`` -- the interning :class:`Alphabet`;
    * :meth:`kernel_walk` -- ``(trans, m, find, finals_mask, initial)``
      where ``trans`` is the flat transition array, ``m`` the symbol count,
      ``find`` an optional state-canonicalizer (``None`` when states are
      already canonical) and ``finals_mask`` the accepting bitmask;
    * :meth:`bind_labels` -- symbol id -> graph label id pairing.
    """

    __slots__ = ()

    alphabet: Alphabet

    def kernel_walk(self) -> tuple[array, int, Callable[[int], int] | None, int, int]:
        raise NotImplementedError

    def bind_labels(self, label_ids: dict[str, int]) -> list[int]:
        """Map each interned symbol id to a graph label id (or -1 if absent)."""
        return [label_ids.get(symbol, -1) for symbol in self.alphabet.symbols]


class TableDFA(TableAutomaton):
    """A (partial) DFA over dense int states and interned symbol ids.

    The canonical in-memory automaton of the repository: ``n`` states
    ``0..n-1`` (``initial`` is one of them), ``m = len(alphabet)`` symbols,
    ``trans[s * m + c]`` the successor of state ``s`` on symbol id ``c`` (or
    :data:`NO_STATE`), and ``finals`` an int bitmask of accepting states.
    """

    __slots__ = ("alphabet", "n", "m", "initial", "trans", "finals")

    def __init__(
        self,
        alphabet: Alphabet,
        *,
        n: int,
        trans: array,
        finals: int,
        initial: int = 0,
    ) -> None:
        self.alphabet = alphabet
        self.n = n
        self.m = len(alphabet)
        if len(trans) != n * self.m:
            raise AutomatonError(
                f"transition table has {len(trans)} entries, expected {n * self.m}"
            )
        if not 0 <= initial < max(n, 1):
            raise AutomatonError(f"initial state {initial} out of range")
        self.initial = initial
        self.trans = trans
        self.finals = finals

    # -- constructors --------------------------------------------------------

    @classmethod
    def blank(cls, alphabet: Alphabet, n: int) -> "TableDFA":
        """An ``n``-state automaton with no transitions and no finals."""
        return cls(alphabet, n=n, trans=array("i", [NO_STATE] * (n * len(alphabet))), finals=0)

    @classmethod
    def from_dfa(cls, dfa: DFA) -> tuple["TableDFA", list]:
        """Int-code a :class:`DFA`; returns the table and the state order.

        States are numbered in BFS order from the initial state (symbols
        explored in alphabet order, so two isomorphic DFAs int-code to
        identical tables); unreachable states follow, sorted by ``repr``.
        """
        alphabet = dfa.alphabet
        order: list = [dfa.initial]
        seen = {dfa.initial}
        queue = deque([dfa.initial])
        while queue:
            state = queue.popleft()
            for symbol in alphabet:
                target = dfa.delta(state, symbol)
                if target is not None and target not in seen:
                    seen.add(target)
                    order.append(target)
                    queue.append(target)
        for state in sorted(dfa.states - seen, key=repr):
            order.append(state)
        ids = {state: index for index, state in enumerate(order)}
        n, m = len(order), len(alphabet)
        trans = array("i", [NO_STATE] * (n * m))
        for source, symbol, target in dfa.transitions():
            trans[ids[source] * m + alphabet.index(symbol)] = ids[target]
        finals = 0
        for state in dfa.final_states:
            finals |= 1 << ids[state]
        return cls(alphabet, n=n, trans=trans, finals=finals, initial=0), order

    @classmethod
    def from_nfa(cls, nfa: NFA) -> tuple["TableDFA", list[frozenset]]:
        """Subset-determinize an :class:`NFA`; returns the table and subsets.

        Only the reachable part of the subset automaton is built (symbols in
        alphabet order, breadth first).  ``subsets[i]`` is the frozenset of
        NFA states the table state ``i`` stands for.
        """
        alphabet = nfa.alphabet
        m = len(alphabet)
        nfa_finals = nfa.final_states
        start = nfa.epsilon_closure(nfa.initial_states)
        subsets: list[frozenset] = [start]
        ids: dict[frozenset, int] = {start: 0}
        rows: list[array] = [array("i", [NO_STATE] * m)]
        finals = 1 if (start & nfa_finals) else 0
        queue: deque[int] = deque([0])
        while queue:
            current = queue.popleft()
            subset = subsets[current]
            row = rows[current]
            for position, symbol in enumerate(alphabet):
                target = nfa.step(subset, symbol)
                if not target:
                    continue
                target_id = ids.get(target)
                if target_id is None:
                    target_id = len(subsets)
                    ids[target] = target_id
                    subsets.append(target)
                    rows.append(array("i", [NO_STATE] * m))
                    if target & nfa_finals:
                        finals |= 1 << target_id
                    queue.append(target_id)
                row[position] = target_id
        trans = array("i")
        for row in rows:
            trans.extend(row)
        return cls(alphabet, n=len(subsets), trans=trans, finals=finals), subsets

    def to_dfa(self, states: Sequence | None = None) -> DFA:
        """Materialize a :class:`DFA`; ``states[i]`` names table state ``i``."""
        labels: Sequence = range(self.n) if states is None else states
        dfa = DFA(
            self.alphabet,
            initial=labels[self.initial],
            states=(labels[s] for s in range(self.n)),
            finals=(labels[s] for s in self.iter_finals()),
        )
        trans, m = self.trans, self.m
        symbols = self.alphabet.symbols
        for source in range(self.n):
            base = source * m
            for position in range(m):
                target = trans[base + position]
                if target >= 0:
                    dfa.add_transition(labels[source], symbols[position], labels[target])
        return dfa

    # -- protocol ------------------------------------------------------------

    def kernel_walk(self):
        return self.trans, self.m, None, self.finals, self.initial

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"TableDFA(states={self.n}, symbols={self.m}, "
            f"finals={bin(self.finals).count('1')})"
        )

    # -- accessors -----------------------------------------------------------

    def delta_id(self, state: int, symbol_id: int) -> int:
        """Successor of ``state`` on interned ``symbol_id`` (or -1)."""
        return self.trans[state * self.m + symbol_id]

    def is_final(self, state: int) -> bool:
        """Whether the given table state is accepting."""
        return bool((self.finals >> state) & 1)

    def iter_finals(self) -> Iterator[int]:
        """Yield the accepting states in increasing order."""
        mask, state = self.finals, 0
        while mask:
            if mask & 1:
                yield state
            mask >>= 1
            state += 1

    def transition_count(self) -> int:
        """The number of present transitions."""
        return sum(1 for target in self.trans if target >= 0)

    def fingerprint(self) -> tuple:
        """A hashable structural fingerprint computed from the raw arrays."""
        return (
            "tdfa",
            self.alphabet.symbols,
            self.n,
            self.initial,
            self.finals,
            self.trans.tobytes(),
        )

    # -- semantics -----------------------------------------------------------

    def encode(self, word: Sequence[str]) -> tuple[int, ...]:
        """Intern a word of symbols into a tuple of symbol ids."""
        index = self.alphabet.index
        return tuple(index(symbol) for symbol in word)

    def run_ids(self, word_ids: Sequence[int]) -> int:
        """The state reached on an interned word, or -1 if the run dies."""
        state, trans, m = self.initial, self.trans, self.m
        for symbol_id in word_ids:
            state = trans[state * m + symbol_id]
            if state < 0:
                return NO_STATE
        return state

    def accepts_ids(self, word_ids: Sequence[int]) -> bool:
        """Whether the automaton accepts an interned word."""
        state = self.run_ids(word_ids)
        return state >= 0 and bool((self.finals >> state) & 1)

    def accepts(self, word: Sequence[str]) -> bool:
        """Whether the automaton accepts the given word of symbols."""
        return self.accepts_ids(self.encode(word))

    def accepts_many(self, words: Iterable[Sequence[str]]) -> list[bool]:
        """Batched membership: one bool per input word, in input order.

        Interns every word once and walks the flat table -- the example-set
        consistency checks of the learner and the evaluation metrics hit
        this instead of per-word ``DFA.accepts`` dict chains.
        """
        index = self.alphabet.index
        trans, m, finals = self.trans, self.m, self.finals
        results: list[bool] = []
        for word in words:
            state = self.initial
            for symbol in word:
                state = trans[state * m + index(symbol)]
                if state < 0:
                    break
            results.append(state >= 0 and bool((finals >> state) & 1))
        return results

    def is_empty_language(self) -> bool:
        """Whether no accepting state is reachable from the initial state."""
        if not self.finals:
            return True
        trans, m, finals = self.trans, self.m, self.finals
        seen = bytearray(self.n)
        seen[self.initial] = 1
        stack = [self.initial]
        while stack:
            state = stack.pop()
            if (finals >> state) & 1:
                return False
            base = state * m
            for position in range(m):
                target = trans[base + position]
                if target >= 0 and not seen[target]:
                    seen[target] = 1
                    stack.append(target)
        return True

    def shortest_word(self) -> Word | None:
        """The canonically smallest accepted word, or None if L is empty."""
        if (self.finals >> self.initial) & 1:
            return ()
        symbols = self.alphabet.symbols
        trans, m, finals = self.trans, self.m, self.finals
        seen = bytearray(self.n)
        seen[self.initial] = 1
        queue: deque[tuple[int, Word]] = deque([(self.initial, ())])
        while queue:
            state, word = queue.popleft()
            base = state * m
            for position in range(m):
                target = trans[base + position]
                if target < 0:
                    continue
                if (finals >> target) & 1:
                    return word + (symbols[position],)
                if not seen[target]:
                    seen[target] = 1
                    queue.append((target, word + (symbols[position],)))
        return None

    # -- structure -----------------------------------------------------------

    def reachable_mask(self) -> bytearray:
        """Byte-per-state reachability flags from the initial state."""
        trans, m = self.trans, self.m
        seen = bytearray(self.n)
        seen[self.initial] = 1
        stack = [self.initial]
        while stack:
            state = stack.pop()
            base = state * m
            for position in range(m):
                target = trans[base + position]
                if target >= 0 and not seen[target]:
                    seen[target] = 1
                    stack.append(target)
        return seen

    def coreachable_mask(self) -> bytearray:
        """Byte-per-state flags of states from which a final is reachable."""
        preds: list[list[int]] = [[] for _ in range(self.n)]
        trans, m = self.trans, self.m
        for source in range(self.n):
            base = source * m
            for position in range(m):
                target = trans[base + position]
                if target >= 0:
                    preds[target].append(source)
        seen = bytearray(self.n)
        stack: list[int] = []
        for state in self.iter_finals():
            seen[state] = 1
            stack.append(state)
        while stack:
            state = stack.pop()
            for pred in preds[state]:
                if not seen[pred]:
                    seen[pred] = 1
                    stack.append(pred)
        return seen

    def trimmed(self) -> "TableDFA":
        """Reachable-and-coreachable restriction, renumbered in BFS order.

        The initial state is always kept (possibly with no transitions), so
        the result stays a well-formed automaton even for the empty
        language.  The BFS renumbering makes ``canonical()`` a normal form.
        """
        reachable = self.reachable_mask()
        coreachable = self.coreachable_mask()
        useful = bytearray(
            1 if (reachable[s] and coreachable[s]) else 0 for s in range(self.n)
        )
        useful[self.initial] = 1
        trans, m = self.trans, self.m
        order: list[int] = [self.initial]
        ids = {self.initial: 0}
        queue = deque([self.initial])
        while queue:
            state = queue.popleft()
            base = state * m
            for position in range(m):
                target = trans[base + position]
                if target >= 0 and useful[target] and target not in ids:
                    ids[target] = len(order)
                    order.append(target)
                    queue.append(target)
        new_n = len(order)
        new_trans = array("i", [NO_STATE] * (new_n * m))
        finals = 0
        for new_id, old in enumerate(order):
            if (self.finals >> old) & 1:
                finals |= 1 << new_id
            base, new_base = old * m, new_id * m
            for position in range(m):
                target = trans[base + position]
                if target >= 0 and useful[target]:
                    new_trans[new_base + position] = ids[target]
        return TableDFA(self.alphabet, n=new_n, trans=new_trans, finals=finals, initial=0)

    def completed(self) -> "TableDFA":
        """A complete copy: missing transitions redirected to a sink state.

        The sink (index ``n``) is appended only when some transition is
        missing; a complete input is returned unchanged.
        """
        if all(target >= 0 for target in self.trans):
            return self
        m = self.m
        n = self.n + 1
        sink = self.n
        trans = array("i", self.trans)
        for position in range(len(trans)):
            if trans[position] < 0:
                trans[position] = sink
        trans.extend([sink] * m)
        return TableDFA(self.alphabet, n=n, trans=trans, finals=self.finals, initial=self.initial)

    def minimized(self) -> "TableDFA":
        """The minimal *complete* equivalent automaton (Hopcroft).

        The result may include a rejecting sink block when the language is
        not ``Sigma*``-total; :meth:`canonical` trims it away.  Blocks are
        renumbered in BFS order from the initial block for determinism.
        """
        complete = self.completed()
        block_of, block_count = _hopcroft(
            complete.n, complete.m, complete.trans, complete.finals
        )
        m = complete.m
        # One representative per block is enough to read off the quotient.
        representative = [NO_STATE] * block_count
        for state in range(complete.n):
            if representative[block_of[state]] < 0:
                representative[block_of[state]] = state
        # BFS renumber blocks from the initial block.
        order: list[int] = [block_of[complete.initial]]
        ids = {order[0]: 0}
        queue = deque(order)
        while queue:
            block = queue.popleft()
            base = representative[block] * m
            for position in range(m):
                target_block = block_of[complete.trans[base + position]]
                if target_block not in ids:
                    ids[target_block] = len(order)
                    order.append(target_block)
                    queue.append(target_block)
        for block in range(block_count):  # unreachable blocks (none after trim)
            if block not in ids:
                ids[block] = len(order)
                order.append(block)
        new_n = len(order)
        trans = array("i", [NO_STATE] * (new_n * m))
        finals = 0
        for new_id, block in enumerate(order):
            state = representative[block]
            if (complete.finals >> state) & 1:
                finals |= 1 << new_id
            base, new_base = state * m, new_id * m
            for position in range(m):
                trans[new_base + position] = ids[block_of[complete.trans[base + position]]]
        return TableDFA(self.alphabet, n=new_n, trans=trans, finals=finals, initial=0)

    def canonical(self) -> "TableDFA":
        """The canonical DFA: minimal, trimmed, states in BFS order.

        This is the paper's query representation (partial, no sink, no dead
        states); equal languages over equal alphabets produce *identical*
        tables, which is what the plan cache fingerprints rely on.
        """
        return self.trimmed().minimized().trimmed()

    def reindexed(self, alphabet: Alphabet) -> "TableDFA":
        """The same automaton over a (super-)alphabet, symbol ids remapped."""
        if alphabet == self.alphabet:
            return self
        positions = []
        for symbol in self.alphabet.symbols:
            if symbol not in alphabet:
                raise AutomatonError(f"symbol {symbol!r} missing from the target alphabet")
            positions.append(alphabet.index(symbol))
        new_m = len(alphabet)
        trans = array("i", [NO_STATE] * (self.n * new_m))
        for state in range(self.n):
            base, new_base = state * self.m, state * new_m
            for old_position, new_position in enumerate(positions):
                trans[new_base + new_position] = self.trans[base + old_position]
        return TableDFA(
            alphabet, n=self.n, trans=trans, finals=self.finals, initial=self.initial
        )

    def complemented(self) -> "TableDFA":
        """A complete automaton for the complement language."""
        complete = self.completed()
        all_states = (1 << complete.n) - 1
        return TableDFA(
            complete.alphabet,
            n=complete.n,
            trans=array("i", complete.trans),
            finals=all_states & ~complete.finals,
            initial=complete.initial,
        )


# -- Hopcroft ------------------------------------------------------------------


def _hopcroft(n: int, m: int, trans: array, finals: int) -> tuple[list[int], int]:
    """Hopcroft partition refinement on a *complete* transition table.

    Returns ``(block_of, block_count)``.  ``O(m * n * log n)`` with the
    usual process-smaller-half worklist; the worklist holds block ids and a
    split keeps the shrunken block's id pending ("replace by both halves").
    """
    accepting = [s for s in range(n) if (finals >> s) & 1]
    rejecting = [s for s in range(n) if not (finals >> s) & 1]
    if not accepting or not rejecting:
        return [0] * n, 1

    # Per-symbol predecessor lists (flat: preds[c][q] = states p with p--c-->q).
    preds: list[list[list[int]]] = [[[] for _ in range(n)] for _ in range(m)]
    for source in range(n):
        base = source * m
        for position in range(m):
            preds[position][trans[base + position]].append(source)

    partition: list[set[int]] = [set(accepting), set(rejecting)]
    block_of = [0] * n
    for state in rejecting:
        block_of[state] = 1
    worklist: set[int] = {0 if len(accepting) <= len(rejecting) else 1}

    while worklist:
        splitter = list(partition[worklist.pop()])
        for position in range(m):
            by_target = preds[position]
            touched: dict[int, list[int]] = {}
            for target in splitter:
                for source in by_target[target]:
                    touched.setdefault(block_of[source], []).append(source)
            for block_id, members in touched.items():
                block = partition[block_id]
                if len(members) == len(block):
                    continue
                moved = set(members)
                partition[block_id] = block - moved
                new_id = len(partition)
                partition.append(moved)
                for state in moved:
                    block_of[state] = new_id
                if block_id in worklist:
                    worklist.add(new_id)
                else:
                    worklist.add(
                        block_id if len(partition[block_id]) <= len(moved) else new_id
                    )
    return block_of, len(partition)


# -- PTA -----------------------------------------------------------------------


def pta_table(
    alphabet: Alphabet, words: Iterable[Sequence[str]], *, with_prefixes: bool = False
) -> "TableDFA | tuple[TableDFA, list[Word]]":
    """The prefix tree acceptor of ``words`` as a :class:`TableDFA`.

    States are numbered in the *canonical order* of their prefixes (breadth
    first, symbols in alphabet order), so plain int comparison of state ids
    realizes the merge order Algorithm 1 and RPNI rely on.  With
    ``with_prefixes=True`` the prefix words themselves are returned too (the
    classic DFA wrapper uses them as state names).
    """
    index = alphabet.index
    m = len(alphabet)
    # Trie over symbol ids: children[node][symbol_id] -> node.
    children: list[dict[int, int]] = [{}]
    accepting: set[int] = set()
    for word in words:
        node = 0
        for symbol in word:
            symbol_id = index(symbol)
            nxt = children[node].get(symbol_id)
            if nxt is None:
                nxt = len(children)
                children.append({})
                children[node][symbol_id] = nxt
            node = nxt
        accepting.add(node)

    # Canonical (BFS, symbol-ordered) renumbering of the trie.
    order: list[int] = [0]
    prefixes: list[Word] = [()]
    ids = {0: 0}
    queue = deque([0])
    symbols = alphabet.symbols
    while queue:
        node = queue.popleft()
        prefix = prefixes[ids[node]]
        for symbol_id in sorted(children[node]):
            child = children[node][symbol_id]
            ids[child] = len(order)
            order.append(child)
            prefixes.append(prefix + (symbols[symbol_id],))
            queue.append(child)

    n = len(order)
    trans = array("i", [NO_STATE] * (n * m))
    finals = 0
    for node, node_id in ids.items():
        if node in accepting:
            finals |= 1 << node_id
        base = node_id * m
        for symbol_id, child in children[node].items():
            trans[base + symbol_id] = ids[child]
    tdfa = TableDFA(alphabet, n=n, trans=trans, finals=finals, initial=0)
    if with_prefixes:
        return tdfa, prefixes
    return tdfa


# -- products ------------------------------------------------------------------


def product_table(left: TableDFA, right: TableDFA) -> tuple[TableDFA, list[tuple[int, int]]]:
    """The reachable product (intersection) of two same-alphabet tables.

    Returns the product automaton and the ``(left state, right state)``
    pair behind each product state.  Only pairs where both sides are alive
    are built, so the output is reachability-trimmed like the classic
    construction.
    """
    if left.alphabet != right.alphabet:
        raise AutomatonError("product requires a common alphabet; reindex first")
    m = left.m
    lt, rt = left.trans, right.trans
    pairs: list[tuple[int, int]] = [(left.initial, right.initial)]
    ids = {pairs[0]: 0}
    rows: list[array] = [array("i", [NO_STATE] * m)]
    finals = 1 if (left.is_final(left.initial) and right.is_final(right.initial)) else 0
    queue = deque([0])
    while queue:
        current = queue.popleft()
        left_state, right_state = pairs[current]
        lbase, rbase = left_state * m, right_state * m
        row = rows[current]
        for position in range(m):
            left_target = lt[lbase + position]
            if left_target < 0:
                continue
            right_target = rt[rbase + position]
            if right_target < 0:
                continue
            pair = (left_target, right_target)
            pair_id = ids.get(pair)
            if pair_id is None:
                pair_id = len(pairs)
                ids[pair] = pair_id
                pairs.append(pair)
                rows.append(array("i", [NO_STATE] * m))
                if left.is_final(left_target) and right.is_final(right_target):
                    finals |= 1 << pair_id
                queue.append(pair_id)
            row[position] = pair_id
    trans = array("i")
    for row in rows:
        trans.extend(row)
    product = TableDFA(left.alphabet, n=len(pairs), trans=trans, finals=finals)
    return product, pairs


def intersection_nonempty(left: TableDFA, right: TableDFA) -> bool:
    """Whether ``L(left) & L(right)`` is non-empty (early-exit pair BFS)."""
    if left.alphabet != right.alphabet:
        raise AutomatonError("intersection requires a common alphabet; reindex first")
    m = left.m
    lt, rt = left.trans, right.trans
    lf, rf = left.finals, right.finals
    start = (left.initial, right.initial)
    if ((lf >> start[0]) & 1) and ((rf >> start[1]) & 1):
        return True
    seen = {start}
    queue = deque([start])
    while queue:
        left_state, right_state = queue.popleft()
        lbase, rbase = left_state * m, right_state * m
        for position in range(m):
            left_target = lt[lbase + position]
            if left_target < 0:
                continue
            right_target = rt[rbase + position]
            if right_target < 0:
                continue
            if ((lf >> left_target) & 1) and ((rf >> right_target) & 1):
                return True
            pair = (left_target, right_target)
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return False


def language_included_tables(left: TableDFA, right: TableDFA) -> bool:
    """Whether ``L(left)`` is a subset of ``L(right)`` (same alphabet).

    Linear in the reachable product: walk ``left`` paired with ``right``
    (``-1`` standing for right's implicit dead sink) and fail on any pair
    that is left-accepting but not right-accepting.  This replaces the
    exponential complement-then-intersect route for the common DFA/DFA case.
    """
    if left.alphabet != right.alphabet:
        raise AutomatonError("inclusion requires a common alphabet; reindex first")
    m = left.m
    lt, rt = left.trans, right.trans
    lf, rf = left.finals, right.finals

    def right_accepts(state: int) -> bool:
        return state >= 0 and bool((rf >> state) & 1)

    start = (left.initial, right.initial)
    if ((lf >> start[0]) & 1) and not right_accepts(start[1]):
        return False
    seen = {start}
    queue = deque([start])
    while queue:
        left_state, right_state = queue.popleft()
        lbase = left_state * m
        rbase = right_state * m if right_state >= 0 else -1
        for position in range(m):
            left_target = lt[lbase + position]
            if left_target < 0:
                continue
            right_target = rt[rbase + position] if rbase >= 0 else NO_STATE
            if ((lf >> left_target) & 1) and not right_accepts(right_target):
                return False
            pair = (left_target, right_target)
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return True


# -- the RPNI fold -------------------------------------------------------------

_UNION = 0
_TRANS = 1


class MergeFold(TableAutomaton):
    """In-place RPNI merge-and-fold over a :class:`TableDFA` with undo.

    A union-find over the table's states; each class is one hypothesis
    state, represented by the class *root*: its smallest member id.  For
    tables built by :func:`pta_table` state ids realize the canonical word
    order, so the root is the canonically smallest prefix of the class --
    the access-word representative classical RPNI orders by.  (The legacy
    object-level merge picked representatives in set-iteration order, which
    silently depended on Python's hash seed; plain int-min is the
    deterministic, canonical choice.)  Each root's transition row holds the
    folded row of its class -- targets may be stale members whose class has
    since grown, so readers canonicalize targets with :meth:`find`.

    Candidate merges mutate the fold directly; :meth:`mark` /
    :meth:`rollback` bracket a speculative merge (the undo log records
    every union and row write), and :meth:`commit` freezes an accepted
    merge (compressing the union-find paths and clearing the log).  The
    learner loop therefore never copies the automaton: a rejected candidate
    costs exactly the work of undoing its own writes.
    """

    __slots__ = ("alphabet", "n", "m", "_parent", "_trans", "finals", "_initial", "_log")

    def __init__(self, table: TableDFA) -> None:
        self.alphabet = table.alphabet
        self.n = table.n
        self.m = table.m
        self._parent = list(range(table.n))
        self._trans = array("i", table.trans)
        self.finals = table.finals
        self._initial = table.initial
        self._log: list[tuple[int, int, int]] = []

    # -- union-find ----------------------------------------------------------

    def find(self, state: int) -> int:
        """The root (representative) of ``state``'s class.

        No path compression here: parent edges written since the last
        :meth:`commit` may be rolled back, so speculative reads must not
        rewrite them.  :meth:`commit` compresses everything in one pass.
        """
        parent = self._parent
        while parent[state] != state:
            state = parent[state]
        return state

    @property
    def initial(self) -> int:
        """The root of the class containing the original initial state."""
        return self.find(self._initial)

    def is_final(self, state: int) -> bool:
        """Whether the class rooted at ``state`` is accepting."""
        return bool((self.finals >> state) & 1)

    def roots(self) -> list[int]:
        """The class roots (the hypothesis states), in increasing id order."""
        parent = self._parent
        return [state for state in range(self.n) if parent[state] == state]

    def kernel_walk(self):
        return self._trans, self.m, self.find, self.finals, self.initial

    def moves(self, root: int) -> Iterator[tuple[int, int]]:
        """Yield ``(symbol id, target root)`` for the class rooted at ``root``."""
        trans, find = self._trans, self.find
        base = root * self.m
        for position in range(self.m):
            target = trans[base + position]
            if target >= 0:
                yield position, find(target)

    # -- speculative merging -------------------------------------------------

    def mark(self) -> tuple[int, int]:
        """A checkpoint to :meth:`rollback` to (log position + finals mask)."""
        return len(self._log), self.finals

    def merge(self, keep: int, remove: int) -> None:
        """Merge ``remove``'s class into ``keep``'s and fold to determinism.

        Exactly the classical merge-and-fold: when the union makes two
        transitions on one symbol leave the merged class towards different
        classes, those targets are merged in turn.  The smaller root wins
        every union, so a class is always represented by its canonically
        smallest member.  All mutations are appended to the undo log.
        """
        trans, parent, m = self._trans, self._parent, self.m
        log = self._log
        pending = [(keep, remove)]
        while pending:
            left, right = pending.pop()
            root, child = self.find(left), self.find(right)
            if root == child:
                continue
            if child < root:
                root, child = child, root
            log.append((_UNION, child, child))
            parent[child] = root
            if (self.finals >> child) & 1:
                self.finals |= 1 << root
            root_base, child_base = root * m, child * m
            for position in range(m):
                child_target = trans[child_base + position]
                if child_target < 0:
                    continue
                root_target = trans[root_base + position]
                if root_target < 0:
                    log.append((_TRANS, root_base + position, NO_STATE))
                    trans[root_base + position] = child_target
                elif self.find(root_target) != self.find(child_target):
                    pending.append((root_target, child_target))

    def rollback(self, mark: tuple[int, int]) -> None:
        """Undo every mutation after ``mark`` (a rejected candidate merge)."""
        position, finals = mark
        log, parent, trans = self._log, self._parent, self._trans
        while len(log) > position:
            kind, where, old = log.pop()
            if kind == _UNION:
                parent[where] = old
            else:
                trans[where] = old
        self.finals = finals

    def commit(self) -> None:
        """Accept the speculative merges: compress paths, clear the log."""
        parent, find = self._parent, self.find
        for state in range(self.n):
            parent[state] = find(state)
        self._log.clear()

    # -- semantics ------------------------------------------------------------

    def accepts_ids(self, word_ids: Sequence[int]) -> bool:
        """Whether the current hypothesis accepts an interned word."""
        trans, m, find = self._trans, self.m, self.find
        state = self.initial
        for symbol_id in word_ids:
            target = trans[state * m + symbol_id]
            if target < 0:
                return False
            state = find(target)
        return bool((self.finals >> state) & 1)

    def accepts(self, word: Sequence[str]) -> bool:
        """Whether the current hypothesis accepts a word of symbols."""
        index = self.alphabet.index
        return self.accepts_ids([index(symbol) for symbol in word])

    def __len__(self) -> int:
        return len(self.roots())

    def __repr__(self) -> str:
        return f"MergeFold(classes={len(self.roots())}, of={self.n})"

    # -- materialization ------------------------------------------------------

    def to_table(self) -> TableDFA:
        """The quotient automaton as a compact :class:`TableDFA`.

        Roots are renumbered in increasing id order, which preserves the
        canonical ordering of PTA-built inputs.
        """
        roots = self.roots()
        ids = {root: index for index, root in enumerate(roots)}
        m, find = self.m, self.find
        trans = array("i", [NO_STATE] * (len(roots) * m))
        finals = 0
        for new_id, root in enumerate(roots):
            if (self.finals >> root) & 1:
                finals |= 1 << new_id
            base, new_base = root * m, new_id * m
            for position in range(m):
                target = self._trans[base + position]
                if target >= 0:
                    trans[new_base + position] = ids[find(target)]
        return TableDFA(
            self.alphabet,
            n=len(roots),
            trans=trans,
            finals=finals,
            initial=ids[self.initial],
        )

    def to_dfa(self, labels: Sequence) -> DFA:
        """The quotient as a :class:`DFA`, roots named by ``labels[root]``."""
        roots = self.roots()
        m, find = self.m, self.find
        symbols = self.alphabet.symbols
        dfa = DFA(
            self.alphabet,
            initial=labels[self.initial],
            states=(labels[root] for root in roots),
            finals=(labels[root] for root in roots if (self.finals >> root) & 1),
        )
        for root in roots:
            base = root * m
            for position in range(m):
                target = self._trans[base + position]
                if target >= 0:
                    dfa.add_transition(labels[root], symbols[position], labels[find(target)])
        return dfa


def fold_generalize(
    table: TableDFA,
    violates: Callable[[MergeFold], bool],
    *,
    max_merges: int | None = None,
) -> MergeFold:
    """Algorithm 1's red-blue generalization run in place on a fold.

    ``violates(fold)`` is the merge guard: it sees the *current hypothesis*
    (the fold itself, walkable by the engine's ephemeral kernels and by
    ``accepts``/``accepts_ids``) and must return True when it is
    unacceptable (e.g. selects a negative node).  A candidate merge is kept
    only if the merged fold passes; rejected candidates are rolled back in
    place, so no copy of the automaton is ever made.

    States are considered in canonical order -- which, for PTA tables from
    :func:`pta_table`, is plain int order of state ids.
    """
    fold = MergeFold(table)
    if violates(fold):
        raise LearningError("the initial automaton already violates the guard")
    find = fold.find
    red: list[int] = [fold.initial]
    merges_done = 0

    def blue_states() -> list[int]:
        red_set = set(red)
        successors = {
            target
            for red_state in red
            for _, target in fold.moves(red_state)
            if target not in red_set
        }
        return sorted(successors)

    blue = blue_states()
    while blue:
        if max_merges is not None and merges_done >= max_merges:
            break
        candidate = blue[0]
        merged = False
        for red_state in red:  # kept sorted: canonical trial order
            mark = fold.mark()
            fold.merge(red_state, candidate)
            if violates(fold):
                fold.rollback(mark)
                continue
            fold.commit()
            merges_done += 1
            # Every surviving class that contained a red state stays red.
            red = sorted({find(state) for state in red} | {fold.initial})
            merged = True
            break
        if not merged:
            red = sorted(set(red) | {candidate})
        blue = blue_states()
    return fold
