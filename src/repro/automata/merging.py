"""State merging (quotient) operations used by the generalization phase.

Algorithm 1 (lines 4-5) generalizes the PTA by repeatedly replacing a state
``s'`` by a state ``s`` (written ``A_{s'->s}``) as long as the resulting
automaton selects no negative example.  Two flavours are provided:

* :func:`merge_states` -- the plain quotient; the result may be
  nondeterministic, so it is returned as an :class:`NFA`.
* :func:`deterministic_merge` -- the RPNI-style merge-and-fold that keeps the
  automaton deterministic by merging the targets of any transitions that
  would otherwise conflict.  It now runs on the int-coded kernel's
  :class:`~repro.automata.kernel.MergeFold` (one union-find pass, no
  recursion, no repeated copies); this wrapper converts at the boundary.
  Learner loops that evaluate many candidate merges should hold a
  ``MergeFold`` directly and use its in-place ``mark``/``merge``/``rollback``
  cycle instead of calling this function per candidate.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.automata.dfa import DFA
from repro.automata.kernel import MergeFold, TableDFA
from repro.automata.nfa import NFA
from repro.errors import AutomatonError

State = Hashable


def merge_states(automaton: DFA | NFA, keep: State, remove: State) -> NFA:
    """Return the quotient automaton ``A_{remove -> keep}`` as an NFA.

    Every occurrence of ``remove`` (as a source, target, initial or final
    state) is replaced by ``keep``.
    """
    source_nfa = automaton.to_nfa() if isinstance(automaton, DFA) else automaton
    if keep not in source_nfa.states or remove not in source_nfa.states:
        raise AutomatonError("both states must belong to the automaton")

    def rename(state: State) -> State:
        return keep if state == remove else state

    merged = NFA(
        source_nfa.alphabet,
        states=(rename(s) for s in source_nfa.states),
        initial=(rename(s) for s in source_nfa.initial_states),
        finals=(rename(s) for s in source_nfa.final_states),
    )
    for source, symbol, target in source_nfa.transitions():
        merged.add_transition(rename(source), symbol, rename(target))
    for source in source_nfa.states:
        for target in source_nfa.epsilon_successors(source):
            merged.add_epsilon_transition(rename(source), rename(target))
    return merged


def deterministic_merge(dfa: DFA, keep: State, remove: State) -> DFA:
    """Merge ``remove`` into ``keep`` and restore determinism by folding.

    When the merge makes two transitions on the same symbol leave the same
    state towards different targets, those targets are merged in turn,
    exactly as in RPNI's ``merge-and-fold``.  The result is a DFA over the
    same alphabet whose language includes the language of the input DFA;
    its states are the representatives of the merged classes (``keep``
    represents the class it was merged into).
    """
    if keep not in dfa.states or remove not in dfa.states:
        raise AutomatonError("both states must belong to the automaton")
    if keep == remove:
        return dfa.copy()
    table, labels = TableDFA.from_dfa(dfa)
    ids = {label: index for index, label in enumerate(labels)}
    fold = MergeFold(table)
    fold.merge(ids[keep], ids[remove])
    # The fold names classes by their smallest member; this public wrapper
    # guarantees (as the original implementation did) that the merged class
    # is named ``keep``.  No other class contains ``keep``, so the rename
    # cannot collide.
    labels = list(labels)
    labels[fold.find(ids[keep])] = keep
    return fold.to_dfa(labels)


def reference_deterministic_merge(dfa: DFA, keep: State, remove: State) -> DFA:
    """The original copying merge-and-fold over ``DFA`` objects.

    Kept as the parity oracle for :class:`MergeFold` and as the legacy
    baseline of the learner-speed benchmark.
    """
    if keep not in dfa.states or remove not in dfa.states:
        raise AutomatonError("both states must belong to the automaton")
    if keep == remove:
        return dfa.copy()

    # Union-find over the DFA's states; each class will become one new state.
    parent: dict[State, State] = {state: state for state in dfa.states}

    def find(state: State) -> State:
        root = state
        while parent[root] != root:
            root = parent[root]
        while parent[state] != root:
            parent[state], state = root, parent[state]
        return root

    def union(left: State, right: State) -> None:
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[right_root] = left_root

    pending: list[tuple[State, State]] = [(keep, remove)]
    while pending:
        left, right = pending.pop()
        left_root, right_root = find(left), find(right)
        if left_root == right_root:
            continue
        union(left_root, right_root)
        merged_root = find(left_root)
        # Collect the outgoing transitions of the merged class and detect
        # conflicts that require further merges.
        targets_by_symbol: dict[str, State] = {}
        for member in dfa.states:
            if find(member) != merged_root:
                continue
            for symbol, target in dfa.outgoing(member):
                target_root = find(target)
                existing = targets_by_symbol.get(symbol)
                if existing is None:
                    targets_by_symbol[symbol] = target_root
                elif find(existing) != target_root:
                    pending.append((existing, target_root))

    representative: dict[State, State] = {state: find(state) for state in dfa.states}
    merged = DFA(
        dfa.alphabet,
        initial=representative[dfa.initial],
        states=set(representative.values()),
        finals={representative[s] for s in dfa.final_states},
    )
    for source, symbol, target in dfa.transitions():
        src, tgt = representative[source], representative[target]
        existing = merged.delta(src, symbol)
        if existing is None:
            merged.add_transition(src, symbol, tgt)
        elif existing != tgt:
            # The union-find closure above guarantees this cannot happen.
            raise AutomatonError("merge-and-fold left a nondeterministic transition")
    return merged
