"""DFA minimization and the canonical DFA of a regular language.

The paper represents every path query by its *canonical DFA*, the unique
smallest DFA of its language, and measures query size as its number of
states (Figure 4: ``(a.b)*.c`` has size 3).  The canonical DFA used in the
paper is partial (no rejecting sink state), so :func:`canonical_dfa`
minimizes over the completed automaton and then trims the sink away.

Minimization uses Moore's partition-refinement algorithm; on the automaton
sizes handled here (tens of states) its simplicity beats Hopcroft's constant
factors and it is straightforwardly correct.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.determinize import determinize
from repro.automata.nfa import NFA


def minimize(dfa: DFA) -> DFA:
    """Return the minimal complete DFA equivalent to ``dfa``.

    The result may include a rejecting sink state if the input language is
    not ``Sigma*``-total; use :func:`canonical_dfa` to obtain the paper's
    trimmed canonical form.
    """
    complete = dfa.trim().completed()
    states = list(complete.states)
    finals = complete.final_states

    # Initial partition: accepting vs non-accepting states.
    partition: list[set] = []
    accepting = {s for s in states if s in finals}
    rejecting = {s for s in states if s not in finals}
    if accepting:
        partition.append(accepting)
    if rejecting:
        partition.append(rejecting)

    def block_of(state, blocks):
        for index, block in enumerate(blocks):
            if state in block:
                return index
        raise AssertionError("state missing from partition")

    changed = True
    while changed:
        changed = False
        new_partition: list[set] = []
        for block in partition:
            # Split the block by the signature of successor blocks.
            signature_groups: dict[tuple, set] = {}
            for state in block:
                signature = tuple(
                    block_of(complete.delta(state, symbol), partition)
                    for symbol in complete.alphabet
                )
                signature_groups.setdefault(signature, set()).add(state)
            if len(signature_groups) > 1:
                changed = True
            new_partition.extend(signature_groups.values())
        partition = new_partition

    representative = {}
    for index, block in enumerate(partition):
        for state in block:
            representative[state] = index

    minimal = DFA(
        complete.alphabet,
        initial=representative[complete.initial],
        states=set(representative.values()),
        finals={representative[s] for s in finals},
    )
    for source, symbol, target in complete.transitions():
        existing = minimal.delta(representative[source], symbol)
        if existing is None:
            minimal.add_transition(representative[source], symbol, representative[target])
    return minimal


def canonical_dfa(automaton: DFA | NFA) -> DFA:
    """The canonical (minimal, trimmed, relabeled) DFA of the given automaton.

    Accepts either a DFA or an NFA.  The result is the paper's query
    representation: partial, with no unreachable or dead states, and with
    states renamed 0..n-1 in breadth-first order so that equal languages
    yield structurally identical automata.
    """
    dfa = automaton if isinstance(automaton, DFA) else determinize(automaton)
    return minimize(dfa).trim().relabeled()


def query_size(automaton: DFA | NFA) -> int:
    """The size of a query: the number of states of its canonical DFA."""
    return len(canonical_dfa(automaton))
