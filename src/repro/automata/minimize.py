"""DFA minimization and the canonical DFA of a regular language.

The paper represents every path query by its *canonical DFA*, the unique
smallest DFA of its language, and measures query size as its number of
states (Figure 4: ``(a.b)*.c`` has size 3).  The canonical DFA used in the
paper is partial (no rejecting sink state), so :func:`canonical_dfa`
minimizes over the completed automaton and then trims the sink away.

Minimization runs in the int-coded kernel: Hopcroft's ``O(m n log n)``
partition refinement on the flat transition table
(:meth:`repro.automata.kernel.TableDFA.minimized`).  The original Moore
refinement over ``DFA`` objects is kept as :func:`reference_minimize`, the
parity oracle for the kernel path.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.determinize import determinize
from repro.automata.kernel import TableDFA
from repro.automata.nfa import NFA


def minimize(dfa: DFA) -> DFA:
    """Return the minimal complete DFA equivalent to ``dfa``.

    The result may include a rejecting sink state if the input language is
    not ``Sigma*``-total; use :func:`canonical_dfa` to obtain the paper's
    trimmed canonical form.  States are ``0..k-1`` in BFS order from the
    initial state.
    """
    table, _ = TableDFA.from_dfa(dfa.trim())
    return table.minimized().to_dfa()


def canonical_dfa(automaton: DFA | NFA | TableDFA) -> DFA:
    """The canonical (minimal, trimmed, relabeled) DFA of the given automaton.

    Accepts a DFA, an NFA or a kernel :class:`TableDFA`.  The result is the
    paper's query representation: partial, with no unreachable or dead
    states, and with states renamed 0..n-1 in breadth-first order so that
    equal languages yield structurally identical automata.
    """
    return canonical_table(automaton).to_dfa()


def canonical_table(automaton: DFA | NFA | TableDFA) -> TableDFA:
    """The canonical DFA of the given automaton, in kernel table form."""
    if isinstance(automaton, TableDFA):
        table = automaton
    elif isinstance(automaton, DFA):
        table, _ = TableDFA.from_dfa(automaton)
    else:
        table, _ = TableDFA.from_nfa(automaton)
    return table.canonical()


def query_size(automaton: DFA | NFA | TableDFA) -> int:
    """The size of a query: the number of states of its canonical DFA."""
    return canonical_table(automaton).n


def reference_minimize(dfa: DFA) -> DFA:
    """The original Moore partition refinement over ``DFA`` objects.

    Kept as the parity oracle for :meth:`TableDFA.minimized`; quadratic in
    the number of states, so only suitable for small automata.
    """
    complete = dfa.trim().completed()
    states = list(complete.states)
    finals = complete.final_states

    # Initial partition: accepting vs non-accepting states.
    partition: list[set] = []
    accepting = {s for s in states if s in finals}
    rejecting = {s for s in states if s not in finals}
    if accepting:
        partition.append(accepting)
    if rejecting:
        partition.append(rejecting)

    def block_of(state, blocks):
        for index, block in enumerate(blocks):
            if state in block:
                return index
        raise AssertionError("state missing from partition")

    changed = True
    while changed:
        changed = False
        new_partition: list[set] = []
        for block in partition:
            # Split the block by the signature of successor blocks.
            signature_groups: dict[tuple, set] = {}
            for state in block:
                signature = tuple(
                    block_of(complete.delta(state, symbol), partition)
                    for symbol in complete.alphabet
                )
                signature_groups.setdefault(signature, set()).add(state)
            if len(signature_groups) > 1:
                changed = True
            new_partition.extend(signature_groups.values())
        partition = new_partition

    representative = {}
    for index, block in enumerate(partition):
        for state in block:
            representative[state] = index

    minimal = DFA(
        complete.alphabet,
        initial=representative[complete.initial],
        states=set(representative.values()),
        finals={representative[s] for s in finals},
    )
    for source, symbol, target in complete.transitions():
        existing = minimal.delta(representative[source], symbol)
        if existing is None:
            minimal.add_transition(representative[source], symbol, representative[target])
    return minimal


def reference_canonical_dfa(automaton: DFA | NFA) -> DFA:
    """The pre-kernel canonical-DFA pipeline (Moore + trim + relabel).

    Used by the parity tests and the learner-speed benchmark to reproduce
    the pre-refactor behaviour exactly.
    """
    from repro.automata.determinize import reference_determinize

    dfa = automaton if isinstance(automaton, DFA) else reference_determinize(automaton)
    return reference_minimize(dfa).trim().relabeled()
