"""Nondeterministic finite word automata (NFA).

The definition follows Appendix A of the paper: an NFA is a tuple
``(Q, Sigma, delta, I, F)`` with a set of initial states ``I`` and a
transition function ``delta : Q x Sigma -> 2^Q``.  We additionally support
epsilon transitions because the Thompson construction of the regex layer
produces them; :func:`repro.automata.determinize.determinize` removes them.

States may be any hashable value; the graph layer uses graph node
identifiers directly as automaton states, which makes the "graph as an NFA"
view of ``paths_G(nu)`` a zero-copy construction.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Any

from repro.automata.alphabet import Alphabet, Word
from repro.errors import AutomatonError

State = Hashable


class NFA:
    """A nondeterministic finite word automaton with optional epsilon moves."""

    def __init__(
        self,
        alphabet: Alphabet,
        *,
        states: Iterable[State] = (),
        initial: Iterable[State] = (),
        finals: Iterable[State] = (),
    ) -> None:
        self.alphabet = alphabet
        self._states: set[State] = set(states)
        self._initial: set[State] = set(initial)
        self._finals: set[State] = set(finals)
        self._transitions: dict[State, dict[str, set[State]]] = {}
        self._epsilon: dict[State, set[State]] = {}
        self._states.update(self._initial)
        self._states.update(self._finals)

    # -- construction --------------------------------------------------------

    def add_state(self, state: State) -> State:
        """Add a state (idempotent) and return it."""
        self._states.add(state)
        return state

    def add_initial(self, state: State) -> None:
        """Mark ``state`` as initial, adding it if necessary."""
        self._states.add(state)
        self._initial.add(state)

    def add_final(self, state: State) -> None:
        """Mark ``state`` as final (accepting), adding it if necessary."""
        self._states.add(state)
        self._finals.add(state)

    def add_transition(self, source: State, symbol: str, target: State) -> None:
        """Add the transition ``source --symbol--> target``."""
        if symbol not in self.alphabet:
            raise AutomatonError(f"symbol {symbol!r} is not in the alphabet")
        self._states.add(source)
        self._states.add(target)
        self._transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)

    def add_epsilon_transition(self, source: State, target: State) -> None:
        """Add an epsilon (empty-word) transition ``source --> target``."""
        self._states.add(source)
        self._states.add(target)
        self._epsilon.setdefault(source, set()).add(target)

    # -- accessors -----------------------------------------------------------

    @property
    def states(self) -> frozenset[State]:
        """The set of states."""
        return frozenset(self._states)

    @property
    def initial_states(self) -> frozenset[State]:
        """The set of initial states."""
        return frozenset(self._initial)

    @property
    def final_states(self) -> frozenset[State]:
        """The set of final (accepting) states."""
        return frozenset(self._finals)

    @property
    def has_epsilon_transitions(self) -> bool:
        """Whether any epsilon transition is present."""
        return any(self._epsilon.values())

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        return (
            f"NFA(states={len(self._states)}, initial={len(self._initial)}, "
            f"finals={len(self._finals)}, transitions={self.transition_count()})"
        )

    def transition_count(self) -> int:
        """The total number of (non-epsilon) transitions."""
        return sum(
            len(targets)
            for by_symbol in self._transitions.values()
            for targets in by_symbol.values()
        )

    def successors(self, state: State, symbol: str) -> frozenset[State]:
        """The states reachable from ``state`` by one ``symbol`` transition."""
        return frozenset(self._transitions.get(state, {}).get(symbol, ()))

    def outgoing(self, state: State) -> Iterator[tuple[str, State]]:
        """Yield the ``(symbol, target)`` pairs of transitions out of ``state``."""
        for symbol, targets in self._transitions.get(state, {}).items():
            for target in targets:
                yield symbol, target

    def epsilon_successors(self, state: State) -> frozenset[State]:
        """The targets of epsilon transitions out of ``state``."""
        return frozenset(self._epsilon.get(state, ()))

    def transitions(self) -> Iterator[tuple[State, str, State]]:
        """Yield all (source, symbol, target) transitions."""
        for source, by_symbol in self._transitions.items():
            for symbol, targets in by_symbol.items():
                for target in targets:
                    yield source, symbol, target

    # -- semantics -----------------------------------------------------------

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """The epsilon closure of a set of states."""
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for target in self._epsilon.get(state, ()):
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[State], symbol: str) -> frozenset[State]:
        """One transition step (including closing under epsilon) on ``symbol``."""
        moved: set[State] = set()
        for state in self.epsilon_closure(states):
            moved.update(self._transitions.get(state, {}).get(symbol, ()))
        return self.epsilon_closure(moved)

    def run(self, word: Sequence[str]) -> frozenset[State]:
        """The set of states reachable from the initial states on ``word``."""
        current = self.epsilon_closure(self._initial)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                break
        return current

    def accepts(self, word: Sequence[str]) -> bool:
        """Whether the automaton accepts the given word."""
        return bool(self.run(word) & self._finals)

    # -- structural utilities ------------------------------------------------

    def reachable_states(self) -> frozenset[State]:
        """States reachable from some initial state (via any transitions)."""
        reached = set(self.epsilon_closure(self._initial))
        stack = list(reached)
        while stack:
            state = stack.pop()
            neighbours: set[State] = set(self._epsilon.get(state, ()))
            for targets in self._transitions.get(state, {}).values():
                neighbours.update(targets)
            for target in neighbours:
                if target not in reached:
                    reached.add(target)
                    stack.append(target)
        return frozenset(reached)

    def coreachable_states(self) -> frozenset[State]:
        """States from which some final state is reachable."""
        predecessors: dict[State, set[State]] = {}
        for source, _, target in self.transitions():
            predecessors.setdefault(target, set()).add(source)
        for source, targets in self._epsilon.items():
            for target in targets:
                predecessors.setdefault(target, set()).add(source)
        reached = set(self._finals)
        stack = list(reached)
        while stack:
            state = stack.pop()
            for pred in predecessors.get(state, ()):
                if pred not in reached:
                    reached.add(pred)
                    stack.append(pred)
        return frozenset(reached)

    def trim(self) -> "NFA":
        """Return a copy keeping only states that are reachable and co-reachable."""
        useful = self.reachable_states() & self.coreachable_states()
        trimmed = NFA(
            self.alphabet,
            states=useful,
            initial=self._initial & useful,
            finals=self._finals & useful,
        )
        for source, symbol, target in self.transitions():
            if source in useful and target in useful:
                trimmed.add_transition(source, symbol, target)
        for source, targets in self._epsilon.items():
            if source not in useful:
                continue
            for target in targets:
                if target in useful:
                    trimmed.add_epsilon_transition(source, target)
        return trimmed

    def is_empty(self) -> bool:
        """Whether the accepted language is empty."""
        return not (self.reachable_states() & self._finals)

    def copy(self) -> "NFA":
        """A deep copy of this automaton."""
        other = NFA(
            self.alphabet,
            states=self._states,
            initial=self._initial,
            finals=self._finals,
        )
        for source, symbol, target in self.transitions():
            other.add_transition(source, symbol, target)
        for source, targets in self._epsilon.items():
            for target in targets:
                other.add_epsilon_transition(source, target)
        return other

    def relabeled(self) -> "NFA":
        """Return an isomorphic copy whose states are consecutive integers."""
        mapping = {state: index for index, state in enumerate(self._stable_state_order())}
        other = NFA(
            self.alphabet,
            states=mapping.values(),
            initial=(mapping[s] for s in self._initial),
            finals=(mapping[s] for s in self._finals),
        )
        for source, symbol, target in self.transitions():
            other.add_transition(mapping[source], symbol, mapping[target])
        for source, targets in self._epsilon.items():
            for target in targets:
                other.add_epsilon_transition(mapping[source], mapping[target])
        return other

    def _stable_state_order(self) -> list[State]:
        """A deterministic ordering of states (BFS from initials, then the rest)."""
        order: list[State] = []
        seen: set[State] = set()
        queue: list[State] = sorted(self._initial, key=repr)
        while queue:
            state = queue.pop(0)
            if state in seen:
                continue
            seen.add(state)
            order.append(state)
            successors: set[State] = set(self._epsilon.get(state, ()))
            for targets in self._transitions.get(state, {}).values():
                successors.update(targets)
            queue.extend(sorted(successors - seen, key=repr))
        order.extend(sorted(self._states - seen, key=repr))
        return order

    # -- conversions ----------------------------------------------------------

    def shortest_accepted_word(self) -> Word | None:
        """The canonically smallest accepted word, or None if L is empty.

        Implemented as a breadth-first search over subsets would be costly; a
        BFS over single states suffices for finding *a* shortest word, and
        ties are broken by exploring symbols in alphabet order, which yields
        the lexicographically smallest among the shortest.
        """
        from collections import deque

        start = self.epsilon_closure(self._initial)
        if start & self._finals:
            return ()
        queue: deque[tuple[frozenset[State], Word]] = deque([(frozenset(start), ())])
        seen: set[frozenset[State]] = {frozenset(start)}
        while queue:
            current, word = queue.popleft()
            for symbol in self.alphabet:
                nxt = self.step(current, symbol)
                if not nxt:
                    continue
                if nxt & self._finals:
                    return word + (symbol,)
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append((nxt, word + (symbol,)))
        return None

    @classmethod
    def from_words(cls, alphabet: Alphabet, words: Iterable[Sequence[str]]) -> "NFA":
        """Build an NFA accepting exactly the given finite set of words."""
        nfa = cls(alphabet)
        root: Any = ("w", 0)
        nfa.add_initial(root)
        counter = 1
        for word in words:
            current = root
            for symbol in word:
                target = ("w", counter)
                counter += 1
                nfa.add_transition(current, symbol, target)
                current = target
            nfa.add_final(current)
        return nfa
