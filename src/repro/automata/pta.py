"""The prefix tree acceptor (PTA).

Algorithm 1 (line 3) builds the PTA of the selected smallest consistent
paths: a tree-shaped DFA whose states are exactly the prefixes of the input
words and whose accepting states are the input words themselves.  This is
the classical starting point of RPNI-style grammatical inference.

The construction itself runs in the int-coded kernel
(:func:`repro.automata.kernel.pta_table`), which numbers states in the
canonical order of their prefixes; this module is the boundary wrapper that
restores the classic "states are the word prefixes" view used by the tests
and the worked examples of the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.automata.alphabet import Alphabet, Word
from repro.automata.dfa import DFA
from repro.automata.kernel import pta_table


def prefix_tree_acceptor(alphabet: Alphabet, words: Iterable[Sequence[str]]) -> DFA:
    """Build the prefix tree acceptor of the given set of words.

    The DFA's states are the word prefixes themselves (tuples of symbols),
    which keeps the structure easy to inspect in tests and mirrors the
    presentation in the paper (Figure 6(a) labels states ``eps, a, ab, abc, c``).
    Learners that stay on the kernel path should call
    :func:`repro.automata.kernel.pta_table` directly instead.
    """
    table, prefixes = pta_table(alphabet, words, with_prefixes=True)
    return table.to_dfa(states=prefixes)


def pta_states_in_canonical_order(pta: DFA, alphabet: Alphabet) -> list[Word]:
    """The states of a PTA (word prefixes) sorted in canonical word order.

    RPNI and the learner's generalization phase consider candidate merges in
    this order, which is what makes the procedure deterministic and what the
    characteristic-sample argument of Theorem 3.5 relies on.  (The kernel's
    :func:`~repro.automata.kernel.pta_table` assigns state ids in exactly
    this order, so on tables the sort is the identity.)
    """
    return sorted(pta.states, key=alphabet.word_key)
