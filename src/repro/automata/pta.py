"""The prefix tree acceptor (PTA).

Algorithm 1 (line 3) builds the PTA of the selected smallest consistent
paths: a tree-shaped DFA whose states are exactly the prefixes of the input
words and whose accepting states are the input words themselves.  This is
the classical starting point of RPNI-style grammatical inference.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.automata.alphabet import Alphabet, Word
from repro.automata.dfa import DFA


def prefix_tree_acceptor(alphabet: Alphabet, words: Iterable[Sequence[str]]) -> DFA:
    """Build the prefix tree acceptor of the given set of words.

    The DFA's states are the word prefixes themselves (tuples of symbols),
    which keeps the structure easy to inspect in tests and mirrors the
    presentation in the paper (Figure 6(a) labels states ``eps, a, ab, abc, c``).
    """
    accepted: list[Word] = [alphabet.check_word(word) for word in words]
    root: Word = ()
    pta = DFA(alphabet, initial=root)
    for word in accepted:
        current: Word = root
        for symbol in word:
            nxt = current + (symbol,)
            if pta.delta(current, symbol) is None:
                pta.add_transition(current, symbol, nxt)
            current = nxt
        pta.add_final(current)
    return pta


def pta_states_in_canonical_order(pta: DFA, alphabet: Alphabet) -> list[Word]:
    """The states of a PTA (word prefixes) sorted in canonical word order.

    RPNI and the learner's generalization phase consider candidate merges in
    this order, which is what makes the procedure deterministic and what the
    characteristic-sample argument of Theorem 3.5 relies on.
    """
    return sorted(pta.states, key=alphabet.word_key)
