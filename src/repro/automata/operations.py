"""Boolean operations and decision procedures on automata.

These are the building blocks the paper's complexity analysis leans on:

* emptiness of the intersection of two NFAs is in PTIME (product + reachability)
  -- used by the merge guard of Algorithm 1 and the positive-coverage check;
* language inclusion of NFAs is PSPACE-complete in general -- provided here
  exactly (via determinization of the right-hand side) for the small automata
  used by the tests and by the exact consistency/informativeness
  characterizations of Lemmas 3.1 and 4.1.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator, Sequence

from repro.automata import kernel
from repro.automata.alphabet import Alphabet, Word
from repro.automata.dfa import DFA
from repro.automata.determinize import determinize
from repro.automata.kernel import TableDFA
from repro.automata.nfa import NFA
from repro.errors import AutomatonError

Automaton = DFA | NFA


def _as_nfa(automaton: Automaton) -> NFA:
    return automaton if isinstance(automaton, NFA) else automaton.to_nfa()


def _common_alphabet(left: Automaton, right: Automaton) -> Alphabet:
    if left.alphabet == right.alphabet:
        return left.alphabet
    return left.alphabet.union(right.alphabet)


def _common_tables(left: DFA, right: DFA) -> tuple[TableDFA, TableDFA]:
    """Int-code two DFAs over their common (union) alphabet."""
    alphabet = _common_alphabet(left, right)
    left_table, _ = TableDFA.from_dfa(left)
    right_table, _ = TableDFA.from_dfa(right)
    return left_table.reindexed(alphabet), right_table.reindexed(alphabet)


def intersect(left: Automaton, right: Automaton) -> NFA:
    """The product automaton accepting ``L(left) & L(right)``.

    Only the part of the product reachable from the initial pairs is built.
    Epsilon transitions are handled by closing each side first.  For the
    common DFA/DFA case the pairing runs in the int-coded kernel
    (:func:`repro.automata.kernel.product_table`); the wrapper restores the
    classic pair-state NFA view.
    """
    if isinstance(left, DFA) and isinstance(right, DFA):
        left_table, left_order = TableDFA.from_dfa(left)
        right_table, right_order = TableDFA.from_dfa(right)
        alphabet = _common_alphabet(left, right)
        product, pairs = kernel.product_table(
            left_table.reindexed(alphabet), right_table.reindexed(alphabet)
        )
        labels = [(left_order[ls], right_order[rs]) for ls, rs in pairs]
        return product.to_dfa(states=labels).to_nfa()
    left_nfa = _as_nfa(left)
    right_nfa = _as_nfa(right)
    alphabet = _common_alphabet(left_nfa, right_nfa)
    product = NFA(alphabet)

    start_left = left_nfa.epsilon_closure(left_nfa.initial_states)
    start_right = right_nfa.epsilon_closure(right_nfa.initial_states)
    queue: deque[tuple] = deque()
    for ls in start_left:
        for rs in start_right:
            pair = (ls, rs)
            product.add_initial(pair)
            queue.append(pair)
    seen = set(product.initial_states)
    while queue:
        left_state, right_state = queue.popleft()
        if left_state in left_nfa.final_states and right_state in right_nfa.final_states:
            product.add_final((left_state, right_state))
        for symbol in alphabet:
            left_targets = left_nfa.step({left_state}, symbol)
            if not left_targets:
                continue
            right_targets = right_nfa.step({right_state}, symbol)
            if not right_targets:
                continue
            for lt in left_targets:
                for rt in right_targets:
                    pair = (lt, rt)
                    product.add_transition((left_state, right_state), symbol, pair)
                    if pair not in seen:
                        seen.add(pair)
                        queue.append(pair)
    return product


def union(left: Automaton, right: Automaton) -> NFA:
    """An NFA accepting ``L(left) | L(right)`` (disjoint-union construction)."""
    left_nfa = _as_nfa(left)
    right_nfa = _as_nfa(right)
    alphabet = _common_alphabet(left_nfa, right_nfa)
    result = NFA(alphabet)
    for tag, nfa in (("L", left_nfa), ("R", right_nfa)):
        for state in nfa.states:
            result.add_state((tag, state))
        for state in nfa.initial_states:
            result.add_initial((tag, state))
        for state in nfa.final_states:
            result.add_final((tag, state))
        for source, symbol, target in nfa.transitions():
            result.add_transition((tag, source), symbol, (tag, target))
        for source in nfa.states:
            for target in nfa.epsilon_successors(source):
                result.add_epsilon_transition((tag, source), (tag, target))
    return result


def complement(automaton: Automaton) -> DFA:
    """A DFA accepting the complement of the language (over its alphabet)."""
    dfa = automaton if isinstance(automaton, DFA) else determinize(automaton)
    return dfa.complement()


def is_empty(automaton: Automaton) -> bool:
    """Whether the automaton accepts no word."""
    return _as_nfa(automaton).is_empty()


def intersection_empty(left: Automaton, right: Automaton) -> bool:
    """Whether ``L(left) & L(right)`` is empty (PTIME product-emptiness).

    DFA/DFA inputs take the kernel's early-exit pair BFS, which never
    materializes the product; other inputs build the product NFA.
    """
    if isinstance(left, DFA) and isinstance(right, DFA):
        left_table, right_table = _common_tables(left, right)
        return not kernel.intersection_nonempty(left_table, right_table)
    return intersect(left, right).is_empty()


def _with_alphabet(automaton: Automaton, alphabet: Alphabet) -> NFA:
    """A copy of the automaton over a (possibly larger) alphabet."""
    source = _as_nfa(automaton)
    if source.alphabet == alphabet:
        return source
    widened = NFA(
        alphabet,
        states=source.states,
        initial=source.initial_states,
        finals=source.final_states,
    )
    for state, symbol, target in source.transitions():
        widened.add_transition(state, symbol, target)
    for state in source.states:
        for target in source.epsilon_successors(state):
            widened.add_epsilon_transition(state, target)
    return widened


def language_included(left: Automaton, right: Automaton) -> bool:
    """Whether ``L(left)`` is a subset of ``L(right)``.

    Implemented as emptiness of ``L(left) & complement(L(right))``, with the
    complement taken over the *union* of the two alphabets (a word using a
    symbol the right automaton has never seen is still a counterexample).
    The complementation determinizes the right-hand side, so this is
    exponential in the worst case (the problem is PSPACE-complete), which is
    fine for the small automata on which the exact characterizations are
    evaluated.  When both sides are already deterministic the kernel's
    linear product walk answers directly, with no complementation at all.
    """
    if isinstance(left, DFA) and isinstance(right, DFA):
        left_table, right_table = _common_tables(left, right)
        return kernel.language_included_tables(left_table, right_table)
    alphabet = _common_alphabet(left, right)
    widened_right = _with_alphabet(right, alphabet)
    return intersection_empty(left, complement(widened_right))


def language_equivalent(left: Automaton, right: Automaton) -> bool:
    """Whether the two automata accept the same language."""
    return language_included(left, right) and language_included(right, left)


def enumerate_words(
    automaton: Automaton,
    *,
    max_length: int,
    limit: int | None = None,
) -> Iterator[Word]:
    """Yield the accepted words of length at most ``max_length`` in canonical order.

    The enumeration walks the deterministic automaton breadth-first, which
    produces words sorted by length; within a length, symbols are explored in
    alphabet order, which produces the lexicographic order.  ``limit`` caps
    the number of yielded words.
    """
    if max_length < 0:
        raise AutomatonError("max_length must be non-negative")
    dfa = automaton if isinstance(automaton, DFA) else determinize(automaton)
    count = 0
    frontier: list[tuple[object, Word]] = [(dfa.initial, ())]
    if dfa.is_final(dfa.initial):
        yield ()
        count += 1
        if limit is not None and count >= limit:
            return
    for _ in range(max_length):
        next_frontier: list[tuple[object, Word]] = []
        for state, word in frontier:
            for symbol in dfa.alphabet:
                target = dfa.delta(state, symbol)
                if target is None:
                    continue
                extended = word + (symbol,)
                next_frontier.append((target, extended))
                if dfa.is_final(target):
                    yield extended
                    count += 1
                    if limit is not None and count >= limit:
                        return
        frontier = next_frontier
        if not frontier:
            return


def accepts_any(automaton: Automaton, words: Sequence[Sequence[str]]) -> bool:
    """Whether the automaton accepts at least one of the given words."""
    return any(automaton.accepts(word) for word in words)


def accepts_all(automaton: Automaton, words: Sequence[Sequence[str]]) -> bool:
    """Whether the automaton accepts every one of the given words."""
    return all(automaton.accepts(word) for word in words)
