"""Finite automata substrate.

This subpackage provides the word-automata machinery that both the graph
database layer and the learning algorithms are built on:

* :class:`~repro.automata.alphabet.Alphabet` -- ordered finite alphabets and
  the canonical (length-then-lexicographic) order on words used throughout
  the paper.
* :class:`~repro.automata.nfa.NFA` and :class:`~repro.automata.dfa.DFA` --
  nondeterministic and deterministic finite word automata.
* The int-coded kernel (:mod:`repro.automata.kernel`):
  :class:`~repro.automata.kernel.TableDFA` (flat ``array('i')`` transition
  table, bitmask finals, interned symbol ids) plus the kernel-native
  algorithms every layer shares -- PTA construction, Hopcroft minimization,
  subset determinization, products, batched membership and the union-find
  :class:`~repro.automata.kernel.MergeFold` behind RPNI's merge-and-fold.
* Determinization, Hopcroft minimization and the *canonical DFA*
  representation of a regular language (the paper represents every query by
  its canonical DFA; the size of a query is its number of states) -- thin
  wrappers over the kernel preserving the classic object API.
* Boolean operations: product/intersection, union, complement, emptiness,
  language inclusion and equivalence.
* The prefix tree acceptor (PTA) and state-merging quotients used by the
  learner's generalization phase.
* The prefix-free transformation of Section 2 of the paper.
"""

from repro.automata.alphabet import Alphabet, Word, canonical_key, canonical_less
from repro.automata.nfa import NFA
from repro.automata.dfa import DFA
from repro.automata.determinize import determinize
from repro.automata.minimize import canonical_dfa, minimize
from repro.automata.operations import (
    complement,
    enumerate_words,
    intersect,
    intersection_empty,
    is_empty,
    language_equivalent,
    language_included,
    union,
)
from repro.automata.pta import prefix_tree_acceptor
from repro.automata.merging import merge_states, deterministic_merge
from repro.automata.prefix_free import is_prefix_free, prefix_free
from repro.automata.kernel import (
    MergeFold,
    TableAutomaton,
    TableDFA,
    fold_generalize,
    pta_table,
)

__all__ = [
    "MergeFold",
    "TableAutomaton",
    "TableDFA",
    "fold_generalize",
    "pta_table",
    "Alphabet",
    "Word",
    "canonical_key",
    "canonical_less",
    "NFA",
    "DFA",
    "determinize",
    "minimize",
    "canonical_dfa",
    "intersect",
    "union",
    "complement",
    "is_empty",
    "intersection_empty",
    "language_included",
    "language_equivalent",
    "enumerate_words",
    "prefix_tree_acceptor",
    "merge_states",
    "deterministic_merge",
    "is_prefix_free",
    "prefix_free",
]
