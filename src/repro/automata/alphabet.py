"""Ordered alphabets and the canonical order on words.

The paper (Section 2) fixes a finite, *ordered* alphabet ``Sigma`` and
extends its order to the standard lexicographical order on words, then to the
*canonical* (well-founded) order::

    w <= u   iff   |w| < |u|, or |w| = |u| and w <=_lex u

Path enumeration, smallest-consistent-path (SCP) selection and the
characteristic-sample construction all rely on this order, so it lives here
as the single source of truth.

A *word* is represented as a tuple of symbols (``tuple[str, ...]``) rather
than a character string, because the paper's application alphabets contain
multi-character symbols such as ``tram`` or ``ProteinPurification``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Tuple

from repro.errors import AlphabetError

#: A word over an alphabet: a (possibly empty) tuple of symbols.
Word = Tuple[str, ...]

#: The empty word (epsilon).
EPSILON: Word = ()


class Alphabet:
    """A finite, ordered set of symbols.

    The iteration order of an :class:`Alphabet` is its symbol order; it is
    the order used by the lexicographic comparison of words.

    Parameters
    ----------
    symbols:
        The symbols of the alphabet, in the desired order.  Duplicates are
        rejected.  If ``sort`` is true the symbols are sorted first, which
        gives the conventional alphabetical order.
    sort:
        Whether to sort the symbols (default ``True``).
    """

    __slots__ = ("_symbols", "_index")

    def __init__(self, symbols: Iterable[str], *, sort: bool = True) -> None:
        ordered = list(symbols)
        invalid = [s for s in ordered if not isinstance(s, str) or not s]
        if invalid:
            raise AlphabetError(f"invalid symbol: {invalid[0]!r}")
        if sort:
            ordered = sorted(ordered)
        seen: set[str] = set()
        unique: list[str] = []
        for symbol in ordered:
            if symbol in seen:
                raise AlphabetError(f"duplicate symbol: {symbol!r}")
            seen.add(symbol)
            unique.append(symbol)
        self._symbols: tuple[str, ...] = tuple(unique)
        self._index: dict[str, int] = {s: i for i, s in enumerate(self._symbols)}

    # -- container protocol -------------------------------------------------

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        return f"Alphabet({list(self._symbols)!r})"

    # -- accessors -----------------------------------------------------------

    @property
    def symbols(self) -> tuple[str, ...]:
        """The symbols in alphabet order."""
        return self._symbols

    def index(self, symbol: str) -> int:
        """Return the position of ``symbol`` in the alphabet order."""
        try:
            return self._index[symbol]
        except KeyError:
            raise AlphabetError(f"symbol {symbol!r} is not in the alphabet") from None

    def check_word(self, word: Sequence[str]) -> Word:
        """Validate that every symbol of ``word`` belongs to the alphabet.

        Returns the word as a tuple (the library's word representation).
        """
        result = tuple(word)
        for symbol in result:
            if symbol not in self._index:
                raise AlphabetError(f"symbol {symbol!r} is not in the alphabet")
        return result

    # -- orders on words -----------------------------------------------------

    def word_key(self, word: Sequence[str]) -> tuple[int, tuple[int, ...]]:
        """Sort key realizing the canonical order on words.

        Words sort first by length, then lexicographically by symbol order.
        """
        return (len(word), tuple(self._index[s] for s in word))

    def lex_key(self, word: Sequence[str]) -> tuple[int, ...]:
        """Sort key realizing the plain lexicographic order on words."""
        return tuple(self._index[s] for s in word)

    def canonical_less(self, left: Sequence[str], right: Sequence[str]) -> bool:
        """Return True iff ``left`` is strictly before ``right`` canonically."""
        return self.word_key(left) < self.word_key(right)

    def canonical_sorted(self, words: Iterable[Sequence[str]]) -> list[Word]:
        """Return the given words sorted in canonical order (as tuples)."""
        return sorted((tuple(w) for w in words), key=self.word_key)

    def canonical_min(self, words: Iterable[Sequence[str]]) -> Word:
        """Return the canonically smallest of the given words."""
        return min((tuple(w) for w in words), key=self.word_key)

    # -- word generation -----------------------------------------------------

    def words_up_to(self, max_length: int) -> Iterator[Word]:
        """Yield every word of length at most ``max_length``, canonically ordered.

        The number of words is ``(|Sigma|^(k+1) - 1) / (|Sigma| - 1)``; callers
        are expected to keep ``max_length`` small (the paper's ``k`` is 2..4).
        """
        if max_length < 0:
            raise AlphabetError("max_length must be non-negative")
        frontier: list[Word] = [EPSILON]
        yield EPSILON
        for _ in range(max_length):
            next_frontier: list[Word] = []
            for word in frontier:
                for symbol in self._symbols:
                    extended = word + (symbol,)
                    next_frontier.append(extended)
                    yield extended
            frontier = next_frontier

    def restrict(self, symbols: Iterable[str]) -> "Alphabet":
        """Return a sub-alphabet containing only the given symbols, same order."""
        keep = set(symbols)
        missing = keep - set(self._symbols)
        if missing:
            raise AlphabetError(f"symbols not in alphabet: {sorted(missing)!r}")
        return Alphabet([s for s in self._symbols if s in keep], sort=False)

    def union(self, other: "Alphabet") -> "Alphabet":
        """Return the alphabet containing the symbols of both, sorted."""
        return Alphabet(set(self._symbols) | set(other.symbols))


def word_to_str(word: Sequence[str]) -> str:
    """Render a word for display, e.g. ``('a','b','c')`` -> ``'a.b.c'``.

    The empty word renders as the conventional epsilon symbol.
    """
    if not word:
        return "ε"
    return ".".join(word)


def canonical_key(alphabet: Alphabet, word: Sequence[str]) -> tuple[int, tuple[int, ...]]:
    """Module-level convenience wrapper of :meth:`Alphabet.word_key`."""
    return alphabet.word_key(word)


def canonical_less(alphabet: Alphabet, left: Sequence[str], right: Sequence[str]) -> bool:
    """Module-level convenience wrapper of :meth:`Alphabet.canonical_less`."""
    return alphabet.canonical_less(left, right)
