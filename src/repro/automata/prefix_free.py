"""Prefix-free queries (Section 2 of the paper).

Under the paper's monadic semantics, a node is selected as soon as *one* of
its paths is in the query language, so a query is equivalent to the query
obtained by deleting every word that has a proper prefix in the language
(e.g. ``a`` and ``a.b*`` are equivalent).  The unique *prefix-free*
representative of an equivalence class is obtained by removing all outgoing
transitions of every final state of the canonical DFA.  The learner and the
experiment drivers normalize queries to this form before comparing them.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.minimize import canonical_dfa
from repro.automata.nfa import NFA


def is_prefix_free(automaton: DFA | NFA) -> bool:
    """Whether no accepted word is a proper prefix of another accepted word.

    Checked on the canonical DFA: the language is prefix-free iff no final
    state can reach a final state through a non-empty path.
    """
    dfa = canonical_dfa(automaton)
    for final in dfa.final_states:
        # Breadth-first search from the successors of the final state.
        frontier = [target for _, target in dfa.outgoing(final)]
        seen = set(frontier)
        while frontier:
            state = frontier.pop()
            if dfa.is_final(state):
                return False
            for _, target in dfa.outgoing(state):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
    return True


def prefix_free(automaton: DFA | NFA) -> DFA:
    """The canonical DFA of the prefix-free query equivalent to the input.

    Construction from the paper: take the canonical DFA and drop every
    outgoing transition of every final state, then re-canonicalize (the drop
    can make states unreachable or non-distinguishable).
    """
    dfa = canonical_dfa(automaton)
    stripped = DFA(
        dfa.alphabet,
        initial=dfa.initial,
        states=dfa.states,
        finals=dfa.final_states,
    )
    for source, symbol, target in dfa.transitions():
        if not dfa.is_final(source):
            stripped.add_transition(source, symbol, target)
    return canonical_dfa(stripped)
