"""Generalization of the PTA by state merging (Algorithm 1, lines 4-5).

Starting from the prefix tree acceptor of the selected SCPs, states are
merged as long as the resulting automaton does not *select any negative
node*, i.e. as long as ``L(A) & paths_G(S-)`` stays empty.  The paper keeps
the hypothesis deterministic and follows RPNI's strategy, so the procedure
is the classical red-blue loop with merge-and-fold:

* *red* states form the consolidated part of the hypothesis (initially just
  the root);
* *blue* states are the immediate successors of red states;
* the canonically smallest blue state is either merged into some red state
  (first red state, in canonical order, whose merge passes the guard) or
  promoted to red.

The loop itself now lives in the int-coded kernel
(:func:`repro.automata.kernel.fold_generalize`), where candidate merges are
applied in place on a :class:`~repro.automata.kernel.MergeFold` and undone
on rejection -- no per-candidate automaton copies.  This module keeps the
classic DFA-in/DFA-out entry point as a boundary wrapper, plus the original
object-level loop as :func:`reference_generalize_pta` (the parity oracle
and the pre-kernel baseline of the learner-speed benchmark).

The guard is injected as a callable so that the same engine serves the graph
learner (guard = "selects a negative node"), the word-level RPNI
implementation (guard = "accepts a negative word") and the tests.  The
candidate handed to the guard supports ``accepts(word)`` and the engine's
ephemeral evaluation protocol; guards that only probe membership work
unchanged on both the kernel and the reference paths.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.automata.kernel import TableDFA, fold_generalize
from repro.automata.merging import reference_deterministic_merge
from repro.errors import LearningError


def generalize_pta(
    pta: DFA,
    violates: Callable[[object], bool],
    *,
    alphabet: Alphabet | None = None,
    max_merges: int | None = None,
) -> DFA:
    """Generalize a PTA by red-blue state merging under the given guard.

    Parameters
    ----------
    pta:
        The prefix tree acceptor (or any DFA) to generalize.
    violates:
        Guard predicate: ``violates(candidate)`` must return True when the
        candidate automaton is unacceptable (e.g. it selects a negative
        node).  A merge is kept only if the merged automaton does not
        violate the guard.  The candidate is the kernel's in-place
        hypothesis (a :class:`~repro.automata.kernel.MergeFold`); it
        supports ``accepts(word)`` and can be handed to the query engine's
        ephemeral evaluation directly.
    alphabet:
        Accepted for API compatibility; the kernel orders states by their
        canonical PTA numbering, which realizes the same canonical order.
    max_merges:
        Optional safety cap on the number of accepted merges.
    """
    del alphabet  # ordering is the kernel's canonical state numbering
    table, labels = TableDFA.from_dfa(pta)
    fold = fold_generalize(table, violates, max_merges=max_merges)
    return fold.to_dfa(labels)


def _state_order_key(alphabet: Alphabet, state: object) -> tuple:
    """Canonical ordering key for PTA states (word prefixes).

    States produced by the PTA are tuples of symbols; merged automata keep a
    representative from the original states, so the key stays applicable.
    Non-tuple states (possible if a caller hands in a foreign DFA) are
    ordered after all tuple states, by repr, which keeps the procedure
    deterministic without claiming canonicity.
    """
    if isinstance(state, tuple) and all(isinstance(part, str) for part in state):
        try:
            return (0,) + alphabet.word_key(state)
        except Exception:  # symbol outside the alphabet: fall through
            pass
    return (1, repr(state))


def reference_generalize_pta(
    pta: DFA,
    violates: Callable[[DFA], bool],
    *,
    alphabet: Alphabet | None = None,
    max_merges: int | None = None,
) -> DFA:
    """The original object-level red-blue loop (copying merge-and-fold).

    One fresh DFA is built per candidate merge; kept as the parity oracle
    for :func:`repro.automata.kernel.fold_generalize` and as the pre-kernel
    baseline the learner-speed benchmark measures against.
    """
    if violates(pta):
        raise LearningError("the initial automaton already violates the guard")
    order_alphabet = alphabet if alphabet is not None else pta.alphabet
    current = pta.copy()
    red: set = {current.initial}
    merges_done = 0

    def blue_states() -> list:
        successors: set = set()
        for state in red:
            for _, target in current.outgoing(state):
                if target not in red:
                    successors.add(target)
        return sorted(successors, key=lambda s: _state_order_key(order_alphabet, s))

    blue = blue_states()
    while blue:
        if max_merges is not None and merges_done >= max_merges:
            break
        candidate_state = blue[0]
        merged_into_red = False
        for red_state in sorted(red, key=lambda s: _state_order_key(order_alphabet, s)):
            candidate = reference_deterministic_merge(current, red_state, candidate_state)
            if violates(candidate):
                continue
            current = candidate
            merges_done += 1
            # Keep only the red states that survived the merge-and-fold.
            red = {state for state in red if state in current.states}
            red.add(current.initial)
            merged_into_red = True
            break
        if not merged_into_red:
            red.add(candidate_state)
        blue = blue_states()
    return current
