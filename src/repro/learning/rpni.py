"""The classical RPNI algorithm on words (Oncina & Garcia 1992).

RPNI learns a regular language from positive and negative *word* examples:
build the prefix tree acceptor of the positives, then merge states in
canonical order as long as no negative word is accepted.  The paper's graph
learner is built on the same generalization engine
(:func:`repro.automata.kernel.fold_generalize`); RPNI is provided here
both as the reference word-level learner that the characteristic-sample
construction of Theorem 3.5 leans on, and for direct use and testing.

The whole run stays on the int-coded kernel: the PTA is a
:class:`~repro.automata.kernel.TableDFA`, the negative words are interned
to symbol-id tuples once, and the merge guard is batched membership on the
in-place :class:`~repro.automata.kernel.MergeFold`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.automata.alphabet import Alphabet, Word
from repro.automata.dfa import DFA
from repro.automata.kernel import MergeFold, fold_generalize, pta_table
from repro.automata.minimize import canonical_dfa
from repro.errors import LearningError


def rpni(
    alphabet: Alphabet,
    positive_words: Iterable[Sequence[str]],
    negative_words: Iterable[Sequence[str]],
) -> DFA:
    """Learn a DFA consistent with the given word examples.

    Returns the canonical DFA of the inferred language.  Raises
    :class:`LearningError` if the word sample itself is contradictory (a
    word labeled both positive and negative).
    """
    positives: list[Word] = [alphabet.check_word(w) for w in positive_words]
    negatives: list[Word] = [alphabet.check_word(w) for w in negative_words]
    negative_set = set(negatives)
    conflict = [w for w in positives if w in negative_set]
    if conflict:
        raise LearningError(f"words labeled both positive and negative: {conflict[:3]!r}")
    if not positives:
        # The empty language is consistent with any purely negative sample.
        return canonical_dfa(DFA(alphabet, initial=0))

    pta = pta_table(alphabet, positives)
    interned_negatives = [pta.encode(word) for word in negative_set]

    def violates(candidate: MergeFold) -> bool:
        return any(candidate.accepts_ids(word) for word in interned_negatives)

    fold = fold_generalize(pta, violates)
    return canonical_dfa(fold.to_table())
