"""The classical RPNI algorithm on words (Oncina & Garcia 1992).

RPNI learns a regular language from positive and negative *word* examples:
build the prefix tree acceptor of the positives, then merge states in
canonical order as long as no negative word is accepted.  The paper's graph
learner is built on the same generalization engine
(:func:`repro.learning.generalize.generalize_pta`); RPNI is provided here
both as the reference word-level learner that the characteristic-sample
construction of Theorem 3.5 leans on, and for direct use and testing.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.automata.alphabet import Alphabet, Word
from repro.automata.dfa import DFA
from repro.automata.minimize import canonical_dfa
from repro.automata.pta import prefix_tree_acceptor
from repro.errors import LearningError
from repro.learning.generalize import generalize_pta


def rpni(
    alphabet: Alphabet,
    positive_words: Iterable[Sequence[str]],
    negative_words: Iterable[Sequence[str]],
) -> DFA:
    """Learn a DFA consistent with the given word examples.

    Returns the canonical DFA of the inferred language.  Raises
    :class:`LearningError` if the word sample itself is contradictory (a
    word labeled both positive and negative).
    """
    positives: list[Word] = [alphabet.check_word(w) for w in positive_words]
    negatives: list[Word] = [alphabet.check_word(w) for w in negative_words]
    negative_set = set(negatives)
    conflict = [w for w in positives if w in negative_set]
    if conflict:
        raise LearningError(f"words labeled both positive and negative: {conflict[:3]!r}")
    if not positives:
        # The empty language is consistent with any purely negative sample.
        return canonical_dfa(DFA(alphabet, initial=0))

    pta = prefix_tree_acceptor(alphabet, positives)

    def violates(candidate: DFA) -> bool:
        return any(candidate.accepts(word) for word in negative_set)

    generalized = generalize_pta(pta, violates, alphabet=alphabet)
    return canonical_dfa(generalized)
