"""Algorithm 1: the path-query learner.

``learner(G, S)`` either returns a query consistent with the sample or the
special value *null* ("abstain": not enough examples, or no consistent query
constructible with paths of length at most ``k``).  The steps follow the
paper exactly:

1. select, for each positive node, its smallest consistent path of length at
   most ``k`` (skipping positives that have none);
2. build the prefix tree acceptor of those paths;
3. generalize it by state merging while no negative node is selected;
4. return the resulting query if it selects *every* positive node (including
   the ones that contributed no SCP), otherwise return null.

Section 5.1 sets ``k`` dynamically in the experiments (start at 2, grow while
the learned query misses a positive); :func:`learn_with_dynamic_k` implements
that procedure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.automata.alphabet import Word
from repro.automata.kernel import MergeFold, fold_generalize, pta_table
from repro.automata.minimize import canonical_dfa
from repro.engine.engine import QueryEngine, get_default_engine
from repro.errors import LearningError, SerializationError
from repro.graphdb.graph import GraphDB, Node
from repro.learning.sample import Sample
from repro.learning.scp import select_smallest_consistent_paths
from repro.queries.path_query import PathQuery

#: Default path-length bound, the value Section 5.1 reports as sufficient in
#: the majority of practical cases.
DEFAULT_K = 2


@dataclass(frozen=True)
class LearnerResult:
    """The outcome of one run of the learner.

    ``query`` is None when the learner abstains (the paper's *null* answer:
    the generalized query failed to select every positive node with SCPs of
    length at most ``k``).  ``hypothesis`` is the generalized query itself,
    regardless of abstention -- it is always consistent with the negative
    examples and is what the experiment drivers score mid-run (a null answer
    would otherwise be indistinguishable from "learned nothing" in the F1
    plots, which is not how the paper reports Figure 11).

    Implements the uniform :class:`repro.api.Result` protocol: ``ok``,
    ``query``, ``elapsed`` and a JSON-safe ``to_dict``/``from_dict`` pair.
    """

    query: PathQuery | None
    k: int
    scps: dict[Node, Word] = field(default_factory=dict)
    pta_states: int = 0
    generalized_states: int = 0
    positives_without_scp: frozenset[Node] = frozenset()
    selects_all_positives: bool = False
    hypothesis: PathQuery | None = None
    elapsed: float = 0.0

    @property
    def is_null(self) -> bool:
        """Whether the learner abstained."""
        return self.query is None

    @property
    def ok(self) -> bool:
        """Result protocol: True iff the learner returned a query."""
        return not self.is_null

    @property
    def best_effort_query(self) -> PathQuery | None:
        """The returned query if any, else the (possibly incomplete) hypothesis."""
        return self.query if self.query is not None else self.hypothesis

    def __repr__(self) -> str:
        outcome = "null" if self.is_null else repr(self.query.expression)
        return f"LearnerResult({outcome}, k={self.k}, scps={len(self.scps)})"

    # -- serialization (Result protocol) -------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        return {
            "type": "LearnerResult",
            "ok": self.ok,
            "elapsed": self.elapsed,
            "k": self.k,
            "query": None if self.query is None else self.query.to_dict(),
            "hypothesis": None if self.hypothesis is None else self.hypothesis.to_dict(),
            "scps": sorted(
                ([node, list(word)] for node, word in self.scps.items()), key=repr
            ),
            "pta_states": self.pta_states,
            "generalized_states": self.generalized_states,
            "positives_without_scp": sorted(self.positives_without_scp, key=repr),
            "selects_all_positives": self.selects_all_positives,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LearnerResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            return cls(
                query=(
                    None if payload["query"] is None else PathQuery.from_dict(payload["query"])
                ),
                k=payload["k"],
                scps={node: tuple(word) for node, word in payload.get("scps", [])},
                pta_states=payload.get("pta_states", 0),
                generalized_states=payload.get("generalized_states", 0),
                positives_without_scp=frozenset(payload.get("positives_without_scp", ())),
                selects_all_positives=payload.get("selects_all_positives", False),
                hypothesis=(
                    None
                    if payload.get("hypothesis") is None
                    else PathQuery.from_dict(payload["hypothesis"])
                ),
                elapsed=payload.get("elapsed", 0.0),
            )
        except (KeyError, TypeError) as error:
            raise SerializationError(f"malformed LearnerResult payload: {error}") from error


def learn_path_query(
    graph: GraphDB,
    sample: Sample,
    *,
    k: int = DEFAULT_K,
    engine: QueryEngine | None = None,
    coverage=None,
) -> LearnerResult:
    """Run Algorithm 1 on the given graph and sample with a fixed bound ``k``.

    Returns a :class:`LearnerResult`; ``result.query`` is the learned
    :class:`~repro.queries.PathQuery` or None (the *null* abstention).

    ``engine`` is the query engine used by the merge guard and the final
    positives check; omitted, the process-wide default engine is used.
    ``coverage`` is an optional prebuilt
    :class:`~repro.learning.scp.NegativeCoverage` for the sample's negatives,
    forwarded to the SCP selection (the interactive session reuses one across
    rounds while the negative set is unchanged).

    .. deprecated:: 1.1
        Prefer :meth:`repro.api.Workspace.learn` with a
        :class:`repro.api.LearnerConfig`, which owns the engine wiring; this
        module-level function is kept as a thin compatibility shim.
    """
    if k < 0:
        raise LearningError("the path-length bound k must be non-negative")
    sample.check_against(graph)
    started = time.perf_counter()

    if not sample.positives:
        # With no positive example every query selecting nothing is trivially
        # consistent, but none is informative; the learner abstains.
        return LearnerResult(query=None, k=k, elapsed=time.perf_counter() - started)

    engine = engine or get_default_engine()
    telemetry = engine.telemetry
    with telemetry.span(
        "learner.learn",
        k=k,
        positives=len(sample.positives),
        negatives=len(sample.negatives),
    ) as span:
        with telemetry.span("learner.scp_select"):
            scps = select_smallest_consistent_paths(
                graph, sample, k=k, engine=engine, coverage=coverage
            )
        positives_without_scp = frozenset(sample.positives - scps.keys())
        if not scps:
            span.set(outcome="null", scps=0)
            return LearnerResult(
                query=None,
                k=k,
                positives_without_scp=positives_without_scp,
                elapsed=time.perf_counter() - started,
            )

        # The whole select/merge/check loop runs on the int-coded kernel: the
        # PTA is built directly as a TableDFA from the interned SCPs, candidate
        # merges mutate one MergeFold in place (undo log, no copies), and the
        # guard walks the fold against the engine's CSR index without plan
        # compilation.
        pta = pta_table(graph.alphabet, scps.values())

        negatives = sample.negatives

        def violates(candidate: MergeFold) -> bool:
            if not negatives:
                return False
            # Early-exit multi-source product BFS on the engine's CSR index; the
            # graph is indexed once for the whole merge loop, and each one-shot
            # candidate skips plan compilation entirely (ephemeral).
            return engine.any_selects(graph, candidate, negatives, ephemeral=True)

        with telemetry.span("learner.generalize", pta_states=pta.n) as merge_span:
            fold = fold_generalize(pta, violates)
            canonical = canonical_dfa(fold.to_table())
            merge_span.set(generalized_states=len(canonical))

        with telemetry.span("learner.final_check"):
            selects_all = all(
                engine.selects(graph, canonical, node) for node in sample.positives
            )
        hypothesis = PathQuery(canonical)
        query = hypothesis if selects_all else None
        span.set(
            outcome="learned" if selects_all else "null",
            scps=len(scps),
            pta_states=pta.n,
            generalized_states=len(canonical),
        )
        return LearnerResult(
            query=query,
            k=k,
            scps=scps,
            pta_states=pta.n,
            generalized_states=len(canonical),
            positives_without_scp=positives_without_scp,
            selects_all_positives=selects_all,
            hypothesis=hypothesis,
            elapsed=time.perf_counter() - started,
        )


def dynamic_k_procedure(
    learn,
    graph: GraphDB,
    sample,
    *,
    k_start: int = DEFAULT_K,
    k_max: int = 6,
    engine: QueryEngine | None = None,
):
    """The dynamic-``k`` procedure of Section 5.1 over any fixed-``k`` learner.

    ``learn`` is any ``(graph, sample, *, k, engine)`` learner returning a
    result with ``is_null`` and ``elapsed`` (Algorithm 1, 2, 3 or the SCP
    baseline).  Start with ``k = k_start``; as long as the learner abstains,
    increment ``k`` and retry, up to ``k_max``.  Returns the first
    non-abstaining result, or the last (abstaining) result if ``k_max`` is
    reached without success.  The returned ``elapsed`` covers the whole
    procedure, not just the last attempt -- it is the learning time
    Figure 12 plots.
    """
    if k_start < 0 or k_max < k_start:
        raise LearningError("need 0 <= k_start <= k_max")
    total_elapsed = 0.0
    for k in range(k_start, k_max + 1):
        result = learn(graph, sample, k=k, engine=engine)
        total_elapsed += result.elapsed
        if not result.is_null:
            break
    return replace(result, elapsed=total_elapsed)


def learn_with_dynamic_k(
    graph: GraphDB,
    sample: Sample,
    *,
    k_start: int = DEFAULT_K,
    k_max: int = 6,
    engine: QueryEngine | None = None,
) -> LearnerResult:
    """Algorithm 1 under the dynamic-``k`` procedure of Section 5.1.

    .. deprecated:: 1.1
        Prefer :meth:`repro.api.Workspace.learn` with a
        :class:`repro.api.LearnerConfig` (``dynamic_k=True``, the default);
        this module-level function is kept as a thin compatibility shim.
    """
    return dynamic_k_procedure(
        learn_path_query, graph, sample, k_start=k_start, k_max=k_max, engine=engine
    )
