"""Learning path queries from examples (Section 3 of the paper).

This is the paper's primary contribution:

* :class:`~repro.learning.sample.Sample` -- positive/negative node examples;
* :mod:`repro.learning.consistency` -- the exact (Lemma 3.1) and bounded
  consistency checks;
* :mod:`repro.learning.scp` -- selection of the smallest consistent paths;
* :mod:`repro.learning.generalize` -- RPNI-style generalization of the PTA
  guarded by the negative examples;
* :mod:`repro.learning.learner` -- Algorithm 1 (``learner``), with fixed and
  dynamic path-length bound ``k``;
* :mod:`repro.learning.rpni` -- the classical RPNI algorithm on words, used
  by the characteristic-sample theory and as a reference implementation;
* :mod:`repro.learning.characteristic` -- construction of characteristic
  word samples and characteristic graphs (Theorem 3.5);
* :mod:`repro.learning.binary_learner` / :mod:`repro.learning.nary_learner`
  -- Algorithms 2 and 3 for binary and n-ary semantics;
* :mod:`repro.learning.baselines` -- the no-generalization baseline
  (disjunction of SCPs) used by the ablation benchmarks.
"""

from repro.learning.sample import BinarySample, NarySample, Sample
from repro.learning.consistency import (
    bounded_consistent,
    is_consistent,
    sample_has_consistent_query,
)
from repro.learning.scp import select_smallest_consistent_paths, smallest_consistent_path
from repro.learning.generalize import generalize_pta
from repro.learning.learner import LearnerResult, learn_path_query, learn_with_dynamic_k
from repro.learning.rpni import rpni
from repro.learning.characteristic import (
    characteristic_graph,
    characteristic_word_sample,
)
from repro.learning.binary_learner import learn_binary_query
from repro.learning.nary_learner import learn_nary_query
from repro.learning.baselines import learn_scp_disjunction

__all__ = [
    "Sample",
    "BinarySample",
    "NarySample",
    "is_consistent",
    "bounded_consistent",
    "sample_has_consistent_query",
    "smallest_consistent_path",
    "select_smallest_consistent_paths",
    "generalize_pta",
    "LearnerResult",
    "learn_path_query",
    "learn_with_dynamic_k",
    "rpni",
    "characteristic_word_sample",
    "characteristic_graph",
    "learn_binary_query",
    "learn_nary_query",
    "learn_scp_disjunction",
]
