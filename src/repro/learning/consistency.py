"""Consistency of a sample (Lemma 3.1 and its bounded approximation).

A sample ``S`` on a graph ``G`` is *consistent* if some path query selects
every positive node and no negative node.  Lemma 3.1 characterizes this:
``S`` is consistent iff for every positive node ``nu``,
``paths_G(nu)`` is not included in ``paths_G(S-)``.

Deciding this exactly is PSPACE-complete (Lemma 3.2) -- the exact check here
determinizes the negative-paths NFA and is therefore exponential in the
worst case; it is meant for the small graphs of tests and examples.  The
*bounded* check (paths of length at most ``k``) is what Algorithm 1
effectively uses and runs in polynomial time.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.operations import language_included
from repro.engine.engine import get_default_engine
from repro.graphdb.graph import GraphDB
from repro.graphdb.paths import enumerate_paths, paths_nfa
from repro.learning.sample import Sample


def is_consistent(graph: GraphDB, sample: Sample) -> bool:
    """Exact consistency check (Lemma 3.1).

    Uses language inclusion between the positive node's path automaton and
    the negative set's path automaton.  Exponential in the worst case; use
    :func:`bounded_consistent` on large graphs.
    """
    sample.check_against(graph)
    if not sample.positives:
        return True
    if not sample.negatives:
        return True
    negative_paths = paths_nfa(graph, sample.negatives)
    for node in sample.positives:
        positive_paths = paths_nfa(graph, node)
        if not language_included(positive_paths, negative_paths):
            continue
        return False
    return True


def bounded_consistent(graph: GraphDB, sample: Sample, *, k: int) -> bool:
    """Whether every positive node has a consistent path of length at most ``k``.

    This is the (sound but incomplete) certificate of consistency Algorithm 1
    relies on: if it holds, the sample is consistent (the disjunction of the
    witnessing paths is a consistent query); if it does not hold, the sample
    may still be consistent via longer paths.
    """
    sample.check_against(graph)
    negatives = sample.negatives
    if not negatives:
        # Every positive's empty path is trivially uncovered.
        return True
    engine = get_default_engine()
    alphabet = graph.alphabet
    for node in sample.positives:
        found = False
        for path in enumerate_paths(graph, node, max_length=k):
            # "path not covered by any negative" is exactly "the single-word
            # query of path selects no negative"; the engine's early-exit
            # kernel answers it on the shared CSR index, and the compiled
            # word plan is cached across the learner's repeated checks.
            if not engine.any_selects(graph, DFA.single_word(alphabet, path), negatives):
                found = True
                break
        if not found:
            return False
    return True


def sample_has_consistent_query(graph: GraphDB, sample: Sample, *, k: int | None = None) -> bool:
    """Convenience dispatcher: exact check if ``k`` is None, bounded otherwise."""
    if k is None:
        return is_consistent(graph, sample)
    return bounded_consistent(graph, sample, k=k)
