"""Baseline learners used by the ablation benchmarks.

Section 3.2 discusses -- and Section 5.2 quantifies -- the effect of the
generalization phase on top of SCP selection.  The baseline implemented
here stops after the SCP step: it returns the plain disjunction of the
selected smallest consistent paths (a query using only concatenation and
disjunction, never the Kleene star).  Comparing it against the full learner
reproduces the "generalization adds about 1% of F1" observation and the
qualitative point that the baseline can never express starred queries.
"""

from __future__ import annotations

import time

from repro.engine.engine import QueryEngine, get_default_engine
from repro.graphdb.graph import GraphDB
from repro.learning.learner import DEFAULT_K, LearnerResult
from repro.learning.sample import Sample
from repro.learning.scp import select_smallest_consistent_paths
from repro.queries.path_query import PathQuery


def learn_scp_disjunction(
    graph: GraphDB,
    sample: Sample,
    *,
    k: int = DEFAULT_K,
    engine: QueryEngine | None = None,
) -> LearnerResult:
    """The no-generalization baseline: the disjunction of the SCPs.

    Abstains (returns a null result) when no positive node yields an SCP or
    when the disjunction fails to select some positive node (which happens
    exactly when that node has no consistent path of length at most ``k``).

    ``engine`` is the query engine used for the positives check; omitted,
    the process-wide default engine is used.

    .. deprecated:: 1.1
        Prefer :meth:`repro.api.Workspace.learn` with a
        :class:`repro.api.LearnerConfig` (``generalize=False``); this
        module-level function is kept as a thin compatibility shim.
    """
    sample.check_against(graph)
    started = time.perf_counter()
    if not sample.positives:
        return LearnerResult(query=None, k=k, elapsed=time.perf_counter() - started)
    scps = select_smallest_consistent_paths(graph, sample, k=k)
    positives_without_scp = frozenset(sample.positives - scps.keys())
    if not scps:
        return LearnerResult(
            query=None,
            k=k,
            positives_without_scp=positives_without_scp,
            elapsed=time.perf_counter() - started,
        )
    query = PathQuery.from_words(graph.alphabet, scps.values())
    engine = engine or get_default_engine()
    selects_all = all(
        engine.selects(graph, query.dfa, node) for node in sample.positives
    )
    return LearnerResult(
        query=query if selects_all else None,
        k=k,
        scps=scps,
        pta_states=query.size,
        generalized_states=query.size,
        positives_without_scp=positives_without_scp,
        selects_all_positives=selects_all,
        hypothesis=query,
        elapsed=time.perf_counter() - started,
    )
