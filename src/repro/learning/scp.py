"""Selection of the smallest consistent paths (SCPs).

For a positive node ``nu``, its smallest consistent path is the canonically
smallest word of ``paths_G(nu) \\ paths_G(S-)`` -- the smallest path of
``nu`` that no negative node covers (Algorithm 1, lines 1-2).  Because
``paths_G(nu)`` can be infinite, the search is bounded by the learner's
parameter ``k``; a positive node with no consistent path of length at most
``k`` simply contributes no SCP (the generalization step may still make the
learned query select it, which line 6 of the algorithm verifies).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.automata.alphabet import Word
from repro.errors import LearningError
from repro.graphdb.graph import GraphDB, Node
from repro.graphdb.paths import covered_by, enumerate_paths
from repro.learning.sample import Sample


def smallest_consistent_path(
    graph: GraphDB,
    node: Node,
    negatives: Iterable[Node],
    *,
    k: int,
) -> Word | None:
    """The smallest path of ``node`` (length <= k) not covered by the negatives.

    Returns None when no such path exists within the bound.
    """
    if k < 0:
        raise LearningError("the path-length bound k must be non-negative")
    negative_set = frozenset(negatives)
    for path in enumerate_paths(graph, node, max_length=k):
        if not covered_by(graph, path, negative_set):
            return path
    return None


def select_smallest_consistent_paths(
    graph: GraphDB,
    sample: Sample,
    *,
    k: int,
) -> dict[Node, Word]:
    """The SCP of every positive node that has one (length <= k).

    The returned mapping may omit positive nodes (when their consistent
    paths are all longer than ``k``); Algorithm 1 tolerates this and checks
    at the end that the generalized query still selects them.
    """
    sample.check_against(graph)
    scps: dict[Node, Word] = {}
    for node in sample.positives:
        path = smallest_consistent_path(graph, node, sample.negatives, k=k)
        if path is not None:
            scps[node] = path
    return scps
