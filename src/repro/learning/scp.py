"""Selection of the smallest consistent paths (SCPs).

For a positive node ``nu``, its smallest consistent path is the canonically
smallest word of ``paths_G(nu) \\ paths_G(S-)`` -- the smallest path of
``nu`` that no negative node covers (Algorithm 1, lines 1-2).  Because
``paths_G(nu)`` can be infinite, the search is bounded by the learner's
parameter ``k``; a positive node with no consistent path of length at most
``k`` simply contributes no SCP (the generalization step may still make the
learned query select it, which line 6 of the algorithm verifies).

The batch selection runs on the engine's CSR index: the negative example
set is fixed for a whole selection, so the multi-source frontier of every
candidate word is computed once on int node ids and shared across *all*
positive nodes via a prefix-closed cache (:class:`NegativeCoverage`).  The
object-level :func:`repro.graphdb.paths.covered_by` walk remains behind the
single-node :func:`smallest_consistent_path` API.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.automata.alphabet import Word
from repro.errors import LearningError
from repro.graphdb.graph import GraphDB, Node
from repro.graphdb.paths import covered_by, enumerate_paths
from repro.learning.sample import Sample


class NegativeCoverage:
    """Memoized ``covered_by`` against a fixed node set on the CSR index.

    ``covers(word)`` is True iff some node of the set has ``word`` in its
    ``paths_G``.  Frontiers (as sets of int node ids) are cached per word
    prefix, so checking the canonical enumeration of candidate paths for
    many positive nodes expands every distinct prefix exactly once over the
    index's per-label CSR slices -- the dict-adjacency walk this replaces
    re-ran the full frontier from scratch for every (positive, candidate)
    pair.
    """

    __slots__ = ("_index", "_frontiers", "nodes")

    def __init__(self, index, nodes: Iterable[Node]) -> None:
        self._index = index
        #: The covering node set this cache was built for (validated when a
        #: caller hands a prebuilt cache to the batch selection).
        self.nodes = frozenset(nodes)
        node_ids = index.node_ids
        start = frozenset(node_ids[node] for node in self.nodes)
        self._frontiers: dict[Word, frozenset[int]] = {(): start}

    def is_current(self, graph: GraphDB, nodes: Iterable[Node]) -> bool:
        """Whether this cache still matches the graph snapshot and node set.

        The interactive session keeps one cache alive across rounds and
        revalidates it here: a new negative label or a graph mutation makes
        it stale, a new positive label does not.
        """
        return self.nodes == frozenset(nodes) and self._index.is_current(graph)

    def frontier(self, word: Word) -> frozenset[int]:
        """The int ids reachable from the node set along ``word``."""
        cached = self._frontiers.get(word)
        if cached is not None:
            return cached
        previous = self.frontier(word[:-1])
        index = self._index
        label_id = index.label_ids.get(word[-1])
        if label_id is None or not previous:
            result: frozenset[int] = frozenset()
        else:
            offsets = index.fwd_offsets[label_id]
            targets = index.fwd_targets[label_id]
            moved: set[int] = set()
            for node in previous:
                moved.update(targets[offsets[node] : offsets[node + 1]])
            result = frozenset(moved)
        self._frontiers[word] = result
        return result

    def covers(self, word: Sequence[str]) -> bool:
        """Whether some node of the set covers ``word``."""
        return bool(self.frontier(tuple(word)))


def smallest_consistent_path(
    graph: GraphDB,
    node: Node,
    negatives: Iterable[Node],
    *,
    k: int,
) -> Word | None:
    """The smallest path of ``node`` (length <= k) not covered by the negatives.

    Returns None when no such path exists within the bound.
    """
    if k < 0:
        raise LearningError("the path-length bound k must be non-negative")
    negative_set = frozenset(negatives)
    for path in enumerate_paths(graph, node, max_length=k):
        if not covered_by(graph, path, negative_set):
            return path
    return None


def select_smallest_consistent_paths(
    graph: GraphDB,
    sample: Sample,
    *,
    k: int,
    engine=None,
    coverage: NegativeCoverage | None = None,
) -> dict[Node, Word]:
    """The SCP of every positive node that has one (length <= k).

    The returned mapping may omit positive nodes (when their consistent
    paths are all longer than ``k``); Algorithm 1 tolerates this and checks
    at the end that the generalized query still selects them.

    ``engine`` supplies the CSR index the shared negative-coverage cache
    runs on; omitted, the process-wide default engine is used.  ``coverage``
    lets a caller that learns repeatedly against the *same* negative set
    (the interactive session) reuse one prefix cache across calls; a stale
    or mismatched cache raises :class:`~repro.errors.LearningError`.
    """
    if k < 0:
        raise LearningError("the path-length bound k must be non-negative")
    sample.check_against(graph)
    if engine is None:
        from repro.engine.engine import get_default_engine

        engine = get_default_engine()
    if coverage is None:
        coverage = NegativeCoverage(engine.index_for(graph), sample.negatives)
    elif not coverage.is_current(graph, sample.negatives):
        raise LearningError(
            "the prebuilt NegativeCoverage does not match the sample's negatives "
            "(or the graph changed); rebuild it"
        )
    scps: dict[Node, Word] = {}
    for node in sample.positives:
        for path in enumerate_paths(graph, node, max_length=k):
            if not coverage.covers(path):
                scps[node] = path
                break
    return scps
