"""Algorithm 3: learning n-ary path queries.

An n-ary example labels a tuple of nodes; the algorithm projects the sample
onto each pair of adjacent positions, learns a binary query per position
with Algorithm 2, and combines the component queries.  If any component
learner abstains, the n-ary learner abstains.  Each component run inherits
Algorithm 2's kernel path: the per-position merge loops execute on in-place
:class:`~repro.automata.kernel.MergeFold` hypotheses, so the n-ary learner
never copies an automaton either.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.engine import QueryEngine
from repro.errors import LearningError, SerializationError
from repro.graphdb.graph import GraphDB
from repro.learning.binary_learner import BinaryLearnerResult, learn_binary_query
from repro.learning.learner import DEFAULT_K
from repro.learning.sample import NarySample
from repro.queries.nary import NaryPathQuery


@dataclass(frozen=True)
class NaryLearnerResult:
    """Outcome of one run of the n-ary learner (``query`` is None on abstain).

    Implements the uniform :class:`repro.api.Result` protocol: ``ok``,
    ``query``, ``elapsed`` and a JSON-safe ``to_dict``/``from_dict`` pair.
    """

    query: NaryPathQuery | None
    k: int
    components: tuple[BinaryLearnerResult, ...] = field(default_factory=tuple)
    elapsed: float = 0.0

    @property
    def is_null(self) -> bool:
        """Whether the learner abstained."""
        return self.query is None

    @property
    def ok(self) -> bool:
        """Result protocol: True iff the learner returned a query."""
        return not self.is_null

    # -- serialization (Result protocol) -------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        return {
            "type": "NaryLearnerResult",
            "ok": self.ok,
            "elapsed": self.elapsed,
            "k": self.k,
            "components": [component.to_dict() for component in self.components],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NaryLearnerResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            components = tuple(
                BinaryLearnerResult.from_dict(entry)
                for entry in payload.get("components", [])
            )
            query: NaryPathQuery | None = None
            if payload.get("ok") and components and all(c.query for c in components):
                query = NaryPathQuery([component.query for component in components])
            return cls(
                query=query,
                k=payload["k"],
                components=components,
                elapsed=payload.get("elapsed", 0.0),
            )
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed NaryLearnerResult payload: {error}"
            ) from error


def learn_nary_query(
    graph: GraphDB,
    sample: NarySample,
    *,
    k: int = DEFAULT_K,
    engine: QueryEngine | None = None,
) -> NaryLearnerResult:
    """Run Algorithm 3 on the given graph and n-ary sample.

    ``engine`` is forwarded to the per-position binary learners; omitted,
    the process-wide default engine is used.

    .. deprecated:: 1.1
        Prefer :meth:`repro.api.Workspace.learn` with a
        :class:`repro.api.LearnerConfig` (``semantics="nary"``); this
        module-level function is kept as a thin compatibility shim.
    """
    if k < 0:
        raise LearningError("the path-length bound k must be non-negative")
    sample.check_against(graph)
    started = time.perf_counter()
    arity = sample.arity
    if arity is None or not sample.positives:
        return NaryLearnerResult(query=None, k=k, elapsed=time.perf_counter() - started)

    component_results: list[BinaryLearnerResult] = []
    for position in range(arity - 1):
        projected = sample.project(position)
        result = learn_binary_query(graph, projected, k=k, engine=engine)
        component_results.append(result)
        if result.is_null:
            return NaryLearnerResult(
                query=None,
                k=k,
                components=tuple(component_results),
                elapsed=time.perf_counter() - started,
            )
    query = NaryPathQuery([result.query for result in component_results])
    return NaryLearnerResult(
        query=query,
        k=k,
        components=tuple(component_results),
        elapsed=time.perf_counter() - started,
    )
