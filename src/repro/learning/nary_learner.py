"""Algorithm 3: learning n-ary path queries.

An n-ary example labels a tuple of nodes; the algorithm projects the sample
onto each pair of adjacent positions, learns a binary query per position
with Algorithm 2, and combines the component queries.  If any component
learner abstains, the n-ary learner abstains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LearningError
from repro.graphdb.graph import GraphDB
from repro.learning.binary_learner import BinaryLearnerResult, learn_binary_query
from repro.learning.learner import DEFAULT_K
from repro.learning.sample import NarySample
from repro.queries.nary import NaryPathQuery


@dataclass(frozen=True)
class NaryLearnerResult:
    """Outcome of one run of the n-ary learner (``query`` is None on abstain)."""

    query: NaryPathQuery | None
    k: int
    components: tuple[BinaryLearnerResult, ...] = field(default_factory=tuple)

    @property
    def is_null(self) -> bool:
        """Whether the learner abstained."""
        return self.query is None


def learn_nary_query(
    graph: GraphDB, sample: NarySample, *, k: int = DEFAULT_K
) -> NaryLearnerResult:
    """Run Algorithm 3 on the given graph and n-ary sample."""
    if k < 0:
        raise LearningError("the path-length bound k must be non-negative")
    sample.check_against(graph)
    arity = sample.arity
    if arity is None or not sample.positives:
        return NaryLearnerResult(query=None, k=k)

    component_results: list[BinaryLearnerResult] = []
    for position in range(arity - 1):
        projected = sample.project(position)
        result = learn_binary_query(graph, projected, k=k)
        component_results.append(result)
        if result.is_null:
            return NaryLearnerResult(
                query=None, k=k, components=tuple(component_results)
            )
    query = NaryPathQuery([result.query for result in component_results])
    return NaryLearnerResult(query=query, k=k, components=tuple(component_results))
