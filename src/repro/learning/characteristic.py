"""Characteristic samples and characteristic graphs (Theorem 3.5).

Theorem 3.5 proves that the class of path queries of bounded canonical-DFA
size is learnable with abstain: for every query ``q`` one can build a graph
and a polynomially-sized *characteristic sample* on it such that the
learner, given any consistent extension of that sample, returns ``q``.

The construction has two stages, both implemented here:

1. :func:`characteristic_word_sample` -- the characteristic *word* sample
   ``(P+, P-)`` that the word-level learner (RPNI) needs to identify
   ``L(q)``.  We follow the standard construction over the minimal complete
   DFA: short prefixes reach every state, kernel words exercise every
   transition, and distinguishing suffixes separate every pair of states.
2. :func:`characteristic_graph` -- the graph of Figure 7: one positive node
   per word of ``P+`` whose smallest consistent path is exactly that word,
   and one negative node covering every word of ``P-`` together with every
   word canonically smaller than the longest positive word that is not
   prefixed by a word of ``L(q)`` (so that SCP selection cannot pick
   anything smaller than the intended word).
"""

from __future__ import annotations

from repro.automata.alphabet import Alphabet, Word
from repro.automata.dfa import DFA
from repro.automata.minimize import canonical_dfa, minimize
from repro.errors import LearningError
from repro.graphdb.graph import GraphDB
from repro.learning.sample import Sample
from repro.queries.path_query import PathQuery


def _shortest_word_between(dfa: DFA, source, targets: frozenset) -> Word | None:
    """The canonically smallest word leading from ``source`` to one of ``targets``."""
    from collections import deque

    if source in targets:
        return ()
    queue: deque[tuple[object, Word]] = deque([(source, ())])
    seen = {source}
    while queue:
        state, word = queue.popleft()
        for symbol in dfa.alphabet:
            nxt = dfa.delta(state, symbol)
            if nxt is None:
                continue
            extended = word + (symbol,)
            if nxt in targets:
                return extended
            if nxt not in seen:
                seen.add(nxt)
                queue.append((nxt, extended))
    return None


def _access_words(dfa: DFA) -> dict[object, Word]:
    """The canonically smallest word reaching every reachable state."""
    from collections import deque

    access: dict[object, Word] = {dfa.initial: ()}
    queue: deque[object] = deque([dfa.initial])
    while queue:
        state = queue.popleft()
        for symbol in dfa.alphabet:
            nxt = dfa.delta(state, symbol)
            if nxt is not None and nxt not in access:
                access[nxt] = access[state] + (symbol,)
                queue.append(nxt)
    return access


def _distinguishing_suffix(dfa: DFA, left, right) -> Word | None:
    """A canonically small word accepted from exactly one of the two states."""
    from collections import deque

    if (left in dfa.final_states) != (right in dfa.final_states):
        return ()
    queue: deque[tuple[object, object, Word]] = deque([(left, right, ())])
    seen = {(left, right)}
    while queue:
        l_state, r_state, word = queue.popleft()
        for symbol in dfa.alphabet:
            l_next = dfa.delta(l_state, symbol)
            r_next = dfa.delta(r_state, symbol)
            if l_next is None or r_next is None:
                continue
            extended = word + (symbol,)
            if (l_next in dfa.final_states) != (r_next in dfa.final_states):
                return extended
            if (l_next, r_next) not in seen:
                seen.add((l_next, r_next))
                queue.append((l_next, r_next, extended))
    return None


def characteristic_word_sample(query: PathQuery | DFA) -> tuple[set[Word], set[Word]]:
    """The characteristic word sample ``(P+, P-)`` for RPNI to identify ``L(q)``.

    For the paper's running example ``(a.b)*.c`` this yields
    ``P+ = {c, abc}`` and a ``P-`` containing (at least) ``eps, a, ab, ac, bc``.
    """
    dfa = query.dfa if isinstance(query, PathQuery) else canonical_dfa(query)
    if dfa.is_empty():
        raise LearningError("cannot build a characteristic sample for the empty query")
    complete = minimize(dfa)  # minimal complete DFA (may include a sink)
    access = _access_words(complete)
    finals = complete.final_states

    positives: set[Word] = set()
    negatives: set[Word] = set()

    # Kernel words: the access word of every state, extended by every symbol.
    kernel: set[Word] = {()}
    for state, word in access.items():
        for symbol in complete.alphabet:
            if complete.delta(state, symbol) is not None:
                kernel.add(word + (symbol,))

    # (1) every kernel word, completed by the shortest accepting tail, is positive.
    for word in kernel:
        landing = complete.run(word)
        if landing is None:
            continue
        tail = _shortest_word_between(complete, landing, finals)
        if tail is not None:
            positives.add(word + tail)

    # (2) distinguishing suffixes between every short prefix and kernel word
    # that land on different states.
    short_prefixes = set(access.values())
    for left_word in sorted(short_prefixes):
        for right_word in sorted(kernel):
            left_state = complete.run(left_word)
            right_state = complete.run(right_word)
            if left_state is None or right_state is None or left_state == right_state:
                continue
            suffix = _distinguishing_suffix(complete, left_state, right_state)
            if suffix is None:
                continue
            left_full, right_full = left_word + suffix, right_word + suffix
            if complete.accepts(left_full):
                positives.add(left_full)
                negatives.add(right_full)
            else:
                negatives.add(left_full)
                positives.add(right_full)
    return positives, negatives


def theoretical_k(query: PathQuery) -> int:
    """The path-length bound ``k = 2n + 1`` of Theorem 3.5 for this query."""
    return 2 * query.size + 1


def characteristic_graph(
    query: PathQuery,
    *,
    alphabet: Alphabet | None = None,
) -> tuple[GraphDB, Sample]:
    """Build the characteristic graph and sample of Theorem 3.5 for ``query``.

    Returns ``(graph, sample)`` such that running the learner on any sample
    that extends ``sample`` consistently with ``query`` (with ``k`` at least
    :func:`theoretical_k`) returns a query equivalent to ``query``.
    """
    prefix_free_query = query.prefix_free_form()
    target_alphabet = alphabet if alphabet is not None else prefix_free_query.alphabet
    positives_words, negatives_words = characteristic_word_sample(prefix_free_query)
    if not positives_words:
        raise LearningError("the query has an empty characteristic positive set")

    graph = GraphDB(target_alphabet)
    sample_positives: set[str] = set()

    # (i) one positive node per positive word; a simple chain realizes the
    # word, and (the query being prefix-free) that word is necessarily the
    # smallest consistent path of the node.
    for index, word in enumerate(sorted(positives_words, key=target_alphabet.word_key)):
        head = f"pos{index}"
        current = head
        for position, symbol in enumerate(word, start=1):
            nxt = f"pos{index}_{position}"
            graph.add_edge(current, symbol, nxt)
            current = nxt
        graph.add_node(head)
        sample_positives.add(head)

    # (ii)+(iii) one negative node covering P- and every word canonically
    # smaller than the largest positive word that is not prefixed by a word
    # of L(q) (such words would otherwise be picked as spuriously small SCPs).
    largest_positive = max(positives_words, key=target_alphabet.word_key)
    blocked: set[Word] = set()
    for word in negatives_words:
        if not _has_prefix_in_language(prefix_free_query, word):
            blocked.add(word)
    for word in target_alphabet.words_up_to(len(largest_positive)):
        if target_alphabet.word_key(word) >= target_alphabet.word_key(largest_positive):
            continue
        if not _has_prefix_in_language(prefix_free_query, word):
            blocked.add(word)

    negative_head = "neg"
    graph.add_node(negative_head)
    trie_nodes: dict[Word, str] = {(): negative_head}
    for word in sorted(blocked, key=target_alphabet.word_key):
        for cut in range(1, len(word) + 1):
            prefix = word[:cut]
            if prefix in trie_nodes:
                continue
            parent = trie_nodes[word[: cut - 1]]
            node_name = f"neg_{len(trie_nodes)}"
            graph.add_edge(parent, word[cut - 1], node_name)
            trie_nodes[prefix] = node_name

    sample = Sample(positives=sample_positives, negatives={negative_head})
    return graph, sample


def _has_prefix_in_language(query: PathQuery, word: Word) -> bool:
    """Whether some prefix of ``word`` (including itself) belongs to ``L(q)``."""
    for cut in range(len(word) + 1):
        if query.accepts_word(word[:cut]):
            return True
    return False
