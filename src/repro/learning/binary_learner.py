"""Algorithm 2: learning path queries under the binary semantics.

The only change with respect to Algorithm 1 is the space of candidate paths
per example: a positive example is now a *pair* of nodes, so the paths to
consider are the words of ``paths2_G(nu, nu')`` (the destination node is
fixed), and negative coverage is checked against the paths between the
negative pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.alphabet import Word
from repro.automata.dfa import DFA
from repro.automata.minimize import canonical_dfa
from repro.automata.pta import prefix_tree_acceptor
from repro.errors import LearningError
from repro.graphdb.graph import GraphDB, Node
from repro.engine.engine import get_default_engine
from repro.graphdb.paths import enumerate_paths_between
from repro.learning.generalize import generalize_pta
from repro.learning.learner import DEFAULT_K
from repro.learning.sample import BinarySample
from repro.queries.binary import BinaryPathQuery


@dataclass(frozen=True)
class BinaryLearnerResult:
    """Outcome of one run of the binary learner (``query`` is None on abstain)."""

    query: BinaryPathQuery | None
    k: int
    scps: dict[tuple[Node, Node], Word] = field(default_factory=dict)
    selects_all_positives: bool = False

    @property
    def is_null(self) -> bool:
        """Whether the learner abstained."""
        return self.query is None


def _pair_covered(graph: GraphDB, word: Word, pairs: frozenset[tuple[Node, Node]]) -> bool:
    """Whether ``word`` labels a path between one of the given node pairs."""
    for origin, end in pairs:
        frontier = {origin}
        for symbol in word:
            next_frontier: set[Node] = set()
            for current in frontier:
                next_frontier.update(graph.successors(current, symbol))
            frontier = next_frontier
            if not frontier:
                break
        if frontier and end in frontier:
            return True
    return False


def learn_binary_query(
    graph: GraphDB, sample: BinarySample, *, k: int = DEFAULT_K
) -> BinaryLearnerResult:
    """Run Algorithm 2 on the given graph and binary sample."""
    if k < 0:
        raise LearningError("the path-length bound k must be non-negative")
    sample.check_against(graph)
    if not sample.positives:
        return BinaryLearnerResult(query=None, k=k)

    negatives = sample.negatives
    scps: dict[tuple[Node, Node], Word] = {}
    for origin, end in sample.positives:
        for path in enumerate_paths_between(graph, origin, end, max_length=k):
            if not _pair_covered(graph, path, negatives):
                scps[(origin, end)] = path
                break
    if not scps:
        return BinaryLearnerResult(query=None, k=k)

    pta = prefix_tree_acceptor(graph.alphabet, scps.values())
    engine = get_default_engine()

    def violates(candidate: DFA) -> bool:
        return any(
            engine.pair_selects(graph, candidate, origin, end, ephemeral=True)
            for origin, end in negatives
        )

    generalized = generalize_pta(pta, violates, alphabet=graph.alphabet)
    canonical = canonical_dfa(generalized)
    selects_all = all(
        engine.pair_selects(graph, canonical, origin, end)
        for origin, end in sample.positives
    )
    query = BinaryPathQuery(canonical) if selects_all else None
    return BinaryLearnerResult(
        query=query, k=k, scps=scps, selects_all_positives=selects_all
    )
