"""Algorithm 2: learning path queries under the binary semantics.

The only change with respect to Algorithm 1 is the space of candidate paths
per example: a positive example is now a *pair* of nodes, so the paths to
consider are the words of ``paths2_G(nu, nu')`` (the destination node is
fixed), and negative coverage is checked against the paths between the
negative pairs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.automata.alphabet import Word
from repro.automata.kernel import MergeFold, fold_generalize, pta_table
from repro.automata.minimize import canonical_dfa
from repro.errors import LearningError, SerializationError
from repro.graphdb.graph import GraphDB, Node
from repro.engine.engine import QueryEngine, get_default_engine
from repro.graphdb.paths import enumerate_paths_between
from repro.learning.learner import DEFAULT_K
from repro.learning.sample import BinarySample
from repro.queries.binary import BinaryPathQuery


@dataclass(frozen=True)
class BinaryLearnerResult:
    """Outcome of one run of the binary learner (``query`` is None on abstain).

    Implements the uniform :class:`repro.api.Result` protocol: ``ok``,
    ``query``, ``elapsed`` and a JSON-safe ``to_dict``/``from_dict`` pair.
    """

    query: BinaryPathQuery | None
    k: int
    scps: dict[tuple[Node, Node], Word] = field(default_factory=dict)
    selects_all_positives: bool = False
    elapsed: float = 0.0

    @property
    def is_null(self) -> bool:
        """Whether the learner abstained."""
        return self.query is None

    @property
    def ok(self) -> bool:
        """Result protocol: True iff the learner returned a query."""
        return not self.is_null

    # -- serialization (Result protocol) -------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        return {
            "type": "BinaryLearnerResult",
            "ok": self.ok,
            "elapsed": self.elapsed,
            "k": self.k,
            "query": None if self.query is None else self.query.to_dict(),
            "scps": sorted(
                ([list(pair), list(word)] for pair, word in self.scps.items()),
                key=repr,
            ),
            "selects_all_positives": self.selects_all_positives,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BinaryLearnerResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            return cls(
                query=(
                    None
                    if payload["query"] is None
                    else BinaryPathQuery.from_dict(payload["query"])
                ),
                k=payload["k"],
                scps={
                    tuple(pair): tuple(word) for pair, word in payload.get("scps", [])
                },
                selects_all_positives=payload.get("selects_all_positives", False),
                elapsed=payload.get("elapsed", 0.0),
            )
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed BinaryLearnerResult payload: {error}"
            ) from error


def _pair_covered(graph: GraphDB, word: Word, pairs: frozenset[tuple[Node, Node]]) -> bool:
    """Whether ``word`` labels a path between one of the given node pairs."""
    for origin, end in pairs:
        frontier = {origin}
        for symbol in word:
            next_frontier: set[Node] = set()
            for current in frontier:
                next_frontier.update(graph.successors(current, symbol))
            frontier = next_frontier
            if not frontier:
                break
        if frontier and end in frontier:
            return True
    return False


def learn_binary_query(
    graph: GraphDB,
    sample: BinarySample,
    *,
    k: int = DEFAULT_K,
    engine: QueryEngine | None = None,
) -> BinaryLearnerResult:
    """Run Algorithm 2 on the given graph and binary sample.

    ``engine`` is the query engine used by the merge guard and the final
    positives check; omitted, the process-wide default engine is used.

    .. deprecated:: 1.1
        Prefer :meth:`repro.api.Workspace.learn` with a
        :class:`repro.api.LearnerConfig` (``semantics="binary"``); this
        module-level function is kept as a thin compatibility shim.
    """
    if k < 0:
        raise LearningError("the path-length bound k must be non-negative")
    sample.check_against(graph)
    started = time.perf_counter()
    if not sample.positives:
        return BinaryLearnerResult(query=None, k=k, elapsed=time.perf_counter() - started)

    negatives = sample.negatives
    scps: dict[tuple[Node, Node], Word] = {}
    for origin, end in sample.positives:
        for path in enumerate_paths_between(graph, origin, end, max_length=k):
            if not _pair_covered(graph, path, negatives):
                scps[(origin, end)] = path
                break
    if not scps:
        return BinaryLearnerResult(query=None, k=k, elapsed=time.perf_counter() - started)

    # As in Algorithm 1, the merge loop runs end-to-end on the kernel: one
    # in-place MergeFold, pair-guard walked against the CSR index.
    pta = pta_table(graph.alphabet, scps.values())
    engine = engine or get_default_engine()

    def violates(candidate: MergeFold) -> bool:
        return any(
            engine.pair_selects(graph, candidate, origin, end, ephemeral=True)
            for origin, end in negatives
        )

    fold = fold_generalize(pta, violates)
    canonical = canonical_dfa(fold.to_table())
    selects_all = all(
        engine.pair_selects(graph, canonical, origin, end)
        for origin, end in sample.positives
    )
    query = BinaryPathQuery(canonical) if selects_all else None
    return BinaryLearnerResult(
        query=query,
        k=k,
        scps=scps,
        selects_all_positives=selects_all,
        elapsed=time.perf_counter() - started,
    )
