"""Samples: sets of labeled examples.

A (monadic) example is a pair ``(node, label)`` with label ``+`` or ``-``;
a sample is a set of examples (Section 3.1).  Binary and n-ary samples
(Appendix B) label pairs and tuples of nodes instead.

Samples are immutable value objects; "adding" an example returns a new
sample, which keeps the interactive loop's bookkeeping simple and makes the
objects safe to share between strategies.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Generic, TypeVar

from repro.errors import SampleError
from repro.graphdb.graph import GraphDB, Node

POSITIVE = "+"
NEGATIVE = "-"

ExampleT = TypeVar("ExampleT")


class _BaseSample(Generic[ExampleT]):
    """Shared implementation of the three sample flavours."""

    def __init__(
        self,
        positives: Iterable[ExampleT] = (),
        negatives: Iterable[ExampleT] = (),
    ) -> None:
        self._positives: frozenset[ExampleT] = frozenset(positives)
        self._negatives: frozenset[ExampleT] = frozenset(negatives)
        overlap = self._positives & self._negatives
        if overlap:
            raise SampleError(
                f"examples labeled both positive and negative: {sorted(overlap, key=repr)[:5]!r}"
            )

    @property
    def positives(self) -> frozenset[ExampleT]:
        """The positive examples (S+)."""
        return self._positives

    @property
    def negatives(self) -> frozenset[ExampleT]:
        """The negative examples (S-)."""
        return self._negatives

    @property
    def labeled(self) -> frozenset[ExampleT]:
        """All labeled examples."""
        return self._positives | self._negatives

    def __len__(self) -> int:
        return len(self._positives) + len(self._negatives)

    def __bool__(self) -> bool:
        return bool(self._positives or self._negatives)

    def __contains__(self, example: object) -> bool:
        return example in self._positives or example in self._negatives

    def __iter__(self) -> Iterator[tuple[ExampleT, str]]:
        for example in self._positives:
            yield example, POSITIVE
        for example in self._negatives:
            yield example, NEGATIVE

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._positives == other._positives and self._negatives == other._negatives

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._positives, self._negatives))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(positives={len(self._positives)}, "
            f"negatives={len(self._negatives)})"
        )

    def label_of(self, example: ExampleT) -> str | None:
        """The label of an example (``'+'``, ``'-'``) or None if unlabeled."""
        if example in self._positives:
            return POSITIVE
        if example in self._negatives:
            return NEGATIVE
        return None

    def with_example(self, example: ExampleT, label: str) -> "_BaseSample[ExampleT]":
        """A new sample with one more labeled example."""
        if label not in (POSITIVE, NEGATIVE):
            raise SampleError(f"label must be '+' or '-', got {label!r}")
        current = self.label_of(example)
        if current is not None and current != label:
            raise SampleError(
                f"example {example!r} is already labeled {current!r}"
            )
        if label == POSITIVE:
            return type(self)(self._positives | {example}, self._negatives)
        return type(self)(self._positives, self._negatives | {example})

    def with_positive(self, example: ExampleT) -> "_BaseSample[ExampleT]":
        """A new sample with one more positive example."""
        return self.with_example(example, POSITIVE)

    def with_negative(self, example: ExampleT) -> "_BaseSample[ExampleT]":
        """A new sample with one more negative example."""
        return self.with_example(example, NEGATIVE)

    def extends(self, other: "_BaseSample[ExampleT]") -> bool:
        """Whether this sample contains every example of ``other`` with the same label."""
        return other.positives <= self._positives and other.negatives <= self._negatives


class Sample(_BaseSample[Node]):
    """A monadic sample: positive and negative graph nodes."""

    def check_against(self, graph: GraphDB) -> None:
        """Validate that every labeled node belongs to the given graph."""
        missing = [node for node in self.labeled if node not in graph]
        if missing:
            raise SampleError(
                f"labeled nodes not present in the graph: {sorted(missing, key=repr)[:5]!r}"
            )

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Node, str]]) -> "Sample":
        """Build a sample from ``(node, '+'/'-')`` pairs."""
        positives, negatives = [], []
        for node, label in pairs:
            if label == POSITIVE:
                positives.append(node)
            elif label == NEGATIVE:
                negatives.append(node)
            else:
                raise SampleError(f"label must be '+' or '-', got {label!r}")
        return cls(positives, negatives)


class BinarySample(_BaseSample[tuple[Node, Node]]):
    """A binary sample: positive and negative node pairs."""

    def check_against(self, graph: GraphDB) -> None:
        """Validate that every node of every labeled pair belongs to the graph."""
        missing = [
            pair for pair in self.labeled if pair[0] not in graph or pair[1] not in graph
        ]
        if missing:
            raise SampleError(
                f"labeled pairs with nodes not in the graph: {sorted(missing, key=repr)[:5]!r}"
            )


class NarySample(_BaseSample[tuple[Node, ...]]):
    """An n-ary sample: positive and negative node tuples (all the same arity)."""

    def __init__(
        self,
        positives: Iterable[Sequence[Node]] = (),
        negatives: Iterable[Sequence[Node]] = (),
    ) -> None:
        super().__init__(
            (tuple(example) for example in positives),
            (tuple(example) for example in negatives),
        )
        arities = {len(example) for example in self.labeled}
        if len(arities) > 1:
            raise SampleError(f"examples of mixed arities: {sorted(arities)!r}")
        if arities and min(arities) < 2:
            raise SampleError("n-ary examples must have arity at least 2")

    @property
    def arity(self) -> int | None:
        """The arity of the labeled tuples (None if the sample is empty)."""
        for example in self.labeled:
            return len(example)
        return None

    def check_against(self, graph: GraphDB) -> None:
        """Validate that every node of every labeled tuple belongs to the graph."""
        missing = [
            example
            for example in self.labeled
            if any(node not in graph for node in example)
        ]
        if missing:
            raise SampleError(
                f"labeled tuples with nodes not in the graph: {sorted(missing, key=repr)[:5]!r}"
            )

    def project(self, position: int) -> BinarySample:
        """The binary sample of adjacent pairs at ``position`` (Algorithm 3, lines 2-3)."""
        if self.arity is None:
            return BinarySample()
        if not 0 <= position < self.arity - 1:
            raise SampleError(f"position {position} out of range for arity {self.arity}")
        positives = {(t[position], t[position + 1]) for t in self.positives}
        negatives = {(t[position], t[position + 1]) for t in self.negatives}
        # A pair can appear in both projections (different tuples); positives win,
        # because a consistent component query must select every positive pair,
        # while a negative tuple only requires *some* position to fail.
        negatives -= positives
        return BinarySample(positives, negatives)
