"""The small example graphs of the paper's figures.

These graphs are reproduced edge-for-edge from the paper so that the worked
examples (the geographical database of Figure 1, the graph G0 of Figure 3,
the inconsistent sample of Figure 5, the prefix-equivalence example of
Figure 8, the certain-node example of Figure 10 and the characteristic graph
of Figure 7 / Theorem 3.5) can be used directly in tests and examples.
"""

from __future__ import annotations

from repro.graphdb.graph import GraphDB


def geo_graph() -> GraphDB:
    """The geographical graph database of Figure 1.

    Neighborhoods N1-N6, cinemas C1-C2 and restaurants R1-R2, connected by
    ``tram``/``bus`` transportation edges and ``cinema``/``restaurant``
    facility edges.  The running-example query ``(tram+bus)*.cinema``
    selects N1, N2, N4 and N6 on this graph.
    """
    graph = GraphDB(["bus", "cinema", "restaurant", "tram"])
    graph.add_edges(
        [
            ("N1", "tram", "N4"),
            ("N2", "bus", "N1"),
            ("N2", "bus", "N3"),
            ("N2", "tram", "N5"),
            ("N3", "bus", "N5"),
            ("N4", "cinema", "C1"),
            ("N4", "bus", "N5"),
            ("N5", "restaurant", "R1"),
            ("N5", "tram", "N3"),
            ("N5", "bus", "N3"),
            ("N6", "tram", "N5"),
            ("N6", "restaurant", "R2"),
            ("N6", "cinema", "C2"),
        ]
    )
    return graph


def example_graph_g0() -> GraphDB:
    """A faithful reconstruction of the graph G0 of Figure 3 (7 nodes, 15 edges).

    The published figure is not machine-readable, so this graph is rebuilt to
    satisfy every property the paper states about G0:

    * the word ``aba`` matches the node sequences v1 v2 v3 v4 and v3 v2 v3 v4
      but not v1 v2 v7 v2;
    * a cycle is reachable from v1, so ``paths(v1)`` is infinite;
    * the query ``a`` selects every node except v4;
    * the query ``(a.b)*.c`` selects exactly v1 and v3, and ``b.b.c.c``
      selects no node;
    * with the sample S+ = {v1, v3}, S- = {v2, v7} of Section 3.2, the
      smallest consistent paths are ``abc`` (for v1) and ``c`` (for v3), the
      merge of the PTA states ``eps`` and ``a`` is blocked because the
      generalized automaton would accept ``b.c`` which is a path of the
      negative node v2, and the learner ends up with ``(a.b)*.c``.

    The only intentional deviation is ``paths(v5)`` = {eps, a, b} instead of
    the paper's {eps, a, b, c}; a ``c`` path at v5 would contradict the
    statement that ``(a.b)*.c`` selects only v1 and v3.
    """
    graph = GraphDB(["a", "b", "c"])
    graph.add_edges(
        [
            ("v1", "a", "v2"),
            ("v2", "b", "v3"),
            ("v3", "c", "v4"),
            ("v3", "a", "v2"),
            ("v3", "a", "v4"),
            ("v2", "b", "v7"),
            ("v2", "a", "v5"),
            ("v2", "a", "v6"),
            ("v5", "a", "v4"),
            ("v5", "b", "v4"),
            ("v7", "a", "v7"),
            ("v7", "b", "v7"),
            ("v6", "a", "v1"),
            ("v6", "b", "v5"),
            ("v6", "b", "v7"),
        ]
    )
    return graph


def g0_characteristic_sample() -> tuple[set[str], set[str]]:
    """The sample used throughout Section 3.2: S+ = {v1, v3}, S- = {v2, v7}."""
    return {"v1", "v3"}, {"v2", "v7"}


def inconsistent_sample_graph() -> tuple[GraphDB, set[str], set[str]]:
    """The graph and sample of Figure 5 (one positive, two negatives, inconsistent).

    The positive node has infinitely many paths (an ``a``/``b`` cycle), but
    every one of them is covered by one of the two negative nodes, so no
    consistent query exists (Lemma 3.1).
    """
    graph = GraphDB(["a", "b"])
    graph.add_edges(
        [
            ("pos", "a", "pos2"),
            ("pos2", "b", "pos"),
            ("neg1", "a", "neg1b"),
            ("neg1b", "b", "neg1"),
            ("neg2", "a", "neg2b"),
            ("neg2b", "b", "neg2"),
        ]
    )
    positives = {"pos"}
    negatives = {"neg1", "neg2"}
    return graph, positives, negatives


def prefix_equivalent_graph() -> tuple[GraphDB, set[str], set[str]]:
    """A graph in the spirit of Figure 8: the goal has no characteristic sample.

    Labeling this graph consistently with the goal ``(a.b)*.c`` yields a
    sample on which the goal is indistinguishable from the much simpler
    query ``a``: both select exactly {m1, m2}.  The learner therefore
    returns ``a`` -- the behaviour Section 3.3 describes for graphs that do
    not own a characteristic sample for the goal query.
    """
    graph = GraphDB(["a", "b", "c"])
    graph.add_edges(
        [
            ("m1", "a", "m2"),
            ("m2", "a", "m1"),
            ("m1", "c", "m4"),
            ("m2", "c", "m4"),
        ]
    )
    graph.add_node("m3")
    positives = {"m1", "m2"}
    negatives = {"m3", "m4"}
    return graph, positives, negatives


def certain_node_graph() -> tuple[GraphDB, set[str], set[str], str]:
    """The graph of Figure 10: two labeled nodes and one certain node.

    Returns ``(graph, positives, negatives, certain_node)`` where the certain
    node must be selected by every query consistent with the sample (it is
    certain-positive), so asking the user to label it brings no information.
    """
    graph = GraphDB(["a", "b"])
    graph.add_edges(
        [
            ("neg", "a", "x1"),
            ("pos", "a", "x2"),
            ("pos", "b", "x3"),
            ("cert", "b", "x4"),
        ]
    )
    positives = {"pos"}
    negatives = {"neg"}
    return graph, positives, negatives, "cert"


def theorem_graph_for_abstar_c() -> tuple[GraphDB, set[str], set[str]]:
    """The characteristic graph of Figure 7 / Theorem 3.5 for ``(a.b)*.c``.

    The construction requires
    (i) a positive node whose smallest consistent path is ``c``,
    (ii) a positive node whose smallest consistent path is ``a.b.c`` (and
    that does not have the path ``c``), and
    (iii) a negative node covering every word of P- = {eps, a, ab, ac, bc}
    and every word canonically smaller than ``a.b.c`` that is not prefixed
    by a word of the language (so nothing smaller can be picked as an SCP).

    This is the generic programmatic construction of
    :func:`repro.learning.characteristic.characteristic_graph` instantiated
    on the paper's running-example query.
    """
    # Imported lazily: repro.learning depends on repro.graphdb, and this
    # module is otherwise dependency-free within the package.
    from repro.learning.characteristic import characteristic_graph
    from repro.queries.path_query import PathQuery

    query = PathQuery.parse("(a.b)*.c", GraphDB(["a", "b", "c"]).alphabet)
    graph, sample = characteristic_graph(query)
    return graph, set(sample.positives), set(sample.negatives)
