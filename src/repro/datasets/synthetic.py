"""Synthetic graph generation.

Section 5.1 of the paper describes a generator that "yields graphs of
varying size and similar to real-world graphs", specifically *scale-free*
graphs with a *Zipfian edge-label distribution* (following Koschmieder &
Leser's RPQ evaluation setup), with three times as many edges as nodes.
This module reimplements that generator:

* node degrees follow a preferential-attachment process, so a few hub nodes
  concentrate many edges (scale-free shape);
* edge labels are drawn from a Zipf distribution over the alphabet, so a few
  labels dominate and the tail is rare.

All randomness goes through an explicit :class:`random.Random` seed so that
experiments are reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import GraphError
from repro.graphdb.graph import GraphDB


def default_alphabet(size: int) -> list[str]:
    """The default synthetic alphabet: ``l00``, ``l01``, ... (sorted = index order)."""
    if size < 1:
        raise GraphError("alphabet size must be at least 1")
    width = max(2, len(str(size - 1)))
    return [f"l{i:0{width}d}" for i in range(size)]


def zipfian_label_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Zipf weights ``1/rank^exponent`` for ``count`` labels (unnormalized)."""
    if count < 1:
        raise GraphError("label count must be at least 1")
    if exponent < 0:
        raise GraphError("Zipf exponent must be non-negative")
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def scale_free_graph(
    node_count: int,
    *,
    edge_factor: float = 3.0,
    alphabet: Sequence[str] | None = None,
    alphabet_size: int = 20,
    zipf_exponent: float = 1.0,
    label_weights: Sequence[float] | None = None,
    seed: int | random.Random = 0,
) -> GraphDB:
    """Generate a directed scale-free graph with Zipf-distributed edge labels.

    Parameters
    ----------
    node_count:
        Number of nodes (named ``n0000000`` .. in index order).
    edge_factor:
        Edges per node; the paper uses graphs with "a number of edges three
        times larger" than the number of nodes, i.e. ``edge_factor=3``.
    alphabet / alphabet_size:
        The edge-label alphabet (explicit sequence, or a size for the
        default ``l00..`` alphabet).
    zipf_exponent:
        Skew of the Zipf label distribution (0 = uniform), applied in
        alphabet order.  Ignored when ``label_weights`` is given.
    label_weights:
        Explicit (unnormalized) per-label frequencies, aligned with
        ``alphabet``; used by the AliBaba-like generator to reproduce the
        real dataset's very uneven relation frequencies.
    seed:
        Integer seed or a :class:`random.Random` instance.
    """
    if node_count < 2:
        raise GraphError("node_count must be at least 2")
    if edge_factor <= 0:
        raise GraphError("edge_factor must be positive")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    labels = list(alphabet) if alphabet is not None else default_alphabet(alphabet_size)
    if label_weights is not None:
        if len(label_weights) != len(labels):
            raise GraphError("label_weights must align with the alphabet")
        if any(weight <= 0 for weight in label_weights):
            raise GraphError("label_weights must be positive")
        weights = list(label_weights)
    else:
        weights = zipfian_label_weights(len(labels), zipf_exponent)

    node_names = [f"n{i:07d}" for i in range(node_count)]
    graph = GraphDB(labels)
    graph.add_nodes(node_names)

    edge_target = int(round(node_count * edge_factor))
    # Preferential attachment: targets are drawn from a repeated-endpoint
    # pool, so nodes that already have edges are more likely to gain more.
    endpoint_pool: list[int] = list(range(node_count))
    added = 0
    attempts = 0
    max_attempts = edge_target * 20
    while added < edge_target and attempts < max_attempts:
        attempts += 1
        origin_index = rng.randrange(node_count)
        # With probability 0.8 pick a preferential target, else a uniform one
        # (keeps the graph from collapsing onto a handful of hubs only).
        if endpoint_pool and rng.random() < 0.8:
            end_index = endpoint_pool[rng.randrange(len(endpoint_pool))]
        else:
            end_index = rng.randrange(node_count)
        if end_index == origin_index:
            continue
        label = rng.choices(labels, weights=weights, k=1)[0]
        origin, end = node_names[origin_index], node_names[end_index]
        if graph.has_edge(origin, label, end):
            continue
        graph.add_edge(origin, label, end)
        endpoint_pool.append(end_index)
        endpoint_pool.append(origin_index)
        added += 1
    return graph
