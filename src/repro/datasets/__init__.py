"""Dataset construction: paper figure graphs and synthetic workloads.

The paper evaluates on (i) the AliBaba protein-interaction graph and (ii)
synthetic scale-free graphs with Zipfian edge-label distributions.  AliBaba
is not redistributable here, so :func:`generate_alibaba_like` builds a
synthetic graph of the same scale and shape (see DESIGN.md, substitutions).
The small worked examples of the paper's figures are provided verbatim so
that tests and examples can exercise exactly the situations the paper walks
through.
"""

from repro.datasets.figures import (
    certain_node_graph,
    example_graph_g0,
    geo_graph,
    inconsistent_sample_graph,
    prefix_equivalent_graph,
    theorem_graph_for_abstar_c,
)
from repro.datasets.synthetic import scale_free_graph, zipfian_label_weights
from repro.datasets.alibaba import ALIBABA_LABEL_CLASSES, generate_alibaba_like
from repro.datasets.workflows import workflow_graph

__all__ = [
    "geo_graph",
    "example_graph_g0",
    "inconsistent_sample_graph",
    "prefix_equivalent_graph",
    "certain_node_graph",
    "theorem_graph_for_abstar_c",
    "scale_free_graph",
    "zipfian_label_weights",
    "generate_alibaba_like",
    "ALIBABA_LABEL_CLASSES",
    "workflow_graph",
]
