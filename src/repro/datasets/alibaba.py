"""A synthetic stand-in for the AliBaba biological graph.

The paper's real-world dataset is the semantic (protein-protein interaction)
part of AliBaba, a graph text-mined from PubMed: about 3k nodes and 8k
edges, queried with six real-life biological path queries (Table 1).  The
original graph is not redistributable, so :func:`generate_alibaba_like`
builds a synthetic graph of the same scale and statistical shape:

* ~3,000 protein/entity nodes and ~8,000 edges (both configurable);
* an alphabet of biological interaction labels grouped into the disjunction
  classes that Table 1's queries use (``A``, ``C``, ``E``, ``I`` plus the two
  single symbols ``a`` and ``b``), with overlapping classes as in the paper;
* scale-free degree distribution and Zipf-skewed label frequencies, like the
  paper's synthetic generator, which real biological interaction networks
  also exhibit.

This preserves what the experiments actually measure -- how many examples
the learner needs as a function of query structure and selectivity -- while
replacing only the provenance of the graph.
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import scale_free_graph
from repro.graphdb.graph import GraphDB

#: Biological interaction labels, grouped into the disjunction classes used
#: by the Table 1 queries.  Classes overlap (the paper notes "possibly
#: overlapping" symbols among the disjunctions of up to 10 symbols).
ALIBABA_LABEL_CLASSES: dict[str, tuple[str, ...]] = {
    # A: general association/interaction verbs (10 symbols).
    "A": (
        "activates",
        "binds",
        "interacts",
        "associates",
        "phosphorylates",
        "regulates",
        "stimulates",
        "modulates",
        "mediates",
        "targets",
    ),
    # C: compound/complex-formation relations (6 symbols, overlapping A).
    "C": (
        "binds",
        "forms_complex",
        "associates",
        "coprecipitates",
        "dimerizes",
        "recruits",
    ),
    # E: expression/regulation relations (6 symbols, overlapping A).
    "E": (
        "expresses",
        "represses",
        "regulates",
        "induces",
        "suppresses",
        "transcribes",
    ),
    # I: inhibition-flavoured relations (8 symbols, overlapping A and E).
    "I": (
        "inhibits",
        "blocks",
        "suppresses",
        "degrades",
        "represses",
        "antagonizes",
        "downregulates",
        "modulates",
    ),
    # a, b: the two single-symbol labels used by bio1 and bio2.
    "a": ("acetylates",),
    "b": ("biomarker_of",),
}

#: Labels present in the graph but used by none of the Table 1 query classes.
#: The real AliBaba graph likewise contains many relation types (including the
#: textual co-occurrence part) that the six queries never mention; without
#: them every edge would belong to some query class and the query
#: selectivities could not be as low as the paper reports.
ALIBABA_FILLER_LABELS: tuple[str, ...] = (
    "cooccurs_with",
    "mentioned_with",
    "annotated_with",
    "located_in",
)


#: Relative edge frequencies per label, tuned so that the Table 1 query
#: structures land near the paper's selectivities: bio1 and bio2 hinge on the
#: two very rare single labels, the A class is the most frequent interaction
#: class, I and C/E are moderate, and the filler relations absorb roughly
#: half of the edges (as the non-queried relations do in the real dataset).
ALIBABA_LABEL_FREQUENCIES: dict[str, float] = {
    # filler relations (not used by any query class)
    "cooccurs_with": 8.0,
    "mentioned_with": 6.0,
    "annotated_with": 4.0,
    "located_in": 3.0,
    # very rare single labels
    "biomarker_of": 0.03,
    "acetylates": 0.08,
    # A-only association labels (frequent)
    "activates": 1.3,
    "interacts": 1.3,
    "phosphorylates": 1.3,
    "stimulates": 1.3,
    "mediates": 1.3,
    "targets": 1.3,
    # shared A/C, A/E, A/I labels
    "binds": 0.9,
    "associates": 0.9,
    "regulates": 0.9,
    "modulates": 0.6,
    # I-only labels (moderately rare)
    "inhibits": 0.55,
    "blocks": 0.55,
    "degrades": 0.55,
    "antagonizes": 0.55,
    "downregulates": 0.55,
    # shared I/E labels
    "suppresses": 0.5,
    "represses": 0.5,
    # C-only labels
    "forms_complex": 0.45,
    "coprecipitates": 0.45,
    "dimerizes": 0.45,
    "recruits": 0.45,
    # E-only labels
    "expresses": 0.55,
    "induces": 0.55,
    "transcribes": 0.55,
}


def alibaba_alphabet() -> list[str]:
    """The full (deduplicated, sorted) edge alphabet of the AliBaba-like graph."""
    symbols: set[str] = set(ALIBABA_FILLER_LABELS)
    for class_symbols in ALIBABA_LABEL_CLASSES.values():
        symbols.update(class_symbols)
    return sorted(symbols)


def generate_alibaba_like(
    *,
    node_count: int = 3000,
    edge_count: int = 8000,
    seed: int | random.Random = 7,
) -> GraphDB:
    """Generate the synthetic AliBaba-like protein interaction graph.

    Defaults match the paper's reported scale (about 3k nodes / 8k edges).
    Tests use much smaller sizes through the same code path.
    """
    edge_factor = edge_count / float(node_count)
    alphabet = alibaba_alphabet()
    weights = [ALIBABA_LABEL_FREQUENCIES[label] for label in alphabet]
    return scale_free_graph(
        node_count,
        edge_factor=edge_factor,
        alphabet=alphabet,
        label_weights=weights,
        seed=seed,
    )
