"""Scientific-workflow graphs (the motivating example of the introduction).

The paper motivates path-query learning with mining of interrelated
scientific workflows: a biologist wants the pattern
``ProteinPurification . ProteinSeparation* . MassSpectrometry`` and labels
sequences of workflow modules as positive or negative examples (Figure 2).
This generator produces a graph whose nodes are workflow steps and whose
edge labels are module names, mixing runs that match the pattern with runs
that do not, so the examples and tests can replay that scenario.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import GraphError
from repro.graphdb.graph import GraphDB

#: Module vocabulary used by the generated workflows.
WORKFLOW_MODULES: tuple[str, ...] = (
    "ProteinPurification",
    "ProteinSeparation",
    "MassSpectrometry",
    "CellLysis",
    "DataNormalization",
    "PeptideIdentification",
    "SampleLabeling",
    "StatisticalAnalysis",
)


def workflow_graph(
    *,
    matching_runs: int = 5,
    other_runs: int = 10,
    max_separation_steps: int = 3,
    seed: int | random.Random = 0,
    modules: Sequence[str] = WORKFLOW_MODULES,
) -> GraphDB:
    """Generate a graph of chained workflow runs.

    ``matching_runs`` runs follow the pattern purification, a random number
    (0..max_separation_steps) of separation steps, then mass spectrometry;
    ``other_runs`` runs are random module chains that avoid matching the
    pattern.  Each run is a simple chain of fresh nodes, so the node that
    starts a matching run is selected by the goal query and the node that
    starts a non-matching run is not.
    """
    if matching_runs < 1:
        raise GraphError("at least one matching run is required")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    graph = GraphDB(sorted(set(modules)))
    run_index = 0

    def add_chain(prefix: str, labels: Sequence[str]) -> str:
        nonlocal run_index
        run_index += 1
        first = f"{prefix}{run_index:03d}_s0"
        current = first
        for step, label in enumerate(labels, start=1):
            nxt = f"{prefix}{run_index:03d}_s{step}"
            graph.add_edge(current, label, nxt)
            current = nxt
        return first

    for _ in range(matching_runs):
        separations = ["ProteinSeparation"] * rng.randint(0, max_separation_steps)
        add_chain("wf", ["ProteinPurification", *separations, "MassSpectrometry"])

    other_modules = [m for m in modules if m != "ProteinPurification"]
    for _ in range(other_runs):
        length = rng.randint(2, 5)
        labels = [rng.choice(other_modules) for _ in range(length)]
        add_chain("wf", labels)
    return graph


def workflow_goal_query() -> str:
    """The goal pattern of the introduction, as a regular expression string."""
    return "ProteinPurification.ProteinSeparation*.MassSpectrometry"
