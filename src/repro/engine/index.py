"""The immutable CSR graph index the engine's kernels run on.

A :class:`GraphIndex` is a read-optimized snapshot of a
:class:`~repro.graphdb.graph.GraphDB`:

* nodes are int-encoded ``0..n-1`` in the graph's *stable node order*
  (insertion order) and labels are int-encoded ``0..m-1`` in stable
  first-use order;
* for every label, the forward and backward adjacency is stored in CSR form
  (compressed sparse rows): an offsets array of length ``n + 1`` and a flat
  targets array, both :mod:`array` module int arrays, so one node's
  neighbours on one label are a contiguous slice with no hashing involved;
* within each node's slice the targets are sorted ascending, which makes
  the arrays *canonical*: two indexes of the same graph are byte-identical
  however they were produced (full build, incremental refresh, snapshot
  load) -- the storage layer's parity guarantee rests on this;
* the snapshot records the graph's ``(uid, version)`` at build time, so
  staleness is a single integer comparison (:meth:`GraphIndex.is_current`).

Building the index costs one pass over the edge set; every evaluation after
that avoids the per-call dict/frozenset churn of the reference product
construction in :mod:`repro.graphdb.product`.  When the graph mutates, the
index can usually be *refreshed* (:meth:`GraphIndex.refresh`) from the
graph's mutation delta log instead of rebuilt: stable node/label numbering
means new nodes and labels are appended and only the labels actually
touched by the delta have their CSR rows re-merged.
"""

from __future__ import annotations

from array import array
from itertools import accumulate, chain
from operator import sub
from time import perf_counter

from repro.graphdb.graph import GraphDB, Node


class GraphIndex:
    """An immutable int-encoded, per-label CSR view of a graph database.

    Build one with :meth:`GraphIndex.build` (or, with per-graph caching,
    :func:`get_index`).  The index intentionally does not reference the
    source :class:`GraphDB` so that it can outlive it and be shared freely.
    """

    __slots__ = (
        "graph_uid",
        "graph_version",
        "num_nodes",
        "num_labels",
        "nodes_by_id",
        "node_ids",
        "labels_by_id",
        "label_ids",
        "fwd_offsets",
        "fwd_targets",
        "bwd_offsets",
        "bwd_targets",
        "edge_count",
        "build_seconds",
    )

    def __init__(
        self,
        *,
        graph_uid: int,
        graph_version: int,
        nodes_by_id: tuple[Node, ...],
        labels_by_id: tuple[str, ...],
        node_ids: dict[Node, int] | None = None,
        label_ids: dict[str, int] | None = None,
        fwd_offsets: list,
        fwd_targets: list,
        bwd_offsets: list,
        bwd_targets: list,
        edge_count: int,
    ) -> None:
        self.graph_uid = graph_uid
        self.graph_version = graph_version
        self.nodes_by_id = nodes_by_id
        self.node_ids = (
            {node: index for index, node in enumerate(nodes_by_id)}
            if node_ids is None
            else node_ids
        )
        self.labels_by_id = labels_by_id
        self.label_ids = (
            {label: index for index, label in enumerate(labels_by_id)}
            if label_ids is None
            else label_ids
        )
        self.num_nodes = len(nodes_by_id)
        self.num_labels = len(labels_by_id)
        self.fwd_offsets = fwd_offsets
        self.fwd_targets = fwd_targets
        self.bwd_offsets = bwd_offsets
        self.bwd_targets = bwd_targets
        self.edge_count = edge_count
        #: Wall time (perf_counter) spent producing this index: the full
        #: build or incremental refresh that made it, 0.0 for snapshot
        #: loads and hand-constructed indexes.  Telemetry only -- never
        #: part of the canonical byte form.
        self.build_seconds = 0.0

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, graph: GraphDB) -> "GraphIndex":
        """Snapshot the graph into CSR form (one pass over the edge set)."""
        started = perf_counter()
        nodes_by_id = tuple(graph.node_order)
        node_ids = {node: index for index, node in enumerate(nodes_by_id)}
        labels_by_id = tuple(graph.label_order)
        label_ids = {label: index for index, label in enumerate(labels_by_id)}
        n = len(nodes_by_id)
        m = len(labels_by_id)

        # Bucket the int-encoded edges per label, then sort each bucket so
        # every node's targets slice comes out ascending (canonical form).
        per_label: list[list[tuple[int, int]]] = [[] for _ in range(m)]
        for origin, label, end in graph.edges:
            per_label[label_ids[label]].append((node_ids[origin], node_ids[end]))

        fwd_offsets: list[array] = []
        fwd_targets: list[array] = []
        bwd_offsets: list[array] = []
        bwd_targets: list[array] = []
        for edges in per_label:
            fwd_off, fwd_tgt, bwd_off, bwd_tgt = csr_pair(edges, n)
            fwd_offsets.append(fwd_off)
            fwd_targets.append(fwd_tgt)
            bwd_offsets.append(bwd_off)
            bwd_targets.append(bwd_tgt)

        index = cls(
            graph_uid=graph.uid,
            graph_version=graph.version,
            nodes_by_id=nodes_by_id,
            labels_by_id=labels_by_id,
            node_ids=node_ids,
            label_ids=label_ids,
            fwd_offsets=fwd_offsets,
            fwd_targets=fwd_targets,
            bwd_offsets=bwd_offsets,
            bwd_targets=bwd_targets,
            edge_count=graph.edge_count(),
        )
        index.build_seconds = perf_counter() - started
        return index

    # -- incremental maintenance ---------------------------------------------

    def refresh(self, graph: GraphDB, *, max_ratio: float = 0.25) -> "GraphIndex | None":
        """A new index incorporating ``graph``'s mutations since this one.

        Merges the graph's mutation delta log into copies of the CSR arrays:
        new nodes and labels are appended (the stable orders guarantee a
        fresh build would number them identically), and only the labels
        actually touched by the delta have their rows re-merged -- untouched
        labels share their arrays with this index.  The result is
        byte-identical to ``GraphIndex.build(graph)``.

        Returns ``self`` when already current, or ``None`` when incremental
        maintenance is impossible or not worthwhile: a different graph, a
        truncated delta log, or a delta larger than ``max_ratio`` of the
        indexed edge set (at that size a full counting-sort rebuild is
        cheaper than per-row merging).
        """
        if graph.uid != self.graph_uid:
            return None
        if graph.version == self.graph_version:
            return self
        delta_since = getattr(graph, "delta_since", None)
        if delta_since is None:
            return None
        delta = delta_since(self.graph_version)
        if delta is None:
            return None
        if len(delta) > max(16, int(max_ratio * max(1, self.edge_count))):
            return None
        started = perf_counter()

        new_nodes: list[Node] = []
        delta_edges: list[tuple[Node, str, Node]] = []
        for event in delta:
            if event[0] == "node":
                new_nodes.append(event[1])
            else:
                delta_edges.append((event[1], event[2], event[3]))

        old_n, old_m = self.num_nodes, self.num_labels
        nodes_by_id = self.nodes_by_id + tuple(new_nodes)
        node_ids = dict(self.node_ids)
        for offset, node in enumerate(new_nodes, start=old_n):
            node_ids[node] = offset
        n = len(nodes_by_id)

        labels_by_id = list(self.labels_by_id)
        label_ids = dict(self.label_ids)
        delta_by_label: dict[int, list[tuple[int, int]]] = {}
        for origin, label, end in delta_edges:
            label_id = label_ids.get(label)
            if label_id is None:
                label_id = len(labels_by_id)
                label_ids[label] = label_id
                labels_by_id.append(label)
            delta_by_label.setdefault(label_id, []).append((node_ids[origin], node_ids[end]))

        fwd_offsets: list = []
        fwd_targets: list = []
        bwd_offsets: list = []
        bwd_targets: list = []
        for label_id in range(len(labels_by_id)):
            additions = delta_by_label.get(label_id)
            if label_id >= old_m:
                # A label first used by the delta: its rows are all new.
                fwd_off, fwd_tgt, bwd_off, bwd_tgt = csr_pair(additions, n)
            elif additions is None:
                # Untouched label: share the targets; extend the offsets
                # only if nodes were appended (degree 0 for all of them).
                fwd_off = _extend_offsets(self.fwd_offsets[label_id], old_n, n)
                bwd_off = _extend_offsets(self.bwd_offsets[label_id], old_n, n)
                fwd_tgt = self.fwd_targets[label_id]
                bwd_tgt = self.bwd_targets[label_id]
            else:
                fwd_off, fwd_tgt = _merge_csr(
                    self.fwd_offsets[label_id],
                    self.fwd_targets[label_id],
                    old_n,
                    n,
                    sorted(additions),
                )
                bwd_off, bwd_tgt = _merge_csr(
                    self.bwd_offsets[label_id],
                    self.bwd_targets[label_id],
                    old_n,
                    n,
                    sorted((end, origin) for origin, end in additions),
                )
            fwd_offsets.append(fwd_off)
            fwd_targets.append(fwd_tgt)
            bwd_offsets.append(bwd_off)
            bwd_targets.append(bwd_tgt)

        # Always a plain in-memory index, even when refreshing a subclass
        # (e.g. a storage-layer mapped index): the merged arrays are heap
        # arrays, not views into the source file.
        refreshed = GraphIndex(
            graph_uid=graph.uid,
            graph_version=graph.version,
            nodes_by_id=nodes_by_id,
            labels_by_id=tuple(labels_by_id),
            node_ids=node_ids,
            label_ids=label_ids,
            fwd_offsets=fwd_offsets,
            fwd_targets=fwd_targets,
            bwd_offsets=bwd_offsets,
            bwd_targets=bwd_targets,
            edge_count=self.edge_count + len(delta_edges),
        )
        refreshed.build_seconds = perf_counter() - started
        return refreshed

    # -- accessors -----------------------------------------------------------

    def is_current(self, graph: GraphDB) -> bool:
        """Whether this index still reflects the given graph's state."""
        return graph.uid == self.graph_uid and graph.version == self.graph_version

    def node_id(self, node: Node) -> int | None:
        """The int id of ``node``, or None if it is not indexed."""
        return self.node_ids.get(node)

    def label_edge_counts(self) -> list[int]:
        """Per-label edge counts (CSR degree stats).

        ``counts[label_id]`` is the number of edges carrying that label --
        the selectivity statistic the pair-search chooser and the shard
        planner read instead of walking the graph.
        """
        return [len(targets) for targets in self.fwd_targets]

    def successors_slice(self, label_id: int, node_id: int):
        """The targets of ``node_id``'s outgoing edges on ``label_id``."""
        offsets = self.fwd_offsets[label_id]
        return self.fwd_targets[label_id][offsets[node_id] : offsets[node_id + 1]]

    def predecessors_slice(self, label_id: int, node_id: int):
        """The origins of ``node_id``'s incoming edges on ``label_id``."""
        offsets = self.bwd_offsets[label_id]
        return self.bwd_targets[label_id][offsets[node_id] : offsets[node_id + 1]]

    def __repr__(self) -> str:
        return (
            f"GraphIndex(nodes={self.num_nodes}, labels={self.num_labels}, "
            f"edges={self.edge_count}, version={self.graph_version})"
        )


def csr_pair(
    edges: list[tuple[int, int]], n: int
) -> tuple[array, array, array, array]:
    """One label's canonical forward and backward CSR arrays.

    ``edges`` are int-encoded ``(origin, end)`` pairs in any order.  This is
    the single definition of the canonical form (each slice sorted
    ascending) that full builds, incremental refreshes and the bulk
    ingester must all agree on byte for byte.
    """
    forward = sorted(edges)
    fwd_off, fwd_tgt = _csr(forward, n)
    backward = sorted((end, origin) for origin, end in forward)
    bwd_off, bwd_tgt = _csr(backward, n)
    return fwd_off, fwd_tgt, bwd_off, bwd_tgt


def _csr(pairs: list[tuple[int, int]], n: int) -> tuple[array, array]:
    """CSR arrays for one label from ``(key, value)`` pairs sorted by pair.

    Because the input is sorted, the flat targets array is simply the values
    in order and each key's slice comes out ascending (canonical form).
    """
    offsets = array("l", [0] * (n + 1))
    for key, _ in pairs:
        offsets[key + 1] += 1
    for i in range(1, n + 1):
        offsets[i] += offsets[i - 1]
    targets = array("l", [0] * len(pairs))
    for position, (_, value) in enumerate(pairs):
        targets[position] = value
    return offsets, targets


def _extend_offsets(offsets, old_n: int, n: int):
    """Offsets grown from ``old_n + 1`` to ``n + 1`` entries (0-degree tail)."""
    if n == old_n:
        return offsets
    grown = array("l", offsets)
    grown.extend([offsets[old_n]] * (n - old_n))
    return grown


def _merge_csr(
    old_offsets, old_targets, old_n: int, n: int, additions: list[tuple[int, int]]
) -> tuple[array, array]:
    """One label's CSR with ``additions`` (sorted ``(key, value)`` pairs) merged in.

    Re-derives the offsets from per-key degrees and splices the new values
    into the flat targets array with bulk slice copies between affected
    keys, keeping every slice sorted -- byte-identical to a full rebuild.
    """
    add_by_key: dict[int, list[int]] = {}
    for key, value in additions:
        add_by_key.setdefault(key, []).append(value)

    # Per-key degrees via C-speed iterator pairs (the pure-Python loop here
    # dominated refresh time on 10k+ node graphs).
    high = iter(old_offsets)
    next(high)
    degrees = list(map(sub, high, old_offsets))
    if n > old_n:
        degrees.extend([0] * (n - old_n))
    for key, values in add_by_key.items():
        degrees[key] += len(values)
    offsets = array("l", chain((0,), accumulate(degrees)))

    if not isinstance(old_targets, array):
        old_targets = array("l", old_targets)
    old_len = len(old_targets)
    targets = array("l", bytes(offsets[-1] * offsets.itemsize))
    write = read = 0
    for key in sorted(add_by_key):
        old_start = old_offsets[key] if key < old_n else old_len
        old_stop = old_offsets[key + 1] if key < old_n else old_len
        chunk = old_targets[read:old_start]
        targets[write : write + len(chunk)] = chunk
        write += len(chunk)
        merged = sorted(chain(old_targets[old_start:old_stop], add_by_key[key]))
        targets[write : write + len(merged)] = array("l", merged)
        write += len(merged)
        read = old_stop
    tail = old_targets[read:]
    targets[write : write + len(tail)] = tail
    return offsets, targets


def get_index(graph: GraphDB) -> GraphIndex:
    """The cached :class:`GraphIndex` of ``graph``, rebuilt if stale.

    Convenience wrapper over the shared default engine's per-graph cache
    (one caching mechanism process-wide): the index lives as long as the
    graph does and is reused by every evaluation going through the default
    engine.
    """
    # Imported lazily to avoid a module cycle (engine.py imports this module).
    from repro.engine.engine import get_default_engine

    return get_default_engine().index_for(graph)
