"""The immutable CSR graph index the engine's kernels run on.

A :class:`GraphIndex` is a read-optimized snapshot of a
:class:`~repro.graphdb.graph.GraphDB`:

* nodes are int-encoded ``0..n-1`` (in a deterministic order) and labels are
  int-encoded ``0..m-1``;
* for every label, the forward and backward adjacency is stored in CSR form
  (compressed sparse rows): an offsets array of length ``n + 1`` and a flat
  targets array, both :mod:`array` module int arrays, so one node's
  neighbours on one label are a contiguous slice with no hashing involved;
* the snapshot records the graph's ``(uid, version)`` at build time, so
  staleness is a single integer comparison (:meth:`GraphIndex.is_current`).

Building the index costs one pass over the edge set; every evaluation after
that avoids the per-call dict/frozenset churn of the reference product
construction in :mod:`repro.graphdb.product`.
"""

from __future__ import annotations

from array import array

from repro.graphdb.graph import GraphDB, Node


class GraphIndex:
    """An immutable int-encoded, per-label CSR view of a graph database.

    Build one with :meth:`GraphIndex.build` (or, with per-graph caching,
    :func:`get_index`).  The index intentionally does not reference the
    source :class:`GraphDB` so that it can outlive it and be shared freely.
    """

    __slots__ = (
        "graph_uid",
        "graph_version",
        "num_nodes",
        "num_labels",
        "nodes_by_id",
        "node_ids",
        "labels_by_id",
        "label_ids",
        "fwd_offsets",
        "fwd_targets",
        "bwd_offsets",
        "bwd_targets",
        "edge_count",
    )

    def __init__(
        self,
        *,
        graph_uid: int,
        graph_version: int,
        nodes_by_id: tuple[Node, ...],
        labels_by_id: tuple[str, ...],
        node_ids: dict[Node, int] | None = None,
        label_ids: dict[str, int] | None = None,
        fwd_offsets: list[array],
        fwd_targets: list[array],
        bwd_offsets: list[array],
        bwd_targets: list[array],
        edge_count: int,
    ) -> None:
        self.graph_uid = graph_uid
        self.graph_version = graph_version
        self.nodes_by_id = nodes_by_id
        self.node_ids = (
            {node: index for index, node in enumerate(nodes_by_id)}
            if node_ids is None
            else node_ids
        )
        self.labels_by_id = labels_by_id
        self.label_ids = (
            {label: index for index, label in enumerate(labels_by_id)}
            if label_ids is None
            else label_ids
        )
        self.num_nodes = len(nodes_by_id)
        self.num_labels = len(labels_by_id)
        self.fwd_offsets = fwd_offsets
        self.fwd_targets = fwd_targets
        self.bwd_offsets = bwd_offsets
        self.bwd_targets = bwd_targets
        self.edge_count = edge_count

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, graph: GraphDB) -> "GraphIndex":
        """Snapshot the graph into CSR form (one pass over the edge set)."""
        nodes_by_id = tuple(sorted(graph.nodes, key=repr))
        node_ids = {node: index for index, node in enumerate(nodes_by_id)}
        labels_by_id = tuple(sorted(graph.labels()))
        label_ids = {label: index for index, label in enumerate(labels_by_id)}
        n = len(nodes_by_id)
        m = len(labels_by_id)

        # Bucket the int-encoded edges per label, then build both CSR
        # directions with counting sort (counts -> prefix sums -> fill).
        per_label: list[list[tuple[int, int]]] = [[] for _ in range(m)]
        for origin, label, end in graph.edges:
            per_label[label_ids[label]].append((node_ids[origin], node_ids[end]))

        fwd_offsets: list[array] = []
        fwd_targets: list[array] = []
        bwd_offsets: list[array] = []
        bwd_targets: list[array] = []
        for edges in per_label:
            fwd_off, fwd_tgt = _csr(edges, n, direction=0)
            bwd_off, bwd_tgt = _csr(edges, n, direction=1)
            fwd_offsets.append(fwd_off)
            fwd_targets.append(fwd_tgt)
            bwd_offsets.append(bwd_off)
            bwd_targets.append(bwd_tgt)

        return cls(
            graph_uid=graph.uid,
            graph_version=graph.version,
            nodes_by_id=nodes_by_id,
            labels_by_id=labels_by_id,
            node_ids=node_ids,
            label_ids=label_ids,
            fwd_offsets=fwd_offsets,
            fwd_targets=fwd_targets,
            bwd_offsets=bwd_offsets,
            bwd_targets=bwd_targets,
            edge_count=graph.edge_count(),
        )

    # -- accessors -----------------------------------------------------------

    def is_current(self, graph: GraphDB) -> bool:
        """Whether this index still reflects the given graph's state."""
        return graph.uid == self.graph_uid and graph.version == self.graph_version

    def node_id(self, node: Node) -> int | None:
        """The int id of ``node``, or None if it is not indexed."""
        return self.node_ids.get(node)

    def successors_slice(self, label_id: int, node_id: int) -> array:
        """The targets of ``node_id``'s outgoing edges on ``label_id``."""
        offsets = self.fwd_offsets[label_id]
        return self.fwd_targets[label_id][offsets[node_id] : offsets[node_id + 1]]

    def predecessors_slice(self, label_id: int, node_id: int) -> array:
        """The origins of ``node_id``'s incoming edges on ``label_id``."""
        offsets = self.bwd_offsets[label_id]
        return self.bwd_targets[label_id][offsets[node_id] : offsets[node_id + 1]]

    def __repr__(self) -> str:
        return (
            f"GraphIndex(nodes={self.num_nodes}, labels={self.num_labels}, "
            f"edges={self.edge_count}, version={self.graph_version})"
        )


def _csr(edges: list[tuple[int, int]], n: int, *, direction: int) -> tuple[array, array]:
    """CSR arrays for one label's edges, keyed by origin (0) or end (1)."""
    counts = array("l", [0] * (n + 1))
    key = 0 if direction == 0 else 1
    value = 1 - key
    for edge in edges:
        counts[edge[key] + 1] += 1
    for i in range(1, n + 1):
        counts[i] += counts[i - 1]
    offsets = array("l", counts)
    targets = array("l", [0] * len(edges))
    cursor = array("l", counts)
    for edge in edges:
        position = cursor[edge[key]]
        targets[position] = edge[value]
        cursor[edge[key]] += 1
    return offsets, targets


def get_index(graph: GraphDB) -> GraphIndex:
    """The cached :class:`GraphIndex` of ``graph``, rebuilt if stale.

    Convenience wrapper over the shared default engine's per-graph cache
    (one caching mechanism process-wide): the index lives as long as the
    graph does and is reused by every evaluation going through the default
    engine.
    """
    # Imported lazily to avoid a module cycle (engine.py imports this module).
    from repro.engine.engine import get_default_engine

    return get_default_engine().index_for(graph)
