"""The :class:`QueryEngine` facade: indexed, cached, batchable evaluation.

The engine ties the subsystem together.  For every call it

1. resolves the query (a ``PathQuery``/``BinaryPathQuery`` or a raw
   DFA/NFA) to a :class:`~repro.engine.plan.CompiledPlan` through the LRU
   plan cache,
2. resolves the graph to a :class:`~repro.engine.index.GraphIndex`, rebuilt
   only when the graph's version counter moved,
3. consults the versioned result cache for whole-graph evaluations, and
4. otherwise runs the int-array kernels of :mod:`repro.engine.executor`.

A module-level default engine (:func:`get_default_engine`) backs the
high-level APIs (``PathQuery.evaluate`` and friends) and the compatibility
wrappers in :mod:`repro.graphdb.product`; callers that want isolated caches
or stats (benchmarks, servers) instantiate their own.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from time import perf_counter
from weakref import WeakKeyDictionary

from repro.automata.dfa import DFA
from repro.automata.kernel import MergeFold, TableAutomaton
from repro.automata.nfa import NFA
from repro.engine.cache import PlanCache, ResultCache, shared_caches
from repro.engine.executor import KernelStats
from repro.engine import executor
from repro.engine import planner as planning
from repro.engine.costs import CostEstimate, CostModel
from repro.engine.index import GraphIndex
from repro.engine.parallel import DEFAULT_MIN_SHARD_EDGES, ParallelExecutor
from repro.engine.plan import CompiledPlan, automaton_fingerprint, compile_plan
from repro.engine.planner import PLANNER_MODES
from repro.errors import GraphError, QueryError
from repro.graphdb.graph import GraphDB, Node
from repro.telemetry import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import QueryProfile, fingerprint_token

#: Anything the engine accepts as a query: a raw automaton or any object
#: exposing a ``dfa`` attribute (``PathQuery``, ``BinaryPathQuery``).
Query = object


class EngineStats:
    """Cumulative counters of one engine instance.

    Every counter is an instrument in the engine's telemetry
    :class:`~repro.telemetry.metrics.MetricsRegistry` (names like
    ``engine_evaluations_total``), exposed behind plain int properties for
    reads and single-threaded resets (``stats.evaluations = 0``).  The
    engine's own hot paths bump them through :meth:`inc`, which takes the
    instrument's lock -- the property-assignment form is *not* atomic, so
    concurrent callers (the service layer's worker threads) must use
    :meth:`inc`.  The registry view of the same numbers powers Prometheus
    export; this class powers the flat dict snapshots the drivers and
    tests consume.
    """

    _COUNTERS = {
        "evaluations": ("engine_evaluations_total", "Kernel evaluations run"),
        "index_builds": ("engine_index_builds_total", "CSR indexes built from scratch"),
        "index_refreshes": (
            "engine_index_refreshes_total",
            "Stale CSR indexes repaired from a mutation delta",
        ),
        "index_adoptions": (
            "engine_index_adoptions_total",
            "Prebuilt (snapshot-backed) CSR indexes adopted without a build",
        ),
        "plan_compilations": (
            "engine_plan_compilations_total",
            "Automata compiled into plans (plan-cache misses)",
        ),
    }

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        for attr, (name, help_text) in self._COUNTERS.items():
            setattr(self, f"_{attr}", self.registry.counter(name, help=help_text))
        self.kernel = KernelStats(self.registry)
        self._caches: tuple = ()

    def attach_caches(self, plan_cache: PlanCache, result_cache: ResultCache) -> None:
        """Let :meth:`snapshot` report the engine's live cache economics."""
        self._caches = (plan_cache, result_cache)

    def inc(self, counter: str, amount: int = 1) -> None:
        """Atomically bump one of the named counters (thread-safe)."""
        getattr(self, f"_{counter}").inc(amount)

    @property
    def states_expanded(self) -> int:
        """Product pairs popped by the kernels so far."""
        return self.kernel.states_expanded

    @property
    def edges_scanned(self) -> int:
        """Graph adjacency entries touched by the kernels so far."""
        return self.kernel.edges_scanned

    def as_dict(self) -> dict[str, int]:
        """The engine-side counters as one flat dict (no cache counters;
        :meth:`snapshot` adds those)."""
        return {
            "evaluations": self.evaluations,
            "index_builds": self.index_builds,
            "index_refreshes": self.index_refreshes,
            "index_adoptions": self.index_adoptions,
            "plan_compilations": self.plan_compilations,
            "states_expanded": self.states_expanded,
            "edges_scanned": self.edges_scanned,
        }

    def snapshot(self) -> dict[str, int | float]:
        """A flat snapshot *including* the attached caches' hit economics."""
        out: dict[str, int | float] = self.as_dict()
        if self._caches:
            plan_cache, result_cache = self._caches
            out.update(
                plan_cache_hits=plan_cache.hits,
                plan_cache_misses=plan_cache.misses,
                result_cache_hits=result_cache.hits,
                result_cache_misses=result_cache.misses,
                plan_cache_hit_rate=plan_cache.hit_rate,
                result_cache_hit_rate=result_cache.hit_rate,
            )
        return out

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"EngineStats({fields})"


def _counter_property(attr: str) -> property:
    private = f"_{attr}"

    def fget(self) -> int:
        return getattr(self, private).value

    def fset(self, value: int) -> None:
        getattr(self, private).value = value

    return property(fget, fset, doc=f"Registry-backed counter '{attr}'.")


for _attr in EngineStats._COUNTERS:
    setattr(EngineStats, _attr, _counter_property(_attr))
del _attr


class QueryEngine:
    """Indexed query evaluation with plan and result caching.

    Parameters
    ----------
    plan_cache_size:
        Capacity of the fingerprint -> :class:`CompiledPlan` LRU cache.
    result_cache_size:
        Capacity of the versioned whole-graph result cache.
    incremental_refresh:
        When a cached index goes stale, merge the graph's mutation delta
        log into it (:meth:`GraphIndex.refresh`) instead of rebuilding from
        scratch.  On by default; refresh falls back to a full build by
        itself when the delta is unavailable or too large.
    refresh_ratio:
        The delta-to-index size ratio above which refresh gives up and the
        engine rebuilds (per-row merging stops paying off around there).
    telemetry:
        A :class:`~repro.telemetry.Telemetry` bundle.  Omitted, the engine
        creates a disabled one (metrics registry only -- the near-zero-cost
        default).  Pass one with tracing or profiling enabled to capture
        spans and per-query profiles.
    backend:
        The whole-graph kernel backend: ``"python"`` (the reference,
        always available), ``"numpy"`` (vectorized frontier expansion;
        needs the optional numpy extra) or ``"auto"`` (numpy when
        importable, else python).  Early-exit kernels always run the
        python path; pair queries additionally pick the bidirectional
        search from the index's degree stats.
    workers:
        Process-pool size for sharded execution.  At 1 (the default)
        everything runs in-process; above 1, whole-graph evaluations on
        snapshot-backed indexes with at least ``min_shard_edges`` edges
        fan out across workers that ``open_snapshot`` the same file.
    min_shard_edges:
        The edge count below which sharding cannot amortize its process
        fan-out and the engine stays in-process.
    planner:
        ``"auto"`` (the default) turns on the cost-based planning layer:
        automata are rewritten against the graph's label set before
        compilation (parity-pinned -- see :mod:`repro.engine.planner`),
        early-exit plans are selectivity-ordered, and -- when the backend
        is also ``"auto"`` -- whole-graph kernels are chosen per query
        from the CSR cost model instead of being forced by the resolved
        backend.  ``"off"`` restores verbatim compilation and the fixed
        dispatch order.
    max_rewrite_passes:
        How many prune/minimize rounds the rewriter may run per automaton.
    cache_budget_bytes:
        Optional byte budget for the result cache (estimated sizes); LRU
        entries are evicted past it.  ``None`` bounds by entry count only.
    """

    def __init__(
        self,
        *,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        incremental_refresh: bool = True,
        refresh_ratio: float = 0.25,
        telemetry: Telemetry | None = None,
        backend: str = "auto",
        workers: int = 1,
        min_shard_edges: int = DEFAULT_MIN_SHARD_EDGES,
        planner: str = "auto",
        max_rewrite_passes: int = 3,
        cache_budget_bytes: int | None = None,
    ) -> None:
        if planner not in PLANNER_MODES:
            raise ValueError(
                f"unknown planner mode {planner!r}: expected one of {PLANNER_MODES}"
            )
        self.plan_cache = PlanCache(plan_cache_size)
        self.result_cache = ResultCache(
            result_cache_size, budget_bytes=cache_budget_bytes
        )
        self.incremental_refresh = incremental_refresh
        self.refresh_ratio = refresh_ratio
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.planner = planner
        self.max_rewrite_passes = max_rewrite_passes
        #: The backend as requested; ``self.backend`` is the resolved one.
        #: Cost-based kernel choice only overrides an *unforced* request.
        self.backend_requested = backend
        self.backend = executor.resolve_backend(backend)
        self.workers = workers
        self._parallel = (
            ParallelExecutor(
                workers=workers,
                backend=self.backend,
                min_shard_edges=min_shard_edges,
                registry=self.telemetry.registry,
            )
            if workers > 1
            else None
        )
        self._backend_counters: dict[str, object] = {}
        self._pair_counters: dict[str, object] = {}
        self._rewrite_counters: dict[str, object] = {}
        # Planner memos, keyed by (graph uid, version) generations; tiny
        # and cleared wholesale when full (8/64 generations is plenty --
        # an engine rarely serves more than a handful of live graphs).
        self._cost_models: dict[tuple, CostModel] = {}
        self._ordered_plans: dict[tuple, CompiledPlan] = {}
        self.stats = EngineStats(self.telemetry.registry)
        self.stats.attach_caches(self.plan_cache, self.result_cache)
        self._register_cache_metrics()
        #: The profile of the most recent evaluation (profiling mode only);
        #: take it with :meth:`take_profile`.
        self.last_profile: dict | None = None
        # Strongly holds each live graph's index; dies with the graph.
        self._indexes: WeakKeyDictionary[GraphDB, GraphIndex] = WeakKeyDictionary()
        # Serializes index resolution (build/refresh/adopt) under concurrent
        # callers; the caches carry their own locks.  RLock: a build span may
        # re-enter index_for through telemetry callbacks.
        self._index_lock = threading.RLock()

    def _register_cache_metrics(self) -> None:
        """Expose live cache hit economics as computed gauges.

        The callbacks read through ``self`` (not the cache objects bound at
        construction), so :meth:`adopt_shared_caches` swapping the caches
        re-points every gauge automatically.
        """
        registry = self.telemetry.registry
        registry.callback("engine_plan_cache_hits", lambda: self.plan_cache.hits)
        registry.callback("engine_plan_cache_misses", lambda: self.plan_cache.misses)
        registry.callback("engine_plan_cache_size", lambda: len(self.plan_cache))
        registry.callback("engine_result_cache_hits", lambda: self.result_cache.hits)
        registry.callback(
            "engine_result_cache_misses", lambda: self.result_cache.misses
        )
        registry.callback("engine_result_cache_size", lambda: len(self.result_cache))

    def adopt_shared_caches(self, content_key: object) -> None:
        """Swap this engine's caches for the process-wide pair of ``content_key``.

        The service layer calls this when a workspace opens a snapshot
        whose content identity (see ``MappedGraphIndex.content_uid``)
        another workspace already serves: both engines then share one plan
        cache and one result cache (both thread-safe), so a query answered
        for one tenant is a warm hit for every sibling.  The registered
        cache gauges read through ``self`` and follow the swap.
        """
        plan_cache, result_cache = shared_caches(
            content_key,
            plan_capacity=self.plan_cache.capacity,
            result_capacity=self.result_cache.capacity,
            budget_bytes=self.result_cache.budget_bytes,
        )
        self.plan_cache = plan_cache
        self.result_cache = result_cache
        self.stats.attach_caches(plan_cache, result_cache)

    # -- resolution ----------------------------------------------------------

    def index_for(self, graph: GraphDB) -> GraphIndex:
        """The (cached) CSR index of ``graph``, refreshed or rebuilt when stale.

        A graph-like object may carry a ``prebuilt_index`` attribute (the
        storage layer's snapshot-backed :class:`GraphView` does): if that
        index is current, the engine adopts it instead of building one --
        this is how an mmap-loaded snapshot is consumed with zero rebuild.

        Thread-safe: the current-index fast path is lock-free; build,
        refresh and adoption are serialized by the engine's index lock, so
        concurrent first touches of one graph build its index exactly once.
        """
        index = self._indexes.get(graph)
        if index is not None and index.is_current(graph):
            return index
        with self._index_lock:
            return self._resolve_index(graph)

    def _resolve_index(self, graph: GraphDB) -> GraphIndex:
        """Slow path of :meth:`index_for` (caller holds the index lock)."""
        index = self._indexes.get(graph)
        if index is not None:
            if index.is_current(graph):
                return index
            if self.incremental_refresh:
                with self.telemetry.span("engine.index_refresh") as span:
                    refreshed = index.refresh(graph, max_ratio=self.refresh_ratio)
                    if refreshed is not None:
                        self._indexes[graph] = refreshed
                        self.stats.inc("index_refreshes")
                        span.set(
                            nodes=refreshed.num_nodes,
                            edges=refreshed.edge_count,
                            build_seconds=round(refreshed.build_seconds, 9),
                        )
                        return refreshed
                    span.set(fallback="rebuild")
        else:
            prebuilt = getattr(graph, "prebuilt_index", None)
            if prebuilt is not None and prebuilt.is_current(graph):
                self._indexes[graph] = prebuilt
                self.stats.inc("index_adoptions")
                return prebuilt
        with self.telemetry.span("engine.index_build") as span:
            index = GraphIndex.build(graph)
            span.set(
                nodes=index.num_nodes,
                edges=index.edge_count,
                build_seconds=round(index.build_seconds, 9),
            )
        self._indexes[graph] = index
        self.stats.inc("index_builds")
        return index

    def adopt_index(self, graph: GraphDB, index: GraphIndex) -> None:
        """Install a ready-made index for ``graph`` (must be current)."""
        if not index.is_current(graph):
            raise GraphError(
                "cannot adopt a stale index: it was built for "
                f"(uid={index.graph_uid}, version={index.graph_version}), the graph "
                f"is at (uid={graph.uid}, version={graph.version})"
            )
        with self._index_lock:
            self._indexes[graph] = index
        self.stats.inc("index_adoptions")

    def plan_for(self, query: Query) -> CompiledPlan:
        """The (cached) compiled plan of a query or automaton."""
        automaton = self._coerce_automaton(query)
        if isinstance(automaton, MergeFold):
            # Materialize the quotient once; fingerprinting and compiling
            # the fold separately would each build it.
            automaton = automaton.to_table()
        fingerprint = automaton_fingerprint(automaton)
        plan = self.plan_cache.get(fingerprint)
        if plan is None:
            plan = compile_plan(automaton, fingerprint=fingerprint)
            self.plan_cache.put(fingerprint, plan)
            self.stats.inc("plan_compilations")
        return plan

    # -- cost-based planning -------------------------------------------------

    @property
    def _adaptive(self) -> bool:
        """Whether whole-graph kernels are chosen per query by cost.

        An explicitly forced backend (``backend="numpy"``/``"python"``) is
        honored verbatim -- parity suites and benchmarks depend on that --
        so the cost model only arbitrates when both knobs are ``"auto"``.
        """
        return self.planner == "auto" and self.backend_requested == "auto"

    @staticmethod
    def _graph_identity(graph: GraphDB) -> tuple:
        """The (uid, version) pair result-cache keys are scoped by.

        Snapshot-backed graphs substitute their stable content identity
        (path + payload checksum) for the process-minted uid, which is
        what lets two workspaces over the same snapshot share results.
        """
        content = getattr(graph, "content_uid", None)
        if content is not None:
            return (content, graph.version)
        return (graph.uid, graph.version)

    def _resolve_plan(
        self, graph: GraphDB, query: Query
    ) -> tuple[CompiledPlan, dict | None]:
        """The (cached) plan of ``query`` on ``graph``, planner applied.

        With the planner off this is exactly :meth:`plan_for`.  Otherwise
        the plan cache is keyed by ``(automaton fingerprint, graph label
        set)`` -- the rewrite depends on which labels the graph carries --
        and the entry carries the rewrite report alongside the plan.
        Either path performs exactly one plan-cache lookup per call (the
        cache-miss telemetry contract).
        """
        if self.planner != "auto":
            return self.plan_for(query), None
        automaton = self._coerce_automaton(query)
        if isinstance(automaton, MergeFold):
            automaton = automaton.to_table()
        fingerprint = automaton_fingerprint(automaton)
        labels_of = getattr(graph, "labels", None)
        if not callable(labels_of):
            return self.plan_for(query), None
        labels = frozenset(labels_of())
        key = ("planned", fingerprint, labels)
        entry = self.plan_cache.get(key)
        if entry is not None:
            return entry
        report: dict | None = None
        try:
            table = planning.coerce_table(automaton)
        except QueryError:
            table = None
        if table is None:
            plan = compile_plan(automaton, fingerprint=fingerprint)
        else:
            outcome = planning.rewrite_table(
                table, labels, max_passes=self.max_rewrite_passes
            )
            if outcome.parity == "verified":
                plan = compile_plan(
                    outcome.table, fingerprint=outcome.table.fingerprint()
                )
            else:
                plan = compile_plan(automaton, fingerprint=fingerprint)
            report = outcome.to_dict()
            report["fingerprint"] = fingerprint_token(plan.fingerprint)
            self._count_rewrites(outcome)
        self.stats.inc("plan_compilations")
        entry = (plan, report)
        self.plan_cache.put(key, entry)
        return entry

    def _count_rewrites(self, outcome: planning.RewriteOutcome) -> None:
        """Bump ``engine_planner_rewrites_total{rewrite=...}`` per pass."""
        for name in outcome.applied:
            counter = self._rewrite_counters.get(name)
            if counter is None:
                counter = self.telemetry.registry.counter(
                    "engine_planner_rewrites_total",
                    help="Automaton rewrites applied (or refused) by the planner",
                    labels={"rewrite": name},
                )
                self._rewrite_counters[name] = counter
            counter.inc()

    def _cost_model(self, index: GraphIndex) -> CostModel:
        """The memoized :class:`CostModel` of one index generation."""
        key = (index.graph_uid, index.graph_version)
        model = self._cost_models.get(key)
        if model is None:
            model = CostModel(index)
            if len(self._cost_models) >= 8:
                self._cost_models.clear()
            self._cost_models[key] = model
        return model

    def _ordered_plan(self, index: GraphIndex, plan: CompiledPlan) -> CompiledPlan:
        """The selectivity-ordered clone of ``plan`` for early-exit kernels."""
        if self.planner != "auto":
            return plan
        key = (plan.fingerprint, index.graph_uid, index.graph_version)
        ordered = self._ordered_plans.get(key)
        if ordered is None:
            ordered = planning.selectivity_ordered(plan, index)
            if len(self._ordered_plans) >= 64:
                self._ordered_plans.clear()
            self._ordered_plans[key] = ordered
        return ordered

    def _estimates(
        self, index: GraphIndex, plan: CompiledPlan, *, binary: bool, shard_ok: bool
    ) -> list[CostEstimate]:
        """Per-strategy cost candidates for one whole-graph dispatch."""
        model = self._cost_model(index)
        estimate = model.binary_estimates if binary else model.evaluate_all_estimates
        return estimate(
            plan,
            numpy_ok=self.backend == "numpy",
            shard_ok=shard_ok,
            workers=self.workers,
        )

    def _dispatch_order(
        self,
        index: GraphIndex,
        plan: CompiledPlan,
        *,
        binary: bool,
        allow_shard: bool = True,
    ) -> list[str]:
        """Strategy names to try, best first (shared by dispatch and explain).

        Adaptive mode ranks the cost model's candidates cheapest-first;
        otherwise this reproduces the fixed order (sharded when available,
        then the resolved backend).  ``"python"`` is always last, so a
        failed shard fan-out can never strand a query.
        """
        shard_ok = (
            allow_shard
            and self._parallel is not None
            and self._parallel.available_for(index)
        )
        if self._adaptive:
            estimates = self._estimates(index, plan, binary=binary, shard_ok=shard_ok)
            return [
                estimate.strategy
                for estimate in sorted(estimates, key=lambda e: e.cost)
            ]
        order = ["sharded"] if shard_ok else []
        if self.backend == "numpy":
            order.append("numpy")
        order.append("python")
        return order

    @staticmethod
    def _coerce_automaton(query: Query) -> DFA | NFA | TableAutomaton:
        if isinstance(query, (DFA, NFA, TableAutomaton)):
            return query
        dfa = getattr(query, "dfa", None)
        if isinstance(dfa, DFA):
            return dfa
        raise QueryError(
            f"cannot evaluate {type(query).__name__!r}: expected a DFA, an NFA, "
            "a kernel TableDFA/MergeFold or an object with a 'dfa' attribute "
            "(PathQuery, BinaryPathQuery)"
        )

    # -- kernel dispatch -----------------------------------------------------

    def _count_backend(self, label: str) -> None:
        """Bump ``engine_backend_selected_total{backend=...}`` for one call."""
        counter = self._backend_counters.get(label)
        if counter is None:
            counter = self.telemetry.registry.counter(
                "engine_backend_selected_total",
                help="Whole-graph kernel dispatches by selected backend",
                labels={"backend": label},
            )
            self._backend_counters[label] = counter
        counter.inc()

    def _shard_trace(self):
        """The (wire context, ingest hook) pair for traced shard dispatch.

        ``(None, None)`` unless tracing is on *and* a
        :class:`~repro.telemetry.TraceContext` is attached to this thread
        -- the checks live here, inside the sharded branch only, so the
        telemetry-disabled dispatch path stays byte-identical.  Shard
        workers parent their spans onto this thread's innermost open span
        (the ``engine.evaluate`` span) and their records flow back through
        ``Tracer.ingest`` into the coordinator's sink.
        """
        tracer = self.telemetry.tracer
        if tracer is None:
            return None, None
        ctx = tracer.current_context()
        if ctx is None:
            return None, None
        return ctx.child(tracer.current_ref()).to_dict(), tracer.ingest

    def _run_evaluate_all(
        self,
        index: GraphIndex,
        plan: CompiledPlan,
        *,
        depth_sizes: list[int] | None = None,
    ) -> tuple[frozenset[int], str]:
        """Dispatch one whole-graph monadic evaluation to the best backend.

        The candidate order comes from :meth:`_dispatch_order` -- the fixed
        sharded/vectorized/python preference, or (adaptive mode) the cost
        model's cheapest-first ranking.  Sharding is skipped when a
        per-depth profile was requested (layer sizes are a whole-walk
        property the union of shard walks cannot reproduce).  A ``None``
        from the parallel layer means "pool unavailable" and falls through
        to the next candidate -- results never depend on pool health.
        """
        for strategy in self._dispatch_order(
            index, plan, binary=False, allow_shard=depth_sizes is None
        ):
            if strategy == "sharded":
                trace, ingest = self._shard_trace()
                selected = self._parallel.evaluate_all(
                    index, plan, self.stats.kernel, trace=trace, ingest=ingest
                )
                if selected is None:
                    continue
                self._count_backend("sharded")
                return selected, "sharded"
            if strategy == "numpy":
                self._count_backend("numpy")
                return (
                    executor.numpy_evaluate_all(
                        index, plan, self.stats.kernel, depth_sizes=depth_sizes
                    ),
                    "numpy",
                )
            self._count_backend("python")
            return (
                executor.evaluate_all(
                    index, plan, self.stats.kernel, depth_sizes=depth_sizes
                ),
                "python",
            )
        raise AssertionError("dispatch order always ends in 'python'")

    def _run_binary_evaluate(
        self, index: GraphIndex, plan: CompiledPlan
    ) -> tuple[frozenset[tuple[int, int]], str]:
        """Dispatch one whole-graph binary evaluation (same ranking as monadic).

        The adaptive path is what keeps the chunked numpy kernel off sparse
        selective queries: its dense per-chunk visited mask costs
        ``sources * n * k`` regardless of selectivity, so the cost model
        hands those to the per-source python search instead.
        """
        for strategy in self._dispatch_order(index, plan, binary=True):
            if strategy == "sharded":
                trace, ingest = self._shard_trace()
                pairs = self._parallel.binary_evaluate(
                    index, plan, self.stats.kernel, trace=trace, ingest=ingest
                )
                if pairs is None:
                    continue
                self._count_backend("sharded")
                return pairs, "sharded"
            if strategy == "numpy":
                self._count_backend("numpy")
                return (
                    executor.numpy_binary_evaluate(index, plan, self.stats.kernel),
                    "numpy",
                )
            self._count_backend("python")
            return executor.binary_evaluate(index, plan, self.stats.kernel), "python"
        raise AssertionError("dispatch order always ends in 'python'")

    def _count_pair_kernel(self, kind: str) -> None:
        """Bump ``engine_pair_kernel_total{kind=...}`` for one pair query."""
        counter = self._pair_counters.get(kind)
        if counter is None:
            counter = self.telemetry.registry.counter(
                "engine_pair_kernel_total",
                help="Pair-query kernel dispatches by search strategy",
                labels={"kind": kind},
            )
            self._pair_counters[kind] = counter
        counter.inc()

    def _run_pair_selects(
        self, index: GraphIndex, plan: CompiledPlan, origin_id: int, end_id: int
    ) -> bool:
        """Dispatch one pair query: forward or bidirectional product search.

        The strategy is chosen per query from the index's per-label degree
        stats through the shared cost model
        (:meth:`~repro.engine.costs.CostModel.choose_pair_strategy`); with
        the pure-python backend the forward oracle always runs, so parity
        tests can pin one side against the other.  With the planner on the
        search additionally walks the selectivity-ordered plan clone (same
        reachable sets, rare labels first).
        """
        if self.backend != "python":
            kind = self._cost_model(index).choose_pair_strategy(plan)
        else:
            kind = "forward"
        plan = self._ordered_plan(index, plan)
        self._count_pair_kernel(kind)
        if kind == "bidirectional":
            return executor.bidirectional_pair_selects(
                index, plan, origin_id, end_id, self.stats.kernel
            )
        return executor.pair_selects(
            index, plan, origin_id, end_id, self.stats.kernel
        )

    def _run_table_evaluate_all(
        self,
        index: GraphIndex,
        automaton: TableAutomaton,
        *,
        max_depth: int | None = None,
        depth_sizes: list[int] | None = None,
    ) -> tuple[frozenset[int], str]:
        """Dispatch one ephemeral table evaluation (vectorized or python)."""
        if self.backend == "numpy":
            self._count_backend("numpy")
            return (
                executor.numpy_table_evaluate_all(
                    index,
                    automaton,
                    self.stats.kernel,
                    max_depth=max_depth,
                    depth_sizes=depth_sizes,
                ),
                "numpy",
            )
        self._count_backend("python")
        return (
            executor.table_evaluate_all(
                index,
                automaton,
                self.stats.kernel,
                max_depth=max_depth,
                depth_sizes=depth_sizes,
            ),
            "python",
        )

    # -- monadic semantics ---------------------------------------------------

    def evaluate(
        self,
        graph: GraphDB,
        query: Query,
        *,
        ephemeral: bool = False,
        max_depth: int | None = None,
    ) -> frozenset[Node]:
        """The set of nodes selected on ``graph`` (monadic semantics).

        Pass ``ephemeral=True`` for throwaway kernel automata that will never
        be evaluated again (e.g. the interactive layer's per-round
        uncovered-words automaton): the engine skips fingerprinting, plan
        compilation and both caches and runs one backward table walk on the
        CSR index.  ``max_depth`` (ephemeral only) bounds the accepted word
        length, which is how batched k-informativeness cuts the product at
        ``k`` symbols.

        With telemetry active the call additionally emits an
        ``engine.evaluate`` span and (in profiling mode) records a
        :class:`~repro.telemetry.profile.QueryProfile`; the selected set is
        identical either way (pinned by the telemetry identity tests).
        """
        if self.telemetry.active:
            return self._evaluate_observed(
                graph, query, ephemeral=ephemeral, max_depth=max_depth
            )
        if ephemeral:
            automaton = self._coerce_automaton(query)
            if not isinstance(automaton, TableAutomaton):
                raise QueryError(
                    "ephemeral whole-graph evaluation needs a kernel TableDFA/MergeFold, "
                    f"got {type(query).__name__}"
                )
            if isinstance(automaton, MergeFold):
                automaton = automaton.to_table()
            index = self.index_for(graph)
            self.stats.inc("evaluations")
            selected_ids, _ = self._run_table_evaluate_all(
                index, automaton, max_depth=max_depth
            )
            nodes_by_id = index.nodes_by_id
            return frozenset(nodes_by_id[node_id] for node_id in selected_ids)
        if max_depth is not None:
            raise QueryError("max_depth is only supported with ephemeral=True")
        plan, _ = self._resolve_plan(graph, query)
        key = ResultCache.key("eval", plan.fingerprint, *self._graph_identity(graph))
        cached = self.result_cache.get(key)
        if cached is not None:
            return cached
        index = self.index_for(graph)
        self.stats.inc("evaluations")
        selected_ids, _ = self._run_evaluate_all(index, plan)
        nodes_by_id = index.nodes_by_id
        result = frozenset(nodes_by_id[node_id] for node_id in selected_ids)
        self.result_cache.put(key, result)
        return result

    def _evaluate_observed(
        self,
        graph: GraphDB,
        query: Query,
        *,
        ephemeral: bool,
        max_depth: int | None,
    ) -> frozenset[Node]:
        """:meth:`evaluate` with span/profile capture (telemetry active)."""
        kernel = self.stats.kernel
        started = perf_counter()
        with self.telemetry.span("engine.evaluate") as span:
            if ephemeral:
                automaton = self._coerce_automaton(query)
                if not isinstance(automaton, TableAutomaton):
                    raise QueryError(
                        "ephemeral whole-graph evaluation needs a kernel "
                        f"TableDFA/MergeFold, got {type(query).__name__}"
                    )
                if isinstance(automaton, MergeFold):
                    automaton = automaton.to_table()
                index = self.index_for(graph)
                indexed = perf_counter()
                self.stats.inc("evaluations")
                marks = kernel.mark()
                depth_sizes: list[int] = []
                selected_ids, backend_used = self._run_table_evaluate_all(
                    index,
                    automaton,
                    max_depth=max_depth,
                    depth_sizes=depth_sizes,
                )
                nodes_by_id = index.nodes_by_id
                result = frozenset(nodes_by_id[node_id] for node_id in selected_ids)
                self._observe(
                    span,
                    operation="evaluate",
                    cache="ephemeral",
                    plan=None,
                    plan_outcome=None,
                    index=index,
                    marks=marks,
                    depth_sizes=depth_sizes,
                    compile_seconds=0.0,
                    index_seconds=indexed - started,
                    started=started,
                    walk_started=indexed,
                    selected=len(result),
                    backend=backend_used,
                )
                return result
            if max_depth is not None:
                raise QueryError("max_depth is only supported with ephemeral=True")
            plan_misses = self.plan_cache.misses
            plan, report = self._resolve_plan(graph, query)
            plan_outcome = "miss" if self.plan_cache.misses > plan_misses else "hit"
            compiled = perf_counter()
            key = ResultCache.key(
                "eval", plan.fingerprint, *self._graph_identity(graph)
            )
            cached = self.result_cache.get(key)
            if cached is not None:
                self._observe(
                    span,
                    operation="evaluate",
                    cache="hit",
                    plan=plan,
                    plan_outcome=plan_outcome,
                    index=None,
                    marks=None,
                    depth_sizes=[],
                    compile_seconds=compiled - started,
                    index_seconds=0.0,
                    started=started,
                    walk_started=None,
                    selected=len(cached),
                    planner=report,
                )
                return cached
            index = self.index_for(graph)
            indexed = perf_counter()
            self.stats.inc("evaluations")
            marks = kernel.mark()
            # Per-depth layer sizes are a whole-walk property only the
            # in-process kernels can report, so capturing them pins the
            # walk in-process.  Collect them under profiling only: a
            # traced-but-unprofiled query stays shard-eligible, which is
            # what lets distributed traces reach the worker pool.
            depth_sizes = [] if self.telemetry.profiling else None
            selected_ids, backend_used = self._run_evaluate_all(
                index, plan, depth_sizes=depth_sizes
            )
            nodes_by_id = index.nodes_by_id
            result = frozenset(nodes_by_id[node_id] for node_id in selected_ids)
            self.result_cache.put(key, result)
            self._observe(
                span,
                operation="evaluate",
                cache="miss",
                plan=plan,
                plan_outcome=plan_outcome,
                index=index,
                marks=marks,
                depth_sizes=depth_sizes,
                compile_seconds=compiled - started,
                index_seconds=indexed - compiled,
                started=started,
                walk_started=indexed,
                selected=len(result),
                backend=backend_used,
                planner=report,
            )
            return result

    def _observe(
        self,
        span,
        *,
        operation: str,
        cache: str,
        plan: CompiledPlan | None,
        plan_outcome: str | None,
        index: GraphIndex | None,
        marks: tuple[int, int] | None,
        depth_sizes: list[int] | None,
        compile_seconds: float,
        index_seconds: float,
        started: float,
        walk_started: float | None,
        selected: int,
        backend: str | None = None,
        planner: dict | None = None,
    ) -> None:
        """Stamp span attributes, histogram and (optionally) a profile."""
        if depth_sizes is None:
            depth_sizes = []
        ended = perf_counter()
        total_seconds = ended - started
        walk_seconds = (ended - walk_started) if walk_started is not None else 0.0
        states = edges = 0
        if marks is not None:
            now_states, now_edges = self.stats.kernel.mark()
            states, edges = now_states - marks[0], now_edges - marks[1]
        token = fingerprint_token(plan.fingerprint) if plan is not None else None
        span.set(cache=cache, selected=selected)
        if backend is not None:
            span.set(backend=backend)
        if plan_outcome is not None:
            span.set(plan_cache=plan_outcome)
        if token is not None:
            span.set(plan=token)
        if index is not None:
            span.set(
                index_version=index.graph_version,
                states_expanded=states,
                edges_scanned=edges,
                max_frontier=max(depth_sizes, default=0),
            )
        self.telemetry.registry.histogram(
            "engine_evaluate_seconds",
            help="Wall time of engine evaluations (perf_counter)",
        ).observe(total_seconds)
        if self.telemetry.profiling:
            profile = QueryProfile(
                operation=operation,
                plan=token,
                index_version=index.graph_version if index is not None else None,
                index_uid=index.graph_uid if index is not None else None,
                cache=cache,
                plan_cache=plan_outcome,
                compile_seconds=compile_seconds,
                index_seconds=index_seconds,
                walk_seconds=walk_seconds,
                total_seconds=total_seconds,
                states_expanded=states,
                edges_scanned=edges,
                depth_sizes=depth_sizes,
                selected=selected,
            ).to_dict()
            if planner is not None:
                profile["planner"] = planner
            self.last_profile = profile

    def take_profile(self) -> dict | None:
        """Pop the profile of the most recent evaluation (or None).

        Profiles are recorded only in profiling mode
        (``Telemetry(profile=True)``); the engine keeps exactly the latest
        one, so take it immediately after the call of interest
        (single-threaded use -- the same discipline the caches assume).
        """
        profile, self.last_profile = self.last_profile, None
        return profile

    def selects(self, graph: GraphDB, query: Query, node: Node) -> bool:
        """Whether the query selects one given node of ``graph``."""
        if node not in graph:
            raise GraphError(f"node {node!r} is not in the graph")
        plan, _ = self._resolve_plan(graph, query)
        # A finished whole-graph evaluation answers membership for free.
        key = ResultCache.key("eval", plan.fingerprint, *self._graph_identity(graph))
        cached = self.result_cache.get(key)
        if cached is not None:
            return node in cached
        index = self.index_for(graph)
        self.stats.inc("evaluations")
        return executor.selects(
            index,
            self._ordered_plan(index, plan),
            index.node_ids[node],
            self.stats.kernel,
        )

    def any_selects(
        self,
        graph: GraphDB,
        query: Query,
        nodes: Iterable[Node],
        *,
        ephemeral: bool = False,
        max_depth: int | None = None,
    ) -> bool:
        """Whether the query selects at least one of the given nodes.

        The engine-side intersection-emptiness test behind Algorithm 1's
        merge guard (a candidate is rejected iff it selects a negative node).
        Pass ``ephemeral=True`` for throwaway automata that will never be
        evaluated again (e.g. merge candidates): the engine then skips
        fingerprinting, plan compilation and both caches and runs the lazy
        kernel directly on the CSR index.  ``max_depth`` (ephemeral kernel
        automata only) bounds the witness word's length -- the interactive
        layer's per-candidate k-informativeness check.
        """
        start_nodes = list(nodes)
        for node in start_nodes:
            if node not in graph:
                raise GraphError(f"node {node!r} is not in the graph")
        if not start_nodes:
            return False
        index = self.index_for(graph)
        node_ids = index.node_ids
        if ephemeral:
            self.stats.inc("evaluations")
            automaton = self._coerce_automaton(query)
            if isinstance(automaton, TableAutomaton):
                # Kernel automata (TableDFA / in-place MergeFold hypotheses)
                # take the all-int walk; no compilation, no object traversal.
                return executor.table_any_selects(
                    index,
                    automaton,
                    (node_ids[node] for node in start_nodes),
                    self.stats.kernel,
                    max_depth=max_depth,
                )
            if max_depth is not None:
                raise QueryError(
                    "max_depth needs a kernel TableDFA/MergeFold query"
                )
            return executor.lazy_any_selects(
                index,
                automaton,
                (node_ids[node] for node in start_nodes),
                self.stats.kernel,
            )
        if max_depth is not None:
            raise QueryError("max_depth is only supported with ephemeral=True")
        plan, _ = self._resolve_plan(graph, query)
        key = ResultCache.key("eval", plan.fingerprint, *self._graph_identity(graph))
        cached = self.result_cache.get(key)
        if cached is not None:
            return any(node in cached for node in start_nodes)
        self.stats.inc("evaluations")
        return executor.any_selects(
            index,
            self._ordered_plan(index, plan),
            (node_ids[node] for node in start_nodes),
            self.stats.kernel,
        )

    def evaluate_many(
        self, graph: GraphDB, queries: Sequence[Query]
    ) -> list[frozenset[Node]]:
        """Evaluate a whole workload of queries on one graph (batch API).

        The index is resolved once up front and every plan/result goes
        through the caches, so a batch amortizes the per-graph work across
        the workload -- the intended call pattern for the static experiment
        drivers and for serving query traffic.

        With ``workers > 1`` and a snapshot-backed index above the shard
        threshold, the batch's result-cache *misses* are deduplicated by
        plan fingerprint and fanned across the process pool (one chunk of
        plans per worker); cache hits are answered inline either way.  The
        fan-out is skipped under active telemetry, which preserves the
        per-query ``engine.evaluate`` span contract.
        """
        with self.telemetry.span("engine.evaluate_many", count=len(queries)):
            index = self.index_for(graph)
            if self._parallel is not None and not self.telemetry.active:
                result = self._evaluate_many_fanned(graph, index, queries)
                if result is not None:
                    return result
            return [self.evaluate(graph, query) for query in queries]

    def _evaluate_many_fanned(
        self, graph: GraphDB, index: GraphIndex, queries: Sequence[Query]
    ) -> list[frozenset[Node]] | None:
        """Fan a batch's deduplicated cache misses across the shard pool.

        Returns ``None`` when the fan-out is not worth it (fewer than two
        distinct misses, index ineligible) or the pool failed -- the caller
        then runs the plain per-query loop, which re-consults the caches
        and loses nothing.
        """
        plans = [self._resolve_plan(graph, query)[0] for query in queries]
        identity = self._graph_identity(graph)
        keys = [
            ResultCache.key("eval", plan.fingerprint, *identity) for plan in plans
        ]
        cached = [self.result_cache.get(key) for key in keys]
        misses: dict[object, CompiledPlan] = {}
        for plan, hit in zip(plans, cached):
            if hit is None and plan.fingerprint not in misses:
                misses[plan.fingerprint] = plan
        if len(misses) < 2 or not self._parallel.available_for(index):
            return None
        unique = list(misses.values())
        fanned = self._parallel.evaluate_plans(index, unique, self.stats.kernel)
        if fanned is None:
            return None
        nodes_by_id = index.nodes_by_id
        by_fingerprint: dict[object, frozenset[Node]] = {}
        for plan, selected_ids in zip(unique, fanned):
            self.stats.inc("evaluations")
            self._count_backend("sharded")
            result = frozenset(nodes_by_id[node_id] for node_id in selected_ids)
            self.result_cache.put(
                ResultCache.key("eval", plan.fingerprint, *identity), result
            )
            by_fingerprint[plan.fingerprint] = result
        return [
            hit if hit is not None else by_fingerprint[plan.fingerprint]
            for plan, hit in zip(plans, cached)
        ]

    # -- binary semantics ----------------------------------------------------

    def binary_evaluate(self, graph: GraphDB, query: Query) -> frozenset[tuple[Node, Node]]:
        """The set of node pairs selected under the binary semantics."""
        if self.telemetry.active:
            return self._binary_evaluate_observed(graph, query)
        plan, _ = self._resolve_plan(graph, query)
        key = ResultCache.key("binary", plan.fingerprint, *self._graph_identity(graph))
        cached = self.result_cache.get(key)
        if cached is not None:
            return cached
        index = self.index_for(graph)
        self.stats.inc("evaluations")
        pair_ids, _ = self._run_binary_evaluate(index, plan)
        nodes_by_id = index.nodes_by_id
        result = frozenset(
            (nodes_by_id[source], nodes_by_id[end]) for source, end in pair_ids
        )
        self.result_cache.put(key, result)
        return result

    def _binary_evaluate_observed(
        self, graph: GraphDB, query: Query
    ) -> frozenset[tuple[Node, Node]]:
        """:meth:`binary_evaluate` with span/profile capture."""
        kernel = self.stats.kernel
        started = perf_counter()
        with self.telemetry.span("engine.binary_evaluate") as span:
            plan_misses = self.plan_cache.misses
            plan, report = self._resolve_plan(graph, query)
            plan_outcome = "miss" if self.plan_cache.misses > plan_misses else "hit"
            compiled = perf_counter()
            key = ResultCache.key(
                "binary", plan.fingerprint, *self._graph_identity(graph)
            )
            cached = self.result_cache.get(key)
            if cached is not None:
                self._observe(
                    span,
                    operation="binary_evaluate",
                    cache="hit",
                    plan=plan,
                    plan_outcome=plan_outcome,
                    index=None,
                    marks=None,
                    depth_sizes=[],
                    compile_seconds=compiled - started,
                    index_seconds=0.0,
                    started=started,
                    walk_started=None,
                    selected=len(cached),
                    planner=report,
                )
                return cached
            index = self.index_for(graph)
            indexed = perf_counter()
            self.stats.inc("evaluations")
            marks = kernel.mark()
            pair_ids, backend_used = self._run_binary_evaluate(index, plan)
            nodes_by_id = index.nodes_by_id
            result = frozenset(
                (nodes_by_id[source], nodes_by_id[end]) for source, end in pair_ids
            )
            self.result_cache.put(key, result)
            self._observe(
                span,
                operation="binary_evaluate",
                cache="miss",
                plan=plan,
                plan_outcome=plan_outcome,
                index=index,
                marks=marks,
                depth_sizes=[],
                compile_seconds=compiled - started,
                index_seconds=indexed - compiled,
                started=started,
                walk_started=indexed,
                selected=len(result),
                backend=backend_used,
                planner=report,
            )
            return result

    def pair_selects(
        self,
        graph: GraphDB,
        query: Query,
        origin: Node,
        end: Node,
        *,
        ephemeral: bool = False,
    ) -> bool:
        """Whether the query selects the pair ``(origin, end)``.

        ``ephemeral=True`` has the same meaning as in :meth:`any_selects`.
        """
        if origin not in graph or end not in graph:
            raise GraphError("both endpoints must be in the graph")
        index = self.index_for(graph)
        if ephemeral:
            self.stats.inc("evaluations")
            automaton = self._coerce_automaton(query)
            if isinstance(automaton, TableAutomaton):
                return executor.table_pair_selects(
                    index,
                    automaton,
                    index.node_ids[origin],
                    index.node_ids[end],
                    self.stats.kernel,
                )
            return executor.lazy_pair_selects(
                index,
                automaton,
                index.node_ids[origin],
                index.node_ids[end],
                self.stats.kernel,
            )
        plan, _ = self._resolve_plan(graph, query)
        key = ResultCache.key("binary", plan.fingerprint, *self._graph_identity(graph))
        cached = self.result_cache.get(key)
        if cached is not None:
            return (origin, end) in cached
        self.stats.inc("evaluations")
        return self._run_pair_selects(
            index, plan, index.node_ids[origin], index.node_ids[end]
        )

    # -- explain -------------------------------------------------------------

    def explain(
        self, graph: GraphDB, query: Query, *, semantics: str = "path"
    ) -> dict:
        """Plan one query without running it: rewrites, costs, chosen kernel.

        Returns one JSON-safe dict: the planner's rewrite report, the
        compiled plan's shape and fingerprint, the per-strategy cost
        estimates of the requested semantics (plus the pair-search
        candidates), the strategy the engine would actually dispatch, and
        the result cache's disposition for this exact (plan, graph
        version) key.  Resolving the plan warms the plan cache exactly as
        evaluation would; the result cache is only membership-probed (no
        hit/miss counting), so explaining is observationally free.
        """
        if semantics not in ("path", "binary"):
            raise QueryError(
                f"unknown semantics {semantics!r}: expected 'path' or 'binary'"
            )
        binary = semantics == "binary"
        plan, report = self._resolve_plan(graph, query)
        index = self.index_for(graph)
        model = self._cost_model(index)
        shard_ok = self._parallel is not None and self._parallel.available_for(index)
        estimates = self._estimates(index, plan, binary=binary, shard_ok=shard_ok)
        if self._adaptive:
            chosen = min(estimates, key=lambda e: e.cost).strategy
        elif shard_ok:
            chosen = "sharded"
        else:
            chosen = self.backend
        pair_kind = (
            model.choose_pair_strategy(plan) if self.backend != "python" else "forward"
        )
        operation = "binary" if binary else "eval"
        key = ResultCache.key(operation, plan.fingerprint, *self._graph_identity(graph))
        if report is None:
            report = {"rewrites": [], "parity": "off"}
        return {
            "semantics": semantics,
            "planner": {"mode": self.planner, **report},
            "plan": {
                "fingerprint": fingerprint_token(plan.fingerprint),
                "states": plan.num_states,
                "symbols": list(plan.symbols),
            },
            "estimates": [estimate.to_dict() for estimate in estimates],
            "pair_estimates": [
                estimate.to_dict() for estimate in model.pair_estimates(plan)
            ],
            "chosen": {
                "strategy": chosen,
                "backend": self.backend,
                "pair_strategy": pair_kind,
                "workers": self.workers,
            },
            "cache": {
                "disposition": "hit" if key in self.result_cache else "miss",
                "plan": self.plan_cache.metrics(),
                "result": self.result_cache.metrics(),
            },
            "graph": {
                "nodes": index.num_nodes,
                "edges": index.edge_count,
                "labels": len(index.labels_by_id),
            },
        }

    # -- management ----------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop every cached plan, result and index (and the planner memos)."""
        self.plan_cache.clear()
        self.result_cache.clear()
        self._cost_models.clear()
        self._ordered_plans.clear()
        with self._index_lock:
            self._indexes.clear()

    def close(self) -> None:
        """Release pooled resources (shard worker processes).  Idempotent;
        an engine without workers is a no-op close."""
        if self._parallel is not None:
            self._parallel.shutdown()

    def stats_snapshot(self) -> dict[str, int | float]:
        """All counters (kernel work + cache hit rates) as one flat dict."""
        return self.stats.snapshot()

    def __repr__(self) -> str:
        return (
            f"QueryEngine(plans={len(self.plan_cache)}, "
            f"results={len(self.result_cache)}, "
            f"indexes={len(self._indexes)})"
        )


#: The process-wide engine behind the high-level evaluation APIs.
_DEFAULT_ENGINE = QueryEngine()


def get_default_engine() -> QueryEngine:
    """The shared engine used by ``PathQuery`` and the compat wrappers."""
    return _DEFAULT_ENGINE


def set_default_engine(engine: QueryEngine) -> QueryEngine:
    """Swap the shared engine (returns the previous one); used by tests."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous
