"""The :class:`QueryEngine` facade: indexed, cached, batchable evaluation.

The engine ties the subsystem together.  For every call it

1. resolves the query (a ``PathQuery``/``BinaryPathQuery`` or a raw
   DFA/NFA) to a :class:`~repro.engine.plan.CompiledPlan` through the LRU
   plan cache,
2. resolves the graph to a :class:`~repro.engine.index.GraphIndex`, rebuilt
   only when the graph's version counter moved,
3. consults the versioned result cache for whole-graph evaluations, and
4. otherwise runs the int-array kernels of :mod:`repro.engine.executor`.

A module-level default engine (:func:`get_default_engine`) backs the
high-level APIs (``PathQuery.evaluate`` and friends) and the compatibility
wrappers in :mod:`repro.graphdb.product`; callers that want isolated caches
or stats (benchmarks, servers) instantiate their own.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.automata.dfa import DFA
from repro.automata.kernel import MergeFold, TableAutomaton
from repro.automata.nfa import NFA
from repro.engine.cache import PlanCache, ResultCache
from repro.engine.executor import KernelStats
from repro.engine import executor
from repro.engine.index import GraphIndex
from repro.engine.plan import CompiledPlan, automaton_fingerprint, compile_plan
from repro.errors import GraphError, QueryError
from repro.graphdb.graph import GraphDB, Node

#: Anything the engine accepts as a query: a raw automaton or any object
#: exposing a ``dfa`` attribute (``PathQuery``, ``BinaryPathQuery``).
Query = object


@dataclass
class EngineStats:
    """Cumulative counters of one engine instance."""

    evaluations: int = 0
    index_builds: int = 0
    index_refreshes: int = 0
    plan_compilations: int = 0
    kernel: KernelStats = field(default_factory=KernelStats)

    @property
    def states_expanded(self) -> int:
        """Product pairs popped by the kernels so far."""
        return self.kernel.states_expanded

    @property
    def edges_scanned(self) -> int:
        """Graph adjacency entries touched by the kernels so far."""
        return self.kernel.edges_scanned

    def as_dict(self) -> dict[str, int]:
        """A flat snapshot (cache counters are added by the engine)."""
        return {
            "evaluations": self.evaluations,
            "index_builds": self.index_builds,
            "index_refreshes": self.index_refreshes,
            "plan_compilations": self.plan_compilations,
            "states_expanded": self.states_expanded,
            "edges_scanned": self.edges_scanned,
        }


class QueryEngine:
    """Indexed query evaluation with plan and result caching.

    Parameters
    ----------
    plan_cache_size:
        Capacity of the fingerprint -> :class:`CompiledPlan` LRU cache.
    result_cache_size:
        Capacity of the versioned whole-graph result cache.
    incremental_refresh:
        When a cached index goes stale, merge the graph's mutation delta
        log into it (:meth:`GraphIndex.refresh`) instead of rebuilding from
        scratch.  On by default; refresh falls back to a full build by
        itself when the delta is unavailable or too large.
    refresh_ratio:
        The delta-to-index size ratio above which refresh gives up and the
        engine rebuilds (per-row merging stops paying off around there).
    """

    def __init__(
        self,
        *,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        incremental_refresh: bool = True,
        refresh_ratio: float = 0.25,
    ) -> None:
        self.plan_cache = PlanCache(plan_cache_size)
        self.result_cache = ResultCache(result_cache_size)
        self.incremental_refresh = incremental_refresh
        self.refresh_ratio = refresh_ratio
        self.stats = EngineStats()
        # Strongly holds each live graph's index; dies with the graph.
        self._indexes: WeakKeyDictionary[GraphDB, GraphIndex] = WeakKeyDictionary()

    # -- resolution ----------------------------------------------------------

    def index_for(self, graph: GraphDB) -> GraphIndex:
        """The (cached) CSR index of ``graph``, refreshed or rebuilt when stale.

        A graph-like object may carry a ``prebuilt_index`` attribute (the
        storage layer's snapshot-backed :class:`GraphView` does): if that
        index is current, the engine adopts it instead of building one --
        this is how an mmap-loaded snapshot is consumed with zero rebuild.
        """
        index = self._indexes.get(graph)
        if index is not None:
            if index.is_current(graph):
                return index
            if self.incremental_refresh:
                refreshed = index.refresh(graph, max_ratio=self.refresh_ratio)
                if refreshed is not None:
                    self._indexes[graph] = refreshed
                    self.stats.index_refreshes += 1
                    return refreshed
        else:
            prebuilt = getattr(graph, "prebuilt_index", None)
            if prebuilt is not None and prebuilt.is_current(graph):
                self._indexes[graph] = prebuilt
                return prebuilt
        index = GraphIndex.build(graph)
        self._indexes[graph] = index
        self.stats.index_builds += 1
        return index

    def adopt_index(self, graph: GraphDB, index: GraphIndex) -> None:
        """Install a ready-made index for ``graph`` (must be current)."""
        if not index.is_current(graph):
            raise GraphError(
                "cannot adopt a stale index: it was built for "
                f"(uid={index.graph_uid}, version={index.graph_version}), the graph "
                f"is at (uid={graph.uid}, version={graph.version})"
            )
        self._indexes[graph] = index

    def plan_for(self, query: Query) -> CompiledPlan:
        """The (cached) compiled plan of a query or automaton."""
        automaton = self._coerce_automaton(query)
        if isinstance(automaton, MergeFold):
            # Materialize the quotient once; fingerprinting and compiling
            # the fold separately would each build it.
            automaton = automaton.to_table()
        fingerprint = automaton_fingerprint(automaton)
        plan = self.plan_cache.get(fingerprint)
        if plan is None:
            plan = compile_plan(automaton, fingerprint=fingerprint)
            self.plan_cache.put(fingerprint, plan)
            self.stats.plan_compilations += 1
        return plan

    @staticmethod
    def _coerce_automaton(query: Query) -> DFA | NFA | TableAutomaton:
        if isinstance(query, (DFA, NFA, TableAutomaton)):
            return query
        dfa = getattr(query, "dfa", None)
        if isinstance(dfa, DFA):
            return dfa
        raise QueryError(
            f"cannot evaluate {type(query).__name__!r}: expected a DFA, an NFA, "
            "a kernel TableDFA/MergeFold or an object with a 'dfa' attribute "
            "(PathQuery, BinaryPathQuery)"
        )

    # -- monadic semantics ---------------------------------------------------

    def evaluate(
        self,
        graph: GraphDB,
        query: Query,
        *,
        ephemeral: bool = False,
        max_depth: int | None = None,
    ) -> frozenset[Node]:
        """The set of nodes selected on ``graph`` (monadic semantics).

        Pass ``ephemeral=True`` for throwaway kernel automata that will never
        be evaluated again (e.g. the interactive layer's per-round
        uncovered-words automaton): the engine skips fingerprinting, plan
        compilation and both caches and runs one backward table walk on the
        CSR index.  ``max_depth`` (ephemeral only) bounds the accepted word
        length, which is how batched k-informativeness cuts the product at
        ``k`` symbols.
        """
        if ephemeral:
            automaton = self._coerce_automaton(query)
            if not isinstance(automaton, TableAutomaton):
                raise QueryError(
                    "ephemeral whole-graph evaluation needs a kernel TableDFA/MergeFold, "
                    f"got {type(query).__name__}"
                )
            if isinstance(automaton, MergeFold):
                automaton = automaton.to_table()
            index = self.index_for(graph)
            self.stats.evaluations += 1
            selected_ids = executor.table_evaluate_all(
                index, automaton, self.stats.kernel, max_depth=max_depth
            )
            nodes_by_id = index.nodes_by_id
            return frozenset(nodes_by_id[node_id] for node_id in selected_ids)
        if max_depth is not None:
            raise QueryError("max_depth is only supported with ephemeral=True")
        plan = self.plan_for(query)
        key = ResultCache.key("eval", plan.fingerprint, graph.uid, graph.version)
        cached = self.result_cache.get(key)
        if cached is not None:
            return cached
        index = self.index_for(graph)
        self.stats.evaluations += 1
        selected_ids = executor.evaluate_all(index, plan, self.stats.kernel)
        nodes_by_id = index.nodes_by_id
        result = frozenset(nodes_by_id[node_id] for node_id in selected_ids)
        self.result_cache.put(key, result)
        return result

    def selects(self, graph: GraphDB, query: Query, node: Node) -> bool:
        """Whether the query selects one given node of ``graph``."""
        if node not in graph:
            raise GraphError(f"node {node!r} is not in the graph")
        plan = self.plan_for(query)
        # A finished whole-graph evaluation answers membership for free.
        key = ResultCache.key("eval", plan.fingerprint, graph.uid, graph.version)
        cached = self.result_cache.get(key)
        if cached is not None:
            return node in cached
        index = self.index_for(graph)
        self.stats.evaluations += 1
        return executor.selects(index, plan, index.node_ids[node], self.stats.kernel)

    def any_selects(
        self,
        graph: GraphDB,
        query: Query,
        nodes: Iterable[Node],
        *,
        ephemeral: bool = False,
        max_depth: int | None = None,
    ) -> bool:
        """Whether the query selects at least one of the given nodes.

        The engine-side intersection-emptiness test behind Algorithm 1's
        merge guard (a candidate is rejected iff it selects a negative node).
        Pass ``ephemeral=True`` for throwaway automata that will never be
        evaluated again (e.g. merge candidates): the engine then skips
        fingerprinting, plan compilation and both caches and runs the lazy
        kernel directly on the CSR index.  ``max_depth`` (ephemeral kernel
        automata only) bounds the witness word's length -- the interactive
        layer's per-candidate k-informativeness check.
        """
        start_nodes = list(nodes)
        for node in start_nodes:
            if node not in graph:
                raise GraphError(f"node {node!r} is not in the graph")
        if not start_nodes:
            return False
        index = self.index_for(graph)
        node_ids = index.node_ids
        if ephemeral:
            self.stats.evaluations += 1
            automaton = self._coerce_automaton(query)
            if isinstance(automaton, TableAutomaton):
                # Kernel automata (TableDFA / in-place MergeFold hypotheses)
                # take the all-int walk; no compilation, no object traversal.
                return executor.table_any_selects(
                    index,
                    automaton,
                    (node_ids[node] for node in start_nodes),
                    self.stats.kernel,
                    max_depth=max_depth,
                )
            if max_depth is not None:
                raise QueryError(
                    "max_depth needs a kernel TableDFA/MergeFold query"
                )
            return executor.lazy_any_selects(
                index,
                automaton,
                (node_ids[node] for node in start_nodes),
                self.stats.kernel,
            )
        if max_depth is not None:
            raise QueryError("max_depth is only supported with ephemeral=True")
        plan = self.plan_for(query)
        key = ResultCache.key("eval", plan.fingerprint, graph.uid, graph.version)
        cached = self.result_cache.get(key)
        if cached is not None:
            return any(node in cached for node in start_nodes)
        self.stats.evaluations += 1
        return executor.any_selects(
            index, plan, (node_ids[node] for node in start_nodes), self.stats.kernel
        )

    def evaluate_many(
        self, graph: GraphDB, queries: Sequence[Query]
    ) -> list[frozenset[Node]]:
        """Evaluate a whole workload of queries on one graph (batch API).

        The index is resolved once up front and every plan/result goes
        through the caches, so a batch amortizes the per-graph work across
        the workload -- the intended call pattern for the static experiment
        drivers and for serving query traffic.
        """
        self.index_for(graph)
        return [self.evaluate(graph, query) for query in queries]

    # -- binary semantics ----------------------------------------------------

    def binary_evaluate(self, graph: GraphDB, query: Query) -> frozenset[tuple[Node, Node]]:
        """The set of node pairs selected under the binary semantics."""
        plan = self.plan_for(query)
        key = ResultCache.key("binary", plan.fingerprint, graph.uid, graph.version)
        cached = self.result_cache.get(key)
        if cached is not None:
            return cached
        index = self.index_for(graph)
        self.stats.evaluations += 1
        pair_ids = executor.binary_evaluate(index, plan, self.stats.kernel)
        nodes_by_id = index.nodes_by_id
        result = frozenset(
            (nodes_by_id[source], nodes_by_id[end]) for source, end in pair_ids
        )
        self.result_cache.put(key, result)
        return result

    def pair_selects(
        self,
        graph: GraphDB,
        query: Query,
        origin: Node,
        end: Node,
        *,
        ephemeral: bool = False,
    ) -> bool:
        """Whether the query selects the pair ``(origin, end)``.

        ``ephemeral=True`` has the same meaning as in :meth:`any_selects`.
        """
        if origin not in graph or end not in graph:
            raise GraphError("both endpoints must be in the graph")
        index = self.index_for(graph)
        if ephemeral:
            self.stats.evaluations += 1
            automaton = self._coerce_automaton(query)
            if isinstance(automaton, TableAutomaton):
                return executor.table_pair_selects(
                    index,
                    automaton,
                    index.node_ids[origin],
                    index.node_ids[end],
                    self.stats.kernel,
                )
            return executor.lazy_pair_selects(
                index,
                automaton,
                index.node_ids[origin],
                index.node_ids[end],
                self.stats.kernel,
            )
        plan = self.plan_for(query)
        key = ResultCache.key("binary", plan.fingerprint, graph.uid, graph.version)
        cached = self.result_cache.get(key)
        if cached is not None:
            return (origin, end) in cached
        self.stats.evaluations += 1
        return executor.pair_selects(
            index, plan, index.node_ids[origin], index.node_ids[end], self.stats.kernel
        )

    # -- management ----------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop every cached plan, result and index."""
        self.plan_cache.clear()
        self.result_cache.clear()
        self._indexes.clear()

    def stats_snapshot(self) -> dict[str, int | float]:
        """All counters (kernel work + cache hit rates) as one flat dict."""
        snapshot: dict[str, int | float] = dict(self.stats.as_dict())
        snapshot.update(
            plan_cache_hits=self.plan_cache.hits,
            plan_cache_misses=self.plan_cache.misses,
            result_cache_hits=self.result_cache.hits,
            result_cache_misses=self.result_cache.misses,
            plan_cache_hit_rate=self.plan_cache.hit_rate,
            result_cache_hit_rate=self.result_cache.hit_rate,
        )
        return snapshot

    def __repr__(self) -> str:
        return (
            f"QueryEngine(plans={len(self.plan_cache)}, "
            f"results={len(self.result_cache)}, "
            f"indexes={len(self._indexes)})"
        )


#: The process-wide engine behind the high-level evaluation APIs.
_DEFAULT_ENGINE = QueryEngine()


def get_default_engine() -> QueryEngine:
    """The shared engine used by ``PathQuery`` and the compat wrappers."""
    return _DEFAULT_ENGINE


def set_default_engine(engine: QueryEngine) -> QueryEngine:
    """Swap the shared engine (returns the previous one); used by tests."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous
