"""The shared kernel cost model: CSR statistics in, strategy ranking out.

Every dispatch decision the engine makes -- python vs. numpy vs. sharded
for whole-graph walks, forward vs. bidirectional for pair queries, and the
adaptive per-query choice that keeps the chunked numpy binary kernel off
sparse selective workloads -- reads the same handful of free statistics:
the per-label edge counts and node/edge totals a :class:`GraphIndex`
already holds, paired with the shape of the :class:`CompiledPlan` (which
transitions exist, which states are initial/final).

The central quantity is :meth:`CostModel.scan_work`: for each automaton
transition on symbol ``a``, the product BFS can cross each ``a``-edge of
the graph at most once, so the sum of per-label edge counts over the
plan's transitions bounds the edges one whole-graph epoch scans.  The
per-strategy estimates weight that bound with per-item and per-call
constants calibrated against the committed speed benchmarks; the absolute
numbers are unitless -- only the ordering between candidate strategies is
consumed.

The estimates deliberately stay O(plan transitions): the model sits on the
dispatch hot path, so it must cost far less than the cheapest kernel run
it arbitrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.index import GraphIndex
from repro.engine.plan import CompiledPlan

#: Cost of one python-kernel product edge scan (the unit everything else
#: is expressed in).
PYTHON_EDGE_WEIGHT = 1.0
#: Cost of one vectorized product edge scan (amortized numpy throughput).
NUMPY_ITEM_WEIGHT = 0.25
#: Fixed cost of entering one numpy kernel (array setup, dtype views).
NUMPY_CALL_WEIGHT = 5_000.0
#: Cost per visited-mask byte the chunked numpy binary kernel zeroes.
NUMPY_MASK_WEIGHT = 0.002
#: Fixed cost of one shard fan-out (pickling, IPC, result merge).
SHARD_CALL_WEIGHT = 200_000.0
#: Growth factor from first-layer pair fan-out to a full early-exit search.
PAIR_GROWTH = 1.0 / 16.0


@dataclass(frozen=True)
class CostEstimate:
    """One candidate strategy with its unitless cost and its inputs."""

    strategy: str
    cost: float
    detail: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"strategy": self.strategy, "cost": self.cost, **self.detail}


def cheapest(estimates: list[CostEstimate]) -> CostEstimate:
    """The lowest-cost candidate (ties broken by listing order)."""
    return min(estimates, key=lambda estimate: estimate.cost)


class CostModel:
    """Per-index strategy estimates from the CSR degree statistics.

    Instances are cheap value objects snapshotting one index generation
    (``label_edge_counts`` is recomputed on build/refresh); the engine
    memoizes them per ``(graph uid, version)``.
    """

    __slots__ = ("num_nodes", "edge_count", "label_counts", "label_ids")

    def __init__(self, index: GraphIndex) -> None:
        self.num_nodes = index.num_nodes
        self.edge_count = index.edge_count
        self.label_counts = index.label_edge_counts()
        self.label_ids = index.label_ids

    # -- shared quantities ---------------------------------------------------

    def scan_work(self, plan: CompiledPlan) -> int:
        """Edges one whole-graph product-BFS epoch can scan, at most.

        Each plan transition on a symbol crosses each same-label graph edge
        at most once, so the bound is the transition-weighted sum of the
        per-label edge counts.  Symbols the graph never uses contribute
        nothing -- exactly like the kernels, which skip them at bind time.
        """
        counts = self.label_counts
        sym_labels = plan.bind_symbols(self.label_ids)
        total = 0
        for moves in plan.state_moves:
            for symbol_pos, targets in moves:
                label_id = sym_labels[symbol_pos]
                if label_id >= 0:
                    total += counts[label_id] * len(targets)
        return total

    def first_layer_costs(self, plan: CompiledPlan) -> tuple[int, int]:
        """``(forward, backward)`` first-layer fan-outs of a pair query.

        Forward sums the edge counts of labels leaving the initial states;
        backward sums those entering the final states (the statistic the
        bidirectional search alternates on).
        """
        counts = self.label_counts
        sym_labels = plan.bind_symbols(self.label_ids)

        def side(states, moves_of) -> int:
            total = 0
            for state in states:
                for symbol_pos, _ in moves_of[state]:
                    label_id = sym_labels[symbol_pos]
                    if label_id >= 0:
                        total += counts[label_id]
            return total

        return (
            side(plan.initials, plan.state_moves),
            side(plan.finals, plan.rstate_moves),
        )

    # -- whole-graph monadic evaluation --------------------------------------

    def evaluate_all_estimates(
        self,
        plan: CompiledPlan,
        *,
        numpy_ok: bool = False,
        shard_ok: bool = False,
        workers: int = 1,
    ) -> list[CostEstimate]:
        """Candidates for one backward whole-graph walk, python always last.

        The walk seeds every ``(node, final state)`` pair, so the seed term
        scales with ``n * |finals|``; the scan term is :meth:`scan_work`.
        The vectorized kernel trades a fixed call cost for a ~4x per-item
        win; a shard fan-out additionally divides the local cost across
        workers but pays the IPC constant.
        """
        seeds = self.num_nodes * max(1, len(plan.finals))
        scan = self.scan_work(plan)
        python_cost = (seeds + scan) * PYTHON_EDGE_WEIGHT
        estimates = [
            CostEstimate(
                "python",
                python_cost,
                {"seeds": float(seeds), "scan_work": float(scan)},
            )
        ]
        if numpy_ok:
            estimates.append(
                CostEstimate(
                    "numpy",
                    NUMPY_CALL_WEIGHT + (seeds + scan) * NUMPY_ITEM_WEIGHT,
                    {"seeds": float(seeds), "scan_work": float(scan)},
                )
            )
        if shard_ok and workers > 1:
            local = min(estimate.cost for estimate in estimates)
            estimates.append(
                CostEstimate(
                    "sharded",
                    SHARD_CALL_WEIGHT + local / workers,
                    {"workers": float(workers), "local_cost": local},
                )
            )
        return estimates

    # -- whole-graph binary evaluation ---------------------------------------

    def binary_estimates(
        self,
        plan: CompiledPlan,
        *,
        numpy_ok: bool = False,
        shard_ok: bool = False,
        workers: int = 1,
    ) -> list[CostEstimate]:
        """Candidates for one all-pairs evaluation (a BFS per source node).

        The python kernel's cost is dominated by how many sources survive
        their first layer: across all sources the first layer scans exactly
        the forward fan-out ``f``, so the per-source reach is modelled as
        ``scan_work * min(n, f) / n`` -- selective queries (rare labels on
        the initial states) kill most sources immediately, dense ones
        re-walk shared structure once per source.  The chunked numpy kernel
        pays a dense ``sources * n * k`` visited mask regardless of
        selectivity, which is precisely why it loses on sparse selective
        workloads and why this estimate keeps it off them.
        """
        n, k = self.num_nodes, plan.num_states
        scan = self.scan_work(plan)
        forward, _ = self.first_layer_costs(plan)
        python_cost = (n + scan * min(n, forward)) * PYTHON_EDGE_WEIGHT
        estimates = [
            CostEstimate(
                "python",
                python_cost,
                {"scan_work": float(scan), "first_layer": float(forward)},
            )
        ]
        if numpy_ok:
            chunk = max(1, min(1024, (16 << 20) // max(1, n * k)))
            chunks = -(-n // chunk) if n else 0
            mask_bytes = float(chunks * chunk * n * k)
            estimates.append(
                CostEstimate(
                    "numpy",
                    chunks * NUMPY_CALL_WEIGHT
                    + mask_bytes * NUMPY_MASK_WEIGHT
                    + scan * min(n, forward) * NUMPY_ITEM_WEIGHT,
                    {"chunks": float(chunks), "mask_bytes": mask_bytes},
                )
            )
        if shard_ok and workers > 1:
            local = min(estimate.cost for estimate in estimates)
            estimates.append(
                CostEstimate(
                    "sharded",
                    SHARD_CALL_WEIGHT + local / workers,
                    {"workers": float(workers), "local_cost": local},
                )
            )
        return estimates

    # -- pair queries --------------------------------------------------------

    def pair_estimates(self, plan: CompiledPlan) -> list[CostEstimate]:
        """Candidates for one early-exit pair search.

        Forward/backward are the first-layer fan-outs; the bidirectional
        meet-in-the-middle always advances its cheaper side, so its
        estimate is the smaller fan-out plus a bookkeeping share of both.
        """
        forward, backward = self.first_layer_costs(plan)
        return [
            CostEstimate("forward", float(forward)),
            CostEstimate("backward", float(backward)),
            CostEstimate(
                "bidirectional",
                float(min(forward, backward)) + (forward + backward) * PAIR_GROWTH,
            ),
        ]

    def choose_pair_strategy(self, plan: CompiledPlan) -> str:
        """``"forward"`` or ``"bidirectional"`` for one pair query.

        Meeting in the middle pays whenever both ends have work to do; when
        the origin side's first-layer fan-out is an order of magnitude below
        the end side's fan-in, the plain forward early-exit search is
        already optimal and skips the bidirectional bookkeeping.
        """
        forward, backward = self.first_layer_costs(plan)
        if forward * 8 <= backward:
            return "forward"
        return "bidirectional"

    def __repr__(self) -> str:
        return (
            f"CostModel(nodes={self.num_nodes}, edges={self.edge_count}, "
            f"labels={len(self.label_counts)})"
        )
