"""Sharded process-pool execution of the product-BFS kernels.

The whole-graph kernels (:func:`~repro.engine.executor.evaluate_all`,
:func:`~repro.engine.executor.binary_evaluate`) have a natural partition:

* ``evaluate_all`` runs one backward BFS from the accepting seed pairs, and
  co-reachability from a union of seed sets is the union of the per-shard
  co-reachable sets -- so the seed pairs split into contiguous node ranges
  and the selected sets union back together;
* ``binary_evaluate`` walks each source node independently -- the source
  range splits the same way;
* a batch of plans (``evaluate_many``) splits by plan.

Workers share the graph through the storage layer: the pool initializer
``open_snapshot``-s the *same* ``.rgz`` file, so every worker gets a
zero-copy mmap view of the CSR arrays and nothing graph-sized is ever
pickled -- only :class:`~repro.engine.plan.CompiledPlan` objects (small,
plain int tables) and result frozensets cross the process boundary.  That
is also why sharding is **snapshot-backed only**: a heap-built index has no
file to re-open, and serializing it would cost more than it saves.

:class:`ParallelExecutor` is the engine-facing facade.  It is conservative
by construction: below ``min_shard_edges`` the per-process fan-out cannot
amortize, unsuitable indexes (no ``path``) are declined via
:meth:`available_for`, and any pool failure (spawn error, dead worker)
permanently marks the snapshot as broken and reports ``None`` so the
engine falls back to the in-process kernels -- results are never lost to
parallelism.  Worker kernel stats are merged into the engine's
:class:`~repro.engine.executor.KernelStats` with one locked add per call.
"""

from __future__ import annotations

import itertools
import os
import threading
import uuid
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter

from repro.engine import executor
from repro.engine.executor import KernelStats
from repro.engine.index import GraphIndex
from repro.engine.plan import CompiledPlan

#: Below this many edges a process fan-out cannot amortize its IPC cost.
DEFAULT_MIN_SHARD_EDGES = 50_000


def shard_bounds(n: int, shards: int) -> list[tuple[int, int]]:
    """``shards`` contiguous, disjoint ``[lo, hi)`` ranges covering ``0..n``.

    Ranges differ in size by at most one node; empty ranges are dropped, so
    asking for more shards than nodes degrades gracefully.
    """
    shards = max(1, shards)
    bounds = []
    for i in range(shards):
        lo = i * n // shards
        hi = (i + 1) * n // shards
        if lo < hi:
            bounds.append((lo, hi))
    return bounds or [(0, n)]


# -- worker side --------------------------------------------------------------
#
# One module-global index per worker process, installed by the pool
# initializer.  Task payloads reference the graph implicitly through it.

_WORKER_INDEX: GraphIndex | None = None


def _worker_init(path: str) -> None:
    """Pool initializer: map the shared snapshot into this worker."""
    global _WORKER_INDEX
    from repro.storage.snapshot import open_snapshot

    _WORKER_INDEX = open_snapshot(path)


def _pick_kernels(backend: str):
    """The (evaluate_all, binary_evaluate) pair for a resolved backend."""
    if backend == "numpy":
        return executor.numpy_evaluate_all, executor.numpy_binary_evaluate
    return executor.evaluate_all, executor.binary_evaluate


# Cross-process span identity for traced shard work: a random per-process
# origin token plus one atomic counter yields ``origin:span_id`` refs that
# merge into the coordinator's trace without id coordination (the same
# scheme Tracer uses -- see repro.telemetry.tracing).  Workers have no
# tracer or sink of their own: they build finished-span record dicts and
# ship them back with the shard results; the coordinator ingests them.

_WORKER_ORIGIN: str | None = None
_WORKER_SPAN_IDS = itertools.count(1)


def _worker_origin() -> str:
    global _WORKER_ORIGIN
    if _WORKER_ORIGIN is None:
        _WORKER_ORIGIN = uuid.uuid4().hex[:8]
    return _WORKER_ORIGIN


def _span_record(name: str, seconds: float, attrs: dict, trace: dict) -> dict:
    """A finished-span record for traced shard work (Tracer record schema).

    ``start`` is 0.0: worker clocks do not share the coordinator tracer's
    epoch, so only ``seconds`` is meaningful across the process boundary.
    """
    span_id = next(_WORKER_SPAN_IDS)
    record = {
        "name": name,
        "span_id": span_id,
        "parent_id": 0,
        "depth": 0,
        "start": 0.0,
        "seconds": round(seconds, 9),
        "attrs": attrs,
        "trace": trace.get("trace_id"),
        "span": f"{_worker_origin()}:{span_id}",
    }
    if trace.get("parent_span") is not None:
        record["parent"] = trace["parent_span"]
    if trace.get("tenant") is not None:
        record["tenant"] = trace["tenant"]
    return record


def _shard_evaluate_all(payload) -> tuple[frozenset[int], tuple[int, int], tuple]:
    plan, lo, hi, backend, trace = payload
    whole, _ = _pick_kernels(backend)
    stats = KernelStats()
    started = perf_counter()
    selected = whole(_WORKER_INDEX, plan, stats, seed_lo=lo, seed_hi=hi)
    marks = stats.mark()
    if trace is None:
        return selected, marks, ()
    attrs = {
        "lo": lo,
        "hi": hi,
        "backend": backend,
        "pid": os.getpid(),
        "states_expanded": marks[0],
        "edges_scanned": marks[1],
    }
    record = _span_record("shard.evaluate_all", perf_counter() - started, attrs, trace)
    return selected, marks, (record,)


def _shard_binary_evaluate(payload) -> tuple[frozenset, tuple[int, int], tuple]:
    plan, lo, hi, backend, trace = payload
    _, binary = _pick_kernels(backend)
    stats = KernelStats()
    started = perf_counter()
    selected = binary(_WORKER_INDEX, plan, stats, source_lo=lo, source_hi=hi)
    marks = stats.mark()
    if trace is None:
        return selected, marks, ()
    attrs = {
        "lo": lo,
        "hi": hi,
        "backend": backend,
        "pid": os.getpid(),
        "states_expanded": marks[0],
        "edges_scanned": marks[1],
    }
    record = _span_record("shard.binary_evaluate", perf_counter() - started, attrs, trace)
    return selected, marks, (record,)


def _shard_evaluate_plans(payload) -> tuple[list[frozenset[int]], tuple[int, int], tuple]:
    plans, backend, trace = payload
    whole, _ = _pick_kernels(backend)
    stats = KernelStats()
    started = perf_counter()
    results = [whole(_WORKER_INDEX, plan, stats) for plan in plans]
    marks = stats.mark()
    if trace is None:
        return results, marks, ()
    attrs = {
        "plans": len(plans),
        "backend": backend,
        "pid": os.getpid(),
        "states_expanded": marks[0],
        "edges_scanned": marks[1],
    }
    record = _span_record("shard.evaluate_plans", perf_counter() - started, attrs, trace)
    return results, marks, (record,)


# -- in-process shard kernels (used by the invariance tests and fallbacks) ----


def evaluate_all_sharded(
    index: GraphIndex,
    plan: CompiledPlan,
    shards: int,
    *,
    backend: str = "python",
    stats: KernelStats | None = None,
) -> frozenset[int]:
    """Shard ``evaluate_all`` sequentially in-process and union the results.

    The shard kernels are plain callables; the process pool is only
    transport.  This function runs the identical partition without a pool,
    which is what the shard-count-invariance tests pin against the
    single-shard answer.
    """
    if plan.is_empty_language or plan.accepts_empty_word:
        whole, _ = _pick_kernels(backend)
        return whole(index, plan, stats)
    whole, _ = _pick_kernels(backend)
    selected: set[int] = set()
    for lo, hi in shard_bounds(index.num_nodes, shards):
        selected.update(whole(index, plan, stats, seed_lo=lo, seed_hi=hi))
    return frozenset(selected)


def binary_evaluate_sharded(
    index: GraphIndex,
    plan: CompiledPlan,
    shards: int,
    *,
    backend: str = "python",
    stats: KernelStats | None = None,
) -> frozenset[tuple[int, int]]:
    """Shard ``binary_evaluate`` sequentially in-process; union the pairs."""
    _, binary = _pick_kernels(backend)
    selected: set[tuple[int, int]] = set()
    for lo, hi in shard_bounds(index.num_nodes, shards):
        selected.update(binary(index, plan, stats, source_lo=lo, source_hi=hi))
    return frozenset(selected)


# -- the engine-facing facade -------------------------------------------------


class ParallelExecutor:
    """Fan whole-graph kernel calls across a per-snapshot process pool.

    One executor belongs to one engine.  Pools are created lazily per
    snapshot path and reused across calls; a pool that fails to spawn or
    loses a worker marks its path broken, and every entry point then
    returns ``None`` (= "run in-process instead") rather than raising.
    """

    def __init__(
        self,
        *,
        workers: int,
        backend: str = "python",
        min_shard_edges: int = DEFAULT_MIN_SHARD_EDGES,
        registry=None,
    ) -> None:
        self.workers = workers
        self.backend = backend
        self.min_shard_edges = min_shard_edges
        self._pools: dict[str, ProcessPoolExecutor] = {}
        self._broken: set[str] = set()
        self._lock = threading.Lock()
        if registry is not None:
            self._shards = registry.counter(
                "kernel_shards_total",
                help="Node-range shards dispatched to pool workers",
            )
            self._fallbacks = registry.counter(
                "kernel_shard_fallbacks_total",
                help="Sharded calls that fell back to in-process execution",
            )
        else:
            self._shards = self._fallbacks = None

    # -- eligibility ---------------------------------------------------------

    @staticmethod
    def snapshot_path(index: GraphIndex) -> str | None:
        """The backing ``.rgz`` path of a snapshot-mapped index, or None."""
        path = getattr(index, "path", None)
        return None if path is None else str(path)

    def available_for(self, index: GraphIndex) -> bool:
        """Whether sharded execution can run on this index at all."""
        if self.workers < 2:
            return False
        path = self.snapshot_path(index)
        if path is None or path in self._broken:
            return False
        return index.edge_count >= self.min_shard_edges

    # -- pool management -----------------------------------------------------

    def _pool_for(self, path: str) -> ProcessPoolExecutor | None:
        with self._lock:
            if path in self._broken:
                return None
            pool = self._pools.get(path)
            if pool is not None:
                return pool
            try:
                pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init,
                    initargs=(path,),
                )
            except Exception:
                self._broken.add(path)
                return None
            self._pools[path] = pool
            return pool

    def _discard_pool(self, path: str) -> None:
        with self._lock:
            self._broken.add(path)
            pool = self._pools.pop(path, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if self._fallbacks is not None:
            self._fallbacks.inc()

    def shutdown(self) -> None:
        """Stop every worker pool (idempotent)."""
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- sharded kernels -----------------------------------------------------

    def _fan_out(self, index, task, payloads):
        """Run ``task`` for every payload on the index's pool.

        Returns the list of worker results, or ``None`` when the pool is
        unavailable or any worker failed (the caller falls back).
        """
        path = self.snapshot_path(index)
        if path is None:
            return None
        pool = self._pool_for(path)
        if pool is None:
            return None
        try:
            results = list(pool.map(task, payloads))
        except Exception:
            self._discard_pool(path)
            return None
        if self._shards is not None:
            self._shards.inc(len(payloads))
        return results

    def evaluate_all(
        self,
        index: GraphIndex,
        plan: CompiledPlan,
        stats: KernelStats | None = None,
        *,
        trace: dict | None = None,
        ingest=None,
    ) -> frozenset[int] | None:
        """Sharded :func:`~repro.engine.executor.evaluate_all`, or None.

        ``trace`` is a :class:`~repro.telemetry.TraceContext` wire dict
        shipped inside every task payload; workers then return finished
        span records which are fed to the ``ingest`` callable (usually
        ``Tracer.ingest``) during the merge.
        """
        if plan.is_empty_language:
            return frozenset()
        if plan.accepts_empty_word:
            return frozenset(range(index.num_nodes))
        payloads = [
            (plan, lo, hi, self.backend, trace)
            for lo, hi in shard_bounds(index.num_nodes, self.workers)
        ]
        shards = self._fan_out(index, _shard_evaluate_all, payloads)
        if shards is None:
            return None
        return self._merge(shards, stats, ingest)

    def binary_evaluate(
        self,
        index: GraphIndex,
        plan: CompiledPlan,
        stats: KernelStats | None = None,
        *,
        trace: dict | None = None,
        ingest=None,
    ) -> frozenset[tuple[int, int]] | None:
        """Sharded :func:`~repro.engine.executor.binary_evaluate`, or None."""
        if plan.is_empty_language:
            return frozenset()
        payloads = [
            (plan, lo, hi, self.backend, trace)
            for lo, hi in shard_bounds(index.num_nodes, self.workers)
        ]
        shards = self._fan_out(index, _shard_binary_evaluate, payloads)
        if shards is None:
            return None
        return self._merge(shards, stats, ingest)

    def evaluate_plans(
        self,
        index: GraphIndex,
        plans: list[CompiledPlan],
        stats: KernelStats | None = None,
        *,
        trace: dict | None = None,
        ingest=None,
    ) -> list[frozenset[int]] | None:
        """A batch of whole-graph evaluations fanned across the pool.

        Plans are split into one chunk per worker (order preserved); this is
        the transport under :meth:`QueryEngine.evaluate_many
        <repro.engine.engine.QueryEngine.evaluate_many>` and therefore under
        the service micro-batcher.
        """
        if not plans:
            return []
        chunks = [
            (plans[lo:hi], self.backend, trace)
            for lo, hi in shard_bounds(len(plans), self.workers)
        ]
        outputs = self._fan_out(index, _shard_evaluate_plans, chunks)
        if outputs is None:
            return None
        results: list[frozenset[int]] = []
        states = edges = 0
        for chunk_results, (chunk_states, chunk_edges), records in outputs:
            results.extend(chunk_results)
            states += chunk_states
            edges += chunk_edges
            if ingest is not None:
                for record in records:
                    ingest(record)
        if stats is not None:
            stats.add(states, edges)
        return results

    @staticmethod
    def _merge(shards, stats: KernelStats | None, ingest=None):
        """Union shard results; flush summed worker stats in one locked add.

        Worker-emitted span records ride back with the shard results and
        are handed to ``ingest`` here, so traced shard work lands in the
        coordinator's sink in the same pass that merges the answers.
        """
        merged: set = set()
        states = edges = 0
        for selected, (shard_states, shard_edges), records in shards:
            merged.update(selected)
            states += shard_states
            edges += shard_edges
            if ingest is not None:
                for record in records:
                    ingest(record)
        if stats is not None:
            stats.add(states, edges)
        return frozenset(merged)

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, backend={self.backend!r}, "
            f"pools={len(self._pools)})"
        )
