"""LRU caches for compiled plans and versioned query results.

Two caches back the engine:

* the **plan cache** maps an automaton's structural fingerprint (see
  :func:`repro.engine.plan.automaton_fingerprint`) to its
  :class:`~repro.engine.plan.CompiledPlan`, so re-evaluating a query -- or a
  different ``PathQuery`` object with the same canonical DFA -- skips the
  flattening step;
* the **result cache** maps ``(operation, fingerprint, graph uid, graph
  version)`` to a finished result (a node set or a pair set).  Because the
  graph's version counter participates in the key, a mutation silently
  invalidates every stale entry: the new version simply misses and the old
  entries age out of the LRU.

Retention note: entries are evicted by capacity, not by graph lifetime, so
results for graphs that have since been garbage collected (including
``O(|V|^2)`` binary pair sets) stay pinned until enough newer entries churn
them out.  Long-lived processes sweeping many large graphs should size
``result_cache_size`` accordingly or call
:meth:`~repro.engine.engine.QueryEngine.clear_caches` between workloads.

Thread safety: every operation holds the cache's own lock, so a served
engine can hit one shared plan/result cache from many worker threads
without corrupting the underlying ``OrderedDict`` recency links (the
service layer's whole shared-cache design rests on this).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Any

from repro.engine.plan import Fingerprint

_MISSING = object()


class LRUCache:
    """A small order-of-use bounded mapping with hit/miss counters."""

    __slots__ = ("capacity", "hits", "misses", "_data", "_lock")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts a hit or a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
            data[key] = value
            if len(data) > self.capacity:
                data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop every entry (the hit/miss counters are kept)."""
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (1.0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def metrics(self) -> dict[str, int | float]:
        """The cache's hit economics as one JSON-safe dict (telemetry export)."""
        return {
            "capacity": self.capacity,
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class PlanCache(LRUCache):
    """LRU cache of compiled plans, keyed by automaton fingerprint."""


class ResultCache(LRUCache):
    """LRU cache of finished results, keyed by (op, plan, graph uid+version)."""

    @staticmethod
    def key(
        operation: str, fingerprint: Fingerprint, graph_uid: int, graph_version: int
    ) -> tuple:
        """The versioned cache key of one evaluation."""
        return (operation, fingerprint, graph_uid, graph_version)
