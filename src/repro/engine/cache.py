"""LRU caches for compiled plans and versioned query results.

Two caches back the engine:

* the **plan cache** maps an automaton's structural fingerprint (see
  :func:`repro.engine.plan.automaton_fingerprint`) to its
  :class:`~repro.engine.plan.CompiledPlan`, so re-evaluating a query -- or a
  different ``PathQuery`` object with the same canonical DFA -- skips the
  flattening step;
* the **result cache** maps ``(operation, fingerprint, graph uid, graph
  version)`` to a finished result (a node set or a pair set).  Because the
  graph's version counter participates in the key, a mutation silently
  invalidates every stale entry: the new version simply misses and the old
  entries age out of the LRU.

Retention note: entries are evicted by capacity, not by graph lifetime, so
results for graphs that have since been garbage collected (including
``O(|V|^2)`` binary pair sets) stay pinned until enough newer entries churn
them out.  Long-lived processes sweeping many large graphs should size
``result_cache_size`` accordingly or call
:meth:`~repro.engine.engine.QueryEngine.clear_caches` between workloads.

Thread safety: every operation holds the cache's own lock, so a served
engine can hit one shared plan/result cache from many worker threads
without corrupting the underlying ``OrderedDict`` recency links (the
service layer's whole shared-cache design rests on this).
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from collections.abc import Hashable
from itertools import islice
from typing import Any

from repro.engine.plan import Fingerprint

_MISSING = object()

#: How many container elements :func:`estimate_entry_bytes` samples before
#: extrapolating; deep exhaustive measurement would rival the kernel cost
#: of producing the value in the first place.
_SAMPLE = 8


def estimate_entry_bytes(value: Any, _depth: int = 2) -> int:
    """A cheap byte estimate of one cache entry (key or value).

    Containers are sampled (up to a few elements, two levels deep) and
    extrapolated; compiled plans are costed from their table dimensions.
    The point is proportionality -- a 100k-pair binary result must dwarf a
    ten-node set -- not accounting-grade precision.
    """
    size = sys.getsizeof(value, 64)
    if _depth <= 0:
        return size
    if isinstance(value, (tuple, list, set, frozenset)):
        length = len(value)
        if length:
            sampled = list(islice(iter(value), _SAMPLE))
            per_item = sum(
                estimate_entry_bytes(item, _depth - 1) for item in sampled
            ) / len(sampled)
            size += int(per_item * length)
    elif isinstance(value, dict):
        if value:
            sampled = list(islice(value.items(), _SAMPLE))
            per_item = sum(
                estimate_entry_bytes(k, _depth - 1) + estimate_entry_bytes(v, _depth - 1)
                for k, v in sampled
            ) / len(sampled)
            size += int(per_item * len(value))
    elif isinstance(value, (bytes, bytearray, str)):
        pass  # getsizeof is already exact for flat buffers
    elif hasattr(value, "num_states") and hasattr(value, "symbols"):
        # CompiledPlan (duck-typed to avoid an import cycle): dominated by
        # its per-symbol transition dicts and per-state move tuples.
        size += 96 * (value.num_states + 1) * (len(value.symbols) + 1)
    return size


class LRUCache:
    """A small order-of-use bounded mapping with hit/miss counters.

    Beyond the entry-count capacity an optional **byte budget** bounds the
    estimated memory footprint (:func:`estimate_entry_bytes`): inserts
    evict least-recently-used entries until the estimate fits again, so one
    cache full of ``O(|V|^2)`` binary pair sets cannot quietly pin
    gigabytes.  The most recent entry always stays, however large --
    evicting the result that was just computed would only force a rerun.
    """

    __slots__ = (
        "capacity",
        "hits",
        "misses",
        "evictions",
        "budget_bytes",
        "size_bytes",
        "_data",
        "_sizes",
        "_lock",
    )

    def __init__(self, capacity: int, *, budget_bytes: int | None = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError("cache budget_bytes must be positive when set")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.budget_bytes = budget_bytes
        self.size_bytes = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        # Per-entry byte estimates; maintained only under an active budget
        # (the estimator is not free, and without a budget it buys nothing).
        self._sizes: dict[Hashable, int] = {}
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts a hit or a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting LRU entries past capacity or budget."""
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
            data[key] = value
            if self.budget_bytes is not None:
                previous = self._sizes.pop(key, 0)
                entry_bytes = estimate_entry_bytes(key) + estimate_entry_bytes(value)
                self._sizes[key] = entry_bytes
                self.size_bytes += entry_bytes - previous
            if len(data) > self.capacity:
                self._evict_lru()
            if self.budget_bytes is not None:
                while self.size_bytes > self.budget_bytes and len(data) > 1:
                    self._evict_lru()

    def _evict_lru(self) -> None:
        """Drop the least recently used entry (caller holds the lock)."""
        evicted_key, _ = self._data.popitem(last=False)
        self.evictions += 1
        if self.budget_bytes is not None:
            self.size_bytes -= self._sizes.pop(evicted_key, 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop every entry (the hit/miss counters are kept)."""
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self.size_bytes = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (1.0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def metrics(self) -> dict[str, int | float]:
        """The cache's hit economics as one JSON-safe dict (telemetry export)."""
        return {
            "capacity": self.capacity,
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "budget_bytes": self.budget_bytes,
            "size_bytes": self.size_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class PlanCache(LRUCache):
    """LRU cache of compiled plans, keyed by automaton fingerprint."""


class ResultCache(LRUCache):
    """LRU cache of finished results, keyed by (op, plan, graph uid+version)."""

    @staticmethod
    def key(
        operation: str, fingerprint: Fingerprint, graph_uid: object, graph_version: int
    ) -> tuple:
        """The versioned cache key of one evaluation.

        ``graph_uid`` is the process-minted counter for heap graphs, but
        snapshot-backed views substitute their **content identity** (path +
        payload checksum), which is what lets independently opened
        workspaces over the same snapshot share one result cache.
        """
        return (operation, fingerprint, graph_uid, graph_version)


# -- cross-workspace sharing --------------------------------------------------
#
# Two workspaces that `open_snapshot` the same file evaluate against
# byte-identical graphs, yet each engine would grow its own caches and
# re-answer queries the sibling already paid for.  The registry below keys
# one process-wide (plan cache, result cache) pair by the snapshot's
# *content* identity; engines adopt the shared pair via
# `QueryEngine.adopt_shared_caches`.  Both cache classes are thread-safe,
# so adoption needs no extra synchronization beyond this registry lock.

_SHARED_LOCK = threading.Lock()
_SHARED_CACHES: dict[Hashable, tuple[PlanCache, ResultCache]] = {}


def shared_caches(
    content_key: Hashable,
    *,
    plan_capacity: int = 256,
    result_capacity: int = 1024,
    budget_bytes: int | None = None,
) -> tuple[PlanCache, ResultCache]:
    """The process-wide cache pair for one snapshot content identity.

    The first caller's capacities and budget create the pair; later
    callers adopt it as-is (capacities are a property of the shared pool,
    not of each adopter).
    """
    with _SHARED_LOCK:
        pair = _SHARED_CACHES.get(content_key)
        if pair is None:
            pair = (
                PlanCache(plan_capacity),
                ResultCache(result_capacity, budget_bytes=budget_bytes),
            )
            _SHARED_CACHES[content_key] = pair
        return pair


def shared_cache_keys() -> list:
    """The content identities currently holding shared cache pairs."""
    with _SHARED_LOCK:
        return list(_SHARED_CACHES)


def clear_shared_caches() -> None:
    """Drop every shared pair (tests; a served process never needs this)."""
    with _SHARED_LOCK:
        _SHARED_CACHES.clear()
