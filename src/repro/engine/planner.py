"""Automaton rewriting ahead of plan compilation, parity-pinned.

The planner sits between query coercion and :func:`compile_plan`.  Given
the snapshot's declared label set it

1. **restricts the alphabet** -- transitions on symbols the graph never
   carries can never match an edge, so they are dropped wholesale (the
   kernels would skip them edge by edge at bind time; dropping them up
   front lets the next passes see the states they leave behind as dead);
2. **prunes dead states** -- the reachable-and-coreachable restriction of
   :meth:`TableDFA.trimmed`, which removes whole branches that only led
   anywhere through now-absent symbols;
3. **hoists common prefixes and factors unions** -- Hopcroft minimization
   (:meth:`TableDFA.minimized`): equivalent suffix states merge, so union
   arms that share structure collapse into one path.

Every rewritten automaton is checked against the unrewritten one with the
kernel's linear-in-product language-inclusion **both ways** over the
restricted alphabet, plus a one-way containment against the original over
its full alphabet when the restriction dropped symbols.  A failed check --
or any exception inside a pass -- falls back to the unrewritten automaton:
the planner may only ever make plans smaller, never wrong.

The module also hosts :func:`selectivity_ordered`, which reorders a
compiled plan's per-state moves by ascending per-label edge count so
early-exit searches try rare labels (and therefore small frontiers) first.
"""

from __future__ import annotations

from array import array
from collections.abc import Collection
from dataclasses import dataclass

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.automata.kernel import (
    NO_STATE,
    MergeFold,
    TableDFA,
    language_included_tables,
)
from repro.automata.nfa import NFA
from repro.engine.index import GraphIndex
from repro.engine.plan import CompiledPlan
from repro.errors import QueryError

#: Planner modes ``EngineConfig.planner`` understands.
PLANNER_MODES = ("auto", "off")


@dataclass(frozen=True)
class RewriteOutcome:
    """What the rewriter did to one automaton, and the proof status.

    ``parity`` is ``"verified"`` (rewrites applied and language-inclusion
    held both ways), ``"clean"`` (nothing to rewrite -- the automaton is
    already tight against this alphabet), ``"rejected"`` (an inclusion
    check failed; the unrewritten automaton is returned) or ``"error"``
    (a pass raised; ditto).
    """

    table: TableDFA
    applied: tuple[str, ...]
    parity: str
    states_before: int
    states_after: int
    symbols_before: int
    symbols_after: int

    def to_dict(self) -> dict:
        return {
            "rewrites": list(self.applied),
            "parity": self.parity,
            "states": {"before": self.states_before, "after": self.states_after},
            "symbols": {"before": self.symbols_before, "after": self.symbols_after},
        }


def coerce_table(automaton: object) -> TableDFA:
    """Int-code any engine-accepted automaton into a kernel :class:`TableDFA`."""
    if isinstance(automaton, MergeFold):
        automaton = automaton.to_table()
    if isinstance(automaton, TableDFA):
        return automaton
    if isinstance(automaton, DFA):
        return TableDFA.from_dfa(automaton)[0]
    if isinstance(automaton, NFA):
        return TableDFA.from_nfa(automaton)[0]
    raise QueryError(
        f"cannot plan {type(automaton).__name__!r}: expected a DFA, an NFA "
        "or a kernel TableDFA/MergeFold"
    )


def restrict_alphabet(table: TableDFA, keep: Collection[str]) -> TableDFA:
    """The same automaton over ``alphabet & keep`` (other transitions drop).

    Returns ``table`` itself when nothing is dropped.  This is the inverse
    direction of :meth:`TableDFA.reindexed` (which only widens); the
    restriction changes the language over the full alphabet -- by exactly
    the words a graph without those labels can never spell -- which is why
    the parity check runs over the restricted alphabet.
    """
    keep_set = frozenset(keep)
    kept = [symbol for symbol in table.alphabet.symbols if symbol in keep_set]
    if len(kept) == table.m:
        return table
    alphabet = Alphabet(kept)
    old_positions = [table.alphabet.index(symbol) for symbol in alphabet.symbols]
    new_m = len(alphabet)
    trans = table.trans
    new_trans = array("i", [NO_STATE] * (table.n * new_m))
    for state in range(table.n):
        base = state * table.m
        new_base = state * new_m
        for new_pos, old_pos in enumerate(old_positions):
            new_trans[new_base + new_pos] = trans[base + old_pos]
    return TableDFA(
        alphabet,
        n=table.n,
        trans=new_trans,
        finals=table.finals,
        initial=table.initial,
    )


def rewrite_table(
    table: TableDFA, graph_labels: Collection[str], *, max_passes: int = 3
) -> RewriteOutcome:
    """Rewrite one automaton against a graph's declared label set.

    Applies alphabet restriction once, then up to ``max_passes`` rounds of
    dead-state pruning and minimization until a fixpoint.  The result is
    parity-pinned via :func:`language_included_tables` both ways; any
    failure returns the automaton unrewritten (see module docstring).
    """
    original = table
    applied: list[str] = []
    try:
        baseline = restrict_alphabet(table, graph_labels)
        if baseline is not table:
            applied.append("restrict-alphabet")
        current = baseline
        for _ in range(max(0, max_passes)):
            changed = False
            trimmed = current.trimmed()
            if trimmed.n < current.n:
                applied.append("prune-dead")
                current = trimmed
                changed = True
            merged = current.minimized().trimmed()
            if merged.n < current.n:
                applied.append("merge-states")
                current = merged
                changed = True
            if not changed:
                break
        if not applied:
            return RewriteOutcome(
                original, (), "clean", original.n, original.n, original.m, original.m
            )
        verified = language_included_tables(
            baseline, current
        ) and language_included_tables(current, baseline)
        if verified and baseline is not table:
            # The restriction itself: the rewritten language, read over the
            # original alphabet, must stay inside the original language.
            verified = language_included_tables(
                current.reindexed(original.alphabet), original
            )
        if not verified:
            return RewriteOutcome(
                original,
                ("parity-rejected",),
                "rejected",
                original.n,
                original.n,
                original.m,
                original.m,
            )
        return RewriteOutcome(
            current,
            tuple(applied),
            "verified",
            original.n,
            current.n,
            original.m,
            current.m,
        )
    except Exception:
        return RewriteOutcome(
            original,
            ("rewrite-error",),
            "error",
            original.n,
            original.n,
            original.m,
            original.m,
        )


def selectivity_ordered(plan: CompiledPlan, index: GraphIndex) -> CompiledPlan:
    """A plan clone whose per-state moves try rare labels first.

    Early-exit kernels (pair search, membership probes) enqueue successors
    move by move; visiting the small per-label frontiers first keeps the
    working set tight and reaches rare-label accepting paths sooner.  The
    reachable sets -- and therefore every evaluation result -- are
    identical under any move order; only traversal order changes.  Returns
    ``plan`` itself when no move list has more than one entry.
    """
    if all(len(moves) < 2 for moves in plan.state_moves):
        return plan
    counts = index.label_edge_counts()
    sym_labels = plan.bind_symbols(index.label_ids)

    def weight(move: tuple[int, tuple[int, ...]]) -> tuple[int, int]:
        label_id = sym_labels[move[0]]
        return (counts[label_id] if label_id >= 0 else 0, move[0])

    ordered = CompiledPlan(
        num_states=plan.num_states,
        initials=plan.initials,
        finals=plan.finals,
        symbols=plan.symbols,
        delta=plan.delta,
        fingerprint=plan.fingerprint,
    )
    ordered.state_moves = tuple(
        tuple(sorted(moves, key=weight)) for moves in plan.state_moves
    )
    ordered._rstate_moves = tuple(
        tuple(sorted(moves, key=weight)) for moves in plan.rstate_moves
    )
    return ordered


def plan_automaton(automaton: object) -> object:
    """Materialize fold hypotheses so one coercion serves fingerprint+rewrite."""
    if isinstance(automaton, MergeFold):
        return automaton.to_table()
    return automaton
