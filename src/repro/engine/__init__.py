"""The indexed query-engine subsystem.

A production-shaped evaluation layer over the paper's product-construction
semantics (:mod:`repro.graphdb.product` stays as the executable reference):

* :mod:`repro.engine.index` -- :class:`GraphIndex`, an immutable int-encoded
  per-label CSR snapshot of a graph, invalidated by the graph's version
  counter;
* :mod:`repro.engine.plan` -- :class:`CompiledPlan`, a query automaton
  flattened into dense int transition tables, fingerprinted for caching;
* :mod:`repro.engine.cache` -- LRU plan cache and versioned result cache;
* :mod:`repro.engine.executor` -- the product-BFS kernels on int arrays;
* :mod:`repro.engine.engine` -- :class:`QueryEngine`, the facade with
  single-query, batch (:meth:`QueryEngine.evaluate_many`) and stats APIs.

All the high-level entry points (``PathQuery.evaluate``, the learner's
consistency checks, the experiment drivers) route through the shared default
engine; results are bit-for-bit identical to the reference construction.
"""

from repro.engine.cache import LRUCache, PlanCache, ResultCache
from repro.engine.engine import (
    EngineStats,
    QueryEngine,
    get_default_engine,
    set_default_engine,
)
from repro.engine.executor import KernelStats
from repro.engine.index import GraphIndex, get_index
from repro.engine.plan import CompiledPlan, automaton_fingerprint, compile_plan

__all__ = [
    "CompiledPlan",
    "EngineStats",
    "GraphIndex",
    "KernelStats",
    "LRUCache",
    "PlanCache",
    "QueryEngine",
    "ResultCache",
    "automaton_fingerprint",
    "compile_plan",
    "get_default_engine",
    "get_index",
    "set_default_engine",
]
