"""The indexed query-engine subsystem.

A production-shaped evaluation layer over the paper's product-construction
semantics (:mod:`repro.graphdb.product` stays as the executable reference):

* :mod:`repro.engine.index` -- :class:`GraphIndex`, an immutable int-encoded
  per-label CSR snapshot of a graph, invalidated by the graph's version
  counter;
* :mod:`repro.engine.plan` -- :class:`CompiledPlan`, a query automaton
  flattened into dense int transition tables, fingerprinted for caching;
* :mod:`repro.engine.cache` -- LRU plan cache and versioned result cache,
  with byte-budget eviction and a process-wide shared-cache registry keyed
  by snapshot content identity;
* :mod:`repro.engine.costs` / :mod:`repro.engine.planner` -- the CSR-stats
  cost model and the parity-pinned automaton rewriter behind the
  cost-based planning layer (``EngineConfig.planner``);
* :mod:`repro.engine.executor` -- the product-BFS kernels on int arrays
  (pure-python reference plus the optional numpy-vectorized backend);
* :mod:`repro.engine.parallel` -- :class:`ParallelExecutor`, sharded
  process-pool execution over snapshot-backed indexes;
* :mod:`repro.engine.engine` -- :class:`QueryEngine`, the facade with
  single-query, batch (:meth:`QueryEngine.evaluate_many`) and stats APIs.

All the high-level entry points (``PathQuery.evaluate``, the learner's
consistency checks, the experiment drivers) route through the shared default
engine; results are bit-for-bit identical to the reference construction.
"""

from repro.engine.cache import (
    LRUCache,
    PlanCache,
    ResultCache,
    clear_shared_caches,
    estimate_entry_bytes,
    shared_cache_keys,
    shared_caches,
)
from repro.engine.costs import CostEstimate, CostModel, cheapest
from repro.engine.engine import (
    EngineStats,
    QueryEngine,
    get_default_engine,
    set_default_engine,
)
from repro.engine.executor import BACKENDS, KernelStats, have_numpy, resolve_backend
from repro.engine.planner import (
    PLANNER_MODES,
    RewriteOutcome,
    rewrite_table,
    selectivity_ordered,
)
from repro.engine.index import GraphIndex, get_index
from repro.engine.parallel import (
    DEFAULT_MIN_SHARD_EDGES,
    ParallelExecutor,
    binary_evaluate_sharded,
    evaluate_all_sharded,
    shard_bounds,
)
from repro.engine.plan import CompiledPlan, automaton_fingerprint, compile_plan

__all__ = [
    "BACKENDS",
    "CompiledPlan",
    "CostEstimate",
    "CostModel",
    "DEFAULT_MIN_SHARD_EDGES",
    "EngineStats",
    "GraphIndex",
    "KernelStats",
    "LRUCache",
    "PLANNER_MODES",
    "ParallelExecutor",
    "PlanCache",
    "QueryEngine",
    "ResultCache",
    "RewriteOutcome",
    "automaton_fingerprint",
    "binary_evaluate_sharded",
    "cheapest",
    "clear_shared_caches",
    "compile_plan",
    "estimate_entry_bytes",
    "evaluate_all_sharded",
    "get_default_engine",
    "get_index",
    "have_numpy",
    "resolve_backend",
    "rewrite_table",
    "selectivity_ordered",
    "set_default_engine",
    "shard_bounds",
    "shared_cache_keys",
    "shared_caches",
]
